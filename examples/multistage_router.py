#!/usr/bin/env python
"""A two-stage packet router: concentrate, then permute.

The composition Section IV implies: a parallel machine's interconnect
first *concentrates* the cycle's active packets onto a dense set of
lanes, then *permutes* them to their destinations.  Both stages are the
paper's constructions; we run the router for several traffic cycles and
account hardware and per-cycle latency.

Stage 1: (n,n)-concentrator (mux-merger sorter, payload-carrying)
Stage 2: radix permuter on the concentrated lanes (self-routing)

Run: ``python examples/multistage_router.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.networks.concentrator import SortingConcentrator, check_concentration
from repro.networks.permutation import RadixPermuter


def main() -> None:
    n = 16
    rng = np.random.default_rng(99)
    concentrator = SortingConcentrator(n, sorter="mux_merger")
    permuter = RadixPermuter(n, backend="mux_merger")

    print(f"two-stage router over {n} ports")
    print(f"  stage 1 concentrator: cost {concentrator.cost()}, "
          f"depth {concentrator.depth()}")
    print(f"  stage 2 permuter:     cost {permuter.cost()}, "
          f"delay {permuter.routing_time()}")
    total_delay = concentrator.depth() + permuter.routing_time()
    print(f"  per-cycle latency:    {total_delay} unit delays\n")

    rows = []
    for cycle in range(5):
        # each active source picks a distinct destination
        active = rng.random(n) < 0.5
        sources = np.flatnonzero(active)
        dests = rng.choice(n, size=sources.size, replace=False)

        # stage 1: concentrate the active packets (payload = src * 64 + dst)
        requests = active.astype(np.uint8)
        payloads = np.full(n, -1, dtype=np.int64)
        payloads[sources] = sources * 64 + dests
        res = concentrator.concentrate(requests, payloads)
        assert check_concentration(requests, payloads, res)

        # stage 2: route the r concentrated packets; idle lanes get the
        # leftover destinations so the stage sees a full permutation
        r = res.count
        lane_dests = np.full(n, -1, dtype=np.int64)
        lane_payloads = np.full(n, -1, dtype=np.int64)
        for lane in range(r):
            packet = int(res.granted[lane])
            lane_dests[lane] = packet % 64
            lane_payloads[lane] = packet // 64  # the source id
        unused = sorted(set(range(n)) - set(int(d) for d in lane_dests[:r]))
        lane_dests[r:] = unused
        routed, _ = permuter.permute(lane_dests.tolist(), lane_payloads)

        delivered = 0
        for src, dst in zip(sources, dests):
            assert routed[dst] == src, (src, dst, routed)
            delivered += 1
        rows.append([cycle, int(active.sum()), r, delivered])

    print(format_table(
        ["cycle", "active", "concentrated", "delivered"],
        rows,
        title="router cycles (every packet reached its destination port)",
    ))
    print("\nevery delivery verified: output port received its sender's id.")


if __name__ == "__main__":
    main()
