#!/usr/bin/env python
"""Quickstart: the three adaptive binary sorting networks in five minutes.

Builds each of the paper's networks, sorts a random bit sequence on all
of them, and prints the cost/depth/time figures that motivate the paper:

* Network 1 (prefix sorter)      — O(n lg n) cost, adder-steered
* Network 2 (mux-merger sorter)  — O(n lg n) cost, no adder
* Network 3 (fish sorter)        — O(n) cost, time-multiplexed

Run: ``python examples/quickstart.py [n]``   (n a power of two, default 64)
"""

import sys

import numpy as np

from repro import FishSorter, build_mux_merger_sorter, build_prefix_sorter
from repro.analysis import format_table
from repro.baselines import build_odd_even_merge_sorter
from repro.circuits import simulate


def main(n: int = 64) -> None:
    rng = np.random.default_rng(42)
    bits = rng.integers(0, 2, n).astype(np.uint8)
    print(f"input ({n} bits):  {''.join(map(str, bits))}")
    print(f"expected sorted:  {''.join(map(str, np.sort(bits)))}\n")

    rows = []

    # Network 1: prefix binary sorter (combinational netlist)
    prefix = build_prefix_sorter(n)
    out = simulate(prefix, bits[None, :])[0]
    assert np.array_equal(out, np.sort(bits))
    rows.append(["Network 1: prefix sorter", prefix.cost(), prefix.depth(),
                 prefix.depth(), "3n lg n cost"])

    # Network 2: mux-merger binary sorter (combinational netlist)
    mux = build_mux_merger_sorter(n)
    out = simulate(mux, bits[None, :])[0]
    assert np.array_equal(out, np.sort(bits))
    rows.append(["Network 2: mux-merger sorter", mux.cost(), mux.depth(),
                 mux.depth(), "4n lg n cost, no adder"])

    # Network 3: fish sorter (clocked Model B system)
    fish = FishSorter(n)
    out, report = fish.sort(bits, pipelined=True)
    assert np.array_equal(out, np.sort(bits))
    rows.append(["Network 3: fish sorter (pipelined)", fish.cost(), "-",
                 report.sorting_time, "O(n) cost!"])

    # baseline for scale
    batcher = build_odd_even_merge_sorter(n)
    rows.append(["baseline: Batcher odd-even merge", batcher.cost(),
                 batcher.depth(), batcher.depth(), "O(n lg^2 n) cost"])

    print(format_table(
        ["network", "cost", "depth", "sorting time", "paper claim"],
        rows,
        title=f"Adaptive binary sorting networks at n = {n} (bit-level units)",
    ))
    print("\nAll four networks produced the identical sorted output.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
