#!/usr/bin/env python
"""Scaling study: every sorter's measured cost/depth/time across n.

Reproduces the paper's comparative landscape in one run — the data
behind Sections I and III's claims about who wins where.  Useful as a
template for users evaluating the constructions at their own sizes.

Run: ``python examples/scaling_study.py [max_lg_n]``   (default 12)
"""

import math
import sys

from repro.analysis import format_table, loglog_slope, measure_network


def main(max_lg: int = 12) -> None:
    sizes = [1 << p for p in range(6, max_lg + 1, 2)]
    networks = [
        ("fish", "Network 3 (fish, O(n))"),
        ("mux_merger", "Network 2 (mux-merger, 4n lg n)"),
        ("prefix", "Network 1 (prefix, 3n lg n)"),
        ("batcher_oem", "Batcher OEM (n lg^2 n / 4)"),
        ("balanced", "balanced sorter (n lg^2 n / 2)"),
        ("columnsort_tm", "TM columnsort (O(n))"),
        ("muller_preparata", "Muller-Preparata (O(n), non-carrying)"),
    ]
    rows = []
    slopes = []
    for key, label in networks:
        costs = []
        for n in sizes:
            m = measure_network(key, n)
            rows.append([label, n, m.cost, m.depth, m.time])
            costs.append(m.cost)
        slopes.append([label, round(loglog_slope(sizes, costs), 3)])
    print(format_table(
        ["network", "n", "cost", "depth", "time"],
        rows,
        title="measured cost/depth/time (bit-level units)",
    ))
    print()
    print(format_table(
        ["network", "cost slope (log-log)"],
        slopes,
        title="asymptotic exponents: ~1.0 = linear cost, >1 = n polylog",
    ))
    print(
        "\nreading: the two O(n) designs (fish, Muller-Preparata) hold "
        "slope ~1; note Muller-Preparata cannot carry payloads, which is "
        "why the paper's concentrators need the fish sorter."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
