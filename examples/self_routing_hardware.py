#!/usr/bin/env python
"""Self-routing hardware: a permutation network with zero control pins.

Builds the circuit-switched radix permuter of Fig. 10 as a *single
combinational netlist* (`repro.networks.carrying`): each packet enters
as a bundle of destination-address bits plus payload bits, and the
address bits themselves steer every switch.  Contrast with the Benes
network, which needs a globally computed setting for every one of its
``n lg n - n/2`` switches.

Run: ``python examples/self_routing_hardware.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.networks.benes import BenesNetwork, benes_switch_count
from repro.networks.carrying import CarryingConcentrator, SelfRoutingPermuter


def main() -> None:
    n = 16
    rng = np.random.default_rng(33)

    sp = SelfRoutingPermuter.create(n, payload_width=6)
    bn = BenesNetwork(n)

    perm = rng.permutation(n)
    payloads = rng.integers(0, 64, n)
    routed = sp.permute(perm, payloads)
    assert all(routed[perm[i]] == payloads[i] for i in range(n))
    print(f"{n} packets self-routed through one netlist:")
    print(f"  destinations: {perm.tolist()}")
    print(f"  payloads:     {payloads.tolist()}")
    print(f"  at outputs:   {routed.tolist()}\n")

    print(format_table(
        ["property", "self-routing permuter", "Benes + looping"],
        [
            ["switch cost", sp.netlist.cost(), bn.cost()],
            ["depth", sp.netlist.depth(), bn.depth()],
            ["control pins", 0, benes_switch_count(n)],
            ["routing computation", "none (address bits steer)",
             "looping algorithm per permutation"],
        ],
        title=f"circuit-switched permutation at n = {n}",
    ))
    print("\nthe trade: the self-routing fabric spends O(n lg^3 n) switches")
    print("to avoid any routing computation; Benes is minimal hardware but")
    print("needs a global O(n lg n)-processor setup phase (Table II).\n")

    # the same bundle machinery gives a hardware concentrator
    cc = CarryingConcentrator(n, payload_width=6)
    requests = (rng.random(n) < 0.4).astype(np.uint8)
    granted = cc.concentrate(requests, payloads)
    print(f"hardware concentrator (cost {cc.cost()}, depth {cc.depth()}):")
    print(f"  requests: {requests.tolist()}")
    print(f"  granted payloads on first {len(granted)} outputs: {granted}")


if __name__ == "__main__":
    main()
