#!/usr/bin/env python
"""Permutation routing: radix permuter vs the Benes network.

Section IV's headline: the radix permuter over fish binary sorters is
the first permutation network with O(n lg n) bit-level cost — and unlike
the Benes network it is *self-routing* (the destination addresses steer
the switches; no global looping computation is needed).

This example routes a stream of permutation traffic through both
networks, verifies delivery, and prints the Table II-style comparison.

Run: ``python examples/permutation_routing.py``
"""

import math

import numpy as np

from repro.analysis import format_table
from repro.networks.benes import BenesNetwork
from repro.networks.permutation import RadixPermuter, check_permutation


def main() -> None:
    n = 32
    rng = np.random.default_rng(11)
    benes = BenesNetwork(n)
    radix_fish = RadixPermuter(n, backend="fish")
    radix_comb = RadixPermuter(n, backend="mux_merger")

    print(f"routing {n}-packet permutations\n")
    traffic = [rng.permutation(n) for _ in range(8)]
    payloads = np.arange(n, dtype=np.int64) + 0xA000

    for perm in traffic:
        out_b = benes.permute(perm, payloads)
        assert all(out_b[perm[i]] == payloads[i] for i in range(n))
        out_r, _ = radix_fish.permute(perm, payloads)
        assert check_permutation(perm, payloads, out_r)
        out_c, _ = radix_comb.permute(perm, payloads)
        assert check_permutation(perm, payloads, out_c)
    print(f"{len(traffic)} random permutations delivered identically by all three networks.\n")

    lg = math.log2(n)
    rows = [
        ["Benes + looping", benes.cost(), benes.depth(),
         "global (looping algorithm)", "rearrangeable, not self-routing"],
        ["radix permuter / fish", radix_fish.cost(),
         radix_fish.routing_time(), "self-routing (address bits)",
         "O(n lg n) cost, packet-switched"],
        ["radix permuter / mux-merger", radix_comb.cost(),
         radix_comb.routing_time(), "self-routing (address bits)",
         "O(n lg^2 n) cost, circuit-switched"],
    ]
    print(format_table(
        ["network", "cost", "delay", "routing control", "notes"],
        rows,
        title=f"permutation networks at n = {n} (Table II, measured)",
    ))

    # show self-routing concretely: print the distributor decisions for
    # one packet at each level
    perm = traffic[0]
    packet = 5
    dest = int(perm[packet])
    bits = [(dest >> (int(lg) - 1 - i)) & 1 for i in range(int(lg))]
    print(
        f"\nself-routing example: packet {packet} -> output {dest}; "
        f"address bits {bits} steer it "
        + " -> ".join("lower" if b else "upper" for b in bits)
    )


if __name__ == "__main__":
    main()
