#!/usr/bin/env python
"""Sorting words with binary sorting steps (the §I decomposition).

The paper's introduction notes that general sorting "can be broken into
a sequence of sorting steps on binary sequences".  This example sorts
random 8-bit keys with :class:`repro.networks.word_sorter.RadixWordSorter`
— W stable binary splits, each a rank circuit plus a self-routing
permutation network, with *no word-width comparators anywhere* — and
compares the hardware bill against a Batcher network with W-bit
comparators.

Run: ``python examples/word_sorting.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.networks.word_sorter import RadixWordSorter


def main() -> None:
    n, width = 16, 8
    rng = np.random.default_rng(21)
    keys = rng.integers(0, 1 << width, n)
    print(f"keys:   {keys.tolist()}")

    sorter = RadixWordSorter(n, width, permuter="benes")
    out, report = sorter.sort(keys)
    print(f"sorted: {out.tolist()}")
    assert np.array_equal(out, np.sort(keys))

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["items / key width", f"{n} / {width} bits"],
            ["binary passes (one per bit, LSB first)", report.passes],
            ["rank circuit cost (per pass)", report.rank_cost],
            ["permuter cost (per pass)", report.permuter_cost],
            ["total cascade cost", report.total_cost],
            ["cascade delay (unit gates)", report.sort_time],
            ["Batcher with 8-bit comparators (model)",
             round(RadixWordSorter.batcher_word_cost(n, width))],
        ],
        title="word sorting as a cascade of stable binary splits",
    ))

    # show one pass in detail: the stable split on bit 0
    tags = (keys & 1).astype(np.uint8)
    dests = sorter._split_dests(tags)
    print("\npass 0 (bit 0): tag / destination per item")
    print("  tags :", tags.tolist())
    print("  dests:", dests.tolist())
    evens = [int(k) for k, t in zip(keys, tags) if t == 0]
    print(f"  -> the {len(evens)} even keys keep their order in slots "
          f"0..{len(evens) - 1}; odd keys follow (stability = why "
          "LSB-first radix works)")

    # scaling: the decomposition gains on Batcher-word as n grows
    rows = []
    for nn in (16, 64, 256):
        ws = RadixWordSorter(nn, width, permuter="benes")
        model = RadixWordSorter.batcher_word_cost(nn, width)
        rows.append([nn, ws.cost(), round(model), round(ws.cost() / model, 2)])
    print()
    print(format_table(
        ["n", "decomposition cost", "Batcher-word model", "ratio"],
        rows,
        title="scaling: O(W n lg n) vs O(W n lg^2 n)",
    ))


if __name__ == "__main__":
    main()
