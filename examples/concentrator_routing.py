#!/usr/bin/env python
"""Concentration in a multiprocessor: granting memory-bank requests.

The paper's Section I motivation: "many routing problems in parallel
processing, such as concentration and permutation problems, can be cast
as sorting problems."  This example plays out the classic scenario —
n processors contend for m <= n memory-module ports; an
(n,m)-concentrator must deliver every active request to a distinct port.

We drive both realizations through a bursty multi-round workload:

* the circuit-switched concentrator (mux-merger sorter, O(n lg n) cost),
* the time-multiplexed fish concentrator (O(n) cost), and show the
  hardware/time trade between them.

Run: ``python examples/concentrator_routing.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.networks.concentrator import (
    FishConcentrator,
    SortingConcentrator,
    check_concentration,
)


def main() -> None:
    n = 64
    rng = np.random.default_rng(7)
    circuit = SortingConcentrator(n, sorter="mux_merger")
    fish = FishConcentrator(n)

    print(f"{n}-processor arbitration demo")
    print(f"  circuit-switched concentrator cost: {circuit.cost()} "
          f"(depth {circuit.depth()})")
    print(f"  fish concentrator cost:             {fish.cost()} "
          f"(time-multiplexed)\n")

    rows = []
    total_granted = 0
    for round_no, load in enumerate((0.15, 0.45, 0.75, 1.0)):
        requests = (rng.random(n) < load).astype(np.uint8)
        # payload = requesting processor id + the bank address it wants
        payloads = np.arange(n, dtype=np.int64) * 1000 + rng.integers(0, 64, n)
        res = circuit.concentrate(requests, payloads)
        assert check_concentration(requests, payloads, res)
        res_fish, report = fish.concentrate(requests, payloads)
        assert check_concentration(requests, payloads, res_fish)
        total_granted += res.count
        rows.append([
            round_no, f"{load:.0%}", int(requests.sum()), res.count,
            circuit.depth(), report.sorting_time,
        ])
    print(format_table(
        ["round", "offered load", "requests", "granted",
         "circuit delay", "fish delay"],
        rows,
        title="request rounds (every active request reached a distinct port)",
    ))
    print(f"\n{total_granted} requests granted across all rounds; "
          "payloads verified to arrive intact on the first r outputs.")

    # the paper's tagging trick, spelled out
    requests = np.zeros(n, dtype=np.uint8)
    requests[[3, 17, 42]] = 1
    res = circuit.concentrate(requests, np.arange(n, dtype=np.int64))
    print(
        "\ntagging trick: requesters tagged 0 sort to the top -> "
        f"inputs {sorted(res.granted.tolist())} occupy outputs 0..{res.count - 1}"
    )


if __name__ == "__main__":
    main()
