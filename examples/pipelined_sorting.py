#!/usr/bin/env python
"""Model B in action: pipelining batches through one small sorter.

The fish sorter's trick (Section III-C) is to push k groups through a
single n/k-input sorter, one group per clock, instead of paying for k
sorters.  This example makes the clocked machinery visible: it streams
batches through a register-accurate pipelined netlist, prints the clock-
by-clock occupancy, and compares unpipelined vs pipelined makespans.

Run: ``python examples/pipelined_sorting.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.circuits import PipelinedNetlist, Timeline, levelize, run_time_multiplexed
from repro.core import build_mux_merger_sorter
from repro.core.fish_sorter import FishSorter


def main() -> None:
    rng = np.random.default_rng(3)
    sorter = build_mux_merger_sorter(16)
    lv = levelize(sorter)
    print(
        f"16-input mux-merger sorter: cost {sorter.cost()}, "
        f"depth {sorter.depth()} -> a {lv.n_levels}-segment pipeline "
        f"needing {lv.balance_registers} balancing register bits\n"
    )

    groups = [rng.integers(0, 2, 16).tolist() for _ in range(6)]

    # cycle-accurate streaming through the register pipeline
    pipe = PipelinedNetlist(sorter)
    print("clock | in                | out")
    outs = []
    clock = 0
    feeding = iter(groups)
    while len(outs) < len(groups):
        vec = next(feeding, None)
        res = pipe.step(vec)
        print(
            f"{clock:5d} | {''.join(map(str, vec)) if vec else '-' * 16} "
            f"| {''.join(map(str, res)) if res else '(filling)'}"
        )
        if res is not None:
            outs.append(res)
        clock += 1
    for vec, out in zip(groups, outs):
        assert out == sorted(vec)
    print(f"\nall {len(groups)} groups sorted; makespan {clock - 1} cycles "
          f"(= groups-1 + latency = {len(groups) - 1} + {pipe.latency})")

    # the same groups, unpipelined, on a timeline
    t = Timeline()
    run_time_multiplexed(sorter, groups, t)
    print(f"unpipelined makespan: {t.now} cycles "
          f"(= groups x depth = {len(groups)} x {sorter.depth()})\n")

    # and the end-to-end effect inside the fish sorter
    rows = []
    for n in (64, 256, 1024):
        fs = FishSorter(n)
        bits = rng.integers(0, 2, n).astype(np.uint8)
        _, seq_rep = fs.sort(bits)
        _, pipe_rep = fs.sort(bits, pipelined=True)
        rows.append([n, fs.k, seq_rep.sorting_time, pipe_rep.sorting_time,
                     f"{seq_rep.sorting_time / pipe_rep.sorting_time:.1f}x"])
    print(format_table(
        ["n", "k", "fish unpipelined", "fish pipelined", "speedup"],
        rows,
        title="pipelining inside Network 3 (eq. 24 vs eq. 26)",
    ))


if __name__ == "__main__":
    main()
