"""The paper's correctness evidence: Theorems 1-4 and the Corollary.

These are property-style tests — exhaustive over the relevant sequence
spaces for small n, hypothesis-driven for larger n — since the theorems
are what the paper offers in place of an empirical evaluation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sequences as seq
from repro.core.balanced_merge import balanced_stage_behavioral
from repro.core.kway import build_k_swap
from repro.core.mux_merger import classify_bisorted
from repro.circuits import simulate


class TestTheorem1:
    """Shuffling the concatenation of two sorted halves lands in A_n."""

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_exhaustive_over_sorted_halves(self, n):
        h = n // 2
        for zu in range(h + 1):
            for zl in range(h + 1):
                xs = seq.shuffle_concat(
                    seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl)
                )
                assert seq.in_A(xs)

    @given(st.integers(3, 7), st.data())
    def test_property_large_n(self, lg_h, data):
        h = 1 << lg_h
        zu = data.draw(st.integers(0, h))
        zl = data.draw(st.integers(0, h))
        xs = seq.shuffle_concat(seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl))
        assert seq.in_A(xs)


class TestTheorem2:
    """A balanced comparator stage maps A_n to (clean half, A_{n/2} half)."""

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exhaustive_over_A_n(self, n):
        for z in seq.enumerate_A(n):
            y = balanced_stage_behavioral(z)
            yu, yl = y[: n // 2], y[n // 2 :]
            assert (seq.is_clean(yu) and (n == 2 or seq.in_A(yl))) or (
                seq.is_clean(yl) and (n == 2 or seq.in_A(yu))
            ), z

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_count_identifies_clean_half(self, n):
        # the prefix-sorter steering rule: ones >= n/2 <=> lower half clean 1s
        for z in seq.enumerate_A(n):
            y = balanced_stage_behavioral(z)
            ones = int(z.sum())
            if ones >= n // 2:
                assert np.all(y[n // 2 :] == 1)
            else:
                assert np.all(y[: n // 2] == 0)

    def test_paper_example_2(self):
        # Z = 101010/11 -> Yu = 1000, Yl = 1111
        z = np.array([1, 0, 1, 0, 1, 0, 1, 1], dtype=np.uint8)
        y = balanced_stage_behavioral(z)
        assert y[:4].tolist() == [1, 0, 0, 0]
        assert y[4:].tolist() == [1, 1, 1, 1]
        assert seq.in_A(y[:4])

    def test_stage_preserves_ones(self):
        for z in seq.enumerate_A(16):
            assert balanced_stage_behavioral(z).sum() == z.sum()


class TestTheorem3:
    """Cutting a bisorted sequence into quarters: two quarters are clean
    and the other two concatenate to a bisorted sequence."""

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_exhaustive_over_bisorted(self, n):
        h, q = n // 2, n // 4
        for zu in range(h + 1):
            for zl in range(h + 1):
                x = np.concatenate(
                    [seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl)]
                )
                quarters = [x[i * q : (i + 1) * q] for i in range(4)]
                sel = classify_bisorted(x)
                clean_idx = {0: (0, 2), 1: (0, 3), 2: (1, 2), 3: (1, 3)}[sel]
                pair_idx = [i for i in range(4) if i not in clean_idx]
                for ci in clean_idx:
                    assert seq.is_clean(quarters[ci]), (x, sel)
                pair = np.concatenate([quarters[i] for i in pair_idx])
                assert seq.is_bisorted(pair), (x, sel)

    def test_paper_example_3(self):
        # 0001/0001: two quarters clean, others give bisorted 0101
        x = np.array([0, 0, 0, 1, 0, 0, 0, 1], dtype=np.uint8)
        sel = classify_bisorted(x)
        assert sel == 0  # X[n/4]=1? positions: x[2]=0, x[6]=0 -> 00
        # quarters 00,01,00,01: q1,q3 clean; q2*q4 = 0101 bisorted
        assert seq.is_bisorted([0, 1, 0, 1])

    def test_clean_quarter_values_consistent(self):
        # sel bit semantics: hi=0 -> q1 all-0; hi=1 -> q2 all-1, etc.
        n, h, q = 16, 8, 4
        for zu in range(h + 1):
            for zl in range(h + 1):
                x = np.concatenate(
                    [seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl)]
                )
                hi, lo = x[q], x[3 * q]
                if hi == 0:
                    assert np.all(x[:q] == 0)
                else:
                    assert np.all(x[q : 2 * q] == 1)
                if lo == 0:
                    assert np.all(x[2 * q : 3 * q] == 0)
                else:
                    assert np.all(x[3 * q :] == 1)


class TestTheorem4:
    """The k-SWAP splits a k-sorted sequence into a clean k-sorted upper
    half and a k-sorted lower half."""

    @pytest.mark.parametrize("n,k", [(8, 2), (16, 4), (16, 2), (32, 4), (64, 8)])
    def test_random_k_sorted(self, n, k, rng):
        net = build_k_swap(n, k)
        for _ in range(100):
            x = seq.random_k_sorted(n, k, rng)
            y = simulate(net, x[None, :])[0]
            assert seq.is_clean_k_sorted(y[: n // 2], k), (x, y)
            assert seq.is_k_sorted(y[n // 2 :], k), (x, y)
            assert y.sum() == x.sum()

    def test_exhaustive_small(self):
        # all 4-sorted sequences of length 8 (k = 4, blocks of 2)
        net = build_k_swap(8, 4)
        blocks = [[0, 0], [0, 1], [1, 1]]
        import itertools

        for combo in itertools.product(blocks, repeat=4):
            x = np.array(sum(combo, []), dtype=np.uint8)
            y = simulate(net, x[None, :])[0]
            assert seq.is_clean_k_sorted(y[:4], 4)
            assert seq.is_k_sorted(y[4:], 4)

    def test_paper_example_4(self):
        # 1111/0001/0011/0111: after halving blocks, >= k halves clean
        x = np.array([1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 1], dtype=np.uint8)
        net = build_k_swap(16, 4)
        y = simulate(net, x[None, :])[0]
        assert seq.is_clean_k_sorted(y[:8], 4)
        assert seq.is_k_sorted(y[8:], 4)
        # the clean half collects 11, 00, 11(?), 11 in block order -- the
        # paper's example counts six clean halves; exactly four rise
        assert int(y[:8].sum()) + int(y[8:].sum()) == int(x.sum())


class TestCorollary:
    """The n-input prefix sorter sorts any binary sequence (Corollary)."""

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exhaustive(self, n):
        from repro.analysis import verify_sorter_exhaustive
        from repro.core import build_prefix_sorter

        assert verify_sorter_exhaustive(build_prefix_sorter(n))
