"""Tests for path analysis, public-API conformance, and data-independent timing."""

import importlib
import inspect

import numpy as np
import pytest

from repro.circuits import critical_path, level_histogram, path_kind_summary
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.fish_sorter import FishSorter


class TestCriticalPath:
    def test_length_equals_depth(self):
        net = build_mux_merger_sorter(16)
        path = critical_path(net)
        assert sum(e.depth for e in path) == net.depth()

    def test_path_is_connected(self):
        net = build_prefix_sorter(8)
        path = critical_path(net)
        for prev, nxt in zip(path, path[1:]):
            assert any(w in nxt.ins for w in prev.outs)

    def test_kind_summary_shows_adders_on_network1(self):
        summary = path_kind_summary(build_prefix_sorter(64))
        # Network 1's depth includes real adder logic on the critical path
        gate_depth = sum(
            v for k, v in summary.items() if k in ("AND", "OR", "XOR", "NOT")
        )
        assert gate_depth > 0
        assert summary.get("COMPARATOR", 0) + summary.get("SWITCH2", 0) > 0

    def test_network2_path_is_pure_switching(self):
        summary = path_kind_summary(build_mux_merger_sorter(64))
        assert set(summary) <= {"COMPARATOR", "SWITCH4"}

    def test_empty_outputs(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        b.add_input()
        net = b.build([])
        assert critical_path(net) == []


class TestLevelHistogram:
    def test_levels_sum_to_element_count(self):
        net = build_mux_merger_sorter(16)
        hist = level_histogram(net)
        assert sum(hist.values()) == len(
            [e for e in net.elements if e.depth > 0]
        )

    def test_levels_span_depth(self):
        net = build_mux_merger_sorter(16)
        hist = level_histogram(net)
        assert max(hist) == net.depth()
        assert min(hist) == 1


class TestDataIndependentTiming:
    """Model B timing must not leak data: every input takes the same time."""

    def test_fish_time_data_independent(self, rng):
        fs = FishSorter(64)
        times = set()
        for _ in range(10):
            x = rng.integers(0, 2, 64).astype(np.uint8)
            _, rep = fs.sort(x)
            times.add(rep.sorting_time)
        assert len(times) == 1

    def test_fish_pipelined_time_data_independent(self, rng):
        fs = FishSorter(64)
        times = {
            fs.sort(rng.integers(0, 2, 64).astype(np.uint8), pipelined=True)[1].sorting_time
            for _ in range(10)
        }
        assert len(times) == 1


class TestPublicAPI:
    PACKAGES = [
        "repro",
        "repro.circuits",
        "repro.components",
        "repro.core",
        "repro.baselines",
        "repro.networks",
        "repro.analysis",
        "repro.viz",
    ]

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            assert hasattr(mod, sym), f"{name}.__all__ lists missing {sym}"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_is_sorted_unique(self, name):
        mod = importlib.import_module(name)
        names = list(getattr(mod, "__all__", []))
        assert names == sorted(names), f"{name}.__all__ not sorted"
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_documented(self, name):
        """Deliverable (e): doc comments on every public item."""
        mod = importlib.import_module(name)
        for sym in getattr(mod, "__all__", []):
            obj = getattr(mod, sym)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert inspect.getdoc(obj), f"{name}.{sym} lacks a docstring"

    def test_package_docstrings(self):
        for name in self.PACKAGES:
            assert importlib.import_module(name).__doc__
