"""Unit tests for gate-level lowering (raw constant-fanin gate counts)."""

import numpy as np
import pytest

from repro.baselines.batcher import build_odd_even_merge_sorter
from repro.circuits import (
    CircuitBuilder,
    exhaustive_inputs,
    gate_count,
    gate_depth,
    lower_to_gates,
    simulate,
)
from repro.circuits.elements import GATE_KINDS
from repro.core import build_mux_merger_sorter, build_prefix_sorter


def _equivalent(net, n_check=None):
    lowered = lower_to_gates(net)
    n = len(net.inputs)
    if n <= 12:
        inp = exhaustive_inputs(n)
    else:
        inp = np.random.default_rng(0).integers(0, 2, (128, n)).astype(np.uint8)
    return np.array_equal(simulate(net, inp), simulate(lowered, inp)), lowered


class TestEquivalence:
    def test_comparator(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build(list(b.comparator(x, y)))
        ok, lowered = _equivalent(net)
        assert ok and lowered.cost() == 2

    def test_switch2(self):
        b = CircuitBuilder()
        x, y, c = b.add_inputs(3)
        net = b.build(list(b.switch2(x, y, c)))
        ok, lowered = _equivalent(net)
        assert ok and lowered.cost() == 7

    def test_mux_demux(self):
        b = CircuitBuilder()
        x, y, s = b.add_inputs(3)
        m = b.mux2(x, y, s)
        d = b.demux2(x, s)
        net = b.build([m, *d])
        ok, _ = _equivalent(net)
        assert ok

    def test_switch4(self, rng):
        perms = ((0, 1, 2, 3), (1, 0, 3, 2), (2, 3, 0, 1), (3, 2, 1, 0))
        b = CircuitBuilder()
        data = b.add_inputs(4)
        s1, s0 = b.add_inputs(2)
        net = b.build(list(b.switch4(data, s1, s0, perms)))
        ok, _ = _equivalent(net)
        assert ok

    def test_derived_gates(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build([b.nand(x, y), b.nor(x, y), b.xnor(x, y), b.buf(x)])
        ok, lowered = _equivalent(net)
        assert ok
        # derived gates expand to NOT+base
        assert lowered.cost() == 6

    @pytest.mark.parametrize(
        "builder", [build_mux_merger_sorter, build_prefix_sorter,
                    build_odd_even_merge_sorter]
    )
    def test_whole_sorters_equivalent(self, builder):
        ok, lowered = _equivalent(builder(16))
        assert ok
        assert set(k for k in lowered.stats().by_kind) <= GATE_KINDS


class TestGateCounts:
    def test_gate_count_exceeds_element_count(self):
        net = build_mux_merger_sorter(32)
        assert gate_count(net) > net.cost()

    def test_fish_stays_linear_at_gate_level(self):
        """The abstract's claim is in *gates*: O(n) constant-fanin gates.
        Check the lowered inventory of the fish sorter's components."""
        from repro.core.fish_sorter import FishSorter

        totals = {}
        for n in (64, 256):
            fs = FishSorter(n)
            total = gate_count(fs.group_sorter) + gate_count(fs.input_mux) \
                + gate_count(fs.output_demux)
            for m, net in fs.merger._k_swaps.items():
                total += gate_count(net)
            for m, net in fs.merger._mergers.items():
                total += gate_count(net)
            total += gate_count(fs.merger.base_sorter)
            totals[n] = total
        assert totals[256] / totals[64] < 4.6  # ~linear growth

    def test_gate_depth_constant_factor_of_element_depth(self):
        net = build_mux_merger_sorter(32)
        assert net.depth() <= gate_depth(net) <= 4 * net.depth()

    def test_comparator_network_gate_count_is_2x(self):
        # a comparator lowers to exactly AND + OR
        net = build_odd_even_merge_sorter(16)
        assert gate_count(net) == 2 * net.cost()
