"""Unit tests for netlist serialization and DOT export."""

import numpy as np
import pytest

from repro.circuits import exhaustive_inputs, simulate
from repro.circuits.serialize import from_json, load, save, to_json
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.viz.dot import to_dot


class TestSerialization:
    @pytest.mark.parametrize("builder", [build_mux_merger_sorter, build_prefix_sorter])
    def test_roundtrip_preserves_behavior(self, builder):
        net = builder(8)
        back = from_json(to_json(net))
        inp = exhaustive_inputs(8)
        assert np.array_equal(simulate(net, inp), simulate(back, inp))

    def test_roundtrip_preserves_accounting(self):
        net = build_mux_merger_sorter(16)
        back = from_json(to_json(net))
        assert back.cost() == net.cost()
        assert back.depth() == net.depth()
        assert back.stats().by_kind == net.stats().by_kind

    def test_switch4_params_roundtrip(self):
        net = build_mux_merger_sorter(8)  # contains SWITCH4 elements
        back = from_json(to_json(net))
        orig = [e.params for e in net.elements if e.kind == "SWITCH4"]
        got = [e.params for e in back.elements if e.kind == "SWITCH4"]
        assert orig == got

    def test_constants_roundtrip(self):
        net = build_prefix_sorter(4)
        back = from_json(to_json(net))
        assert back.constants == net.constants

    def test_file_roundtrip(self, tmp_path):
        net = build_mux_merger_sorter(8)
        path = tmp_path / "net.json"
        save(net, path)
        back = load(path)
        assert back.cost() == net.cost()

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            from_json('{"format": 99}')

    def test_tampered_json_fails_validation(self):
        import json

        net = build_mux_merger_sorter(8)
        payload = json.loads(to_json(net))
        payload["elements"][0]["ins"] = [10**6]  # out-of-range wire
        with pytest.raises(ValueError):
            from_json(json.dumps(payload))


class TestDotExport:
    def test_contains_elements_and_edges(self):
        net = build_mux_merger_sorter(4)
        dot = to_dot(net)
        assert dot.startswith("digraph")
        assert "COMPARATOR" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_output_marked(self):
        net = build_mux_merger_sorter(4)
        assert "doublecircle" in to_dot(net)

    def test_size_guard(self):
        net = build_mux_merger_sorter(64)
        with pytest.raises(ValueError, match="max_elements"):
            to_dot(net, max_elements=10)
        # explicit raise works
        assert to_dot(net, max_elements=None)

    def test_node_count_matches(self):
        net = build_mux_merger_sorter(4)
        dot = to_dot(net)
        assert dot.count("shape=box") >= len(
            [e for e in net.elements if e.kind == "COMPARATOR"]
        )
