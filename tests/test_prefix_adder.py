"""Unit tests for gate-level adders, popcounts, and OR scans."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits import CircuitBuilder, exhaustive_inputs, simulate
from repro.components import (
    add_counts,
    half_adder_count,
    kogge_stone_add,
    popcount,
    ripple_add,
)
from repro.components.prefix_adder import (
    prefix_or_scan,
    prefix_sum_scan,
    suffix_or_scan,
)


def _decode(bits_out: np.ndarray) -> np.ndarray:
    return (bits_out * (1 << np.arange(bits_out.shape[1]))).sum(axis=1)


def _adder_net(width, fn):
    b = CircuitBuilder()
    xs = b.add_inputs(width)
    ys = b.add_inputs(width)
    return b.build(fn(b, xs, ys))


class TestAdders:
    @pytest.mark.parametrize("fn", [kogge_stone_add, ripple_add])
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, fn, width):
        net = _adder_net(width, fn)
        inp = exhaustive_inputs(2 * width)
        out = simulate(net, inp)
        xv = (inp[:, :width] * (1 << np.arange(width))).sum(axis=1)
        yv = (inp[:, width:] * (1 << np.arange(width))).sum(axis=1)
        assert np.array_equal(_decode(out), xv + yv)

    def test_kogge_stone_depth_logarithmic(self):
        d8 = _adder_net(8, kogge_stone_add).depth()
        d16 = _adder_net(16, kogge_stone_add).depth()
        assert d16 - d8 <= 2  # one extra prefix level + margin

    def test_ripple_depth_linear(self):
        d8 = _adder_net(8, ripple_add).depth()
        d16 = _adder_net(16, ripple_add).depth()
        assert d16 - d8 >= 8  # grows by ~2 per bit

    def test_ripple_cheaper_than_kogge_stone(self):
        assert _adder_net(16, ripple_add).cost() < _adder_net(16, kogge_stone_add).cost()

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        xs = b.add_inputs(3)
        ys = b.add_inputs(2)
        with pytest.raises(ValueError):
            kogge_stone_add(b, xs, ys)
        with pytest.raises(ValueError):
            ripple_add(b, xs, ys)

    def test_half_adder_count(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build(half_adder_count(b, x, y))
        out = simulate(net, exhaustive_inputs(2))
        assert _decode(out).tolist() == [0, 1, 1, 2]

    def test_add_counts_pads_widths(self):
        b = CircuitBuilder()
        xs = b.add_inputs(3)
        ys = b.add_inputs(1)
        net = b.build(add_counts(b, xs, ys))
        inp = exhaustive_inputs(4)
        out = simulate(net, inp)
        xv = (inp[:, :3] * (1 << np.arange(3))).sum(axis=1)
        yv = inp[:, 3]
        assert np.array_equal(_decode(out), xv + yv)

    def test_add_counts_unknown_adder(self):
        b = CircuitBuilder()
        xs = b.add_inputs(2)
        ys = b.add_inputs(2)
        with pytest.raises(ValueError, match="unknown adder"):
            add_counts(b, xs, ys, adder="carry-skip")


class TestPopcount:
    @pytest.mark.parametrize("adder", ["prefix", "ripple"])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 16])
    def test_counts_ones(self, n, adder):
        b = CircuitBuilder()
        ws = b.add_inputs(n)
        net = b.build(popcount(b, ws, adder=adder))
        inp = exhaustive_inputs(n)
        out = simulate(net, inp)
        assert np.array_equal(_decode(out), inp.sum(axis=1))

    def test_cost_roughly_linear(self):
        costs = {}
        for n in (16, 32, 64, 128):
            b = CircuitBuilder()
            ws = b.add_inputs(n)
            net = b.build(popcount(b, ws, adder="ripple"))
            costs[n] = net.cost()
        # ratio per doubling should approach 2 (linear), never exceed 2.5
        assert costs[128] / costs[64] < 2.5


class TestOrScans:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 16])
    def test_prefix_or(self, m, rng):
        b = CircuitBuilder()
        ws = b.add_inputs(m)
        net = b.build(prefix_or_scan(b, ws))
        for _ in range(20):
            vec = rng.integers(0, 2, m)
            out = simulate(net, [vec.tolist()])[0]
            assert np.array_equal(out, np.maximum.accumulate(vec))

    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 16])
    def test_suffix_or(self, m, rng):
        b = CircuitBuilder()
        ws = b.add_inputs(m)
        net = b.build(suffix_or_scan(b, ws))
        for _ in range(20):
            vec = rng.integers(0, 2, m)
            out = simulate(net, [vec.tolist()])[0]
            assert np.array_equal(out, np.maximum.accumulate(vec[::-1])[::-1])

    def test_prefix_or_linear_cost(self):
        def cost(m):
            b = CircuitBuilder()
            ws = b.add_inputs(m)
            net = b.build(prefix_or_scan(b, ws))
            return net.cost()

        assert cost(256) < 2 * 256  # < 2m gates
        assert cost(256) / cost(128) < 2.2

    def test_prefix_or_empty(self):
        b = CircuitBuilder()
        assert prefix_or_scan(b, []) == []


class TestPrefixSumScan:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8, 12])
    def test_exhaustive(self, m):
        b = CircuitBuilder()
        ws = b.add_inputs(m)
        scans = prefix_sum_scan(b, ws)
        widths = [len(s) for s in scans]
        net = b.build([w for s in scans for w in s])
        inp = exhaustive_inputs(m)
        res = simulate(net, inp)
        pos = 0
        for i, w in enumerate(widths):
            vals = (res[:, pos : pos + w] * (1 << np.arange(w))).sum(axis=1)
            assert np.array_equal(vals, inp[:, : i + 1].sum(axis=1)), i
            pos += w

    def test_widths_bounded(self):
        b = CircuitBuilder()
        ws = b.add_inputs(32)
        scans = prefix_sum_scan(b, ws)
        assert max(len(s) for s in scans) <= 32 .bit_length()

    def test_cost_n_lg_n(self):
        def cost(m):
            b = CircuitBuilder()
            ws = b.add_inputs(m)
            scans = prefix_sum_scan(b, ws)
            return b.build([w for s in scans for w in s]).cost()

        # per-doubling growth stays well under quadratic
        assert cost(128) / cost(64) < 2.6

    def test_depth_logarithmic_levels(self):
        def depth(m):
            b = CircuitBuilder()
            ws = b.add_inputs(m)
            scans = prefix_sum_scan(b, ws)
            return b.build([w for s in scans for w in s]).depth()

        # doubling n adds O(lg n) depth (one more level of wider adders),
        # far from doubling it
        assert depth(128) - depth(64) < depth(64)


@given(st.integers(0, 255), st.integers(0, 255))
def test_property_kogge_stone_adds(x, y):
    b = CircuitBuilder()
    xs = b.add_inputs(8)
    ys = b.add_inputs(8)
    net = b.build(kogge_stone_add(b, xs, ys))
    vec = [(x >> i) & 1 for i in range(8)] + [(y >> i) & 1 for i in range(8)]
    out = simulate(net, [vec])[0]
    assert int(_decode(out[None, :])[0]) == x + y
