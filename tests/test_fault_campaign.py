"""End-to-end tests for tools/fault_campaign.py: crash-safety and resume.

The campaign's contract is that a SIGKILL at any point leaves a loadable
checkpoint (atomic writes: the file is always a complete JSON document)
and that re-running picks up where it left off without re-computing or
duplicating records — and, because sampling is seeded, the resumed
campaign's records are byte-identical to an uninterrupted run's.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "fault_campaign.py"

CAMPAIGN_ARGS = [
    "--n", "8",
    "--networks", "prefix,mux_merger",
    "--faults", "stuck,swap,control",
    "--max-faults", "60",
    "--checkpoint-every", "2",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(out: pathlib.Path, extra=()):
    return subprocess.run(
        [sys.executable, str(TOOL), *CAMPAIGN_ARGS, "--out", str(out), *extra],
        capture_output=True, text=True, env=_env(), timeout=300,
    )


def _load(out: pathlib.Path) -> dict:
    return json.loads(out.read_text())


class TestCampaignEndToEnd:
    def test_smoke_campaign_completes(self, tmp_path):
        out = tmp_path / "faults.json"
        proc = _run(out)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = _load(out)
        assert doc["meta"]["complete"] is True
        records = doc["records"]
        ids = [r["id"] for r in records]
        assert len(ids) == len(set(ids)) and records
        assert sum(1 for r in records if r["outcome"] == "detected") > 0
        assert sum(r["divergences"] for r in records) == 0
        assert doc["summary"]  # aggregated table rows present
        assert "Fault resilience" in proc.stdout
        # atomic writes never leave temp droppings behind
        assert not list(tmp_path.glob("*.tmp"))

    def test_sigkill_then_resume_no_duplicates(self, tmp_path):
        out = tmp_path / "faults.json"
        baseline = tmp_path / "fresh.json"
        proc = _run(baseline)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        fresh = _load(baseline)

        victim = subprocess.Popen(
            [sys.executable, str(TOOL), *CAMPAIGN_ARGS, "--out", str(out)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=_env(),
        )
        # wait for a mid-run checkpoint, then kill without warning
        deadline = time.time() + 120
        while time.time() < deadline:
            if out.is_file():
                try:
                    if len(_load(out)["records"]) >= 4:
                        break
                except ValueError:  # pragma: no cover - never: writes are atomic
                    pytest.fail("checkpoint was readable mid-write: not atomic")
            if victim.poll() is not None:
                break  # finished before we could kill it (fast machine)
            time.sleep(0.02)
        killed = victim.poll() is None
        if killed:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        partial = _load(out)  # must parse even right after SIGKILL
        partial_ids = [r["id"] for r in partial["records"]]
        assert len(partial_ids) == len(set(partial_ids))
        if killed:
            assert partial["meta"]["complete"] is False

        resume = _run(out)
        assert resume.returncode == 0, resume.stdout + resume.stderr
        if killed and partial_ids:
            assert "resuming" in resume.stdout
        doc = _load(out)
        ids = [r["id"] for r in doc["records"]]
        assert len(ids) == len(set(ids)), "resume duplicated records"
        assert doc["meta"]["complete"] is True
        # deterministic: resumed run == uninterrupted run, record for record
        assert {r["id"]: r for r in doc["records"]} == {
            r["id"]: r for r in fresh["records"]
        }

    def test_changed_settings_invalidate_checkpoint(self, tmp_path):
        out = tmp_path / "faults.json"
        proc = _run(out)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        n_before = len(_load(out)["records"])
        proc = _run(out, extra=["--seed", "99"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "different settings" in proc.stdout
        assert _load(out)["meta"]["seed"] == 99
        assert len(_load(out)["records"]) == n_before  # fresh, not merged


class TestQuarantine:
    def test_tiny_timeout_quarantines_but_completes(self, tmp_path):
        """An absurd per-item budget must not hang or crash the campaign:
        slow items land in the checkpoint's quarantine list, the run
        still finishes and writes a complete, loadable document."""
        out = tmp_path / "faults.json"
        proc = subprocess.run(
            [sys.executable, str(TOOL),
             "--n", "8", "--networks", "prefix", "--faults", "control",
             "--max-faults", "10",
             "--item-timeout", "0.0005", "--item-retries", "0",
             "--out", str(out)],
            capture_output=True, text=True, env=_env(), timeout=300,
        )
        doc = _load(out)
        assert doc["meta"]["complete"] is True
        assert doc["quarantine"], proc.stdout + proc.stderr
        q = doc["quarantine"][0]
        assert q["id"] and "DeadlineExceeded" in q["error"] and q["attempts"] == 1
        # no overlap: an id is either a record or quarantined, never both
        rids = {r["id"] for r in doc["records"]}
        qids = {qq["id"] for qq in doc["quarantine"]}
        assert not (rids & qids)

    def test_generous_timeout_quarantines_nothing(self, tmp_path):
        out = tmp_path / "faults.json"
        proc = subprocess.run(
            [sys.executable, str(TOOL),
             "--n", "8", "--networks", "prefix", "--faults", "control",
             "--max-faults", "10",
             "--item-timeout", "120", "--item-retries", "1",
             "--out", str(out)],
            capture_output=True, text=True, env=_env(), timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = _load(out)
        assert doc["quarantine"] == []
        assert doc["records"]

    def test_quarantined_items_survive_resume(self, tmp_path):
        out = tmp_path / "faults.json"
        subprocess.run(
            [sys.executable, str(TOOL),
             "--n", "8", "--networks", "prefix", "--faults", "control",
             "--max-faults", "10",
             "--item-timeout", "0.0005", "--item-retries", "0",
             "--out", str(out)],
            capture_output=True, text=True, env=_env(), timeout=300,
        )
        quarantined = {q["id"] for q in _load(out)["quarantine"]}
        if not quarantined:  # pragma: no cover - machine too fast to trip
            pytest.skip("no item exceeded the tiny budget on this machine")
        # resume with the same settings: quarantined ids are not re-run
        proc = subprocess.run(
            [sys.executable, str(TOOL),
             "--n", "8", "--networks", "prefix", "--faults", "control",
             "--max-faults", "10",
             "--item-timeout", "0.0005", "--item-retries", "0",
             "--out", str(out)],
            capture_output=True, text=True, env=_env(), timeout=300,
        )
        assert "resuming" in proc.stdout
        doc = _load(out)
        assert {q["id"] for q in doc["quarantine"]} == quarantined
        assert not ({r["id"] for r in doc["records"]} & quarantined)


class TestSupervisedCampaign:
    def test_supervised_zero_silent_and_all_recovered(self, tmp_path):
        """Acceptance: with checkers attached, every steering fault is
        masked or detected (zero silent past the checkers, input-bus
        faults excepted) and every supervised sort recovers correctly."""
        out = tmp_path / "faults.json"
        proc = subprocess.run(
            [sys.executable, str(TOOL),
             "--n", "8", "--networks", "prefix,mux_merger",
             "--faults", "stuck,control",
             "--max-faults", "25", "--supervised",
             "--out", str(out)],
            capture_output=True, text=True, env=_env(), timeout=480,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = _load(out)
        assert doc["meta"]["supervised"] is True
        records = doc["records"]
        assert records
        for r in records:
            assert r["supervised_ok"] is True, r["id"]
            if not r["input_fault"]:
                assert r["supervised_outcome"] != "silent-corruption", r["id"]
        # the checkers strictly improve detection over the plain run
        plain = sum(1 for r in records if r["outcome"] == "detected")
        checked = sum(
            1 for r in records if r["supervised_outcome"] == "detected"
        )
        assert checked >= plain
