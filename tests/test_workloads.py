"""Property tests for the trace-driven workload generators.

Three invariants every workload declares (and the soak driver leans on):

* **byte-determinism** — the same ``(name, n, rate, seed)`` regenerates
  the identical ``(arrival_time, bits)`` stream, fingerprinted by
  :func:`repro.workloads.stream_digest`;
* **declared rates are honest** — the empirical arrival rate of a long
  stream matches ``Workload.declared_rate`` within process-appropriate
  tolerance (exact for uniform, statistical for Poisson/bursty);
* **adversarial structure is genuine** — the bit-reversal and transpose
  generators are actual permutations whose bit-planes reconstruct them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BuildError
from repro.workloads import (
    WORKLOADS,
    AdversarialModel,
    MixedSizeModel,
    OnOffArrivals,
    PoissonArrivals,
    UniformArrivals,
    ZipfHotKeyModel,
    bit_reversal_permutation,
    make_workload,
    permutation_bit_planes,
    stream_digest,
    transpose_permutation,
    worst_case_vectors,
)

seeds = st.integers(0, 2**31 - 1)
pow2_n = st.sampled_from([4, 8, 16, 32])


# -- byte-determinism ---------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(WORKLOADS), seed=seeds, n=pow2_n)
def test_same_seed_same_digest(name, seed, n):
    a = make_workload(name, n=n, rate=500.0, seed=seed).digest(64)
    b = make_workload(name, n=n, rate=500.0, seed=seed).digest(64)
    assert a == b


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(("uniform", "poisson", "bursty", "zipf", "mixed")),
       seed=seeds, n=pow2_n)
def test_different_seed_different_digest(name, seed, n):
    a = make_workload(name, n=n, rate=500.0, seed=seed).digest(64)
    b = make_workload(name, n=n, rate=500.0, seed=seed + 1).digest(64)
    assert a != b  # randomness actually flows from the seed


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(WORKLOADS), seed=seeds,
       skip=st.integers(0, 40))
def test_skip_resumes_identical_tail(name, seed, skip):
    """Resume = regenerate and skip: the tail must be the full stream's."""
    wl = make_workload(name, n=8, rate=500.0, seed=seed)
    full = list(wl.stream(48))
    tail = list(wl.stream(48, skip=skip))
    assert stream_digest(tail) == stream_digest(full[skip:])
    assert [r.index for r in tail] == list(range(skip, 48))


def test_digest_covers_times_widths_and_bits():
    wl = make_workload("uniform", n=8, seed=1)
    reqs = list(wl.stream(8))
    base = stream_digest(reqs)

    def mutated(field):
        import dataclasses

        rows = [dataclasses.replace(r, **field(r)) for r in reqs]
        return stream_digest(rows)

    assert mutated(lambda r: {"t": r.t + 1e-9}) != base
    flipped = reqs[3].bits.copy()
    flipped[0] ^= 1
    rows = list(reqs)
    import dataclasses

    rows[3] = dataclasses.replace(rows[3], bits=flipped)
    assert stream_digest(rows) != base


# -- declared rates -----------------------------------------------------------


def _empirical_rate(arrivals, seed, count=4000):
    rng = np.random.default_rng(seed)
    gaps = arrivals.gaps(rng)
    total = sum(next(gaps) for _ in range(count))
    return count / total


@settings(max_examples=15, deadline=None)
@given(rate=st.floats(10.0, 1e5), seed=seeds)
def test_uniform_rate_exact(rate, seed):
    assert _empirical_rate(UniformArrivals(rate), seed, 100) == pytest.approx(
        rate, rel=1e-9
    )


@settings(max_examples=10, deadline=None)
@given(rate=st.floats(100.0, 1e4), seed=seeds)
def test_poisson_rate_within_tolerance(rate, seed):
    # 4000 exponential gaps: sample mean is within ~5 sigma of 1/rate
    # with sigma = 1/(rate*sqrt(4000)) ~ 1.6% -> 8% bound, near-zero flake.
    assert _empirical_rate(PoissonArrivals(rate), seed) == pytest.approx(
        rate, rel=0.08
    )


def test_onoff_declared_rate_accounts_for_off_time():
    """Only ~50 on/off cycles fit in 20k arrivals, so the empirical
    rate of one seed scatters ~15%; averaging a fixed seed set makes
    the check deterministic while still catching a broken duty-cycle
    calculation (off by 4x)."""
    arr = OnOffArrivals(peak_rate=8000.0, mean_on_s=0.05, mean_off_s=0.15)
    assert arr.rate == pytest.approx(2000.0)
    mean = np.mean([_empirical_rate(arr, seed, 20000) for seed in range(8)])
    assert mean == pytest.approx(arr.rate, rel=0.15)


def test_onoff_heavy_tail_rate_fixed_seeds():
    """Pareto(1.5) dwells have infinite variance, so seed-randomized
    rate checks flake by construction; fixed seeds make this exact and
    still catch a broken duty-cycle calculation (which would be off by
    4x, far outside the band)."""
    arr = OnOffArrivals(peak_rate=8000.0, mean_on_s=0.05, mean_off_s=0.15,
                        heavy_tail=True)
    assert arr.rate == pytest.approx(2000.0)
    for seed in (0, 1, 2):
        assert _empirical_rate(arr, seed, 50000) == pytest.approx(
            arr.rate, rel=0.6
        )


def test_declared_rate_is_workload_property():
    for name in WORKLOADS:
        wl = make_workload(name, n=8, rate=1234.0, seed=0)
        assert wl.declared_rate == pytest.approx(1234.0)


# -- adversarial structure ----------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(m=st.integers(1, 8))
def test_bit_reversal_is_an_involution_permutation(m):
    n = 1 << m
    rev = bit_reversal_permutation(n)
    assert sorted(rev.tolist()) == list(range(n))  # genuine permutation
    assert np.array_equal(rev[rev], np.arange(n))  # reversing twice = id


@settings(max_examples=10, deadline=None)
@given(m=st.integers(1, 8))
def test_transpose_is_a_permutation_of_order_m(m):
    n = 1 << m
    tr = transpose_permutation(n)
    assert sorted(tr.tolist()) == list(range(n))
    walk = np.arange(n)
    for _ in range(m):  # m rotations of an m-bit address = identity
        walk = tr[walk]
    assert np.array_equal(walk, np.arange(n))


@settings(max_examples=10, deadline=None)
@given(m=st.integers(1, 6), seed=seeds)
def test_bit_planes_reconstruct_the_permutation(m, seed):
    n = 1 << m
    perm = np.random.default_rng(seed).permutation(n)
    planes = permutation_bit_planes(perm)
    assert planes.shape == (m, n)
    rebuilt = sum(planes[b].astype(np.int64) << b for b in range(m))
    assert np.array_equal(rebuilt, perm)


def test_adversarial_model_is_seed_independent_and_cycles():
    model = AdversarialModel(16)
    a = [bits.tobytes() for bits, _ in _take(model.rows(np.random.default_rng(0)), 40)]
    b = [bits.tobytes() for bits, _ in _take(model.rows(np.random.default_rng(99)), 40)]
    assert a == b  # no randomness by design
    period = len(model.family)  # 2 * lg(16) planes + 3 worst-case rows = 11
    assert a[period:2 * period] == a[:period]  # cycles exactly


def test_worst_case_vectors_shape():
    for bits, tag in worst_case_vectors(16):
        assert bits.size == 16 and set(np.unique(bits)) <= {0, 1}
    tags = [t for _, t in worst_case_vectors(16)]
    assert "reverse-sorted" in tags and "alternating" in tags


def _take(it, k):
    return [next(it) for _ in range(k)]


# -- model-level properties ---------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_zipf_mean_load_matches_declared(seed):
    model = ZipfHotKeyModel(32, load=0.5)
    probs = model.lane_probabilities(np.random.default_rng(seed))
    assert probs.mean() == pytest.approx(0.5, rel=0.05)
    rows = _take(model.rows(np.random.default_rng(seed)), 600)
    density = np.mean([bits.mean() for bits, _ in rows])
    assert density == pytest.approx(0.5, abs=0.05)


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_mixed_sizes_come_from_the_declared_set(seed):
    sizes = [4, 8, 32]
    model = MixedSizeModel(sizes)
    widths = {bits.size for bits, _ in
              _take(model.rows(np.random.default_rng(seed)), 200)}
    assert widths <= set(sizes)
    assert len(widths) > 1  # the mix actually mixes


# -- validation ---------------------------------------------------------------


def test_rejections():
    with pytest.raises(BuildError):
        make_workload("nope")
    with pytest.raises(BuildError):
        UniformArrivals(0.0)
    with pytest.raises(BuildError):
        OnOffArrivals(1.0, 0.1, 0.1, heavy_tail=True, alpha=1.0)
    with pytest.raises(BuildError):
        AdversarialModel(12)  # not a power of two
    with pytest.raises(BuildError):
        MixedSizeModel([])
    with pytest.raises(BuildError):
        ZipfHotKeyModel(8, load=0.0)
    with pytest.raises(BuildError):
        list(make_workload("uniform").stream(-1))
