"""Unit tests for the balanced sorter, columnsort, Muller-Preparata, AKS."""

import math

import numpy as np
import pytest

from repro.analysis import loglog_slope, verify_sorter_exhaustive
from repro.baselines.aks import AKSModel, PATERSON_DEPTH_CONSTANT
from repro.baselines.balanced import (
    balanced_sort_behavioral,
    balanced_sorter_cost,
    build_balanced_sorter,
)
from repro.baselines.columnsort import (
    TimeMultiplexedColumnsort,
    build_columnsort_network,
    choose_dims,
    columnsort,
    columnsort_cost_model,
    leighton_valid,
)
from repro.baselines.muller_preparata import build_muller_preparata_sorter
from repro.circuits import NO_PAYLOAD, simulate, simulate_payload


class TestBalancedSorter:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_balanced_sorter(n))

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_cost_formula(self, n):
        assert build_balanced_sorter(n).cost() == balanced_sorter_cost(n)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_depth_lg_squared(self, n):
        lg = n.bit_length() - 1
        assert build_balanced_sorter(n).depth() == lg * lg

    def test_behavioral_matches(self, rng):
        net = build_balanced_sorter(16)
        for _ in range(30):
            x = rng.integers(0, 2, 16).astype(np.uint8)
            assert np.array_equal(
                simulate(net, x[None, :])[0], balanced_sort_behavioral(x)
            )


class TestColumnsort:
    @pytest.mark.parametrize("r,s", [(4, 2), (8, 2), (9, 3), (18, 3), (20, 4), (32, 4)])
    def test_sorts_random_ints(self, r, s, rng):
        for _ in range(30):
            v = rng.integers(0, 100, r * s)
            assert np.array_equal(columnsort(v, r, s), np.sort(v))

    def test_sorts_floats(self, rng):
        v = rng.normal(size=40)
        assert np.allclose(columnsort(v, 20, 2), np.sort(v))

    def test_validity_condition(self):
        assert leighton_valid(8, 2)
        assert not leighton_valid(8, 3)  # s does not divide r
        assert not leighton_valid(6, 3)  # r < 2(s-1)^2
        with pytest.raises(ValueError):
            columnsort(np.zeros(18), 6, 3)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            columnsort(np.zeros(10), 4, 2)

    def test_choose_dims_valid(self):
        for p in range(2, 14):
            n = 1 << p
            r, s = choose_dims(n)
            assert r * s == n and leighton_valid(r, s)

    @pytest.mark.parametrize("n", [16, 64])
    def test_network_exhaustive(self, n):
        tm = TimeMultiplexedColumnsort(n)
        if n == 16:
            for v in range(1 << n):
                if v % 257:  # sample 1/257 of the space to keep it fast
                    continue
                x = np.array([(v >> (n - 1 - i)) & 1 for i in range(n)], dtype=np.uint8)
                out, _ = tm.sort(x)
                assert np.array_equal(out, np.sort(x))
        else:
            rng = np.random.default_rng(1)
            for _ in range(20):
                x = rng.integers(0, 2, n).astype(np.uint8)
                out, _ = tm.sort(x)
                assert np.array_equal(out, np.sort(x))

    def test_network_pipelining_reduces_time(self):
        tm = TimeMultiplexedColumnsort(256)
        x = np.zeros(256, dtype=np.uint8)
        _, rep_seq = tm.sort(x)
        _, rep_pipe = tm.sort(x, pipelined=True)
        assert rep_pipe.sorting_time < rep_seq.sorting_time
        assert rep_seq.column_passes == rep_pipe.column_passes == 3 * tm.s + (tm.s + 1)

    def test_cost_linearish(self):
        costs = {n: TimeMultiplexedColumnsort(n).cost() for n in (256, 1024, 4096)}
        slope = loglog_slope(list(costs), list(costs.values()))
        assert slope < 1.35  # O(n) with polylog wiggle from dim rounding

    def test_cost_model_fields(self):
        model = columnsort_cost_model(1024)
        assert model["total_cost"] > model["sorter_cost"]
        assert model["time_unpipelined"] > model["time_pipelined"]


class TestColumnsortNetwork:
    """The non-multiplexed combinational columnsort network (§III-C end)."""

    def test_exhaustive_n16(self):
        assert verify_sorter_exhaustive(build_columnsort_network(16))

    def test_random_n64(self, rng):
        from repro.analysis import verify_netlist_random

        assert verify_netlist_random(build_columnsort_network(64), trials=128)

    def test_cost_n_lg2_class(self):
        """Paper: O(n lg^2 n) bit-level cost for the non-multiplexed
        network.  Normalizing by n lg^2 r (r the Batcher column height
        chosen for each n) must give a bounded, narrow band; normalizing
        by plain n must drift upward."""
        from repro.baselines.columnsort import choose_dims

        norm2, norm0 = [], []
        for n in (64, 256, 1024, 4096):
            cost = build_columnsort_network(n).cost()
            r, _ = choose_dims(n)
            lg_r = math.log2(r)
            norm2.append(cost / (n * lg_r * lg_r))
            norm0.append(cost / n)
        assert max(norm2) / min(norm2) < 1.6
        assert norm0[-1] / norm0[0] > 1.5  # clearly superlinear

    def test_time_multiplexing_saves_hardware(self):
        """The whole reason Model B exists: the TM version's hardware is
        a fraction of the combinational network's."""
        n = 256
        comb = build_columnsort_network(n).cost()
        tm = TimeMultiplexedColumnsort(n).cost()
        assert tm < comb / 2

    def test_explicit_dims(self):
        net = build_columnsort_network(16, 8, 2)
        assert verify_sorter_exhaustive(net)
        with pytest.raises(ValueError):
            build_columnsort_network(16, 8, None)
        with pytest.raises(ValueError):
            build_columnsort_network(18, 6, 3)  # invalid leighton dims


class TestMullerPreparata:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_muller_preparata_sorter(n))

    def test_linear_cost(self):
        costs = {n: build_muller_preparata_sorter(n).cost() for n in (64, 128, 256, 512)}
        assert loglog_slope(list(costs), list(costs.values())) < 1.2

    def test_logarithmic_depth(self):
        d = {n: build_muller_preparata_sorter(n).depth() for n in (64, 256, 1024)}
        # depth grows additively with lg n, not multiplicatively
        assert d[1024] - d[256] <= d[256] - d[64] + 4

    def test_cannot_carry_payloads(self):
        """Section I's distinction: the Boolean sorting circuit generates
        sorted bits but cannot move inputs — every output payload is
        NO_PAYLOAD, so it cannot serve as a concentrator."""
        net = build_muller_preparata_sorter(16)
        tags = np.random.default_rng(2).integers(0, 2, (4, 16)).astype(np.uint8)
        pays = np.tile(np.arange(16, dtype=np.int64), (4, 1))
        _, p = simulate_payload(net, tags, pays)
        assert np.all(p == NO_PAYLOAD)


class TestAKSModel:
    def test_depth_constant(self):
        m = AKSModel()
        assert m.depth(2 ** 20) == PATERSON_DEPTH_CONSTANT * 20

    def test_cost_relation(self):
        m = AKSModel()
        n = 2.0 ** 30
        assert m.cost(n) == pytest.approx(n / 2 * m.depth(n))

    def test_time_is_depth(self):
        m = AKSModel(1000.0)
        assert m.sorting_time(1024) == m.depth(1024)
