"""Tests for the equivalence checker and the cost-model registry."""

import math

import pytest

from repro.baselines.costmodels import SORTER_MODELS, TABLE2_ROWS
from repro.circuits import CircuitBuilder, equivalent, lower_to_gates, optimize
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.fish_sorter import FishSorter


class TestEquivalent:
    def test_self_equivalence(self):
        net = build_mux_merger_sorter(8)
        assert equivalent(net, net)

    def test_lowered_equivalence(self):
        net = build_mux_merger_sorter(8)
        assert equivalent(net, lower_to_gates(net))

    def test_optimized_equivalence(self):
        net = build_prefix_sorter(8)
        assert equivalent(net, optimize(net))

    def test_detects_difference(self):
        a = build_mux_merger_sorter(8)
        b = build_prefix_sorter(8)  # same function -> equivalent!
        assert equivalent(a, b)
        # different function: identity vs sorter
        builder = CircuitBuilder()
        ws = builder.add_inputs(8)
        ident = builder.build(list(ws))
        assert not equivalent(a, ident)

    def test_interface_mismatch(self):
        a = build_mux_merger_sorter(8)
        b = build_mux_merger_sorter(16)
        assert not equivalent(a, b)

    def test_wide_interface_random_path(self):
        a = build_mux_merger_sorter(32)
        b = build_prefix_sorter(32)
        assert equivalent(a, b)  # random + corner path (n > 14)


class TestSorterModels:
    @pytest.mark.parametrize("key", sorted(SORTER_MODELS))
    def test_models_positive_and_monotone(self, key):
        m = SORTER_MODELS[key]
        assert m.cost(64) > 0 and m.depth(64) > 0 and m.time(64) > 0
        assert m.cost(4096) > m.cost(64)
        assert m.name and m.cost_expr and m.source

    def test_fish_model_linear(self):
        m = SORTER_MODELS["fish"]
        assert m.cost(2 ** 20) / 2 ** 20 < 25

    def test_model_vs_measured_bounds(self):
        # claimed models upper-bound (or closely track) the measured costs
        assert build_mux_merger_sorter(256).cost() <= SORTER_MODELS[
            "mux_merger"
        ].cost(256)
        fish = FishSorter(256)
        assert fish.cost() <= SORTER_MODELS["fish"].cost(256) * 1.05


class TestTable2Rows:
    @pytest.mark.parametrize("key", sorted(TABLE2_ROWS))
    def test_rows_complete(self, key):
        r = TABLE2_ROWS[key]
        assert r.construction and r.cost_expr and r.time_expr
        assert r.cost(1024) > 0 and r.time(1024) > 0

    def test_this_paper_wins_cost_at_scale(self):
        n = 2.0 ** 20
        ours = TABLE2_ROWS["this_paper"].cost(n)
        for key, r in TABLE2_ROWS.items():
            if key != "this_paper":
                assert ours < r.cost(n), key

    def test_benes_fastest_depth_class(self):
        # Benes row: O(lg n) depth but slow routing; ours O(lg^3 n) both
        n = 2.0 ** 16
        assert TABLE2_ROWS["benes"].time(n) > TABLE2_ROWS["this_paper"].time(n)


class TestFishGroupSorterVariants:
    @pytest.mark.parametrize("kind", ["mux_merger", "prefix", "batcher"])
    def test_all_variants_sort(self, kind, rng):
        import numpy as np

        fs = FishSorter(64, group_sorter=kind)
        for _ in range(10):
            x = rng.integers(0, 2, 64).astype(np.uint8)
            out, _ = fs.sort(x)
            assert np.array_equal(out, np.sort(x))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown group sorter"):
            FishSorter(64, group_sorter="timsort")

    def test_batcher_group_crossover(self):
        """A finding the asymptotics hide: at practical group sizes
        (n/k = 128 here) Batcher's (lg^2 r)/4-constant sorter is
        *cheaper* than the 4 r lg r mux-merger — the mux-merger only
        wins for groups beyond r ~ 2^16.  The paper's choice is
        asymptotically right but not constant-optimal at small n."""
        import math

        default = FishSorter(1024).cost()
        batcher = FishSorter(1024, group_sorter="batcher").cost()
        assert batcher < default  # measured: Batcher group wins here
        # and the model crossover: 4 r lg r < r lg^2 r / 4  <=>  lg r > 16
        r = 2.0 ** 17
        assert 4 * r * math.log2(r) < r * math.log2(r) ** 2 / 4
