"""Unit tests for shuffle wirings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.components import (
    apply_indices,
    k_way_shuffle,
    k_way_shuffle_indices,
    k_way_unshuffle,
    k_way_unshuffle_indices,
    two_way_shuffle,
    two_way_unshuffle,
)


class TestTwoWay:
    def test_interleaves_halves(self):
        assert two_way_shuffle([0, 1, 2, 3, 4, 5, 6, 7]) == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_unshuffle_inverts(self):
        items = list("abcdefgh")
        assert two_way_unshuffle(two_way_shuffle(items)) == items

    def test_paper_example(self):
        # Example 1: Xu = 1111, XL = 0001 -> shuffle gives 10101011
        out = two_way_shuffle([1, 1, 1, 1, 0, 0, 0, 1])
        assert out == [1, 0, 1, 0, 1, 0, 1, 1]


class TestKWay:
    @pytest.mark.parametrize("n,k", [(8, 2), (8, 4), (16, 4), (12, 3), (16, 8)])
    def test_roundtrip(self, n, k):
        items = list(range(n))
        assert k_way_unshuffle(k_way_shuffle(items, k), k) == items

    def test_four_way_layout(self):
        # out[k*i + j] = block j element i
        out = k_way_shuffle(list(range(8)), 4)
        assert out == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_indices_inverse_composition(self):
        n, k = 16, 4
        fwd = k_way_shuffle_indices(n, k)
        inv = k_way_unshuffle_indices(n, k)
        assert apply_indices(apply_indices(list(range(n)), fwd), inv) == list(range(n))

    def test_two_way_equals_k2(self):
        items = list(range(10))
        assert two_way_shuffle(items) == k_way_shuffle(items, 2)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            k_way_shuffle(list(range(10)), 4)
        with pytest.raises(ValueError):
            k_way_shuffle(list(range(4)), 0)

    def test_apply_indices_length_mismatch(self):
        with pytest.raises(ValueError):
            apply_indices([1, 2], [0])


@given(st.integers(1, 5), st.integers(1, 5))
def test_property_shuffle_is_permutation(log_m, k_pow):
    k = 1 << (k_pow % 3 + 1)
    n = k * (1 << log_m)
    idx = k_way_shuffle_indices(n, k)
    assert sorted(idx) == list(range(n))


@given(st.lists(st.integers(), min_size=2, max_size=64).filter(lambda v: len(v) % 2 == 0))
def test_property_two_way_roundtrip(values):
    assert two_way_unshuffle(two_way_shuffle(values)) == values
