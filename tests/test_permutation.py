"""Unit tests for the radix permuter (Fig. 10, Table II)."""

import itertools

import numpy as np
import pytest

from repro.analysis import loglog_slope
from repro.networks.permutation import RadixPermuter, check_permutation


class TestRouting:
    def test_all_permutations_n4(self):
        rp = RadixPermuter(4, backend="mux_merger")
        pays = np.arange(4, dtype=np.int64) + 7
        for perm in itertools.permutations(range(4)):
            out, _ = rp.permute(list(perm), pays)
            assert check_permutation(perm, pays, out)

    @pytest.mark.parametrize("backend", ["mux_merger", "prefix"])
    def test_random_n16(self, backend, rng):
        rp = RadixPermuter(16, backend=backend)
        pays = np.arange(16, dtype=np.int64)
        for _ in range(30):
            perm = rng.permutation(16)
            out, rep = rp.permute(perm, pays)
            assert check_permutation(perm, pays, out)
            assert rep.backend == backend

    def test_fish_backend(self, rng):
        rp = RadixPermuter(32, backend="fish")
        pays = np.arange(32, dtype=np.int64)
        for _ in range(8):
            perm = rng.permutation(32)
            out, rep = rp.permute(perm, pays)
            assert check_permutation(perm, pays, out)
        assert rep.distributor_levels == 5

    def test_identity_and_rotation(self):
        rp = RadixPermuter(8, backend="mux_merger")
        pays = np.arange(8, dtype=np.int64)
        out, _ = rp.permute(list(range(8)), pays)
        assert np.array_equal(out, pays)
        rot = [(i + 1) % 8 for i in range(8)]
        out, _ = rp.permute(rot, pays)
        assert check_permutation(rot, pays, out)

    def test_invalid_inputs(self):
        rp = RadixPermuter(8, backend="mux_merger")
        with pytest.raises(ValueError):
            rp.permute([0, 1, 2, 3, 4, 5, 6, 6], np.arange(8))
        with pytest.raises(ValueError):
            rp.permute(list(range(8)), np.arange(4))
        with pytest.raises(ValueError):
            RadixPermuter(8, backend="bogus")
        with pytest.raises(ValueError):
            RadixPermuter(12)


class TestComplexityClaims:
    def test_fish_backend_cost_n_lg_n(self):
        # Table II: this paper's permuter is the O(n lg n)-cost one
        sizes = [64, 128, 256, 512]
        costs = [RadixPermuter(n, backend="fish").cost() for n in sizes]
        assert 1.0 < loglog_slope(sizes, costs) < 1.35

    def test_combinational_backend_costs_more(self):
        n = 256
        fish = RadixPermuter(n, backend="fish").cost()
        comb = RadixPermuter(n, backend="mux_merger").cost()
        assert fish < comb

    def test_routing_time_polylog(self):
        import math

        for n in (64, 256):
            rp = RadixPermuter(n, backend="fish")
            lg = math.log2(n)
            # paper: O(lg^3 n) routing time
            assert rp.routing_time() <= 8 * lg ** 3

    def test_gains_on_benes_bit_level_model(self):
        """Table II: ours is O(n lg n) vs Benes's O(n lg^2 n).  With our
        measured constants the ratio ours/Benes falls strictly with n
        (crossing 1 just past n = 4096)."""
        from repro.networks.benes import BenesNetwork

        ratios = [
            RadixPermuter(n, backend="fish").cost()
            / BenesNetwork.bit_level_cost_model(n)
            for n in (256, 1024, 4096)
        ]
        assert ratios[0] > ratios[1] > ratios[2]
        assert ratios[2] < 1.05


class TestCheckPermutation:
    def test_detects_misroute(self):
        perm = [1, 0, 2, 3]
        pays = np.array([10, 20, 30, 40])
        good = np.array([20, 10, 30, 40])
        bad = np.array([10, 20, 30, 40])
        assert check_permutation(perm, pays, good)
        assert not check_permutation(perm, pays, bad)
