"""Fault injection: the verifiers must catch broken networks.

A verification harness is only as good as its sensitivity.  These tests
mutate known-good netlists — swap a comparator's outputs, flip a swap
table entry, lie to the steering logic — and assert the exhaustive
verifier flags every mutant.  (A mutant that survives would mean our
"sorts everything" evidence was vacuous.)

Mutations go through the first-class fault-model layer
(:mod:`repro.circuits.faults`); see ``test_faults.py`` for the layer's
own unit tests and ``test_property_faults.py`` for the property-based
steering-wire coverage.
"""

import numpy as np
import pytest

from repro.analysis import verify_sorter_exhaustive
from repro.circuits import Netlist, OutputSwap, apply_fault, simulate
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.mux_merger import IN_SWAP_PERMS, OUT_SWAP_PERMS, build_mux_merger


def _mutate_comparator(net: Netlist, idx: int) -> Netlist:
    """Swap the outputs of the idx-th comparator (min/max exchanged)."""
    comparators = [
        i for i, e in enumerate(net.elements) if e.kind == "COMPARATOR"
    ]
    return apply_fault(net, OutputSwap(comparators[idx]))


class TestComparatorFaults:
    @pytest.mark.parametrize("builder", [build_mux_merger_sorter, build_prefix_sorter])
    def test_every_comparator_is_load_bearing(self, builder):
        net = builder(8)
        n_comp = sum(1 for e in net.elements if e.kind == "COMPARATOR")
        killed = 0
        for idx in range(n_comp):
            mutant = _mutate_comparator(net, idx)
            if not verify_sorter_exhaustive(mutant):
                killed += 1
        # a reversed comparator must break sorting (no redundancy in
        # these minimal constructions)
        assert killed == n_comp

    def test_mutant_detected_quickly_by_random_check(self, rng):
        from repro.analysis import verify_netlist_random

        net = build_mux_merger_sorter(32)
        mutant = _mutate_comparator(net, 3)
        assert verify_netlist_random(net, trials=64)
        assert not verify_netlist_random(mutant, trials=256)


class TestSwapTableFaults:
    def test_wrong_in_swap_case_breaks_merging(self):
        # misroute case 01 to case 00's pattern
        bad_in = (IN_SWAP_PERMS[0], IN_SWAP_PERMS[0]) + IN_SWAP_PERMS[2:]
        net = build_mux_merger(16, bad_in, OUT_SWAP_PERMS)
        from repro.core import sequences as seq

        broke = False
        for zu in range(9):
            for zl in range(9):
                x = np.concatenate(
                    [seq.sorted_sequence(8, zu), seq.sorted_sequence(8, zl)]
                )
                out = simulate(net, x[None, :])[0]
                if not seq.is_sorted_binary(out):
                    broke = True
        assert broke

    def test_wrong_out_swap_case_breaks_merging(self):
        bad_out = OUT_SWAP_PERMS[:3] + (OUT_SWAP_PERMS[0],)
        net = build_mux_merger(16, IN_SWAP_PERMS, bad_out)
        from repro.core import sequences as seq

        broke = False
        for zu in range(9):
            for zl in range(9):
                x = np.concatenate(
                    [seq.sorted_sequence(8, zu), seq.sorted_sequence(8, zl)]
                )
                out = simulate(net, x[None, :])[0]
                if not seq.is_sorted_binary(out):
                    broke = True
        assert broke


class TestStructuralFaults:
    def test_dropped_output_rewire_detected(self):
        # permute two outputs of a correct sorter: still a bijection of
        # wires, but no longer a sorter
        net = build_mux_merger_sorter(8)
        outs = list(net.outputs)
        outs[0], outs[4] = outs[4], outs[0]
        mutant = Netlist(
            net.n_wires, net.elements, net.inputs, outs, net.constants
        )
        assert not verify_sorter_exhaustive(mutant)

    def test_input_permutation_harmless(self):
        # permuting *inputs* of a sorter keeps it a sorter — the verifier
        # must NOT flag this (sanity check against over-sensitivity)
        net = build_mux_merger_sorter(8)
        ins = list(net.inputs)
        ins[0], ins[5] = ins[5], ins[0]
        variant = Netlist(
            net.n_wires, net.elements, ins, net.outputs, net.constants
        )
        assert verify_sorter_exhaustive(variant)
