"""Unit tests for swapping networks (Fig. 2, k-SWAP)."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, simulate
from repro.components import (
    four_way_swapper,
    k_swap,
    quarter_perm_from_cycles,
    two_way_swapper,
)


def _two_way(n):
    b = CircuitBuilder()
    ws = b.add_inputs(n)
    c = b.add_input()
    return b.build(two_way_swapper(b, ws, c))


class TestTwoWaySwapper:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_cost_and_depth(self, n):
        net = _two_way(n)
        assert net.cost() == n // 2  # paper: n/2 switches
        assert net.depth() == 1

    def test_control_zero_is_identity(self, rng):
        net = _two_way(8)
        vec = rng.integers(0, 2, 8).tolist()
        assert simulate(net, [vec + [0]])[0].tolist() == vec

    def test_control_one_swaps_halves(self, rng):
        net = _two_way(8)
        vec = rng.integers(0, 2, 8).tolist()
        out = simulate(net, [vec + [1]])[0].tolist()
        assert out == vec[4:] + vec[:4]

    def test_odd_width_rejected(self):
        b = CircuitBuilder()
        ws = b.add_inputs(5)
        c = b.add_input()
        with pytest.raises(ValueError):
            two_way_swapper(b, ws, c)


class TestQuarterPermFromCycles:
    def test_identity(self):
        assert quarter_perm_from_cycles() == (0, 1, 2, 3)

    def test_swap_23(self):
        # (23): quarter 2 -> position 3, quarter 3 -> position 2
        assert quarter_perm_from_cycles([2, 3]) == (0, 2, 1, 3)

    def test_three_cycle(self):
        # (234): 2->3, 3->4, 4->2
        perm = quarter_perm_from_cycles([2, 3, 4])
        # output position 2 (index 1) gets quarter 4 (index 3)
        assert perm == (0, 3, 1, 2)

    def test_double_transposition(self):
        assert quarter_perm_from_cycles([1, 3], [2, 4]) == (2, 3, 0, 1)

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ValueError):
            quarter_perm_from_cycles([1, 1])


class TestFourWaySwapper:
    PERMS = (
        (0, 1, 2, 3),
        (1, 0, 3, 2),
        (3, 2, 1, 0),
        (2, 3, 0, 1),
    )

    def _net(self, n):
        b = CircuitBuilder()
        ws = b.add_inputs(n)
        s1, s0 = b.add_inputs(2)
        return b.build(four_way_swapper(b, ws, s1, s0, self.PERMS))

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_cost_and_depth(self, n):
        net = self._net(n)
        assert net.cost() == n  # n/4 4x4 switches at cost 4 each
        assert net.depth() == 1

    @pytest.mark.parametrize("sel", [0, 1, 2, 3])
    def test_applies_quarter_permutation(self, sel, rng):
        n = 16
        net = self._net(n)
        vec = rng.integers(0, 2, n).tolist()
        out = simulate(net, [vec + [(sel >> 1) & 1, sel & 1]])[0].tolist()
        q = n // 4
        quarters = [vec[i * q : (i + 1) * q] for i in range(4)]
        expect = sum((quarters[self.PERMS[sel][i]] for i in range(4)), [])
        assert out == expect

    def test_needs_multiple_of_four(self):
        b = CircuitBuilder()
        ws = b.add_inputs(6)
        s1, s0 = b.add_inputs(2)
        with pytest.raises(ValueError):
            four_way_swapper(b, ws, s1, s0, self.PERMS)

    def test_needs_four_perms(self):
        b = CircuitBuilder()
        ws = b.add_inputs(8)
        s1, s0 = b.add_inputs(2)
        with pytest.raises(ValueError):
            four_way_swapper(b, ws, s1, s0, self.PERMS[:3])


class TestKSwap:
    def test_independent_block_controls(self, rng):
        n, k = 16, 4
        b = CircuitBuilder()
        ws = b.add_inputs(n)
        cs = b.add_inputs(k)
        net = b.build(k_swap(b, ws, cs))
        vec = rng.integers(0, 2, n).tolist()
        controls = [1, 0, 1, 0]
        out = simulate(net, [vec + controls])[0].tolist()
        m = n // k
        expect = []
        for i, c in enumerate(controls):
            block = vec[i * m : (i + 1) * m]
            expect.extend(block[m // 2 :] + block[: m // 2] if c else block)
        assert out == expect

    def test_cost(self):
        b = CircuitBuilder()
        ws = b.add_inputs(16)
        cs = b.add_inputs(4)
        net = b.build(k_swap(b, ws, cs))
        assert net.cost() == 8  # n/2
        assert net.depth() == 1

    def test_invalid_split_rejected(self):
        b = CircuitBuilder()
        ws = b.add_inputs(10)
        cs = b.add_inputs(4)
        with pytest.raises(ValueError):
            k_swap(b, ws, cs)
