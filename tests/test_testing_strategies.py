"""Tests for the public hypothesis strategies in repro.testing."""

import numpy as np
import pytest
from hypothesis import given

from repro import testing as rt
from repro.core import sequences as seq


@given(rt.binary_sequences(max_lg=5))
def test_binary_sequences_are_binary_pow2(x):
    assert x.dtype == np.uint8
    assert x.size & (x.size - 1) == 0
    assert set(np.unique(x)) <= {0, 1}


@given(rt.sorted_sequences(max_lg=6))
def test_sorted_sequences_sorted(x):
    assert seq.is_sorted_binary(x)


@given(rt.bisorted_sequences(max_lg=6))
def test_bisorted_sequences_bisorted(x):
    assert seq.is_bisorted(x)


@given(rt.k_sorted_sequences(k=4, max_lg_block=4))
def test_k_sorted_sequences(x):
    assert seq.is_k_sorted(x, 4)


@given(rt.clean_k_sorted_sequences(k=4, max_lg_block=4))
def test_clean_k_sorted_sequences(x):
    assert seq.is_clean_k_sorted(x, 4)


@given(rt.a_n_members(max_lg=7))
def test_a_n_members_in_A(x):
    assert seq.in_A(x)


@given(rt.a_n_members(min_lg=5, max_lg=7))
def test_a_n_strategy_reaches_large_n_cheaply(x):
    assert x.size >= 32


def test_invalid_k_rejected():
    with pytest.raises(ValueError):
        rt.k_sorted_sequences(k=3)
    with pytest.raises(ValueError):
        rt.clean_k_sorted_sequences(k=6)


@given(rt.a_n_members(max_lg=6))
def test_strategies_feed_the_theorems(x):
    """Round-trip: A_n members drawn from the strategy sort correctly
    through the patch-up oracle (Theorem 2 + Corollary machinery)."""
    from repro.core.patchup import patchup_behavioral

    out = patchup_behavioral(x)
    assert seq.is_sorted_binary(out)
    assert out.sum() == x.sum()
