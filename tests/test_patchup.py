"""Unit tests for the patch-up network (Network 1's adaptive merger)."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, simulate
from repro.components.prefix_adder import popcount
from repro.core import sequences as seq
from repro.core.patchup import (
    build_patchup_network,
    patchup_behavioral,
    patchup_network,
)


class TestBehavioral:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_sorts_all_A_n(self, n):
        for z in seq.enumerate_A(n):
            out = patchup_behavioral(z)
            assert seq.is_sorted_binary(out)
            assert out.sum() == z.sum()

    def test_single_element(self):
        assert patchup_behavioral(np.array([1], dtype=np.uint8)).tolist() == [1]


class TestNetlist:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_sorts_all_A_n(self, n):
        net = build_patchup_network(n)
        for z in seq.enumerate_A(n):
            out = simulate(net, z[None, :])[0]
            assert seq.is_sorted_binary(out), z
            assert out.sum() == z.sum()

    def test_matches_behavioral(self):
        net = build_patchup_network(16)
        for z in seq.enumerate_A(16)[::11]:
            out = simulate(net, z[None, :])[0]
            assert np.array_equal(out, patchup_behavioral(z))

    def test_count_width_validated(self):
        b = CircuitBuilder()
        ws = b.add_inputs(8)
        cnt = b.add_inputs(3)  # needs lg 8 + 1 = 4 bits
        with pytest.raises(ValueError, match="count bits"):
            patchup_network(b, ws, cnt)

    def test_switching_cost_recurrence(self):
        """Switching cost (comparators + swapper switches) is exactly
        C_p(n) = 3n/2 + C_p(n/2), C_p(2) = 1 — the paper's eq. (3); the
        steering logic adds one OR gate per level on top."""
        for n in (4, 8, 16, 32, 64):
            b = CircuitBuilder()
            ws = b.add_inputs(n)
            cnt = b.add_inputs(n.bit_length())  # count fed externally
            net = b.build(patchup_network(b, ws, cnt))
            kinds = net.cost_by_kind()
            switching = kinds.get("COMPARATOR", 0) + kinds.get("SWITCH2", 0)

            def cp(m):
                return 1 if m == 2 else 3 * m // 2 + cp(m // 2)

            assert switching == cp(n)
            lg = n.bit_length() - 1
            # one OR steering gate per level above the base
            assert kinds.get("OR", 0) == lg - 1

    def test_cp_bound_3n(self):
        # paper: C_p(n) <= 3n
        for n in (4, 16, 64, 256):
            net = build_patchup_network(n)
            kinds = net.cost_by_kind()
            switching = kinds.get("COMPARATOR", 0) + kinds.get("SWITCH2", 0)
            assert switching <= 3 * n

    def test_depth_recurrence(self):
        # D_p(n) = 3 + D_p(n/2) for the switching path; measured depth
        # also includes the popcount front end of the standalone build
        d = {}
        for n in (4, 8, 16, 32):
            b = CircuitBuilder()
            ws = b.add_inputs(n)
            cnt = b.add_inputs(n.bit_length())
            out = patchup_network(b, ws, cnt)
            d[n] = b.build(out).depth()
        assert d[8] - d[4] == 3
        assert d[16] - d[8] == 3
        assert d[32] - d[16] == 3


class TestCountSteering:
    """The bit-rewire rule: child count = count with the top two bits
    collapsed; select = OR of the top two bits."""

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_rewire_equals_arithmetic(self, n):
        lg = n.bit_length() - 1
        for count in range(n + 1):
            bits = [(count >> i) & 1 for i in range(lg + 1)]
            select = bits[lg] | bits[lg - 1]
            assert select == (count >= n // 2)
            child_bits = bits[: lg - 1] + [bits[lg]]
            child = sum(b << i for i, b in enumerate(child_bits))
            assert child == (count - n // 2 if count >= n // 2 else count)

    def test_wrong_count_gives_wrong_sort(self):
        """Feeding an inconsistent count breaks sorting — evidence the
        steering is load-bearing, not decorative."""
        n = 8
        b = CircuitBuilder()
        ws = b.add_inputs(n)
        cnt = b.add_inputs(4)
        net = b.build(patchup_network(b, ws, cnt))
        z = np.array([1, 0, 1, 0, 1, 0, 1, 1], dtype=np.uint8)  # 5 ones
        good = simulate(net, [z.tolist() + [1, 0, 1, 0]])[0]  # count=5
        assert seq.is_sorted_binary(good)
        bad = simulate(net, [z.tolist() + [1, 0, 0, 0]])[0]  # count=1 (lie)
        assert not seq.is_sorted_binary(bad)
