"""Unit tests for the k-way machinery (k-SWAP, clean sorter, k-way merger)."""

import itertools

import numpy as np
import pytest

from repro.circuits import simulate
from repro.core import sequences as seq
from repro.core.kway import CleanSorter, KWayMuxMerger, build_k_swap


class TestBuildKSwap:
    def test_cost_depth(self):
        net = build_k_swap(16, 4)
        assert net.cost() == 8  # n/2 switches
        assert net.depth() == 1

    def test_rejects_odd_blocks(self):
        with pytest.raises(ValueError):
            build_k_swap(12, 4)  # block size 3 is odd

    def test_layout_collects_clean_halves_on_top(self):
        # blocks 01, 11: block 0 middle bit 1 -> swap; block 1 middle 1 -> swap
        net = build_k_swap(4, 2)
        out = simulate(net, [[0, 1, 1, 1]])[0].tolist()
        # block 0 = [0,1]: mid=1 -> lower half (1) clean, swaps up
        # block 1 = [1,1]: mid=1 -> swaps (identical halves)
        assert out == [1, 1, 0, 1]


class TestCleanSorter:
    def test_exhaustive_clean_k_sorted(self):
        cs = CleanSorter(8, 4)
        for combo in itertools.product([0, 1], repeat=4):
            x = np.repeat(np.array(combo, dtype=np.uint8), 2)
            out, pays, t = cs.sort(x)
            assert seq.is_sorted_binary(out)
            assert out.sum() == x.sum()
            assert pays is None

    def test_payload_blocks_move_together(self):
        cs = CleanSorter(8, 4)
        x = np.array([1, 1, 0, 0, 1, 1, 0, 0], dtype=np.uint8)
        pays = np.arange(8, dtype=np.int64)
        out, out_pays, _ = cs.sort(x, payloads=pays)
        assert seq.is_sorted_binary(out)
        # blocks (01), (23), (45), (67) must stay contiguous
        got_blocks = {tuple(out_pays[i : i + 2].tolist()) for i in range(0, 8, 2)}
        assert got_blocks == {(2, 3), (6, 7), (0, 1), (4, 5)}
        # zero blocks first
        assert out.tolist() == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_dispatch_order_is_permutation(self, rng):
        cs = CleanSorter(16, 4)
        for _ in range(20):
            x = seq.random_clean_k_sorted(16, 4, rng)
            order = cs.dispatch_order(x)
            assert sorted(order) == list(range(4))

    def test_timing_pipelined_faster(self):
        cs = CleanSorter(32, 4)
        x = np.repeat(np.array([1, 0, 1, 0], dtype=np.uint8), 8)
        _, _, t_seq = cs.sort(x)
        _, _, t_pipe = cs.sort(x, pipelined=True)
        assert t_pipe < t_seq

    def test_start_offset_respected(self):
        cs = CleanSorter(8, 4)
        x = np.zeros(8, dtype=np.uint8)
        _, _, t0 = cs.sort(x, start=0)
        _, _, t100 = cs.sort(x, start=100)
        assert t100 == t0 + 100

    def test_inventory_components(self):
        cs = CleanSorter(16, 4)
        labels = [p.label for p in cs.inventory()]
        assert any("key-sorter" in l for l in labels)
        assert any("mux" in l for l in labels)
        assert any("demux" in l for l in labels)
        assert cs.cost() == sum(p.cost for p in cs.inventory())

    def test_wrong_length_rejected(self):
        cs = CleanSorter(8, 4)
        with pytest.raises(ValueError):
            cs.sort(np.zeros(6, dtype=np.uint8))


class TestKWayMuxMerger:
    @pytest.mark.parametrize("n,k", [(8, 2), (16, 4), (32, 4), (64, 8)])
    def test_merges_random_k_sorted(self, n, k, rng):
        m = KWayMuxMerger(n, k)
        for _ in range(40):
            x = seq.random_k_sorted(n, k, rng)
            out, pays, t = m.merge(x)
            assert seq.is_sorted_binary(out)
            assert out.sum() == x.sum()

    def test_exhaustive_small(self):
        # every 2-sorted sequence of length 8
        m = KWayMuxMerger(8, 2)
        for zu in range(5):
            for zl in range(5):
                x = np.concatenate(
                    [seq.sorted_sequence(4, zu), seq.sorted_sequence(4, zl)]
                )
                out, _, _ = m.merge(x)
                assert seq.is_sorted_binary(out)

    def test_fig8_example(self):
        # Fig. 8 runs 1111/0001/0011/0111 through the 16-input 4-way merger
        m = KWayMuxMerger(16, 4)
        x = np.array([1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 1], dtype=np.uint8)
        out, _, _ = m.merge(x)
        assert out.tolist() == [0] * 6 + [1] * 10

    def test_payload_carry(self, rng):
        m = KWayMuxMerger(16, 4)
        for _ in range(20):
            x = seq.random_k_sorted(16, 4, rng)
            pays = np.arange(16, dtype=np.int64) + 50
            out, out_pays, _ = m.merge(x, payloads=pays)
            assert sorted(out_pays.tolist()) == sorted(pays.tolist())
            orig = {int(p): int(t) for p, t in zip(pays, x)}
            assert all(orig[int(p)] == int(t) for t, p in zip(out, out_pays))

    def test_base_case_is_k_input_sorter(self):
        # merging a k-sorted sequence of length k = sorting k bits
        m = KWayMuxMerger(4, 4)
        for bits in itertools.product([0, 1], repeat=4):
            out, _, _ = m.merge(np.array(bits, dtype=np.uint8))
            assert out.tolist() == sorted(bits)

    def test_validation(self):
        with pytest.raises(ValueError):
            KWayMuxMerger(16, 3)  # k not a power of two
        with pytest.raises(ValueError):
            KWayMuxMerger(16, 1)
        with pytest.raises(ValueError):
            KWayMuxMerger(12, 4)  # n not a power of two
        m = KWayMuxMerger(16, 4)
        with pytest.raises(ValueError):
            m.merge(np.zeros(8, dtype=np.uint8))

    def test_cost_inventory_consistent(self):
        m = KWayMuxMerger(64, 4)
        assert m.cost() == sum(p.cost for p in m.inventory())

    def test_cost_scales_linearly_in_n(self):
        # the whole point: merger cost is O(n) for fixed k
        c1 = KWayMuxMerger(256, 4).cost()
        c2 = KWayMuxMerger(512, 4).cost()
        assert c2 / c1 < 2.2

    def test_timing_parallel_branch_join(self):
        # finishing time must dominate both the clean sorter and the
        # recursive branch: monotone in n
        t16 = KWayMuxMerger(16, 4).merge(np.zeros(16, dtype=np.uint8))[2]
        t64 = KWayMuxMerger(64, 4).merge(np.zeros(64, dtype=np.uint8))[2]
        assert t64 > t16
