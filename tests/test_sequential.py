"""Unit tests for Model B machinery: timelines, levelization, pipelining."""

import numpy as np
import pytest

from repro.circuits import (
    CircuitBuilder,
    PipelinedNetlist,
    Timeline,
    levelize,
    run_pipelined,
    run_time_multiplexed,
    simulate,
)
from repro.core import build_mux_merger_sorter


class TestTimeline:
    def test_advance_accumulates(self):
        t = Timeline()
        assert t.advance(5, "a") == 5
        assert t.advance(3, "b") == 8
        assert t.now == 8

    def test_advance_to_joins(self):
        t = Timeline()
        t.advance(5, "a")
        assert t.advance_to(9, "join") == 9
        assert t.advance_to(4, "noop") == 9  # already past

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().advance(-1, "x")

    def test_breakdown(self):
        t = Timeline()
        t.advance(2, "sort")
        t.advance(3, "merge")
        t.advance(4, "sort")
        assert t.breakdown() == {"sort": 6, "merge": 3}

    def test_segments_record_start(self):
        t = Timeline()
        t.advance(2, "a")
        t.advance(3, "b")
        assert t.segments[1].start == 2
        assert t.segments[1].end == 5


class TestLevelize:
    def test_chain_levels(self):
        b = CircuitBuilder()
        x = b.add_input()
        y = b.not_(b.not_(x))
        net = b.build([y])
        lv = levelize(net)
        assert lv.n_levels == 2
        assert lv.wire_levels[net.outputs[0]] == 2

    def test_balance_registers_counted(self):
        # x feeds both a depth-3 chain and directly the final AND:
        # the direct wire must be delayed 2 extra stages
        b = CircuitBuilder()
        x = b.add_input()
        chain = b.not_(b.not_(b.not_(x)))
        out = b.and_(x, chain)
        net = b.build([out])
        lv = levelize(net)
        assert lv.n_levels == 4
        assert lv.balance_registers >= 2


class TestPipelinedNetlist:
    def _random_net(self, rng, n_inputs=6, n_elems=25):
        b = CircuitBuilder()
        wires = list(b.add_inputs(n_inputs))
        for _ in range(n_elems):
            op = rng.integers(0, 5)
            a = wires[rng.integers(0, len(wires))]
            c = wires[rng.integers(0, len(wires))]
            if op == 0:
                wires.append(b.and_(a, c))
            elif op == 1:
                wires.append(b.or_(a, c))
            elif op == 2:
                wires.append(b.xor(a, c))
            elif op == 3:
                wires.extend(b.comparator(a, c))
            else:
                d = wires[rng.integers(0, len(wires))]
                wires.extend(b.switch2(a, c, d))
        outs = [wires[i] for i in rng.integers(0, len(wires), size=4)]
        return b.build(outs)

    def test_matches_combinational_on_random_circuits(self, rng):
        for _ in range(10):
            net = self._random_net(rng)
            pl = PipelinedNetlist(net)
            batch = rng.integers(0, 2, (8, len(net.inputs))).astype(np.uint8)
            expect = simulate(net, batch)
            outs, cycles = pl.run([row.tolist() for row in batch])
            assert np.array_equal(np.array(outs, dtype=np.uint8), expect)
            assert cycles == len(batch) - 1 + pl.latency

    def test_latency_equals_depth(self):
        net = build_mux_merger_sorter(8)
        pl = PipelinedNetlist(net)
        assert pl.latency == net.depth()

    def test_streaming_order_preserved(self):
        net = build_mux_merger_sorter(8)
        pl = PipelinedNetlist(net)
        batches = [
            [1, 0, 0, 0, 0, 0, 0, 0],
            [1, 1, 1, 0, 0, 0, 0, 0],
            [1, 1, 1, 1, 1, 1, 1, 0],
        ]
        outs, _ = pl.run(batches)
        for vec, out in zip(batches, outs):
            assert out == sorted(vec)

    def test_bubbles_return_none(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.not_(x)])
        pl = PipelinedNetlist(net)
        assert pl.step([1]) is None  # filling
        assert pl.step(None) == [0]  # first result emerges
        assert pl.step([0]) is None  # bubble slot propagates
        assert pl.step(None) == [1]

    def test_handles_depth_zero_buffers(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build([b.buf(x), b.and_(b.buf(x), y)])
        pl = PipelinedNetlist(net)
        outs, _ = pl.run([[1, 1], [1, 0]])
        assert outs == [[1, 1], [1, 0]]

    def test_constants_flow(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.and_(b.not_(x), b.const(1))])
        pl = PipelinedNetlist(net)
        outs, _ = pl.run([[0], [1]])
        assert outs == [[1], [0]]

    def test_wrong_width_rejected(self):
        net = build_mux_merger_sorter(8)
        pl = PipelinedNetlist(net)
        with pytest.raises(ValueError):
            pl.step([1, 0])


class TestRunHelpers:
    def test_time_multiplexed_charges_k_times_depth(self):
        net = build_mux_merger_sorter(8)
        t = Timeline()
        groups = [[1, 0, 1, 0, 1, 0, 1, 0]] * 3
        outs = run_time_multiplexed(net, groups, t)
        assert len(outs) == 3
        assert t.now == 3 * net.depth()
        assert all(o.tolist() == sorted(groups[0]) for o in outs)

    def test_pipelined_charges_makespan(self):
        net = build_mux_merger_sorter(8)
        t = Timeline()
        groups = [[1, 1, 0, 0, 1, 0, 1, 0]] * 5
        outs = run_pipelined(net, groups, t)
        assert len(outs) == 5
        assert t.now == 4 + net.depth()

    def test_pipelined_empty(self):
        net = build_mux_merger_sorter(8)
        assert run_pipelined(net, []) == []

    def test_pipelined_matches_register_machine(self, rng):
        net = build_mux_merger_sorter(8)
        groups = rng.integers(0, 2, (6, 8)).astype(np.uint8)
        fast = run_pipelined(net, [g.tolist() for g in groups])
        slow, _ = PipelinedNetlist(net).run([g.tolist() for g in groups])
        assert [o.tolist() for o in fast] == slow
