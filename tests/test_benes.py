"""Unit tests for the Benes network baseline."""

import itertools

import numpy as np
import pytest

from repro.networks.benes import BenesNetwork, benes_depth, benes_switch_count


class TestStructure:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_switch_count(self, n):
        assert BenesNetwork(n).cost() == benes_switch_count(n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_depth(self, n):
        assert BenesNetwork(n).depth() == benes_depth(n)

    def test_formulas(self):
        assert benes_switch_count(8) == 8 * 3 - 4
        assert benes_depth(8) == 5

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BenesNetwork(6)


class TestRouting:
    def test_all_permutations_n4(self):
        bn = BenesNetwork(4)
        pays = np.arange(4, dtype=np.int64) + 1
        for perm in itertools.permutations(range(4)):
            out = bn.permute(perm, pays)
            assert all(out[perm[i]] == pays[i] for i in range(4))

    def test_all_permutations_n8_sampled(self, rng):
        bn = BenesNetwork(8)
        pays = np.arange(8, dtype=np.int64)
        perms = list(itertools.permutations(range(8)))
        for idx in rng.integers(0, len(perms), 200):
            perm = perms[idx]
            out = bn.permute(perm, pays)
            assert all(out[perm[i]] == pays[i] for i in range(8))

    @pytest.mark.parametrize("n", [16, 32, 128])
    def test_random_perms_large(self, n, rng):
        bn = BenesNetwork(n)
        pays = np.arange(n, dtype=np.int64)
        for _ in range(10):
            perm = rng.permutation(n)
            out = bn.permute(perm, pays)
            assert all(out[perm[i]] == pays[i] for i in range(n))

    def test_identity_and_reversal(self):
        bn = BenesNetwork(8)
        pays = np.arange(8, dtype=np.int64)
        assert np.array_equal(bn.permute(list(range(8)), pays), pays)
        rev = list(reversed(range(8)))
        out = bn.permute(rev, pays)
        assert np.array_equal(out, pays[::-1])

    def test_settings_length(self):
        bn = BenesNetwork(16)
        assert len(bn.route(list(range(16)))) == benes_switch_count(16)

    def test_invalid_perm_rejected(self):
        bn = BenesNetwork(4)
        with pytest.raises(ValueError):
            bn.route([0, 0, 1, 2])
        with pytest.raises(ValueError):
            bn.permute([0, 1, 2, 3], np.arange(3))

    def test_models(self):
        assert BenesNetwork.bit_level_cost_model(1024) == 1024 * 100
        assert BenesNetwork.parallel_routing_time_model(1024) > 0
