"""Unit tests for the statistical-multiplexer application."""

import numpy as np
import pytest

from repro.networks.fabric import MuxStats, Packet, StatisticalMultiplexer


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticalMultiplexer(16, 0)
        with pytest.raises(ValueError):
            StatisticalMultiplexer(16, 17)
        with pytest.raises(ValueError):
            StatisticalMultiplexer(16, 8, queue_capacity=0)

    def test_backends(self):
        for backend in ("mux_merger", "prefix", "fish"):
            mux = StatisticalMultiplexer(16, 8, backend=backend)
            assert mux.fabric_cost > 0


class TestStep:
    def test_single_packet_forwarded(self):
        mux = StatisticalMultiplexer(8, 4)
        stats = MuxStats()
        arrivals = np.zeros(8, dtype=np.uint8)
        arrivals[3] = 1
        forwarded = mux.step(arrivals, now=0, stats=stats)
        stats.cycles = 1
        assert len(forwarded) == 1
        assert stats.forwarded == 1 and stats.arrivals == 1
        assert stats.mean_delay == 0.0

    def test_capacity_limits_per_cycle_grants(self):
        mux = StatisticalMultiplexer(8, 2)
        stats = MuxStats()
        forwarded = mux.step(np.ones(8, dtype=np.uint8), now=0, stats=stats)
        assert len(forwarded) == 2  # trunk capacity m = 2
        # the rest stay queued, not dropped
        assert stats.dropped == 0
        assert sum(len(q) for q in mux.queues) == 6

    def test_oldest_first_admission(self):
        mux = StatisticalMultiplexer(4, 1)
        stats = MuxStats()
        a = np.array([1, 0, 0, 0], dtype=np.uint8)
        mux.step(a, now=0, stats=stats)  # input 0's packet arrives t=0... and leaves
        # refill input 0 at t=1 and input 1 at t=1; input 0 forwarded at t=0
        mux.step(np.array([1, 1, 0, 0], dtype=np.uint8), now=1, stats=stats)
        # at t=2, two head packets both arrived t=1: tie broken by index;
        # but make input 1's head strictly older by delaying:
        forwarded = mux.step(np.zeros(4, dtype=np.uint8), now=2, stats=stats)
        assert len(forwarded) == 1

    def test_queue_overflow_drops(self):
        mux = StatisticalMultiplexer(4, 1, queue_capacity=2)
        stats = MuxStats()
        for t in range(6):
            mux.step(np.array([1, 1, 1, 1], dtype=np.uint8), now=t, stats=stats)
        assert stats.dropped > 0
        assert all(len(q) <= 2 for q in mux.queues)

    def test_wrong_arrival_width(self):
        mux = StatisticalMultiplexer(8, 4)
        with pytest.raises(ValueError):
            mux.step(np.zeros(4, dtype=np.uint8), 0, MuxStats())


class TestRun:
    def test_low_load_lossless(self, rng):
        mux = StatisticalMultiplexer(16, 8)
        stats = mux.run(100, load=0.2, rng=rng)
        assert stats.loss_rate == 0.0
        assert stats.forwarded + stats.backlog == stats.arrivals

    def test_overload_saturates_at_m(self, rng):
        mux = StatisticalMultiplexer(16, 4, queue_capacity=2)
        stats = mux.run(100, load=1.0, rng=rng)
        assert stats.throughput <= 4.0 + 1e-9
        assert stats.throughput > 3.5  # fully utilized trunks
        assert stats.loss_rate > 0.3

    def test_conservation(self, rng):
        mux = StatisticalMultiplexer(8, 4, queue_capacity=4)
        stats = mux.run(60, load=0.7, rng=rng)
        assert stats.arrivals == stats.forwarded + stats.dropped + stats.backlog

    def test_fish_backend_agrees_on_throughput(self):
        a = StatisticalMultiplexer(16, 4, backend="mux_merger")
        b = StatisticalMultiplexer(16, 4, backend="fish")
        sa = a.run(40, 0.8, np.random.default_rng(5))
        sb = b.run(40, 0.8, np.random.default_rng(5))
        # identical arrival streams + deterministic policy = identical stats
        assert sa.forwarded == sb.forwarded
        assert sa.dropped == sb.dropped

    def test_delay_grows_with_load(self, rng):
        light = StatisticalMultiplexer(16, 4).run(80, 0.15, np.random.default_rng(6))
        heavy = StatisticalMultiplexer(16, 4).run(80, 0.5, np.random.default_rng(6))
        assert heavy.mean_delay >= light.mean_delay
