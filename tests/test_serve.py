"""Property and end-to-end tests for the serving front-end (repro.serve).

The four ISSUE-mandated properties, plus service correctness:

* **no starvation** — every lane the coalescer accepts is flushed no
  later than ``max_delay_s`` after it arrived (age bound), for arbitrary
  arrival schedules (hypothesis drives a virtual clock);
* **lane bounds** — every flushed batch has ``1 <= lanes <= max_lanes``
  and one single width;
* **credits never negative** — the gate's available count stays within
  ``[0, capacity]`` under any acquire/release interleaving, and
  over-release raises instead of corrupting the pool;
* **deterministic shed** — replaying a seeded overload schedule yields
  byte-identical shed decisions.

End-to-end: every accepted sort/concentrate/route answer is checked
against ground truth (``np.sort`` / stable argsort), sheds appear under
a starved credit pool, and the obs registry exposes the serve metrics.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import BuildError
from repro.serve import (
    BatchCoalescer,
    CreditGate,
    FabricExecutor,
    Lane,
    ServeConfig,
    SortingService,
    concentrate_request,
    lanes_for,
    route_request,
    serve_requests,
    sort_request,
)

seeds = st.integers(0, 2**31 - 1)


def _lane(width: int, rng: np.random.Generator) -> Lane:
    return Lane(width=width, bits=rng.integers(0, 2, width).astype(np.uint8))


# ---------------------------------------------------------------------------
# Coalescer properties
# ---------------------------------------------------------------------------


class TestCoalescer:
    @given(
        seed=seeds,
        max_lanes=st.integers(1, 32),
        n_events=st.integers(1, 120),
    )
    @settings(max_examples=60)
    def test_no_starvation_and_lane_bounds(self, seed, max_lanes, n_events):
        """Age bound: a lane is never held past max_delay_s; every flush
        respects [1, max_lanes] and is single-width."""
        rng = np.random.default_rng(seed)
        delay = 1.0
        co = BatchCoalescer(max_lanes=max_lanes, max_delay_s=delay)
        now = 0.0
        enqueued = {}  # id(lane) -> enqueue time
        flushed = {}  # id(lane) -> flush time

        def account(batches):
            assert isinstance(batches, list)
            for batch in batches:
                assert 1 <= len(batch) <= max_lanes
                assert all(lane.width == batch.width for lane in batch.lanes)
                assert batch.rows().shape == (len(batch), batch.width)
                for lane in batch.lanes:
                    flushed[id(lane)] = now

        for _ in range(n_events):
            now += float(rng.uniform(0, 0.6))
            # The service's loop shape: poll ages before admitting more.
            account(co.poll(now))
            lane = _lane(int(rng.choice([4, 8, 16])), rng)
            enqueued[id(lane)] = now
            account(co.add(lane, now))
        # Keep polling on the same cadence until everything has aged out.
        end = now + delay + 0.6
        while now < end and co.depth:
            now += 0.3
            account(co.poll(now))
        account(co.drain(now))

        assert co.depth == 0
        assert set(flushed) == set(enqueued)
        # A lane flushes at the first poll after its age bound; polls above
        # are never more than 0.6 apart, so that is the starvation slack.
        slack = 0.6 + 1e-9
        for key, t0 in enqueued.items():
            assert flushed[key] - t0 <= delay + slack

    @given(seed=seeds, max_lanes=st.integers(1, 16))
    @settings(max_examples=40)
    def test_full_bucket_flushes_immediately(self, seed, max_lanes):
        rng = np.random.default_rng(seed)
        co = BatchCoalescer(max_lanes=max_lanes, max_delay_s=1e9)
        for i in range(max_lanes - 1):
            assert co.add(_lane(8, rng), float(i)) == []
        (batch,) = co.add(_lane(8, rng), float(max_lanes))
        assert len(batch) == max_lanes
        assert batch.reason == "full"
        assert batch.fill == pytest.approx(1.0)
        assert co.depth == 0

    def test_next_deadline_tracks_oldest_lane(self):
        rng = np.random.default_rng(0)
        co = BatchCoalescer(max_lanes=8, max_delay_s=0.5)
        assert co.next_deadline() is None
        co.add(_lane(4, rng), 10.0)
        co.add(_lane(16, rng), 11.0)
        assert co.next_deadline() == pytest.approx(10.5)
        assert co.poll(10.4) == []
        batches = co.poll(10.5)
        assert [b.width for b in batches] == [4]
        assert co.next_deadline() == pytest.approx(11.5)

    def test_widths_never_mix(self):
        rng = np.random.default_rng(1)
        co = BatchCoalescer(max_lanes=64, max_delay_s=0.0)
        for width in (4, 8, 4, 16, 8):
            co.add(_lane(width, rng), 0.0)
        batches = co.poll(0.0)
        assert sorted(len(b) for b in batches) == [1, 2, 2]
        for batch in batches:
            assert len({lane.width for lane in batch.lanes}) == 1

    def test_rejects_bad_lane_and_config(self):
        with pytest.raises(BuildError):
            BatchCoalescer(max_lanes=0)
        with pytest.raises(BuildError):
            BatchCoalescer(max_delay_s=-1.0)
        co = BatchCoalescer()
        with pytest.raises(BuildError):
            co.add(Lane(width=8, bits=np.zeros(4, dtype=np.uint8)), 0.0)


# ---------------------------------------------------------------------------
# Admission-control properties
# ---------------------------------------------------------------------------


class TestCreditGate:
    @given(
        seed=seeds,
        capacity=st.integers(1, 64),
        n_ops=st.integers(1, 300),
    )
    @settings(max_examples=80)
    def test_credits_bounded_forever(self, seed, capacity, n_ops):
        """0 <= available <= capacity after any acquire/release schedule,
        and accounting identities hold exactly."""
        rng = np.random.default_rng(seed)
        gate = CreditGate(capacity)
        held = []  # lane counts we still owe back
        for _ in range(n_ops):
            if held and rng.random() < 0.4:
                gate.release(held.pop())
            else:
                lanes = int(rng.integers(1, capacity + 1))
                if gate.try_acquire(lanes):
                    held.append(lanes)
            snap = gate.snapshot()
            assert 0 <= snap["available"] <= capacity
            assert snap["in_flight"] == sum(held)
            assert snap["available"] + snap["in_flight"] == capacity
        for lanes in held:
            gate.release(lanes)
        assert gate.available == capacity

    def test_over_release_raises(self):
        gate = CreditGate(4)
        assert gate.try_acquire(3)
        gate.release(3)
        with pytest.raises(BuildError):
            gate.release(1)
        assert gate.available == 4  # pool uncorrupted

    def test_oversized_request_refused_loudly(self):
        gate = CreditGate(4)
        with pytest.raises(BuildError):
            gate.try_acquire(5)
        with pytest.raises(BuildError):
            gate.try_acquire(0)

    @given(seed=seeds)
    @settings(max_examples=30)
    def test_shed_decisions_deterministic(self, seed):
        """The same seeded overload schedule sheds the same requests —
        the gate is a pure function of its call sequence."""

        def run_schedule():
            rng = np.random.default_rng(seed)
            gate = CreditGate(16)
            decisions = []
            held = []
            for _ in range(200):
                lanes = int(rng.integers(1, 9))
                ok = gate.try_acquire(lanes)
                decisions.append(ok)
                if ok:
                    held.append(lanes)
                # Releases also come from the seeded stream, so the whole
                # schedule (not just arrivals) is reproducible.
                if held and rng.random() < 0.25:
                    gate.release(held.pop(0))
            return decisions, gate.snapshot()

        first, snap1 = run_schedule()
        second, snap2 = run_schedule()
        assert first == second
        assert snap1 == snap2
        assert not all(first)  # the schedule genuinely oversubscribes


# ---------------------------------------------------------------------------
# Executor: checked batches, recovery never lies
# ---------------------------------------------------------------------------


class TestFabricExecutor:
    def test_batch_rows_all_sorted(self, rng):
        ex = FabricExecutor("mux_merger")
        rows = rng.integers(0, 2, (70, 16)).astype(np.uint8)
        out = ex.run_batch(16, rows)
        assert np.array_equal(out.data, np.sort(rows, axis=1))
        assert out.accepted.all()
        assert out.recovered == 0
        assert out.lanes == 70

    def test_rejects_fish_and_bad_width(self):
        with pytest.raises(BuildError):
            FabricExecutor("fish")
        with pytest.raises(BuildError):
            FabricExecutor("no_such_net")
        ex = FabricExecutor()
        with pytest.raises(BuildError):
            ex.checked(12)  # not a power of two

    def test_pad_width(self):
        ex = FabricExecutor()
        assert ex.pad_width(1) == 2
        assert ex.pad_width(5) == 8
        assert ex.pad_width(64) == 64


# ---------------------------------------------------------------------------
# Service end-to-end
# ---------------------------------------------------------------------------


def _small_config(**kw) -> ServeConfig:
    base = dict(max_lanes=16, max_delay_s=0.001, credits=64)
    base.update(kw)
    return ServeConfig(**base)


class TestServiceEndToEnd:
    def test_sort_concentrate_route_all_verified(self, rng):
        requests, truths = [], []
        for _ in range(12):
            bits = rng.integers(0, 2, int(rng.integers(3, 20)))
            requests.append(sort_request(bits))
            truths.append(("sort", np.sort(bits)))
        for _ in range(6):
            mask = rng.integers(0, 2, int(rng.integers(2, 16)))
            requests.append(concentrate_request(mask))
            truths.append(("concentrate", mask))
        for _ in range(6):
            perm = rng.permutation(16)
            requests.append(route_request(perm))
            truths.append(("route", perm))

        responses = serve_requests(requests, _small_config())
        assert len(responses) == len(requests)
        for resp, (kind, truth) in zip(responses, truths):
            assert resp.ok, resp.error
            assert resp.kind == kind
            if kind == "sort":
                assert np.array_equal(resp.result, truth)
            elif kind == "concentrate":
                k = int(truth.sum())
                assert resp.granted == k
                assert resp.result[:k].all() and not resp.result[k:].any()
            else:  # route: result[j] is the source reaching output j
                assert np.array_equal(truth[resp.result], np.arange(truth.size))

    def test_batching_actually_happens(self, rng):
        reqs = [sort_request(rng.integers(0, 2, 16)) for _ in range(64)]
        responses = serve_requests(reqs, _small_config(max_lanes=16))
        assert all(r.ok for r in responses)
        assert max(r.batch_lanes for r in responses) > 1

    def test_shed_under_starved_credits(self, rng):
        """A pool sized for one batch floods -> explicit sheds with retry
        hints, and every accepted answer is still correct."""

        async def flood():
            cfg = _small_config(max_lanes=4, credits=4, max_delay_s=0.05)
            async with SortingService(cfg) as svc:
                reqs = [sort_request(rng.integers(0, 2, 8), tag=str(i))
                        for i in range(40)]
                return reqs, await svc.submit_many(reqs)

        reqs, responses = asyncio.run(flood())
        sheds = [r for r in responses if r.shed]
        oks = [r for r in responses if r.ok]
        assert sheds, "overload never shed"
        assert oks, "overload accepted nothing"
        assert len(sheds) + len(oks) == len(responses)
        for resp in sheds:
            assert resp.retry_after_s > 0
            assert resp.result is None
        by_tag = {r.tag: r for r in responses}
        for req in reqs:
            resp = by_tag[req.tag]
            if resp.ok:
                assert np.array_equal(
                    resp.result, np.sort(req.payload)
                ), "accepted-but-wrong answer"

    def test_route_charges_lg_n_credits(self):
        assert lanes_for(route_request(np.arange(16))) == 4
        assert lanes_for(sort_request([1, 0])) == 1

        async def oversized():
            # lg(64) = 6 lanes can never fit a 4-credit pool: loud refusal.
            async with SortingService(_small_config(max_lanes=4, credits=4)) as svc:
                await svc.submit(route_request(np.arange(64)))

        with pytest.raises(BuildError):
            asyncio.run(oversized())

    def test_submit_requires_started_service(self):
        svc = SortingService(_small_config())
        with pytest.raises(BuildError):
            asyncio.run(svc.submit(sort_request([1, 0])))

    def test_config_rejects_undersized_credits(self):
        with pytest.raises(BuildError):
            ServeConfig(max_lanes=128, credits=64)

    def test_stats_accounting(self, rng):
        reqs = [sort_request(rng.integers(0, 2, 8)) for _ in range(10)]

        async def run():
            async with SortingService(_small_config()) as svc:
                await svc.submit_many(reqs)
                return dict(svc.stats)

        stats = asyncio.run(run())
        assert stats["requests"] == 10
        assert stats["ok"] == 10
        assert stats["shed"] == 0
        assert stats["lanes"] == 10
        assert stats["batches"] >= 1


class TestServiceMetrics:
    def test_prometheus_exposition(self, rng, tmp_path):
        obs.enable(trace_path=str(tmp_path / "trace.jsonl"))
        try:
            reqs = [sort_request(rng.integers(0, 2, 8)) for _ in range(8)]
            reqs.append(route_request(rng.permutation(8)))
            responses = serve_requests(reqs, _small_config())
            assert all(r.ok for r in responses)
            text = obs.OBS.registry.to_prometheus()
        finally:
            obs.disable()
        for metric in (
            "repro_serve_requests_total",
            "repro_serve_request_latency_seconds",
            "repro_serve_batch_fill",
            "repro_serve_queue_depth",
            "repro_serve_credits_available",
            "repro_serve_batches_total",
            "repro_serve_lanes_total",
        ):
            assert metric in text, f"missing {metric} in exposition"
        assert 'kind="route"' in text
