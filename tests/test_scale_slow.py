"""Large-n stress tests (marked slow; a few seconds each).

These push the constructions to sizes where asymptotics dominate
constants, catching any accidental quadratic behavior in construction
or simulation paths.
"""

import numpy as np
import pytest

from repro.analysis import loglog_slope, verify_netlist_random
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.fish_sorter import FishSorter
from repro.core.sequences import is_sorted_binary

pytestmark = pytest.mark.slow


class TestLargeCombinational:
    @pytest.mark.parametrize("n", [2048, 4096])
    def test_mux_merger_large(self, n):
        net = build_mux_merger_sorter(n)
        lg = n.bit_length() - 1
        assert net.cost() <= 4 * n * lg
        assert verify_netlist_random(net, trials=16)

    def test_prefix_large(self):
        n = 2048
        net = build_prefix_sorter(n)
        assert verify_netlist_random(net, trials=16)

    def test_cost_slopes_at_scale(self):
        sizes = [1024, 2048, 4096, 8192]
        costs = [build_mux_merger_sorter(n).cost() for n in sizes]
        assert 1.0 < loglog_slope(sizes, costs) < 1.25


class TestLargeFish:
    def test_fish_8192(self):
        fs = FishSorter(8192)
        assert fs.cost() / 8192 < 18  # the constant holds at scale
        x = np.random.default_rng(0).integers(0, 2, 8192).astype(np.uint8)
        out, rep = fs.sort(x, pipelined=True)
        assert is_sorted_binary(out)
        assert out.sum() == x.sum()
        lg = 13
        assert rep.sorting_time <= 4 * lg * lg

    def test_fish_cost_slope_at_scale(self):
        sizes = [2048, 4096, 8192]
        costs = [FishSorter(n).cost() for n in sizes]
        assert loglog_slope(sizes, costs) < 1.1


class TestLargePermuter:
    def test_radix_permuter_2048(self):
        from repro.networks.permutation import RadixPermuter, check_permutation

        rng = np.random.default_rng(1)
        rp = RadixPermuter(2048, backend="fish")
        perm = rng.permutation(2048)
        pays = np.arange(2048, dtype=np.int64)
        out, _ = rp.permute(perm, pays)
        assert check_permutation(perm, pays, out)

    def test_benes_4096(self):
        from repro.networks.benes import BenesNetwork

        rng = np.random.default_rng(2)
        bn = BenesNetwork(4096)
        perm = rng.permutation(4096)
        pays = np.arange(4096, dtype=np.int64)
        out = bn.permute(perm, pays)
        assert all(out[perm[i]] == pays[i] for i in range(0, 4096, 37))
