"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the metrics registry (types, labels, bucketing, thread safety,
exposition formats), the tracer (nesting, sinks, crash-tolerant reads),
switch-activity profiling on a handcrafted netlist, supervisor decision
events, and the trace_report / docs-link tools.
"""

import json
import pathlib
import subprocess
import sys
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.tracing import FileSink, RingBufferSink, Tracer, read_trace

REPO = pathlib.Path(__file__).parent.parent
TOOLS = REPO / "tools"


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability fully reset."""
    obs.reset()
    yield
    obs.reset()


# -- metrics registry ---------------------------------------------------------

class TestMetrics:
    def test_counter_and_gauge_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("depth", "Queue depth.")
        g.set(5)
        g.inc()
        g.dec(3)
        assert g.value == 3

    def test_get_or_create_and_label_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", kind="a")
        b = reg.counter("hits_total", kind="b")
        again = reg.counter("hits_total", kind="a")
        assert a is again and a is not b
        # label order must not create a distinct series
        x = reg.counter("xy_total", x="1", y="2")
        y = reg.counter("xy_total", y="2", x="1")
        assert x is y
        assert len(reg) == 3

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        cum = dict(h.cumulative())
        assert cum[0.1] == 1          # 0.05
        assert cum[1.0] == 3          # + the two 0.5s
        assert cum[10.0] == 4         # + 5.0
        assert cum[float("inf")] == 5  # everything
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)

    def test_histogram_default_buckets_cover_engine_times(self):
        # default buckets span 100us .. ~100s: engine executions (ms) and
        # supervised sorts (tens of ms) both land mid-range, not in +Inf
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_BUCKETS[-1] > 10.0
        h = MetricsRegistry().histogram("t")
        h.observe(0.003)
        cum = dict(h.cumulative())
        inner = sum(1 for b, c in cum.items()
                    if c == 1 and b != float("inf"))
        assert inner >= 1

    def test_prometheus_golden(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "Total runs.", network="prefix").inc(2)
        reg.gauge("repro_depth", "Depth.").set(7)
        h = reg.histogram("repro_lat_seconds", "Latency.", buckets=(0.5, 2.0))
        h.observe(0.1)
        h.observe(1.0)
        expected = "\n".join([
            '# HELP repro_depth Depth.',
            '# TYPE repro_depth gauge',
            'repro_depth 7.0',
            '# HELP repro_lat_seconds Latency.',
            '# TYPE repro_lat_seconds histogram',
            'repro_lat_seconds_bucket{le="0.5"} 1',
            'repro_lat_seconds_bucket{le="2.0"} 2',
            'repro_lat_seconds_bucket{le="+Inf"} 2',
            'repro_lat_seconds_sum 1.1',
            'repro_lat_seconds_count 2',
            '# HELP repro_runs_total Total runs.',
            '# TYPE repro_runs_total counter',
            'repro_runs_total{network="prefix"} 2.0',
            '',
        ])
        assert reg.to_prometheus() == expected

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a_total", x="1").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.to_json())
        assert snap['a_total{x="1"}'] == {"type": "counter", "value": 1.0}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1

    def test_thread_safety_smoke(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("h", buckets=(0.5,))
        workers, per = 8, 2000

        def work():
            for i in range(per):
                c.inc()
                h.observe((i % 2) * 1.0)
                reg.counter("n_total")  # get-or-create race

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == workers * per
        assert h.count == workers * per
        assert dict(h.cumulative())[0.5] == workers * per // 2

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.reset()
        assert len(reg) == 0


# -- tracing ------------------------------------------------------------------

class TestTracing:
    def test_span_nesting_and_ids(self):
        tracer = Tracer()
        ring = RingBufferSink()
        tracer.add_sink(ring)
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                tracer.event("tick", x=2)
        inner_tick, inner, outer = ring.events()[-3:]
        assert [r["name"] for r in (outer, inner, inner_tick)] == \
            ["outer", "inner", "tick"]
        assert outer["type"] == "span" and inner_tick["type"] == "event"
        assert inner["parent"] == outer["sid"]
        assert inner_tick["parent"] == inner["sid"]
        assert (outer["depth"], inner["depth"], inner_tick["depth"]) == (0, 1, 2)
        assert outer["dur"] >= inner["dur"] >= 0
        assert outer["attrs"] == {"a": 1}

    def test_span_attrs_mutable_inside_body(self):
        tracer = Tracer()
        ring = RingBufferSink()
        tracer.add_sink(ring)
        with tracer.span("work") as attrs:
            attrs["result"] = 42
        assert ring.events()[0]["attrs"] == {"result": 42}

    def test_ring_capacity(self):
        ring = RingBufferSink(capacity=3)
        for i in range(10):
            ring.write({"i": i})
        assert [r["i"] for r in ring.events()] == [7, 8, 9]

    def test_file_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = FileSink(path)
        tracer = Tracer()
        tracer.add_sink(sink)
        with tracer.span("s", k="v"):
            tracer.event("e")
        sink.close()
        result = read_trace(path)
        assert not result.truncated and result.corrupt == 0
        assert [r["name"] for r in result] == ["e", "s"]

    def test_read_trace_tolerates_truncated_tail(self, tmp_path):
        """A SIGKILL mid-write leaves one partial final line; the reader
        must drop exactly that line and flag it."""
        path = tmp_path / "t.jsonl"
        sink = FileSink(path)
        for i in range(3):
            sink.write({"type": "event", "name": f"e{i}", "attrs": {}})
        sink.close()
        whole = path.read_bytes()
        cut = whole[: len(whole) - len(whole.splitlines(True)[-1]) // 2 - 1]
        path.write_bytes(cut)  # simulate the kill: last line half-written
        result = read_trace(path)
        assert result.truncated
        assert [r["name"] for r in result] == ["e0", "e1"]

    def test_read_trace_strict_on_midfile_corruption(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "a"}\nGARBAGE\n{"name": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)
        lenient = read_trace(path, strict=False)
        assert lenient.corrupt == 1
        assert [r["name"] for r in lenient] == ["a", "b"]

    def test_global_helpers_disabled_are_passthrough(self):
        assert not obs.enabled()
        with obs.trace_span("x", a=1) as attrs:
            attrs["b"] = 2  # must still be a real dict
        obs.trace_event("y")
        assert obs.ring_events() == []

    def test_enable_disable_roundtrip(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.enable(trace_path=trace)
        assert obs.enabled()
        with obs.trace_span("hello", n=1):
            pass
        obs.enable(trace_path=trace)  # idempotent: no duplicate sinks
        with obs.trace_span("again", n=2):
            pass
        obs.reset()
        names = [r["name"] for r in read_trace(trace)]
        assert names == ["hello", "again"]
        assert len(obs.ring_events()) == 0


# -- switch activity ----------------------------------------------------------

class TestActivity:
    def test_comparator_crossing_counts_exact(self):
        """A single comparator crosses only on (a=1, b=0): count it
        exactly over the exhaustive 2-input batch."""
        from repro.circuits import exhaustive_inputs, get_plan
        from repro.core.prefix_sorter import build_prefix_sorter

        net = build_prefix_sorter(4)
        obs.enable()
        plan = get_plan(net)
        batch = exhaustive_inputs(4)  # 16 rows -> unpacked path
        out = plan.execute_unpacked(batch)
        assert np.array_equal(out, np.sort(batch, axis=1))
        prof = obs.activity_profiles()[plan.name]
        assert prof.lanes == 16
        summary = obs.summarize_profile(prof)
        assert summary["switching_elements"] > 0
        # toggle fractions are true fractions
        for el in summary["top_elements"]:
            assert 0.0 <= el["frac"] <= 1.0
        # control wires tagged by the builder are all profiled
        assert summary["control_wires"] == len(net.control_wires)

    def test_packed_and_unpacked_counts_agree(self):
        """The packed path must popcount only real lanes (pad bits are
        driven high by constants) — same batch, same counts."""
        from repro.circuits import get_plan
        from repro.core.prefix_sorter import build_prefix_sorter

        net = build_prefix_sorter(8)
        rng = np.random.default_rng(7)
        batch = rng.integers(0, 2, (70, 8)).astype(np.uint8)  # not a word multiple
        obs.enable()
        plan = get_plan(net)
        plan.execute_unpacked(batch)
        unpacked = obs.activity_profiles()[plan.name].crossed.copy()
        obs.reset_activity()
        plan.execute_packed(batch)
        packed = obs.activity_profiles()[plan.name].crossed.copy()
        assert np.array_equal(unpacked, packed)

    def test_flush_activity_emits_trace_events(self, tmp_path):
        from repro.circuits import get_plan
        from repro.core.prefix_sorter import build_prefix_sorter

        trace = tmp_path / "t.jsonl"
        obs.enable(trace_path=trace)
        plan = get_plan(build_prefix_sorter(4))
        plan.execute_unpacked(np.zeros((3, 4), dtype=np.uint8))
        summaries = obs.flush_activity()
        obs.reset()
        events = [r for r in read_trace(trace) if r["name"] == "engine.activity"]
        assert {e["attrs"]["netlist"] for e in events} == set(summaries)


# -- engine + supervisor integration -----------------------------------------

class TestIntegration:
    def test_engine_span_carries_step_profile(self):
        from repro.circuits import get_plan
        from repro.core.prefix_sorter import build_prefix_sorter

        obs.enable()
        plan = get_plan(build_prefix_sorter(8))
        plan.execute_unpacked(np.zeros((5, 8), dtype=np.uint8))
        spans = [r for r in obs.ring_events() if r["name"] == "engine.execute"]
        assert spans
        attrs = spans[-1]["attrs"]
        assert attrs["mode"] == "unpacked" and attrs["batch"] == 5
        assert len(attrs["steps"]) == len(plan.steps)
        for level, kind, dt, n_el in attrs["steps"]:
            assert dt >= 0 and n_el >= 1
        snap = obs.registry().snapshot()
        assert any(k.startswith("repro_engine_kernel_seconds_total")
                   for k in snap)

    def test_supervisor_events_on_fallback(self):
        """A supervisor run on broken hardware journals its decisions:
        alarms on the failing tiers, retries, degradations, and the
        final acceptance."""
        import dataclasses

        from repro.circuits import ControlInvert, apply_fault, control_wires
        from repro.circuits.checkers import with_checkers
        from repro.core.api import make_sorter
        from repro.runtime import RecoveryPolicy, Supervisor

        net = make_sorter(8, "prefix")
        checked = with_checkers(net, control=True)
        steering = sorted(set(control_wires(net)) - set(net.inputs))
        broken = dataclasses.replace(
            checked,
            netlist=apply_fault(checked.netlist, ControlInvert(steering[0])),
        )
        obs.enable()
        sup = Supervisor(
            "prefix",
            policy=RecoveryPolicy(max_retries=1, backoff_s=0),
            hardware=lambda _n: broken,
        )
        row = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        out, report = sup.sort_verbose(row)
        assert np.array_equal(out, np.sort(row))
        assert report.fell_back
        names = {r["name"] for r in obs.ring_events()}
        assert "supervisor.sort" in names
        assert "supervisor.alarm" in names
        assert "supervisor.retry" in names
        assert "supervisor.degrade" in names
        assert "supervisor.accept" in names
        sort_span = [r for r in obs.ring_events()
                     if r["name"] == "supervisor.sort"][-1]
        assert sort_span["attrs"]["fell_back"]
        snap = obs.registry().snapshot()
        assert any(k.startswith("repro_supervisor_fallbacks_total")
                   for k in snap)

    def test_interpreter_span(self):
        from repro.circuits.simulate import simulate_interpreted
        from repro.core.prefix_sorter import build_prefix_sorter

        obs.enable()
        net = build_prefix_sorter(4)
        simulate_interpreted(net, np.zeros((2, 4), dtype=np.uint8))
        spans = [r for r in obs.ring_events() if r["name"] == "interp.execute"]
        assert spans and spans[-1]["attrs"]["mode"] == "bit"


# -- tools --------------------------------------------------------------------

def _run_tool(script, *argv):
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *map(str, argv)],
        capture_output=True, text=True, cwd=str(REPO),
    )


class TestTraceReport:
    def _make_trace(self, tmp_path):
        from repro.circuits import get_plan
        from repro.core.prefix_sorter import build_prefix_sorter

        trace = tmp_path / "trace.jsonl"
        obs.enable(trace_path=trace)
        plan = get_plan(build_prefix_sorter(8))
        with obs.trace_span("sweep.item", item="prefix/n=8", ok=True):
            plan.execute_unpacked(np.zeros((5, 8), dtype=np.uint8))
        obs.trace_event("sweep.quarantine", item="prefix/n=64",
                        error="TimeoutError()")
        obs.flush_activity()
        obs.reset()
        return trace

    def test_report_sections(self, tmp_path):
        trace = self._make_trace(tmp_path)
        proc = _run_tool("trace_report.py", trace)
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "hot levels" in out
        assert "switch activity" in out
        assert "sweep.item: 1 items" in out
        assert "QUARANTINED prefix/n=64" in out

    def test_report_json_mode(self, tmp_path):
        trace = self._make_trace(tmp_path)
        proc = _run_tool("trace_report.py", trace, "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["counts"]["engine.execute"] >= 1
        assert "prefix-sorter-8" in report["activity"]
        assert report["quarantined"][0]["item"] == "prefix/n=64"

    def test_report_tolerates_truncated_tail(self, tmp_path):
        trace = self._make_trace(tmp_path)
        data = trace.read_bytes()
        trace.write_bytes(data[:-10])  # SIGKILL-style partial final line
        proc = _run_tool("trace_report.py", trace)
        assert proc.returncode == 0, proc.stderr
        assert "final line truncated" in proc.stdout

    def test_report_rejects_midfile_corruption_unless_lenient(self, tmp_path):
        trace = self._make_trace(tmp_path)
        lines = trace.read_text().splitlines(True)
        lines[1] = "NOT JSON\n"
        trace.write_text("".join(lines))
        proc = _run_tool("trace_report.py", trace)
        assert proc.returncode == 2
        proc = _run_tool("trace_report.py", trace, "--lenient")
        assert proc.returncode == 0, proc.stderr
        assert "1 corrupt lines skipped" in proc.stdout

    def test_report_missing_file(self, tmp_path):
        proc = _run_tool("trace_report.py", tmp_path / "nope.jsonl")
        assert proc.returncode == 2


class TestDocsLinkChecker:
    def test_repo_docs_have_no_dead_links(self):
        proc = _run_tool("check_docs_links.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_dead_link_detected(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](docs/REAL.md) [broken](docs/MISSING.md#sec)\n"
        )
        (tmp_path / "docs" / "REAL.md").write_text("# real\n")
        proc = _run_tool("check_docs_links.py", "--root", tmp_path)
        assert proc.returncode == 1
        assert "MISSING.md" in proc.stdout

    def test_external_links_ignored_and_anchors_checked(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "# Here\n[web](https://example.com) [anchor](#here) "
            "[mail](mailto:x@y.z)\n"
        )
        proc = _run_tool("check_docs_links.py", "--root", tmp_path)
        assert proc.returncode == 0, proc.stdout
        # in-page anchors are now validated, not skipped
        (tmp_path / "README.md").write_text("# Here\n[gone](#nowhere)\n")
        proc = _run_tool("check_docs_links.py", "--root", tmp_path)
        assert proc.returncode == 1
        assert "nowhere" in proc.stdout


# -- env-var opt-in -----------------------------------------------------------

def test_env_var_opt_in(tmp_path):
    """REPRO_OBS=1 / REPRO_OBS_TRACE switch the layer on at import."""
    trace = tmp_path / "env.jsonl"
    code = (
        "import repro.obs as obs, numpy as np\n"
        "from repro.circuits import get_plan\n"
        "from repro.core.prefix_sorter import build_prefix_sorter\n"
        "assert obs.enabled()\n"
        "plan = get_plan(build_prefix_sorter(4))\n"
        "plan.execute_unpacked(np.zeros((2, 4), dtype=np.uint8))\n"
        "obs.reset()\n"
    )
    import os
    import subprocess as sp
    env = dict(os.environ, REPRO_OBS="1", REPRO_OBS_TRACE=str(trace),
               PYTHONPATH=str(REPO / "src"))
    proc = sp.run([sys.executable, "-c", code], env=env,
                  capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    result = read_trace(trace)
    assert any(r["name"] == "engine.execute" for r in result)
