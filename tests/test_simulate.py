"""Unit tests for the vectorized and payload-carrying interpreters."""

import numpy as np
import pytest

from repro.circuits import (
    NO_PAYLOAD,
    CircuitBuilder,
    exhaustive_inputs,
    simulate,
    simulate_payload,
)


def _comparator_net():
    b = CircuitBuilder()
    x, y = b.add_inputs(2)
    lo, hi = b.comparator(x, y)
    return b.build([lo, hi])


class TestSimulate:
    def test_single_vector_promoted_to_batch(self):
        net = _comparator_net()
        assert simulate(net, [1, 0]).shape == (1, 2)

    def test_batch_shape(self):
        net = _comparator_net()
        out = simulate(net, exhaustive_inputs(2))
        assert out.shape == (4, 2)
        assert out.dtype == np.uint8

    def test_comparator_truth_table(self):
        net = _comparator_net()
        out = simulate(net, exhaustive_inputs(2))
        assert out.tolist() == [[0, 0], [0, 1], [0, 1], [1, 1]]

    def test_wrong_width_rejected(self):
        net = _comparator_net()
        with pytest.raises(ValueError, match="expected 2 inputs"):
            simulate(net, [[1, 0, 1]])

    def test_3d_input_rejected(self):
        net = _comparator_net()
        with pytest.raises(ValueError, match="1-D or 2-D"):
            simulate(net, np.zeros((2, 2, 2), dtype=np.uint8))

    def test_demux_unselected_output_zero(self):
        b = CircuitBuilder()
        x, s = b.add_inputs(2)
        o0, o1 = b.demux2(x, s)
        net = b.build([o0, o1])
        assert simulate(net, [[1, 0]]).tolist() == [[1, 0]]
        assert simulate(net, [[1, 1]]).tolist() == [[0, 1]]


class TestExhaustiveInputs:
    def test_rows_are_binary_expansions(self):
        got = exhaustive_inputs(3)
        assert got.shape == (8, 3)
        assert got[5].tolist() == [1, 0, 1]

    def test_lexicographic_order(self):
        got = exhaustive_inputs(2)
        assert got.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_n_zero(self):
        assert exhaustive_inputs(0).shape == (1, 0)

    def test_refuses_huge_n(self):
        with pytest.raises(ValueError):
            exhaustive_inputs(25)


class TestPayloadSimulation:
    def test_comparator_swaps_payloads_when_unordered(self):
        net = _comparator_net()
        t, p = simulate_payload(net, [[1, 0]], [[7, 8]])
        assert t.tolist() == [[0, 1]]
        assert p.tolist() == [[8, 7]]

    def test_comparator_ties_pass_straight(self):
        net = _comparator_net()
        for bits in ([0, 0], [1, 1]):
            t, p = simulate_payload(net, [bits], [[7, 8]])
            assert p.tolist() == [[7, 8]]

    def test_ordered_pair_passes_straight(self):
        net = _comparator_net()
        t, p = simulate_payload(net, [[0, 1]], [[7, 8]])
        assert p.tolist() == [[7, 8]]

    def test_switch2_routes_payloads(self):
        b = CircuitBuilder()
        x, y, c = b.add_inputs(3)
        o = b.switch2(x, y, c)
        net = b.build(list(o))
        t, p = simulate_payload(net, [[1, 0, 1]], [[5, 6, -1]])
        assert p.tolist() == [[6, 5]]

    def test_gate_output_has_no_payload(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build([b.and_(x, y)])
        t, p = simulate_payload(net, [[1, 1]], [[5, 6]])
        assert p.tolist() == [[NO_PAYLOAD]]

    def test_demux_unselected_branch_idle_payload(self):
        b = CircuitBuilder()
        x, s = b.add_inputs(2)
        o0, o1 = b.demux2(x, s)
        net = b.build([o0, o1])
        t, p = simulate_payload(net, [[1, 0]], [[9, -1]])
        assert p.tolist() == [[9, NO_PAYLOAD]]

    def test_switch4_routes_payloads(self):
        perms = ((0, 1, 2, 3),) * 3 + ((3, 2, 1, 0),)
        b = CircuitBuilder()
        data = b.add_inputs(4)
        s1, s0 = b.add_inputs(2)
        net = b.build(list(b.switch4(data, s1, s0, perms)))
        t, p = simulate_payload(
            net, [[0, 1, 0, 1, 1, 1]], [[10, 11, 12, 13, -1, -1]]
        )
        assert p.tolist() == [[13, 12, 11, 10]]

    def test_shape_mismatch_rejected(self):
        net = _comparator_net()
        with pytest.raises(ValueError, match="same shape"):
            simulate_payload(net, [[1, 0]], [[1, 2, 3]])

    def test_payload_multiset_preserved_through_sorter(self, rng):
        from repro.core import build_mux_merger_sorter

        net = build_mux_merger_sorter(16)
        tags = rng.integers(0, 2, (32, 16)).astype(np.uint8)
        pays = np.tile(np.arange(16, dtype=np.int64), (32, 1))
        t, p = simulate_payload(net, tags, pays)
        for row_t, row_p, row_in in zip(t, p, tags):
            assert sorted(row_p.tolist()) == list(range(16))
            # each payload keeps its tag
            for tag, pay in zip(row_t, row_p):
                assert tag == row_in[pay]
