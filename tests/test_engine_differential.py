"""Differential tests: compiled engine ≡ element-at-a-time interpreter.

The engine (:mod:`repro.circuits.engine`) must be bit-identical to the
retained interpreters on every construction in the repository — the
interpreter is the oracle.  Coverage:

* exhaustive (all ``2**n`` vectors) for every netlist with ≤ 16 inputs:
  prefix sorter, mux-merger sorter, fish-sorter components,
  concentrator, radix-permuter distributors;
* random + corner batches for wider interfaces;
* hypothesis-driven single vectors and random-netlist fuzz
  (:func:`repro.circuits.fuzz.random_netlist`) exercising every element
  kind, on all three paths (unpacked, bit-packed, payload).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CircuitBuilder,
    exhaustive_inputs,
    get_plan,
    random_netlist,
    simulate,
    simulate_interpreted,
    simulate_payload,
    simulate_payload_interpreted,
)
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.fish_sorter import FishSorter, fish_sort_behavioral
from repro.networks.concentrator import SortingConcentrator
from repro.networks.permutation import RadixPermuter


def _check_all_paths(net, batch):
    """Interpreter vs engine-unpacked vs engine-packed, bit for bit."""
    expect = simulate_interpreted(net, batch)
    plan = get_plan(net)
    assert np.array_equal(plan.execute_unpacked(batch), expect)
    assert np.array_equal(plan.execute_packed(batch), expect)
    assert np.array_equal(simulate(net, batch), expect)


def _check_payload(net, tags, pays):
    t_ref, p_ref = simulate_payload_interpreted(net, tags, pays)
    t, p = simulate_payload(net, tags, pays)
    assert np.array_equal(t, t_ref)
    assert np.array_equal(p, p_ref)


def _batch_for(net, rng, trials=128):
    """Exhaustive for ≤ 16 inputs, random + corners otherwise."""
    n = len(net.inputs)
    if n <= 16:
        return exhaustive_inputs(n)
    corners = np.vstack([np.zeros(n, np.uint8), np.ones(n, np.uint8)])
    return np.vstack(
        [corners, rng.integers(0, 2, (trials, n)).astype(np.uint8)]
    )


class TestConstructionDifferential:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_prefix_sorter_exhaustive(self, n, rng):
        net = build_prefix_sorter(n)
        _check_all_paths(net, _batch_for(net, rng))

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_mux_merger_sorter_exhaustive(self, n, rng):
        net = build_mux_merger_sorter(n)
        _check_all_paths(net, _batch_for(net, rng))

    def test_fish_sorter_components(self, rng):
        fs = FishSorter(16)
        for net in (fs.input_mux, fs.group_sorter, fs.output_demux):
            _check_all_paths(net, _batch_for(net, rng))

    def test_fish_sorter_end_to_end(self, rng):
        fs = FishSorter(16)
        for _ in range(16):
            bits = rng.integers(0, 2, 16).astype(np.uint8)
            out, _ = fs.sort(bits)
            assert np.array_equal(out, fish_sort_behavioral(bits, fs.k))

    def test_fish_sorter_payload_multiset(self, rng):
        fs = FishSorter(16)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        pays = np.arange(16, dtype=np.int64)
        out, out_pays, _ = fs.sort_with_payload(bits, pays)
        assert sorted(out_pays.tolist()) == list(range(16))
        for tag, pay in zip(out, out_pays):
            assert tag == bits[pay]

    def test_concentrator_netlist_exhaustive(self, rng):
        conc = SortingConcentrator(8, 4)  # truncated + dead-pruned
        _check_all_paths(conc.netlist, _batch_for(conc.netlist, rng))
        pays = np.arange(8, dtype=np.int64)
        tags = rng.integers(0, 2, (32, 8)).astype(np.uint8)
        _check_payload(conc.netlist, tags, np.tile(pays, (32, 1)))

    def test_concentrator_routing(self, rng):
        conc = SortingConcentrator(8, 4)
        req = np.array([1, 0, 0, 1, 0, 1, 0, 0], dtype=np.uint8)
        res = conc.concentrate(req, np.arange(8))
        assert sorted(res.granted.tolist()) == [0, 3, 5]

    def test_radix_permuter_distributors_exhaustive(self, rng):
        perm = RadixPermuter(8, backend="mux_merger")
        for net in perm._combinational.values():
            _check_all_paths(net, _batch_for(net, rng))

    def test_radix_permuter_routes(self, rng):
        permuter = RadixPermuter(8, backend="mux_merger")
        p = rng.permutation(8)
        routed, _ = permuter.permute(p, np.arange(8))
        assert np.array_equal(routed[p], np.arange(8))

    def test_payload_sorter_differential(self, rng):
        net = build_mux_merger_sorter(16)
        tags = rng.integers(0, 2, (48, 16)).astype(np.uint8)
        pays = np.tile(np.arange(16, dtype=np.int64), (48, 1))
        _check_payload(net, tags, pays)


class TestFuzzDifferential:
    def test_random_netlists_all_paths(self, rng):
        for _ in range(40):
            net = random_netlist(rng, n_inputs=8, n_elements=50, n_outputs=6)
            _check_all_paths(net, _batch_for(net, rng))

    def test_random_netlists_payload(self, rng):
        for _ in range(40):
            net = random_netlist(rng, n_inputs=7, n_elements=40, n_outputs=5)
            tags = rng.integers(0, 2, (21, 7)).astype(np.uint8)
            pays = rng.integers(-5, 100, (21, 7)).astype(np.int64)
            _check_payload(net, tags, pays)

    def test_packed_odd_batch_sizes(self, rng):
        """Word-boundary edges: 1, 63, 64, 65, 127, 128 rows."""
        net = random_netlist(rng, n_inputs=9, n_elements=60, n_outputs=5)
        plan = get_plan(net)
        for B in (1, 63, 64, 65, 127, 128):
            batch = rng.integers(0, 2, (B, 9)).astype(np.uint8)
            expect = simulate_interpreted(net, batch)
            assert np.array_equal(plan.execute_packed(batch), expect)
            assert np.array_equal(plan.execute_unpacked(batch), expect)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_hypothesis_random_netlist(self, seed):
        rng = np.random.default_rng(seed)
        net = random_netlist(rng, n_inputs=6, n_elements=35, n_outputs=4)
        batch = exhaustive_inputs(6)
        expect = simulate_interpreted(net, batch)
        plan = get_plan(net)
        assert np.array_equal(plan.execute_unpacked(batch), expect)
        assert np.array_equal(plan.execute_packed(batch), expect)

    @settings(max_examples=60, deadline=None)
    @given(bits=st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_hypothesis_prefix_sorter_vectors(self, bits):
        net = build_prefix_sorter(16)
        out = simulate(net, [bits])
        assert out[0].tolist() == sorted(bits)
        assert np.array_equal(out, simulate_interpreted(net, [bits]))


class TestScalarOracle:
    def test_engine_matches_register_transfer_scalar_eval(self, rng):
        """Third implementation: the RTL scalar evaluator agrees too."""
        from repro.circuits.sequential import _eval_element

        for _ in range(10):
            net = random_netlist(rng, n_inputs=6, n_elements=25, n_outputs=4)
            vec = rng.integers(0, 2, 6).astype(np.uint8)
            values = dict(zip(net.inputs, (int(v) for v in vec)))
            values.update(net.constants)
            for e in net.elements:
                outs = _eval_element(e, [values[w] for w in e.ins])
                for w, v in zip(e.outs, outs):
                    values[w] = v
            expect = [values[w] for w in net.outputs]
            assert simulate(net, vec[None, :])[0].tolist() == expect
