"""Tests for the clocked-circuit layer and the hardware clean sorter."""

import itertools

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.circuits.fsm import SequentialCircuit
from repro.core.hw_clean_sorter import HardwareCleanSorter
from repro.core.kway import CleanSorter
from repro.core.sequences import is_sorted_binary, random_clean_k_sorted


def _counter_circuit(width):
    """A plain binary up-counter (state only, no external in)."""
    b = CircuitBuilder("counter")
    state = b.add_inputs(width)
    carry = b.const(1)
    nxt = []
    for bit in state:
        nxt.append(b.xor(bit, carry))
        carry = b.and_(bit, carry)
    net = b.build(nxt + list(state))  # also expose current state
    return SequentialCircuit(net, n_state=width)


class TestSequentialCircuit:
    def test_counter_counts(self):
        c = _counter_circuit(3)
        seen = []
        for _ in range(10):
            out = c.step([])
            seen.append(sum(v << i for i, v in enumerate(out)))
        assert seen == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_reset(self):
        c = _counter_circuit(2)
        c.step([])
        c.step([])
        c.reset()
        assert c.step([]) == [0, 0]
        assert c.cycles == 1

    def test_initial_state(self):
        b = CircuitBuilder()
        s = b.add_input()
        net = b.build([b.not_(s), b.buf(s)])
        c = SequentialCircuit(net, n_state=1, initial_state=[1])
        assert c.step([]) == [1]
        assert c.step([]) == [0]

    def test_external_io(self):
        # accumulator: state ^= input each cycle
        b = CircuitBuilder()
        s = b.add_input()
        x = b.add_input()
        nxt = b.xor(s, x)
        net = b.build([nxt, b.buf(nxt)])
        c = SequentialCircuit(net, n_state=1)
        assert c.step([1]) == [1]
        assert c.step([1]) == [0]
        assert c.step([0]) == [0]

    def test_validation(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.buf(x)])
        with pytest.raises(ValueError):
            SequentialCircuit(net, n_state=2)
        with pytest.raises(ValueError):
            SequentialCircuit(net, n_state=1, initial_state=[0, 1])
        c = SequentialCircuit(net, n_state=0)
        with pytest.raises(ValueError):
            c.step([1, 1])

    def test_accounting(self):
        c = _counter_circuit(4)
        assert c.register_bits() == 4
        assert c.combinational_cost() > 0
        assert c.cycle_time() >= 1


class TestHardwareCleanSorter:
    def test_exhaustive_s8_k4(self):
        hcs = HardwareCleanSorter(8, 4)
        for combo in itertools.product([0, 1], repeat=4):
            x = np.repeat(np.array(combo, dtype=np.uint8), 2)
            out, ticks = hcs.sort(x)
            assert is_sorted_binary(out)
            assert out.sum() == x.sum()
            assert ticks == 4

    @pytest.mark.parametrize("s,k", [(16, 4), (32, 8), (16, 8)])
    def test_random(self, s, k, rng):
        hcs = HardwareCleanSorter(s, k)
        for _ in range(25):
            x = random_clean_k_sorted(s, k, rng)
            out, _ = hcs.sort(x)
            assert is_sorted_binary(out)
            assert out.sum() == x.sum()

    def test_matches_orchestrated_clean_sorter(self, rng):
        hcs = HardwareCleanSorter(16, 4)
        cs = CleanSorter(16, 4)
        for _ in range(20):
            x = random_clean_k_sorted(16, 4, rng)
            hw, _ = hcs.sort(x)
            sw, _, _ = cs.sort(x)
            assert np.array_equal(hw, sw)

    def test_register_inventory(self):
        hcs = HardwareCleanSorter(16, 4)
        assert hcs.register_bits() == 2 + 16  # lg k counter + s outputs
        assert hcs.sorting_time() == 4 * hcs.circuit.cycle_time()

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareCleanSorter(8, 3)
        hcs = HardwareCleanSorter(8, 4)
        with pytest.raises(ValueError):
            hcs.sort(np.zeros(4, dtype=np.uint8))

    def test_reusable_after_sort(self, rng):
        hcs = HardwareCleanSorter(16, 4)
        a = random_clean_k_sorted(16, 4, rng)
        b_ = random_clean_k_sorted(16, 4, rng)
        out_a, _ = hcs.sort(a)
        out_b, _ = hcs.sort(b_)  # reset() inside must clear accumulators
        assert out_b.sum() == b_.sum()
        assert is_sorted_binary(out_b)
