"""Unit tests for the convenience API (any-length sorting, caching, CLI)."""

import numpy as np
import pytest

from repro.core.api import (
    clear_cache,
    make_sorter,
    next_power_of_two,
    sort_bits,
)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expect", [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (16, 16), (17, 32)]
    )
    def test_values(self, n, expect):
        assert next_power_of_two(n) == expect


class TestSortBits:
    @pytest.mark.parametrize("network", ["mux_merger", "prefix", "fish"])
    def test_arbitrary_lengths(self, network, rng):
        for length in (1, 2, 3, 5, 7, 12, 17, 33, 60):
            bits = rng.integers(0, 2, length).astype(np.uint8)
            out = sort_bits(bits, network=network)
            assert out.tolist() == sorted(bits.tolist()), (network, length)

    def test_empty_and_singleton(self):
        assert sort_bits([]).tolist() == []
        assert sort_bits([1]).tolist() == [1]
        assert sort_bits([0]).tolist() == [0]

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            sort_bits([0, 1, 2])

    def test_rejects_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            sort_bits([1, 0, 1], network="timsort")

    def test_padding_does_not_leak(self, rng):
        # padding 1's must never appear in the output prefix
        bits = np.zeros(5, dtype=np.uint8)
        out = sort_bits(bits)
        assert out.tolist() == [0, 0, 0, 0, 0]

    def test_fish_pipelined_flag(self, rng):
        bits = rng.integers(0, 2, 20).astype(np.uint8)
        a = sort_bits(bits, network="fish")
        b = sort_bits(bits, network="fish", pipelined=True)
        assert np.array_equal(a, b)


class TestCache:
    def test_same_instance_returned(self):
        clear_cache()
        a = make_sorter(16, "mux_merger")
        b = make_sorter(16, "mux_merger")
        assert a is b

    def test_clear_cache(self):
        a = make_sorter(16, "mux_merger")
        clear_cache()
        b = make_sorter(16, "mux_merger")
        assert a is not b

    def test_distinct_networks_distinct_entries(self):
        clear_cache()
        a = make_sorter(16, "mux_merger")
        b = make_sorter(16, "prefix")
        assert a is not b


class TestCLI:
    def test_main_runs(self, capsys):
        from repro.__main__ import main

        assert main(["64"]) == 0
        out = capsys.readouterr().out
        assert "Network 3 (fish)" in out
        assert "verified: True" in out

    def test_main_rejects_bad_n(self, capsys):
        from repro.__main__ import main

        assert main(["12"]) == 2
        assert main(["not-a-number"]) == 2
