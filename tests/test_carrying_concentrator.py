"""Tests for the hardware concentrator and cycle-accurate fish sorting."""

import numpy as np
import pytest

from repro.core.fish_sorter import FishSorter
from repro.networks.carrying import CarryingConcentrator


class TestCarryingConcentrator:
    def test_all_masks_n8(self):
        cc = CarryingConcentrator(8, payload_width=4)
        pays = np.arange(8, dtype=np.int64)
        for mask in range(256):
            req = np.array([(mask >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
            granted = cc.concentrate(req, pays)
            wanted = sorted(int(p) for p, r in zip(pays, req) if r)
            assert sorted(granted) == wanted, (mask, granted)

    def test_grants_contiguous_from_top(self, rng):
        cc = CarryingConcentrator(16, payload_width=5)
        pays = rng.integers(0, 32, 16).astype(np.int64)
        req = np.zeros(16, dtype=np.uint8)
        req[[2, 9, 13]] = 1
        granted = cc.concentrate(req, pays)
        assert len(granted) == 3
        assert sorted(granted) == sorted(int(pays[i]) for i in (2, 9, 13))

    def test_no_requests(self):
        cc = CarryingConcentrator(8, payload_width=3)
        assert cc.concentrate(np.zeros(8, dtype=np.uint8), np.arange(8)) == []

    def test_all_request(self):
        cc = CarryingConcentrator(8, payload_width=3)
        granted = cc.concentrate(np.ones(8, dtype=np.uint8), np.arange(8))
        assert sorted(granted) == list(range(8))

    def test_cost_depth_exposed(self):
        cc = CarryingConcentrator(8, payload_width=4)
        assert cc.cost() > 0 and cc.depth() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CarryingConcentrator(8, payload_width=0)
        cc = CarryingConcentrator(8, payload_width=2)
        with pytest.raises(ValueError):
            cc.concentrate(np.zeros(4, dtype=np.uint8), np.arange(8))


class TestCycleAccurateFish:
    @pytest.mark.parametrize("n", [16, 64])
    def test_matches_pipelined_sort(self, n, rng):
        fs = FishSorter(n)
        for _ in range(8):
            x = rng.integers(0, 2, n).astype(np.uint8)
            algebraic, rep_a = fs.sort(x, pipelined=True)
            measured, rep_m = fs.sort_cycle_accurate(x)
            assert np.array_equal(algebraic, measured)
            # the register machine's measured makespan equals the
            # algebraic accounting
            assert rep_m.phase1_time == rep_a.phase1_time
            assert rep_m.sorting_time == rep_a.sorting_time

    def test_wrong_length_rejected(self):
        fs = FishSorter(16)
        with pytest.raises(ValueError):
            fs.sort_cycle_accurate(np.zeros(8, dtype=np.uint8))
