"""Unit tests for the compiled execution engine and its caches."""

import gc

import numpy as np
import pytest

from repro.circuits import (
    CircuitBuilder,
    PACKED_MIN_BATCH,
    clear_plan_cache,
    compile_plan,
    exhaustive_inputs,
    fuse_elements,
    get_plan,
    plan_cache_size,
    simulate,
)
from repro.circuits.simulate import _as_batch
from repro.core import build_mux_merger_sorter


def _sorter_net(n=8):
    return build_mux_merger_sorter(n)


class TestFusion:
    def test_independent_elements_fuse_into_one_step(self):
        b = CircuitBuilder()
        ws = b.add_inputs(8)
        outs = []
        for i in range(0, 8, 2):
            outs.extend(b.comparator(ws[i], ws[i + 1]))
        net = b.build(outs)
        steps = fuse_elements(net.elements)
        assert len(steps) == 1
        assert steps[0].kind == "COMPARATOR"
        assert steps[0].in_idx.shape == (4, 2)
        assert steps[0].level == 0

    def test_chained_elements_get_levels(self):
        b = CircuitBuilder()
        x, y, z = b.add_inputs(3)
        net = b.build([b.and_(b.and_(x, y), z)])
        steps = fuse_elements(net.elements)
        assert [s.level for s in steps] == [0, 1]

    def test_buf_chains_are_levelized(self):
        # Zero-(paper-)depth buffers still occupy execution levels, so
        # same-kind chains never land in one fused step.
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.buf(b.buf(b.buf(x)))])
        steps = fuse_elements(net.elements)
        assert len(steps) == 3
        out = simulate(net, [[1]])
        assert out.tolist() == [[1]]

    def test_plan_counts(self):
        net = _sorter_net(8)
        plan = compile_plan(net)
        assert plan.n_elements == len(net.elements)
        assert plan.n_levels >= 1
        assert sum(len(s.in_idx) for s in plan.steps) == len(net.elements)


class TestPlanCache:
    def test_get_plan_is_memoized(self):
        net = _sorter_net()
        assert get_plan(net) is get_plan(net)

    def test_cache_is_weak(self):
        clear_plan_cache()
        net = _sorter_net()
        get_plan(net)
        assert plan_cache_size() == 1
        del net
        gc.collect()
        assert plan_cache_size() == 0

    def test_simulate_warms_the_cache(self):
        clear_plan_cache()
        net = _sorter_net()
        simulate(net, exhaustive_inputs(8))
        assert plan_cache_size() == 1

    def test_builder_precompile(self):
        clear_plan_cache()
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        net = b.build(list(b.comparator(x, y)), precompile=True)
        assert plan_cache_size() == 1
        assert get_plan(net).n_elements == 1


class TestPathSelection:
    def test_threshold_routes_to_packed(self, rng):
        net = _sorter_net(8)
        plan = get_plan(net)
        small = rng.integers(0, 2, (PACKED_MIN_BATCH - 1, 8)).astype(np.uint8)
        large = rng.integers(0, 2, (PACKED_MIN_BATCH, 8)).astype(np.uint8)
        # both must agree with each other regardless of routing
        assert np.array_equal(
            plan.execute(small), plan.execute_unpacked(small)
        )
        assert np.array_equal(plan.execute(large), plan.execute_packed(large))

    def test_empty_batch(self):
        net = _sorter_net(8)
        out = simulate(net, np.zeros((0, 8), dtype=np.uint8))
        assert out.shape == (0, 8)

    def test_constants_only_netlist(self):
        b = CircuitBuilder()
        x = b.add_input()
        one = b.const(1)
        zero = b.const(0)
        net = b.build([b.and_(x, one), b.or_(x, zero), one, zero])
        for rows in (1, 200):
            batch = np.tile(np.array([[1]], dtype=np.uint8), (rows, 1))
            out = simulate(net, batch)
            assert out.tolist() == [[1, 1, 1, 0]] * rows

    def test_output_is_contiguous_uint8(self, rng):
        net = _sorter_net(8)
        for rows in (3, 100):
            out = simulate(net, rng.integers(0, 2, (rows, 8)).astype(np.uint8))
            assert out.dtype == np.uint8
            assert out.flags["C_CONTIGUOUS"]


class TestAsBatch:
    def test_contiguous_uint8_not_copied(self):
        arr = np.zeros((4, 8), dtype=np.uint8)
        assert _as_batch(arr) is arr

    def test_1d_uint8_promoted_without_copy_of_data(self):
        arr = np.ones(8, dtype=np.uint8)
        out = _as_batch(arr)
        assert out.shape == (1, 8)
        assert out.base is arr or out.base is arr.base

    def test_noncontiguous_converted(self):
        arr = np.zeros((8, 4), dtype=np.uint8).T  # F-contiguous view
        out = _as_batch(arr)
        assert out.flags["C_CONTIGUOUS"]
        assert out.shape == (4, 8)

    def test_conversion_still_validates_range(self):
        with pytest.raises(ValueError, match="0/1"):
            _as_batch([[0, 2]])
        with pytest.raises(ValueError, match="0/1"):
            _as_batch(np.array([[0, 9]], dtype=np.int64))

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            _as_batch(np.zeros((2, 2, 2), dtype=np.uint8))


class TestNetlistMemoization:
    def test_cost_and_stats_memoized(self):
        net = _sorter_net(8)
        c1 = net.cost()
        assert net._cost == c1
        assert net.cost() == c1
        s1 = net.stats()
        assert net.stats() is s1
        assert s1.cost == c1
        assert s1.n_elements == len(net.elements)

    def test_memo_matches_fresh_recount(self):
        net = _sorter_net(8)
        net.cost()
        assert net.cost() == sum(e.cost for e in net.elements)


class TestSerializeLoadCache:
    def test_load_returns_same_object_and_plan(self, tmp_path):
        from repro.circuits import load, save

        net = _sorter_net(8)
        path = tmp_path / "net.json"
        save(net, path)
        a = load(path)
        b = load(path)
        assert a is b
        assert get_plan(a) is get_plan(b)
        c = load(path, cache=False)
        assert c is not a
        assert np.array_equal(
            simulate(c, exhaustive_inputs(8)), simulate(a, exhaustive_inputs(8))
        )

    def test_load_cache_invalidated_on_rewrite(self, tmp_path):
        import os

        from repro.circuits import load, save

        path = tmp_path / "net.json"
        save(_sorter_net(8), path)
        a = load(path)
        save(_sorter_net(16), path)
        # force a distinct mtime even on coarse-grained filesystems
        st = os.stat(path)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        b = load(path)
        assert b is not a
        assert len(b.inputs) == 16
