"""Hypothesis property tests over the core data structures and networks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.batcher import apply_schedule, odd_even_merge_schedule
from repro.baselines.columnsort import columnsort, leighton_valid
from repro.circuits import simulate, simulate_payload
from repro.core import sequences as seq
from repro.core.mux_merger import (
    build_mux_merger_sorter,
    mux_merge_behavioral,
    mux_merger_sort_behavioral,
)
from repro.core.patchup import patchup_behavioral
from repro.core.prefix_sorter import prefix_sort_behavioral

# cache netlists across examples (hypothesis re-runs the body many times)
_NETS = {}


def _sorter(n):
    if n not in _NETS:
        _NETS[n] = build_mux_merger_sorter(n)
    return _NETS[n]


bits_pow2 = st.integers(1, 5).flatmap(
    lambda p: st.lists(
        st.integers(0, 1), min_size=1 << p, max_size=1 << p
    )
)


@given(bits_pow2)
def test_netlist_sorter_sorts_and_conserves(bits):
    x = np.array(bits, dtype=np.uint8)
    out = simulate(_sorter(x.size), x[None, :])[0]
    assert seq.is_sorted_binary(out)
    assert out.sum() == x.sum()


@given(bits_pow2)
def test_behavioral_sorters_agree(bits):
    x = np.array(bits, dtype=np.uint8)
    a = prefix_sort_behavioral(x)
    b = mux_merger_sort_behavioral(x)
    assert np.array_equal(a, b)
    assert np.array_equal(a, np.sort(x))


@given(bits_pow2)
def test_payload_is_a_permutation(bits):
    x = np.array(bits, dtype=np.uint8)
    pays = np.arange(x.size, dtype=np.int64)
    t, p = simulate_payload(_sorter(x.size), x[None, :], pays[None, :])
    assert sorted(p[0].tolist()) == list(range(x.size))
    assert all(x[pi] == ti for ti, pi in zip(t[0], p[0]))


@given(st.integers(1, 4), st.data())
def test_patchup_sorts_every_A_member_drawn(lg_half, data):
    n = 2 << lg_half
    members = seq.enumerate_A(n)
    z = members[data.draw(st.integers(0, len(members) - 1))]
    out = patchup_behavioral(z)
    assert seq.is_sorted_binary(out) and out.sum() == z.sum()


@given(st.integers(1, 5), st.data())
def test_mux_merge_sorts_any_bisorted(lg_half, data):
    h = 1 << lg_half
    zu = data.draw(st.integers(0, h))
    zl = data.draw(st.integers(0, h))
    x = np.concatenate([seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl)])
    out = mux_merge_behavioral(x)
    assert seq.is_sorted_binary(out) and out.sum() == x.sum()


@given(st.lists(st.integers(-1000, 1000), min_size=16, max_size=16))
def test_batcher_schedule_sorts_arbitrary_integers(values):
    out = apply_schedule(np.array(values), odd_even_merge_schedule(16))
    assert np.array_equal(out, np.sort(values))


@settings(deadline=None)
@given(
    st.sampled_from([(4, 2), (8, 2), (9, 3), (20, 4)]),
    st.data(),
)
def test_columnsort_sorts_arbitrary_values(dims, data):
    r, s = dims
    assert leighton_valid(r, s)
    values = data.draw(
        st.lists(st.integers(-100, 100), min_size=r * s, max_size=r * s)
    )
    out = columnsort(np.array(values), r, s)
    assert np.array_equal(out, np.sort(values))


@given(st.integers(1, 6), st.data())
def test_sorted_sequences_fixed_points(lg, data):
    """Every sorter fixes already-sorted inputs."""
    n = 1 << lg
    ones = data.draw(st.integers(0, n))
    x = seq.sorted_sequence(n, ones)
    assert np.array_equal(prefix_sort_behavioral(x), x)
    assert np.array_equal(mux_merger_sort_behavioral(x), x)


@given(st.integers(2, 5), st.data())
def test_reverse_sorted_is_worst_case_handled(lg, data):
    n = 1 << lg
    ones = data.draw(st.integers(0, n))
    x = seq.sorted_sequence(n, ones)[::-1].copy()
    out = simulate(_sorter(n), x[None, :])[0]
    assert seq.is_sorted_binary(out) and out.sum() == x.sum()
