"""Unit tests for the word sorter extension (sorting-as-binary-sorting)."""

import numpy as np
import pytest

from repro.circuits import simulate
from repro.networks.word_sorter import (
    RadixWordSorter,
    build_rank_circuit,
)


def _decode_dests(out, n):
    lg = n.bit_length() - 1
    return [
        int("".join(map(str, out[i * lg : (i + 1) * lg])), 2) for i in range(n)
    ]


class TestRankCircuit:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_stable_split_destinations(self, n):
        net = build_rank_circuit(n)
        from repro.circuits import exhaustive_inputs

        if n <= 10:
            cases = exhaustive_inputs(n)
        else:
            rng = np.random.default_rng(n)
            cases = rng.integers(0, 2, (200, n)).astype(np.uint8)
        for tags in cases:
            out = simulate(net, tags[None, :])[0]
            dests = _decode_dests(out, n)
            assert sorted(dests) == list(range(n)), (tags, dests)
            # stability: relative order preserved within each tag class
            zeros = [dests[i] for i in range(n) if tags[i] == 0]
            ones = [dests[i] for i in range(n) if tags[i] == 1]
            assert zeros == sorted(zeros)
            assert ones == sorted(ones)
            # zeros occupy the prefix
            assert all(d < len(zeros) for d in zeros)
            assert all(d >= len(zeros) for d in ones)

    def test_random_large(self, rng):
        n = 32
        net = build_rank_circuit(n)
        for _ in range(25):
            tags = rng.integers(0, 2, n).astype(np.uint8)
            out = simulate(net, tags[None, :])[0]
            dests = _decode_dests(out, n)
            assert sorted(dests) == list(range(n))

    def test_cost_n_lg_n_scaling(self):
        from repro.analysis import loglog_slope

        costs = {n: build_rank_circuit(n).cost() for n in (16, 32, 64, 128)}
        assert loglog_slope(list(costs), list(costs.values())) < 1.5

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            build_rank_circuit(12)


class TestRadixWordSorter:
    @pytest.mark.parametrize("permuter", ["benes", "radix_mux", "radix_fish"])
    def test_sorts_random_words(self, permuter, rng):
        ws = RadixWordSorter(16, 8, permuter=permuter)
        for _ in range(15):
            vals = rng.integers(0, 256, 16)
            out, rep = ws.sort(vals)
            assert np.array_equal(out, np.sort(vals))
            assert rep.passes == 8

    def test_sorts_with_duplicates(self, rng):
        ws = RadixWordSorter(16, 4)
        vals = rng.integers(0, 4, 16)  # many duplicates
        out, _ = ws.sort(vals)
        assert np.array_equal(out, np.sort(vals))

    def test_width_one_is_binary_sort(self, rng):
        ws = RadixWordSorter(8, 1)
        bits = rng.integers(0, 2, 8)
        out, _ = ws.sort(bits)
        assert np.array_equal(out, np.sort(bits))

    def test_extremes(self):
        ws = RadixWordSorter(8, 6)
        vals = np.array([63, 0, 63, 0, 31, 32, 1, 62])
        out, _ = ws.sort(vals)
        assert np.array_equal(out, np.sort(vals))

    def test_validation(self):
        with pytest.raises(ValueError):
            RadixWordSorter(12, 8)
        with pytest.raises(ValueError):
            RadixWordSorter(8, 0)
        with pytest.raises(ValueError):
            RadixWordSorter(8, 4, permuter="crossbar")
        ws = RadixWordSorter(8, 4)
        with pytest.raises(ValueError):
            ws.sort(np.arange(4))
        with pytest.raises(ValueError):
            ws.sort(np.full(8, 100))  # exceeds 4 bits

    def test_cost_accounting(self):
        ws = RadixWordSorter(16, 8)
        assert ws.cost() == 8 * (ws.rank_circuit.cost() + ws._permuter_cost)
        assert ws.sort_time() > 0

    def test_no_word_comparators_scaling_in_width(self):
        """Cost grows linearly in W (one split stage per bit) — the
        decomposition's selling point vs O(W)-per-comparator networks."""
        c4 = RadixWordSorter(16, 4).cost()
        c8 = RadixWordSorter(16, 8).cost()
        assert c8 == 2 * c4

    def test_batcher_word_model(self):
        assert RadixWordSorter.batcher_word_cost(16, 8) == pytest.approx(
            5 * 8 * 4 * (16 - 4 + 4)
        )
