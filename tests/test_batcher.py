"""Unit tests for Batcher baselines (Fig. 4(a), Fig. 1)."""

import numpy as np
import pytest

from repro.analysis import verify_netlist_random, verify_sorter_exhaustive
from repro.baselines.batcher import (
    apply_schedule,
    batcher_depth,
    bitonic_comparator_count,
    bitonic_schedule,
    build_bitonic_sorter,
    build_odd_even_merge_sorter,
    odd_even_merge_schedule,
    oem_comparator_count,
)


class TestOddEvenMerge:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_odd_even_merge_sorter(n))

    @pytest.mark.parametrize("n", [32, 64])
    def test_random(self, n):
        assert verify_netlist_random(build_odd_even_merge_sorter(n))

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_exact_comparator_count(self, n):
        assert build_odd_even_merge_sorter(n).cost() == oem_comparator_count(n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_exact_depth(self, n):
        assert build_odd_even_merge_sorter(n).depth() == batcher_depth(n)

    def test_fig1_four_input_network(self):
        # Fig. 1's 4-input sorting network: cost 5, depth 3
        net = build_odd_even_merge_sorter(4)
        assert net.cost() == 5
        assert net.depth() == 3

    def test_sorts_arbitrary_values(self, rng):
        sched = odd_even_merge_schedule(32)
        for _ in range(50):
            v = rng.integers(0, 1000, 32)
            assert np.array_equal(apply_schedule(v, sched), np.sort(v))


class TestBitonic:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_bitonic_sorter(n))

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_exact_count_and_depth(self, n):
        net = build_bitonic_sorter(n)
        assert net.cost() == bitonic_comparator_count(n)
        assert net.depth() == batcher_depth(n)

    def test_bitonic_costs_more_than_oem(self):
        for n in (8, 32, 128):
            assert bitonic_comparator_count(n) > oem_comparator_count(n)

    def test_sorts_arbitrary_values(self, rng):
        sched = bitonic_schedule(16)
        for _ in range(50):
            v = rng.integers(-50, 50, 16)
            assert np.array_equal(apply_schedule(v, sched), np.sort(v))


class TestZeroOnePrinciple:
    def test_binary_implies_arbitrary(self, rng):
        """The 0-1 principle's practical use: the schedules verified
        exhaustively on bits also sort arbitrary integers."""
        for sched_fn in (odd_even_merge_schedule, bitonic_schedule):
            sched = sched_fn(16)
            for _ in range(25):
                v = rng.normal(size=16)
                assert np.array_equal(apply_schedule(v, sched), np.sort(v))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            odd_even_merge_schedule(12)
        with pytest.raises(ValueError):
            bitonic_schedule(9)
