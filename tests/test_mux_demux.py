"""Unit tests for (n,k)-multiplexers and (k,n)-demultiplexers (Fig. 3)."""

import math

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, simulate
from repro.components import group_demultiplexer, group_multiplexer


def _mux(n, k):
    groups = n // k
    lg = int(math.log2(groups))
    b = CircuitBuilder()
    ws = b.add_inputs(n)
    sel = b.add_inputs(lg)
    return b.build(group_multiplexer(b, ws, k, sel))


def _demux(k, groups):
    lg = int(math.log2(groups))
    b = CircuitBuilder()
    ws = b.add_inputs(k)
    sel = b.add_inputs(lg)
    return b.build(group_demultiplexer(b, ws, groups, sel))


class TestGroupMultiplexer:
    @pytest.mark.parametrize("n,k", [(16, 4), (16, 8), (8, 2), (32, 4)])
    def test_selects_each_group(self, n, k, rng):
        net = _mux(n, k)
        groups = n // k
        lg = int(math.log2(groups))
        vec = rng.integers(0, 2, n).tolist()
        for g in range(groups):
            sel = [(g >> (lg - 1 - i)) & 1 for i in range(lg)]
            out = simulate(net, [vec + sel])[0].tolist()
            assert out == vec[g * k : (g + 1) * k]

    @pytest.mark.parametrize("n,k", [(16, 4), (64, 8), (64, 4)])
    def test_cost_n_minus_k_depth_lg(self, n, k):
        # paper Fig. 3(a): "exacts n costs and lg(n/k) depth"; built from
        # k (n/k,1)-trees the exact count is n - k <= n
        net = _mux(n, k)
        assert net.cost() == n - k
        assert net.depth() == int(math.log2(n // k))

    def test_fig3a_shape(self):
        # the paper's (16,4)-multiplexer: 4 groups of 4, 2 select bits
        net = _mux(16, 4)
        assert len(net.inputs) == 16 + 2
        assert len(net.outputs) == 4

    def test_single_group_passthrough(self):
        b = CircuitBuilder()
        ws = b.add_inputs(4)
        outs = group_multiplexer(b, ws, 4, [])
        net = b.build(outs)
        assert net.cost() == 0
        assert simulate(net, [[1, 0, 1, 1]])[0].tolist() == [1, 0, 1, 1]

    def test_bad_select_width(self):
        b = CircuitBuilder()
        ws = b.add_inputs(16)
        sel = b.add_inputs(3)
        with pytest.raises(ValueError):
            group_multiplexer(b, ws, 4, sel)

    def test_bad_group_divisibility(self):
        b = CircuitBuilder()
        ws = b.add_inputs(10)
        sel = b.add_inputs(2)
        with pytest.raises(ValueError):
            group_multiplexer(b, ws, 4, sel)


class TestGroupDemultiplexer:
    @pytest.mark.parametrize("k,groups", [(4, 4), (8, 2), (2, 8)])
    def test_routes_to_selected_group(self, k, groups, rng):
        net = _demux(k, groups)
        lg = int(math.log2(groups))
        vec = rng.integers(0, 2, k).tolist()
        for g in range(groups):
            sel = [(g >> (lg - 1 - i)) & 1 for i in range(lg)]
            out = simulate(net, [vec + sel])[0].tolist()
            expect = [0] * (k * groups)
            expect[g * k : (g + 1) * k] = vec
            assert out == expect

    def test_fig3b_shape(self):
        # the paper's (4,16)-demultiplexer
        net = _demux(4, 4)
        assert len(net.inputs) == 4 + 2
        assert len(net.outputs) == 16

    @pytest.mark.parametrize("k,groups", [(4, 4), (8, 8)])
    def test_cost_depth(self, k, groups):
        net = _demux(k, groups)
        n = k * groups
        assert net.cost() == n - k
        assert net.depth() == int(math.log2(groups))

    def test_bad_select_width(self):
        b = CircuitBuilder()
        ws = b.add_inputs(4)
        sel = b.add_inputs(1)
        with pytest.raises(ValueError):
            group_demultiplexer(b, ws, 4, sel)

    def test_mux_demux_roundtrip(self, rng):
        # demux to group g then mux group g back: identity on the block
        k, groups = 4, 4
        n = k * groups
        dm = _demux(k, groups)
        mx = _mux(n, k)
        vec = rng.integers(0, 2, k).tolist()
        for g in range(groups):
            sel = [(g >> 1) & 1, g & 1]
            spread = simulate(dm, [vec + sel])[0].tolist()
            back = simulate(mx, [spread + sel])[0].tolist()
            assert back == vec
