"""Direct unit tests for comparator stages and remaining edge paths."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, PipelinedNetlist, simulate
from repro.components import (
    adjacent_comparator_stage,
    half_distance_comparator_stage,
)
from repro.core.fish_sorter import FishSorter
from repro.networks.permutation import FISH_MIN_SIZE, RadixPermuter


class TestComparatorStages:
    def test_adjacent_pairs(self, rng):
        b = CircuitBuilder()
        ws = b.add_inputs(8)
        net = b.build(adjacent_comparator_stage(b, ws))
        for _ in range(30):
            x = rng.integers(0, 2, 8)
            out = simulate(net, [x.tolist()])[0]
            for i in range(0, 8, 2):
                assert out[i] == min(x[i], x[i + 1])
                assert out[i + 1] == max(x[i], x[i + 1])

    def test_half_distance_pairs(self, rng):
        b = CircuitBuilder()
        ws = b.add_inputs(8)
        net = b.build(half_distance_comparator_stage(b, ws))
        for _ in range(30):
            x = rng.integers(0, 2, 8)
            out = simulate(net, [x.tolist()])[0]
            for i in range(4):
                assert out[i] == min(x[i], x[i + 4])
                assert out[i + 4] == max(x[i], x[i + 4])

    def test_odd_width_rejected(self):
        b = CircuitBuilder()
        ws = b.add_inputs(5)
        with pytest.raises(ValueError):
            adjacent_comparator_stage(b, ws)
        with pytest.raises(ValueError):
            half_distance_comparator_stage(b, ws)

    def test_stage_cost(self):
        b = CircuitBuilder()
        ws = b.add_inputs(16)
        net = b.build(adjacent_comparator_stage(b, ws))
        assert net.cost() == 8 and net.depth() == 1


class TestRadixPermuterInternals:
    def test_fish_min_size_fallback(self):
        """Below FISH_MIN_SIZE the fish backend's small levels fall back
        to combinational distributors."""
        rp = RadixPermuter(16, backend="fish")
        assert any(m >= FISH_MIN_SIZE for m in rp._fish)
        assert all(m < FISH_MIN_SIZE for m in rp._combinational)

    def test_level_sizes(self):
        rp = RadixPermuter(16, backend="mux_merger")
        assert rp._level_sizes() == [16, 8, 4, 2]

    def test_distributor_time_positive_monotone(self):
        rp = RadixPermuter(32, backend="mux_merger")
        times = [rp.distributor_time(m) for m in rp._level_sizes()]
        assert times == sorted(times, reverse=True)
        assert all(t > 0 for t in times)

    def test_report_fields(self, rng):
        rp = RadixPermuter(8, backend="prefix")
        _, rep = rp.permute(list(rng.permutation(8)), np.arange(8))
        assert rep.n == 8 and rep.backend == "prefix"
        assert rep.distributor_levels == 3


class TestMoreEdges:
    def test_pipelined_netlist_zero_latency(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.buf(x)])  # pure wire, depth 0
        pl = PipelinedNetlist(net)
        assert pl.latency == 0
        outs, makespan = pl.run([[1], [0]])
        assert outs == [[1], [0]]
        assert makespan == 1  # 2 tokens, 0 latency

    def test_circuit_stats_str(self):
        from repro.core import build_mux_merger_sorter

        st = build_mux_merger_sorter(8).stats()
        text = str(st)
        assert "cost=" in text and "COMPARATOR" in text

    def test_fish_inventory_labels(self):
        fs = FishSorter(64)
        labels = [p.label for p in fs.inventory()]
        assert any("(n,n/k)-mux" in l for l in labels)
        assert any("group-sorter" in l for l in labels)
        assert any("k-swap" in l for l in labels)
        assert any("two-way-mux-merger" in l for l in labels)
        assert any("base-sorter" in l for l in labels)

    def test_netlist_repr(self):
        from repro.core import build_mux_merger_sorter

        assert "mux-merger-sorter-8" in repr(build_mux_merger_sorter(8))

    def test_payload_sim_rejects_non_binary_tags(self):
        from repro.circuits import simulate_payload
        from repro.core import build_mux_merger_sorter

        net = build_mux_merger_sorter(4)
        with pytest.raises(ValueError):
            simulate_payload(net, [[0, 1, 2, 0]], [[1, 2, 3, 4]])
