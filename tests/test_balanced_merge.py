"""Unit tests for the balanced merging block and Fig. 4(b) sorter."""

import numpy as np
import pytest

from repro.analysis import verify_sorter_exhaustive
from repro.circuits import simulate
from repro.core import sequences as seq
from repro.core.balanced_merge import (
    balanced_merge_behavioral,
    balanced_stage_behavioral,
    build_alternative_oem_sorter,
    build_balanced_merging_block,
)


class TestBalancedStage:
    def test_pairs_i_with_mirror(self):
        z = np.array([1, 0, 0, 0], dtype=np.uint8)
        y = balanced_stage_behavioral(z)
        # pairs (0,3), (1,2): min up
        assert y.tolist() == [0, 0, 0, 1]

    def test_idempotent_on_sorted(self):
        s = seq.sorted_sequence(8, 3)
        assert np.array_equal(balanced_stage_behavioral(s), s)


class TestBalancedMergingBlock:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_sorts_all_A_n(self, n):
        net = build_balanced_merging_block(n)
        for z in seq.enumerate_A(n):
            out = simulate(net, z[None, :])[0]
            assert seq.is_sorted_binary(out)
            assert out.sum() == z.sum()

    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_cost_depth(self, n):
        net = build_balanced_merging_block(n)
        lg = n.bit_length() - 1
        assert net.cost() == n // 2 * lg  # (n/2) lg n comparators
        assert net.depth() == lg

    def test_netlist_matches_behavioral(self, rng):
        net = build_balanced_merging_block(16)
        for z in seq.enumerate_A(16)[::7]:
            out = simulate(net, z[None, :])[0]
            assert np.array_equal(out, balanced_merge_behavioral(z))

    def test_does_not_sort_arbitrary_inputs(self):
        # the block only sorts A_n members; exhibit a non-member failure
        net = build_balanced_merging_block(8)
        z = np.array([1, 0, 0, 1, 0, 0, 0, 0], dtype=np.uint8)
        assert not seq.in_A(z)
        out = simulate(net, z[None, :])[0]
        assert not seq.is_sorted_binary(out)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            build_balanced_merging_block(6)


class TestAlternativeOEMSorter:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_sorts_exhaustively(self, n):
        assert verify_sorter_exhaustive(build_alternative_oem_sorter(n))

    def test_cost_n_lg2_scaling(self):
        # C(n) = 2C(n/2) + (n/2) lg n with C(2) = 1 -> exactly
        # (n/4) lg n (lg n + 1) - (n - 1) + n/2; check the recurrence
        def expect(n):
            if n == 2:
                return 1
            return 2 * expect(n // 2) + (n // 2) * (n.bit_length() - 1)

        for n in (4, 8, 16, 64, 128):
            assert build_alternative_oem_sorter(n).cost() == expect(n)
        # per-doubling growth tends to 2 * ((lg+1)/lg)^2 ~ 2.7 at n=128
        assert 2.0 < expect(128) / expect(64) < 2.9

    def test_depth_quadratic_in_lg(self):
        # D(n) = D(n/2) + lg n = lg n (lg n + 1) / 2
        for n in (4, 8, 16, 64):
            lg = n.bit_length() - 1
            assert build_alternative_oem_sorter(n).depth() == lg * (lg + 1) // 2

    def test_costs_more_than_batcher_same_depth(self):
        # Fig. 4(b) discussion: the balanced merging block is "more
        # complex" than Batcher's odd-even merger
        from repro.baselines.batcher import build_odd_even_merge_sorter

        n = 64
        alt = build_alternative_oem_sorter(n)
        oem = build_odd_even_merge_sorter(n)
        assert alt.cost() > oem.cost()
        assert alt.depth() == oem.depth()
