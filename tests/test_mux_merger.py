"""Unit tests for Network 2 — the mux-merger binary sorter (Fig. 6, Table I)."""

import numpy as np
import pytest

from repro.analysis import verify_netlist_random, verify_sorter_exhaustive
from repro.circuits import simulate
from repro.components import quarter_perm_from_cycles
from repro.core import sequences as seq
from repro.core.mux_merger import (
    IN_SWAP_PERMS,
    OUT_SWAP_PERMS,
    build_mux_merger,
    build_mux_merger_sorter,
    classify_bisorted,
    mux_merge_behavioral,
    mux_merger_sort_behavioral,
)


def _all_bisorted(n):
    h = n // 2
    for zu in range(h + 1):
        for zl in range(h + 1):
            yield np.concatenate(
                [seq.sorted_sequence(h, zu), seq.sorted_sequence(h, zl)]
            )


class TestMerger:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_merges_all_bisorted(self, n):
        net = build_mux_merger(n)
        for x in _all_bisorted(n):
            out = simulate(net, x[None, :])[0]
            assert seq.is_sorted_binary(out), x
            assert out.sum() == x.sum()

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_behavioral_matches_netlist(self, n):
        net = build_mux_merger(n)
        for x in _all_bisorted(n):
            assert np.array_equal(
                simulate(net, x[None, :])[0], mux_merge_behavioral(x)
            )

    def test_all_select_cases_reached(self):
        # Table I: each of the four (middle-bit) cases must occur
        seen = set()
        for x in _all_bisorted(16):
            seen.add(classify_bisorted(x))
        assert seen == {0, 1, 2, 3}

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_merger_cost_4n_bound(self, n):
        # C_m(n) = 2n + C_m(n/2) <= 4n (our base cases use comparators,
        # so measured cost is strictly below the bound)
        net = build_mux_merger(n)
        assert net.cost() <= 4 * n

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_merger_depth_2_lg_n(self, n):
        # D_m(n) = 2 per level -> <= 2 lg n
        net = build_mux_merger(n)
        lg = n.bit_length() - 1
        assert net.depth() <= 2 * lg


class TestTableI:
    def test_tables_are_permutations(self):
        for perm in IN_SWAP_PERMS + OUT_SWAP_PERMS:
            assert sorted(perm) == [0, 1, 2, 3]

    def test_in_swap_matches_cycle_notation(self):
        # derived settings documented in the module docstring
        assert IN_SWAP_PERMS[0] == quarter_perm_from_cycles([2, 3])
        assert IN_SWAP_PERMS[1] == quarter_perm_from_cycles([2, 3, 4])
        assert IN_SWAP_PERMS[2] == quarter_perm_from_cycles([1, 3])
        assert IN_SWAP_PERMS[3] == quarter_perm_from_cycles([1, 3, 4])

    def test_out_swap_matches_cycle_notation(self):
        assert OUT_SWAP_PERMS[0] == quarter_perm_from_cycles()
        assert OUT_SWAP_PERMS[1] == quarter_perm_from_cycles([2, 4, 3])
        assert OUT_SWAP_PERMS[2] == quarter_perm_from_cycles([2, 4, 3])
        assert OUT_SWAP_PERMS[3] == quarter_perm_from_cycles([1, 3], [2, 4])

    def test_in_swap_feeds_merger_the_bisorted_pair(self):
        # structural check of the case analysis for every bisorted input
        n, q = 16, 4
        for x in _all_bisorted(n):
            sel = classify_bisorted(x)
            quarters = [x[i * q : (i + 1) * q] for i in range(4)]
            arranged = [quarters[IN_SWAP_PERMS[sel][i]] for i in range(4)]
            bottom = np.concatenate(arranged[2:])
            assert seq.is_bisorted(bottom), (x, sel)
            # outer positions hold the clean quarters
            assert seq.is_clean(arranged[0]) and seq.is_clean(arranged[1])

    def test_alternative_assignment_also_sorts(self):
        """Any assignment satisfying the case analysis is equivalent; try
        one with the outer (clean) quarters swapped on the IN side and
        the OUT side compensating."""
        swap_positions = (1, 0, 2, 3)  # IN: exchange the two bypass slots
        alt_in = tuple(
            tuple(p[swap_positions[i]] for i in range(4)) for p in IN_SWAP_PERMS
        )
        # OUT must read the bypass quarters from their swapped slots
        alt_out = tuple(
            tuple((1 - p[i]) if p[i] < 2 else p[i] for i in range(4))
            for p in OUT_SWAP_PERMS
        )
        net = build_mux_merger(16, alt_in, alt_out)
        for x in _all_bisorted(16):
            out = simulate(net, x[None, :])[0]
            assert seq.is_sorted_binary(out), x


class TestSorter:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_mux_merger_sorter(n))

    @pytest.mark.parametrize("n", [32, 64, 128])
    def test_random_large(self, n):
        assert verify_netlist_random(build_mux_merger_sorter(n), trials=200)

    def test_behavioral_matches(self, rng):
        net = build_mux_merger_sorter(32)
        for _ in range(50):
            x = rng.integers(0, 2, 32).astype(np.uint8)
            assert np.array_equal(
                simulate(net, x[None, :])[0], mux_merger_sort_behavioral(x)
            )

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_cost_4n_lg_n_bound(self, n):
        # paper: C(n) = 2C(n/2) + 4n = 4 n lg n (upper bound for us)
        net = build_mux_merger_sorter(n)
        lg = n.bit_length() - 1
        assert net.cost() <= 4 * n * lg

    def test_no_adder_gates(self):
        """The whole point of Network 2: "eliminates the need for a
        prefix adder" — the netlist contains only switching elements."""
        net = build_mux_merger_sorter(64)
        assert set(net.cost_by_kind()) <= {"COMPARATOR", "SWITCH4"}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            build_mux_merger_sorter(10)

    def test_cheaper_than_prefix_sorter(self):
        from repro.core import build_prefix_sorter

        # with real gate-level adders, Network 2 measures cheaper
        assert (
            build_mux_merger_sorter(256).cost() < build_prefix_sorter(256).cost()
        )
