"""Unit tests for netlist optimization passes."""

import numpy as np
import pytest

from repro.baselines.columnsort import build_columnsort_network
from repro.baselines.muller_preparata import build_muller_preparata_sorter
from repro.circuits import (
    CircuitBuilder,
    exhaustive_inputs,
    fold_constants,
    optimize,
    prune_dead,
    simulate,
)
from repro.core import build_mux_merger_sorter, build_prefix_sorter


def _same_behavior(a, b, n=None):
    n = n or len(a.inputs)
    if n <= 14:
        inp = exhaustive_inputs(n)
    else:
        inp = np.random.default_rng(0).integers(0, 2, (200, n)).astype(np.uint8)
    return np.array_equal(simulate(a, inp), simulate(b, inp))


class TestPruneDead:
    def test_removes_dangling_logic(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        out = b.and_(x, y)
        _dead = b.xor(b.or_(x, y), y)
        net = b.build([out])
        pruned = prune_dead(net)
        assert pruned.cost() == 1
        assert _same_behavior(net, pruned)

    def test_keeps_everything_live(self):
        net = build_mux_merger_sorter(8)
        assert prune_dead(net).cost() == net.cost()

    def test_transitive_deadness(self):
        b = CircuitBuilder()
        x = b.add_input()
        d1 = b.not_(x)
        d2 = b.not_(d1)  # chain feeding nothing
        net = b.build([b.buf(x)])
        assert prune_dead(net).cost() == 0


class TestFoldConstants:
    def test_and_with_zero(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.and_(x, b.const(0))])
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[1]]).tolist() == [[0]]

    def test_or_with_zero_aliases(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.or_(x, b.const(0))])
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[1]]).tolist() == [[1]]

    def test_xor_with_one_becomes_not(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.xor(x, b.const(1))])
        folded = fold_constants(net)
        assert folded.stats().by_kind == {"NOT": 1}
        assert simulate(folded, [[1]]).tolist() == [[0]]

    def test_self_input_gates(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.and_(x, x), b.xor(x, x), b.xnor(x, x)])
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[1]]).tolist() == [[1, 0, 1]]
        assert simulate(folded, [[0]]).tolist() == [[0, 0, 1]]

    def test_comparator_with_constant(self):
        b = CircuitBuilder()
        x = b.add_input()
        lo, hi = b.comparator(x, b.const(1))
        net = b.build([lo, hi])
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[0]]).tolist() == [[0, 1]]
        assert simulate(folded, [[1]]).tolist() == [[1, 1]]

    def test_switch_with_constant_control(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        o = b.switch2(x, y, b.const(1))
        net = b.build(list(o))
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[1, 0]]).tolist() == [[0, 1]]

    def test_mux_demux_with_constant_select(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        m = b.mux2(x, y, b.const(0))
        d0, d1 = b.demux2(x, b.const(1))
        net = b.build([m, d0, d1])
        folded = fold_constants(net)
        assert folded.cost() == 0
        assert simulate(folded, [[1, 0]]).tolist() == [[1, 0, 1]]

    def test_cascade_folds_through(self):
        b = CircuitBuilder()
        x = b.add_input()
        k = b.and_(b.const(1), b.const(1))  # folds to 1
        net = b.build([b.and_(x, k)])
        folded = fold_constants(net)
        assert folded.cost() == 0


class TestOptimize:
    @pytest.mark.parametrize(
        "builder", [build_mux_merger_sorter, build_prefix_sorter,
                    build_muller_preparata_sorter, build_columnsort_network]
    )
    def test_behavior_preserved(self, builder):
        net = builder(8)
        opt = optimize(net)
        assert _same_behavior(net, opt)
        assert opt.cost() <= net.cost()

    def test_trims_mp_decoder_dead_slots(self):
        net = build_muller_preparata_sorter(16)
        opt = optimize(net)
        assert opt.cost() < net.cost()

    def test_trims_columnsort_pad_comparators(self):
        net = build_columnsort_network(16)
        opt = optimize(net)
        # the shift stage's constant pads let comparators fold away
        assert opt.cost() < net.cost()

    def test_idempotent(self):
        net = build_muller_preparata_sorter(8)
        once = optimize(net)
        twice = optimize(once)
        assert twice.cost() == once.cost()

    def test_tight_networks_untouched(self):
        net = build_mux_merger_sorter(16)
        assert optimize(net).cost() == net.cost()
