"""Unit tests for repro.circuits.netlist."""

import pytest

from repro.circuits import CircuitBuilder, Netlist
from repro.circuits.elements import AND, BUF, COMPARATOR, Element


def _and_net():
    b = CircuitBuilder("t")
    x, y = b.add_inputs(2)
    z = b.and_(x, y)
    return b.build([z])


class TestValidation:
    def test_undriven_input_rejected(self):
        e = Element(AND, (0, 1), (2,), None)
        with pytest.raises(ValueError, match="undriven"):
            Netlist(3, [e], inputs=[0], outputs=[2])

    def test_double_driver_rejected(self):
        e1 = Element(BUF, (0,), (1,), None)
        e2 = Element(BUF, (0,), (1,), None)
        with pytest.raises(ValueError, match="multiple drivers"):
            Netlist(2, [e1, e2], inputs=[0], outputs=[1])

    def test_undriven_output_rejected(self):
        with pytest.raises(ValueError, match="undriven"):
            Netlist(2, [], inputs=[0], outputs=[1])

    def test_constant_must_be_bit(self):
        with pytest.raises(ValueError, match="non-bit"):
            Netlist(1, [], inputs=[], outputs=[0], constants={0: 2})

    def test_out_of_range_wire(self):
        e = Element(BUF, (5,), (1,), None)
        with pytest.raises(ValueError):
            Netlist(2, [e], inputs=[0], outputs=[1])


class TestAccounting:
    def test_cost_sums_element_costs(self):
        b = CircuitBuilder()
        ws = b.add_inputs(4)
        s1, s0 = b.add_inputs(2)
        b4 = b.switch4(ws, s1, s0, (
            (0, 1, 2, 3), (1, 0, 2, 3), (0, 1, 3, 2), (3, 2, 1, 0)))
        net = b.build(list(b4))
        assert net.cost() == 4  # one 4x4 switch = four 2x2

    def test_depth_longest_path(self):
        b = CircuitBuilder()
        x = b.add_input()
        y = b.add_input()
        chain = x
        for _ in range(5):
            chain = b.not_(chain)
        merged = b.and_(chain, y)
        net = b.build([merged])
        assert net.depth() == 6

    def test_depth_counts_control_paths(self):
        # adaptive networks derive controls from data; the control path
        # contributes to depth exactly like a data path
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        ctrl = b.not_(b.not_(b.not_(x)))
        o0, o1 = b.switch2(x, y, ctrl)
        net = b.build([o0, o1])
        assert net.depth() == 4  # 3 NOTs + switch

    def test_buffer_free_depth(self):
        b = CircuitBuilder()
        x = b.add_input()
        w = b.buf(b.buf(b.buf(x)))
        net = b.build([w])
        assert net.depth() == 0
        assert net.cost() == 0

    def test_max_depth_includes_dangling_logic(self):
        b = CircuitBuilder()
        x = b.add_input()
        out = b.not_(x)
        _dead = b.not_(b.not_(out))  # deeper, feeds nothing
        net = b.build([out])
        assert net.depth() == 1
        assert net.max_depth() == 3

    def test_stats(self):
        net = _and_net()
        st = net.stats()
        assert st.cost == 1
        assert st.depth == 1
        assert st.n_inputs == 2 and st.n_outputs == 1
        assert st.by_kind == {"AND": 1}

    def test_cost_by_kind(self):
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        lo, hi = b.comparator(x, y)
        z = b.and_(lo, hi)
        net = b.build([z])
        assert net.cost_by_kind() == {"COMPARATOR": 1, "AND": 1}

    def test_wire_depths_cached_consistently(self):
        net = _and_net()
        assert net.wire_depths() is net.wire_depths()
