"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# First calls inside property tests may build whole netlists (hundreds of
# ms); wall-clock deadlines would make such tests flaky, so disable them
# globally and rely on example counts instead.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session", autouse=True)
def _isolated_jit_cache(tmp_path_factory):
    """Point the JIT's persistent plan cache at a session-scoped tmpdir
    so tests never read from or pollute the user's real cache directory
    (an explicit REPRO_JIT_CACHE, e.g. from CI, is respected)."""
    if "REPRO_JIT_CACHE" not in os.environ:
        os.environ["REPRO_JIT_CACHE"] = str(
            tmp_path_factory.mktemp("jit-cache")
        )
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need randomness share this seed."""
    return np.random.default_rng(0xC1EE)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running verification test")
