"""Shared fixtures for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# First calls inside property tests may build whole netlists (hundreds of
# ms); wall-clock deadlines would make such tests flaky, so disable them
# globally and rely on example counts instead.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need randomness share this seed."""
    return np.random.default_rng(0xC1EE)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running verification test")
