"""Documentation-consistency checks.

The deliverables include DESIGN.md, EXPERIMENTS.md, README, and docs/;
these tests keep them honest against the code: every bench is indexed,
every example is documented, every claimed artifact has its regenerator,
and the headline numbers quoted in the docs match the measured goldens.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestExperimentsIndexesBenches:
    def test_every_bench_module_mentioned(self):
        text = _read("EXPERIMENTS.md") + _read("DESIGN.md")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            # performance/app/claims benches are harness-level; paper
            # benches must be indexed by name in the experiment docs
            if bench.stem in (
                "bench_substrate_performance",
                "bench_app_multiplexer",
                "bench_claims_ledger",
            ):
                continue
            assert bench.name in text, f"{bench.name} not indexed in docs"


class TestReadme:
    def test_mentions_every_example(self):
        text = _read("README.md")
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in text, f"{script.name} missing from README"

    def test_quickstart_instructions_runnable(self):
        text = _read("README.md")
        assert "pytest benchmarks/ --benchmark-only" in text
        assert "python setup.py develop" in text  # offline install path

    def test_headline_table_present(self):
        text = _read("README.md")
        assert "Network 3" in text and "O(n)" in text


class TestDesignDoc:
    def test_no_title_mismatch_flag(self):
        # DESIGN.md must positively confirm the paper identity
        text = _read("DESIGN.md")
        assert "no title collision" in text.lower()

    def test_inventory_mentions_all_packages(self):
        text = _read("DESIGN.md")
        for pkg in ("repro.circuits", "repro.components", "repro.core",
                    "repro.baselines", "repro.networks", "repro.analysis"):
            assert pkg.split(".")[1] in text


class TestExperimentsNumbersMatchMeasurement:
    """Spot-check that headline numbers quoted in EXPERIMENTS.md are the
    measured ones (golden values)."""

    def test_fitted_constants_quoted(self):
        text = _read("EXPERIMENTS.md")
        for value in ("2.96", "3.99", "16.1"):
            assert value in text

    def test_fish_cost_table_row(self):
        from repro.core.fish_sorter import FishSorter

        text = _read("EXPERIMENTS.md")
        measured = FishSorter(1024).cost()
        assert str(measured) in text  # 15883 appears in the Fig. 7 table

    def test_aks_crossover_quoted(self):
        text = _read("EXPERIMENTS.md")
        assert "2^78" in text

    def test_mux_merger_cost_row(self):
        from repro.core import build_mux_merger_sorter

        assert str(build_mux_merger_sorter(256).cost()) in _read("EXPERIMENTS.md")


class TestDocsFolder:
    @pytest.mark.parametrize(
        "name", ["PAPER_MAP.md", "TUTORIAL.md", "PERFORMANCE.md", "API.md"]
    )
    def test_docs_exist_and_nonempty(self, name):
        path = ROOT / "docs" / name
        assert path.is_file() and path.stat().st_size > 500

    def test_paper_map_covers_all_sections(self):
        text = _read("docs/PAPER_MAP.md")
        for sec in ("Section I", "Section II", "Section III-A",
                    "Section III-B", "Section III-C", "Section IV",
                    "Section V"):
            assert sec in text
