"""Tests for the bit-slice JIT (repro.circuits.jit).

The load-bearing guarantees, in the order the issue states them:

* **differential** — jit ≡ engine ≡ interpreter, bit for bit, on random
  netlists (every element kind, control-tagged steering wires),
  exhaustively for small sorters, and on *faulted* netlists (mutants are
  netlist rewrites, so they must flow through codegen unchanged);
* **optimization passes are semantics-preserving** — a hypothesis
  property over randomly built netlists;
* **the persistent disk cache never loads a torn entry** — atomic
  writes + checksum verification, proven against deliberate corruption
  and against a SIGKILLed writer;
* **routing policy** — ``REPRO_JIT`` override, size thresholds, and the
  warm-up counter that keeps one-shot fault-campaign mutants from
  triggering compile storms.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import engine as engine_mod
from repro.circuits import jit
from repro.circuits.faults import (
    ControlInvert,
    OutputSwap,
    StuckAt,
    apply_fault,
    control_wires,
    enumerate_faults,
    sample_faults,
)
from repro.circuits.fuzz import random_netlist
from repro.circuits.netlist import Netlist
from repro.circuits.serialize import netlist_key, to_json
from repro.circuits.simulate import (
    exhaustive_inputs,
    simulate,
    simulate_engine,
    simulate_interpreted,
    simulate_jit,
)
from repro.core.api import make_sorter
from repro.errors import SimulationError


def _check_all_backends(net, batch):
    """jit ≡ engine ≡ interpreter on one batch."""
    ref = simulate_interpreted(net, batch)
    eng = simulate_engine(net, batch)
    out = jit.compile_jit(net).execute(batch)
    raw = jit.compile_jit(net, optimize=False).execute(batch)
    assert np.array_equal(ref, eng)
    assert np.array_equal(ref, out)
    assert np.array_equal(ref, raw)
    return ref


class TestDifferential:
    @pytest.mark.parametrize("network", ["prefix", "mux_merger"])
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_exhaustive_small_sorters(self, network, n):
        """Acceptance: exhaustive n≤8 jit-vs-interpreter parity."""
        net = make_sorter(n, network)
        _check_all_backends(net, exhaustive_inputs(n))

    def test_random_netlists_all_kinds(self, rng):
        for _ in range(25):
            net = random_netlist(rng, n_inputs=6, n_elements=40,
                                 n_outputs=5)
            assert net.control_wires  # steering paths are tagged
            _check_all_backends(net, exhaustive_inputs(6))

    def test_batch_of_one(self, rng):
        net = make_sorter(16, "prefix")
        plan = jit.compile_jit(net)
        for _ in range(8):
            row = rng.integers(0, 2, size=(1, 16)).astype(np.uint8)
            assert np.array_equal(simulate_interpreted(net, row),
                                  plan.execute(row))

    def test_large_batch_crosses_word_boundaries(self, rng):
        net = make_sorter(8, "mux_merger")
        plan = jit.compile_jit(net)
        for batch_size in (63, 64, 65, 127, 200):
            batch = rng.integers(0, 2, size=(batch_size, 8)).astype(np.uint8)
            assert np.array_equal(simulate_interpreted(net, batch),
                                  plan.execute(batch))

    def test_faulted_netlists(self, rng):
        """Mutants are netlist rewrites; they flow through codegen
        unchanged and every backend agrees on the *broken* behavior."""
        net = make_sorter(8, "prefix")
        batch = exhaustive_inputs(8)
        clean = simulate_interpreted(net, batch)
        steering = sorted(set(control_wires(net)) - set(net.inputs))
        faults = [
            StuckAt(net.inputs[0], 1),
            ControlInvert(steering[0]),
            OutputSwap(next(i for i, e in enumerate(net.elements)
                            if len(e.outs) >= 2)),
        ] + list(sample_faults(enumerate_faults(net), 5, seed=3))
        changed = 0
        for fault in faults:
            mutant = apply_fault(net, fault)
            out = _check_all_backends(mutant, batch)
            changed += int(not np.array_equal(out, clean))
        assert changed  # at least one mutant visibly misbehaves

    def test_mutant_gets_its_own_cache_key(self):
        net = make_sorter(8, "prefix")
        steering = sorted(set(control_wires(net)) - set(net.inputs))
        mutant = apply_fault(net, ControlInvert(steering[0]))
        assert netlist_key(net) != netlist_key(mutant)

    def test_wrong_arity_rejected(self):
        net = make_sorter(8, "prefix")
        with pytest.raises(SimulationError):
            simulate_jit(net, np.zeros((4, 5), dtype=np.uint8))


class TestOptimizePasses:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_passes_preserve_semantics(self, seed):
        """Property: no pass — individually or combined — ever changes
        simulation results, including on control-tagged steering paths
        (random_netlist tags every switch/mux select wire)."""
        rng = np.random.default_rng(seed)
        net = random_netlist(rng, n_inputs=5, n_elements=30, n_outputs=4)
        batch = exhaustive_inputs(5)
        ref = simulate_interpreted(net, batch)
        naive = jit.lower(net, fold=False, share=False)
        programs = [
            naive,
            jit.propagate_constants(naive),
            jit.share_subexpressions(naive),
            jit.eliminate_dead(naive),
            jit.optimize_program(naive)[0],
        ]
        lanes = batch.shape[0]
        packed_ref = None
        for prog in programs:
            ins = [int.from_bytes(
                np.packbits(np.ascontiguousarray(batch[:, k]),
                            bitorder="little").tobytes(), "little")
                for k in range(5)]
            outs = jit.run_program(prog, ins, lanes)
            if packed_ref is None:
                packed_ref = outs
                unpacked = np.zeros((lanes, len(outs)), dtype=np.uint8)
                for j, word in enumerate(outs):
                    for lane in range(lanes):
                        unpacked[lane, j] = (word >> lane) & 1
                assert np.array_equal(unpacked, ref)
            else:
                assert outs == packed_ref

    def test_optimizer_only_removes_ops(self):
        net = make_sorter(16, "prefix")
        naive = jit.lower(net, fold=False, share=False)
        opt, stats = jit.optimize_program(naive)
        assert opt.n_ops <= naive.n_ops
        assert stats["removed"] == stats["ops_before"] - stats["ops_after"]

    def test_constant_folding_through_steering(self):
        """A switch whose control wire is constant folds to plain
        routing: the optimized program loses the steering logic."""
        from repro.circuits.builder import CircuitBuilder

        b = CircuitBuilder()
        a, c = b.add_inputs(2)
        sel = b.const(1)
        lo, hi = b.switch2(a, c, sel)
        net = b.build(outputs=[lo, hi])
        prog, _ = jit.optimize_program(jit.lower(net))
        assert prog.n_ops == 0  # constant select: outputs are pass-through
        batch = exhaustive_inputs(2)
        assert np.array_equal(simulate_interpreted(net, batch),
                              jit.compile_jit(net).execute(batch))

    def test_codegen_fusion_matches_unfused(self, rng):
        net = random_netlist(rng, n_inputs=6, n_elements=50, n_outputs=6)
        prog, _ = jit.optimize_program(jit.lower(net))
        fused = jit.codegen(prog, fuse=True)
        unfused = jit.codegen(prog, fuse=False)
        assert fused.count("\n") < unfused.count("\n")
        batch = exhaustive_inputs(6)
        outs = []
        for src in (fused, unfused):
            ns = {}
            exec(compile(src, "<test>", "exec"), ns)
            fn = next(v for v in ns.values() if callable(v))
            ins = tuple(int.from_bytes(
                np.packbits(np.ascontiguousarray(batch[:, k]),
                            bitorder="little").tobytes(), "little")
                for k in range(6))
            outs.append(fn(ins, (1 << batch.shape[0]) - 1))
        assert outs[0] == outs[1]

    def test_words_kernel_parity(self):
        """The numba backend's per-word kernel is plain Python with
        identical semantics (numba itself is optional)."""
        net = make_sorter(8, "mux_merger")
        prog, _ = jit.optimize_program(jit.lower(net))
        src = jit.codegen_words(prog)
        ns = {"np": np}
        exec(compile(src, "<words>", "exec"), ns)
        batch = exhaustive_inputs(8)
        lanes = batch.shape[0]
        words = (lanes + 63) // 64
        IN = np.zeros((8, words), dtype=np.uint64)
        packed = np.packbits(np.ascontiguousarray(batch.T), axis=1,
                             bitorder="little")
        buf = packed.tobytes()
        stride = packed.shape[1]
        for k in range(8):
            IN[k] = np.frombuffer(
                buf[k * stride:(k + 1) * stride].ljust(words * 8, b"\0"),
                dtype=np.uint64)
        OUT = np.zeros((8, words), dtype=np.uint64)
        ns["_jit_words"](IN, OUT)
        got = np.unpackbits(OUT.view(np.uint8), axis=1,
                            bitorder="little")[:, :lanes].T
        assert np.array_equal(simulate_interpreted(net, batch), got)


class TestDiskCache:
    def _small_net(self, tag="cache-test"):
        net = make_sorter(8, "prefix")
        return Netlist(
            n_wires=net.n_wires, elements=net.elements, inputs=net.inputs,
            outputs=net.outputs, constants=dict(net.constants),
            name=tag, control_wires=net.control_wires,
        )

    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT_CACHE, str(tmp_path))
        jit.clear_memory_cache()
        net = self._small_net()
        first = jit.get_jit_plan(net)
        assert first.origin == "compiled"
        jit.clear_memory_cache()
        second = jit.get_jit_plan(self._small_net())
        assert second.origin == "disk-cache"
        assert second.source == first.source
        batch = exhaustive_inputs(8)
        assert np.array_equal(first.execute(batch), second.execute(batch))

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT_CACHE, "off")
        assert jit.disk_cache_dir() is None
        jit.clear_memory_cache()
        net = self._small_net()
        assert jit.get_jit_plan(net).origin == "compiled"
        jit.clear_memory_cache()
        assert jit.get_jit_plan(self._small_net()).origin == "compiled"

    @pytest.mark.parametrize("corruption", [
        "truncate", "flip-byte", "bad-magic", "empty", "foreign-key",
    ])
    def test_corrupt_entry_never_loads(self, tmp_path, monkeypatch,
                                       corruption):
        monkeypatch.setenv(jit.ENV_JIT_CACHE, str(tmp_path))
        jit.clear_memory_cache()
        jit.get_jit_plan(self._small_net())
        (entry,) = [p for p in tmp_path.iterdir()
                    if p.name.endswith(".rjit")]
        blob = bytearray(entry.read_bytes())
        if corruption == "truncate":
            blob = blob[: len(blob) // 2]
        elif corruption == "flip-byte":
            blob[len(blob) // 2] ^= 0xFF
        elif corruption == "bad-magic":
            blob[:4] = b"XXXX"
        elif corruption == "empty":
            blob = bytearray()
        elif corruption == "foreign-key":
            # another netlist's (valid, checksummed) entry copied onto
            # this slot: the embedded-key check must trip
            other = self._small_net(tag="other-netlist")
            jit.clear_memory_cache()
            jit.get_jit_plan(other)
            other_entry = next(p for p in tmp_path.iterdir()
                               if p.name.endswith(".rjit") and p != entry)
            blob = bytearray(other_entry.read_bytes())
        entry.write_bytes(bytes(blob))
        jit.clear_memory_cache()
        before = dict(jit._DISK_STATS)
        plan = jit.get_jit_plan(self._small_net())
        assert plan.origin == "compiled"  # recompiled, never mis-loaded
        assert np.array_equal(
            simulate_interpreted(self._small_net(), exhaustive_inputs(8)),
            plan.execute(exhaustive_inputs(8)),
        )
        assert jit._DISK_STATS["corrupt"] > before["corrupt"]

    def test_sigkill_during_write_leaves_no_torn_entry(self, tmp_path):
        """Crash-consistency: SIGKILL a process that is busily writing
        cache entries; whatever survives on disk must either load
        cleanly (and agree with the interpreter) or be ignored —
        a torn entry is never served."""
        script = textwrap.dedent("""
            import os, sys
            sys.path.insert(0, os.environ["REPRO_SRC"])
            from repro.circuits import jit
            from repro.circuits.netlist import Netlist
            from repro.core.api import make_sorter
            base = make_sorter(8, "prefix")
            print("ready", flush=True)
            i = 0
            while True:  # one fresh netlist (new key) per iteration
                i += 1
                net = Netlist(
                    n_wires=base.n_wires, elements=base.elements,
                    inputs=base.inputs, outputs=base.outputs,
                    constants=dict(base.constants),
                    name=f"victim-{i}",
                    control_wires=base.control_wires,
                )
                jit.get_jit_plan(net)
        """)
        env = dict(
            os.environ,
            REPRO_SRC=os.path.join(os.path.dirname(__file__), "..", "src"),
            REPRO_JIT_CACHE=str(tmp_path),
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            time.sleep(0.35)  # let several writes race the kill
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        entries = sorted(tmp_path.glob("*.rjit"))
        assert entries, "writer was killed before any entry completed"
        loaded = 0
        for entry in entries:
            plan = jit._load_disk_by_path(str(entry))
            if plan is not None:
                loaded += 1
                batch = exhaustive_inputs(8)
                base = make_sorter(8, "prefix")
                assert np.array_equal(simulate_interpreted(base, batch),
                                      plan.execute(batch))
        assert loaded  # the completed entries do load

    def test_clear_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT_CACHE, str(tmp_path))
        jit.clear_memory_cache()
        net = self._small_net()  # kept alive: the memory cache is weak
        jit.get_jit_plan(net)
        info = engine_mod.cache_info()
        assert info["jit"]["disk"]["entries"] == 1
        assert info["jit"]["memory"] == 1
        assert engine_mod.clear_disk_cache() == 1
        assert engine_mod.cache_info()["jit"]["disk"]["entries"] == 0

    def test_clear_plan_cache_clears_jit_memory(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT_CACHE, str(tmp_path))
        jit.clear_memory_cache()
        net = self._small_net()
        jit.get_jit_plan(net)
        assert jit.cache_info()["memory"] == 1
        engine_mod.clear_plan_cache()
        assert jit.cache_info()["memory"] == 0
        # the persistent entries survive clear_plan_cache
        assert jit.cache_info()["disk"]["entries"] == 1


class TestRoutingPolicy:
    def test_env_force_on(self, monkeypatch, rng):
        monkeypatch.setenv(jit.ENV_JIT, "1")
        net = random_netlist(rng, n_inputs=4, n_elements=10, n_outputs=3)
        assert jit.maybe_jit(net, 1) is not None  # far below MIN_ELEMENTS

    def test_env_force_off(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT, "0")
        net = make_sorter(8, "prefix")
        assert jit.maybe_jit(net, 64) is None
        with pytest.raises(SimulationError):
            simulate_jit(net, exhaustive_inputs(8))

    def test_auto_size_window(self, monkeypatch, rng):
        monkeypatch.delenv(jit.ENV_JIT, raising=False)
        small = random_netlist(rng, n_inputs=4, n_elements=10, n_outputs=3)
        assert len(small.elements) < jit.JIT_MIN_ELEMENTS
        for _ in range(jit.JIT_WARMUP_CALLS + 1):
            assert jit.maybe_jit(small, 64) is None

    def test_auto_warmup_counter(self, monkeypatch):
        """One-shot simulations never compile; the warm-up call does."""
        monkeypatch.delenv(jit.ENV_JIT, raising=False)
        monkeypatch.setenv(jit.ENV_JIT_CACHE, "off")
        monkeypatch.setattr(jit, "JIT_MIN_ELEMENTS", 1)
        jit.clear_memory_cache()
        net = make_sorter(8, "prefix")
        for _ in range(jit.JIT_WARMUP_CALLS - 1):
            assert jit.maybe_jit(net, 64) is None
        assert jit.maybe_jit(net, 64) is not None
        # warm now: immediately available on the next call
        assert jit.maybe_jit(net, 64) is not None

    def test_auto_adopts_existing_disk_entry_before_warmup(
            self, monkeypatch, tmp_path):
        """A cold process inherits another process's compiled plan on
        the *first* call — no warm-up wait when the work is already
        done (this is what makes repro.parallel workers cheap)."""
        monkeypatch.setenv(jit.ENV_JIT_CACHE, str(tmp_path))
        monkeypatch.delenv(jit.ENV_JIT, raising=False)
        monkeypatch.setattr(jit, "JIT_MIN_ELEMENTS", 1)
        jit.clear_memory_cache()  # make_sorter memoizes: force a real
        net = make_sorter(8, "prefix")  # compile so the entry hits disk
        jit.get_jit_plan(net)  # simulate the "other process"
        jit.clear_memory_cache()
        fresh = Netlist(
            n_wires=net.n_wires, elements=net.elements, inputs=net.inputs,
            outputs=net.outputs, constants=dict(net.constants),
            name=net.name, control_wires=net.control_wires,
        )
        plan = jit.maybe_jit(fresh, 64)
        assert plan is not None and plan.origin == "disk-cache"

    def test_simulate_routes_through_jit_when_forced(self, monkeypatch,
                                                     rng):
        monkeypatch.setenv(jit.ENV_JIT, "1")
        net = make_sorter(8, "mux_merger")
        batch = exhaustive_inputs(8)
        assert np.array_equal(simulate(net, batch),
                              simulate_interpreted(net, batch))
        assert jit.cache_info()["memory"] >= 1

    def test_simulate_engine_never_jits(self, monkeypatch):
        monkeypatch.setenv(jit.ENV_JIT, "1")
        jit.clear_memory_cache()
        net = make_sorter(8, "prefix")
        simulate_engine(net, exhaustive_inputs(8))
        assert jit.cache_info()["memory"] == 0


class TestJitPlanSurface:
    def test_source_is_retained_and_compilable(self):
        net = make_sorter(8, "prefix")
        plan = jit.compile_jit(net)
        assert plan.source.startswith("def _jit_kernel(I, M):")
        ns = {}
        exec(compile(plan.source, "<re-exec>", "exec"), ns)
        batch = exhaustive_inputs(8)
        assert np.array_equal(plan.execute(batch),
                              jit.compile_jit(net).execute(batch))

    def test_stats_and_repr(self):
        net = make_sorter(8, "mux_merger")
        plan = jit.compile_jit(net)
        assert plan.stats["ops_after"] == plan.n_ops
        assert plan.stats["codegen_s"] > 0
        assert plan.n_inputs == 8 and plan.n_outputs == 8

    def test_execute_bits(self):
        net = make_sorter(4, "prefix")
        plan = jit.compile_jit(net)
        batch = exhaustive_inputs(4)
        lanes = batch.shape[0]
        ins = [int.from_bytes(
            np.packbits(np.ascontiguousarray(batch[:, k]),
                        bitorder="little").tobytes(), "little")
            for k in range(4)]
        outs = plan.execute_bits(ins, lanes)
        ref = simulate_interpreted(net, batch)
        for j, word in enumerate(outs):
            for lane in range(lanes):
                assert (word >> lane) & 1 == ref[lane, j]

    def test_numba_backend_gated(self):
        pytest.importorskip("numba", reason="numba backend is opt-in")
        net = make_sorter(8, "prefix")
        jit.compile_numba(net)
