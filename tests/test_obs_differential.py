"""Differential guarantee: instrumentation never changes simulation output.

The observed execution path drives the *same* kernels one fused step at
a time, so enabling :mod:`repro.obs` must be bit-invisible to every
simulator — interpreter and compiled engine, unpacked / packed / payload
paths, on healthy and on faulted netlists.  These tests run each
simulation once with observability off and once fully on (tracing +
metrics + activity) and require identical arrays.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.circuits import apply_faults, enumerate_faults, get_plan, sample_faults
from repro.circuits.simulate import (
    simulate_interpreted,
    simulate_payload_interpreted,
)
from repro.core import build_mux_merger_sorter, build_prefix_sorter

BUILDERS = {"prefix": build_prefix_sorter, "mux_merger": build_mux_merger_sorter}


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _with_obs(fn):
    """Run ``fn`` twice — observability off, then fully on — and return
    both results."""
    obs.reset()
    plain = fn()
    obs.enable()  # ring sink + metrics + activity: every collector live
    try:
        observed = fn()
    finally:
        obs.reset()
    return plain, observed


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_engine_unpacked_identical(name, rng):
    net = BUILDERS[name](16)
    batch = rng.integers(0, 2, (33, 16)).astype(np.uint8)
    plain, observed = _with_obs(lambda: get_plan(net).execute_unpacked(batch))
    assert np.array_equal(plain, observed)
    assert np.array_equal(plain, np.sort(batch, axis=1))


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_engine_packed_identical(name, rng):
    net = BUILDERS[name](16)
    batch = rng.integers(0, 2, (130, 16)).astype(np.uint8)  # >1 word + pad
    plain, observed = _with_obs(lambda: get_plan(net).execute_packed(batch))
    assert np.array_equal(plain, observed)
    assert np.array_equal(plain, np.sort(batch, axis=1))


def test_engine_taps_identical(rng):
    """Tap reads (fault-activation probes) are part of the output too."""
    net = build_prefix_sorter(8)
    batch = rng.integers(0, 2, (20, 8)).astype(np.uint8)
    taps = [0, 3, 7]

    def run():
        out, tapped = get_plan(net).execute(batch, taps=taps)
        return out, tapped

    (o1, t1), (o2, t2) = _with_obs(run)
    assert np.array_equal(o1, o2) and np.array_equal(t1, t2)


def test_interpreter_identical(rng):
    net = build_prefix_sorter(8)
    batch = rng.integers(0, 2, (25, 8)).astype(np.uint8)
    plain, observed = _with_obs(lambda: simulate_interpreted(net, batch))
    assert np.array_equal(plain, observed)


def test_payload_paths_identical(rng):
    """Tag+payload runs through both the engine and the interpreter."""
    n = 8
    net = build_prefix_sorter(n)
    tags = rng.integers(0, 2, (12, n)).astype(np.uint8)
    payloads = rng.integers(0, 1000, (12, n)).astype(np.int64)

    plain, observed = _with_obs(
        lambda: get_plan(net).execute_payload(tags, payloads)
    )
    assert np.array_equal(plain[0], observed[0])
    assert np.array_equal(plain[1], observed[1])

    plain_i, observed_i = _with_obs(
        lambda: simulate_payload_interpreted(net, tags, payloads)
    )
    assert np.array_equal(plain_i[0], observed_i[0])
    assert np.array_equal(plain_i[1], observed_i[1])


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_faulted_netlists_identical(name, rng):
    """The guarantee must hold on broken circuits as well — campaigns
    run instrumented, and a divergence there would corrupt the study."""
    net = BUILDERS[name](8)
    batch = rng.integers(0, 2, (70, 8)).astype(np.uint8)  # packed path
    small = batch[:16]  # unpacked + interpreter rows
    faults = sample_faults(enumerate_faults(net), 6, seed=0xD1FF)
    for fault in faults:
        mutant = apply_faults(net, (fault,))
        plan = get_plan(mutant)
        p1, p2 = _with_obs(lambda: plan.execute_packed(batch))
        assert np.array_equal(p1, p2), fault.id
        u1, u2 = _with_obs(lambda: plan.execute_unpacked(small))
        assert np.array_equal(u1, u2), fault.id
        i1, i2 = _with_obs(lambda: simulate_interpreted(mutant, small))
        assert np.array_equal(i1, i2), fault.id
        # and the engine still matches the interpreter while observed
        obs.enable()
        try:
            assert np.array_equal(
                plan.execute_unpacked(small),
                simulate_interpreted(mutant, small),
            ), fault.id
        finally:
            obs.reset()


def test_supervisor_identical(rng):
    """Supervised sorts (healthy hardware) return the same answer and
    report with instrumentation on."""
    from repro.runtime import Supervisor

    row = rng.integers(0, 2, 16).astype(np.uint8)

    def run():
        out, report = Supervisor("prefix").sort_verbose(row)
        return out, report.tier

    (o1, t1), (o2, t2) = _with_obs(run)
    assert np.array_equal(o1, o2)
    assert t1 == t2
