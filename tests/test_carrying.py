"""Unit tests for bundle-carrying networks (word-level switching)."""

import itertools

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, simulate
from repro.networks.carrying import (
    SelfRoutingPermuter,
    build_carrying_sorter,
    build_self_routing_permuter,
    bundle_comparator,
)


class TestBundleComparator:
    def _net(self, width):
        b = CircuitBuilder()
        tag_a = b.add_input()
        bus_a = b.add_inputs(width)
        tag_b = b.add_input()
        bus_b = b.add_inputs(width)
        lo, bus_lo, hi, bus_hi = bundle_comparator(b, tag_a, bus_a, tag_b, bus_b)
        return b.build([lo, *bus_lo, hi, *bus_hi])

    def test_swaps_bus_with_tags(self):
        net = self._net(2)
        # tag_a=1 bus_a=10, tag_b=0 bus_b=01 -> swap
        out = simulate(net, [[1, 1, 0, 0, 0, 1]])[0]
        assert out.tolist() == [0, 0, 1, 1, 1, 0]

    def test_ordered_passes_straight(self):
        net = self._net(2)
        out = simulate(net, [[0, 1, 0, 1, 0, 1]])[0]
        assert out.tolist() == [0, 1, 0, 1, 0, 1]

    def test_ties_pass_straight(self):
        net = self._net(1)
        for t in (0, 1):
            out = simulate(net, [[t, 1, t, 0]])[0]
            assert out.tolist() == [t, 1, t, 0]

    def test_cost(self):
        # 1 comparator + AND + NOT + B switches
        net = self._net(4)
        assert net.cost() == 1 + 2 + 4
        assert net.depth() == 3  # tag gates feed the switches

    def test_width_mismatch(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            bundle_comparator(
                b, b.add_input(), b.add_inputs(2), b.add_input(), b.add_inputs(3)
            )


class TestCarryingSorter:
    @pytest.mark.parametrize("n,width", [(4, 2), (8, 3), (16, 2)])
    def test_sorts_tags_and_carries_bus(self, n, width, rng):
        net = build_carrying_sorter(n, width)
        stride = width + 1
        for _ in range(30):
            tags = rng.integers(0, 2, n)
            buses = rng.integers(0, 1 << width, n)
            vec = []
            for t, v in zip(tags, buses):
                vec.append(int(t))
                vec.extend([(int(v) >> j) & 1 for j in range(width - 1, -1, -1)])
            out = simulate(net, [vec])[0]
            out_tags = [int(out[i * stride]) for i in range(n)]
            out_buses = [
                int("".join(map(str, out[i * stride + 1 : (i + 1) * stride])), 2)
                for i in range(n)
            ]
            assert out_tags == sorted(tags.tolist())
            assert sorted(out_buses) == sorted(buses.tolist())
            # tag-consistency: every bus value still paired with its tag
            pairs = sorted(zip(tags.tolist(), buses.tolist()))
            assert sorted(zip(out_tags, out_buses)) == pairs

    def test_zero_width_bus_equals_plain_sorter(self):
        from repro.core import build_mux_merger_sorter

        plain = build_mux_merger_sorter(8)
        carrying = build_carrying_sorter(8, 0)
        assert carrying.cost() == plain.cost()

    def test_cost_scales_with_bus_width(self):
        c0 = build_carrying_sorter(16, 0).cost()
        c4 = build_carrying_sorter(16, 4).cost()
        c8 = build_carrying_sorter(16, 8).cost()
        # each extra lane adds the same switching increment
        assert (c8 - c4) == pytest.approx(2 * (c4 - c0) / 2, rel=0.25)
        assert c8 > c4 > c0


class TestSelfRoutingPermuter:
    def test_all_permutations_n4(self):
        sp = SelfRoutingPermuter.create(4)
        for perm in itertools.permutations(range(4)):
            assert sp.permute(list(perm)).tolist() == [0, 1, 2, 3]

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_random_permutations(self, n, rng):
        sp = SelfRoutingPermuter.create(n)
        for _ in range(10):
            perm = rng.permutation(n)
            assert sp.permute(perm).tolist() == list(range(n))

    def test_payload_delivery(self, rng):
        sp = SelfRoutingPermuter.create(8, payload_width=6)
        for _ in range(20):
            perm = rng.permutation(8)
            pays = rng.integers(0, 64, 8)
            res = sp.permute(perm, pays)
            assert all(res[perm[i]] == pays[i] for i in range(8))

    def test_entirely_self_routing(self):
        """No control inputs beyond the bundles themselves."""
        net = build_self_routing_permuter(16)
        assert len(net.inputs) == 16 * 4  # addresses only

    def test_cost_in_n_lg3_class(self):
        """Table II assigns sorting-network permutation switching
        O(n lg^3 n) bit-level cost; normalized cost must stay in a
        narrow band while plain n lg n normalization drifts upward."""
        import math

        sizes = [8, 16, 32, 64]
        costs = [build_self_routing_permuter(n).cost() for n in sizes]
        norm3 = [c / (n * math.log2(n) ** 3) for c, n in zip(costs, sizes)]
        norm1 = [c / (n * math.log2(n)) for c, n in zip(costs, sizes)]
        assert max(norm3) / min(norm3) < 1.8  # bounded constant
        assert norm1[-1] / norm1[0] > 3.0  # clearly not O(n lg n)

    def test_invalid_perm(self):
        sp = SelfRoutingPermuter.create(4)
        with pytest.raises(ValueError):
            sp.permute([0, 0, 1, 2])

    def test_matches_interpreter_permuter(self, rng):
        """The physical netlist agrees with the payload-interpreter
        radix permuter on every routed payload."""
        from repro.networks.permutation import RadixPermuter

        sp = SelfRoutingPermuter.create(16, payload_width=5)
        rp = RadixPermuter(16, backend="mux_merger")
        for _ in range(10):
            perm = rng.permutation(16)
            pays = rng.integers(0, 32, 16).astype(np.int64)
            hw = sp.permute(perm, pays)
            sw, _ = rp.permute(perm, pays)
            assert np.array_equal(hw, sw)
