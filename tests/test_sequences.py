"""Unit tests for the paper's sequence classes (Definitions 1-5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import sequences as seq


class TestPredicates:
    def test_sorted(self):
        assert seq.is_sorted_binary([0, 0, 1, 1])
        assert not seq.is_sorted_binary([0, 1, 0])
        assert seq.is_sorted_binary([])
        assert seq.is_sorted_binary([1])

    def test_clean(self):
        assert seq.is_clean([0, 0, 0])
        assert seq.is_clean([1, 1])
        assert not seq.is_clean([0, 1])
        assert seq.is_clean([])

    def test_bisorted(self):
        assert seq.is_bisorted([0, 1, 0, 1])
        assert not seq.is_bisorted([1, 0, 0, 1])
        with pytest.raises(ValueError):
            seq.is_bisorted([0, 1, 0])

    def test_k_sorted(self):
        # Definition 4's example: 1111/0001/0011/0111 is 4-sorted
        assert seq.is_k_sorted([1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 1, 0, 1, 1, 1], 4)
        assert not seq.is_k_sorted([1, 0, 1, 1], 2)

    def test_clean_k_sorted(self):
        # Definition 5's example: 1111/0000/0000/1111
        assert seq.is_clean_k_sorted([1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1], 4)
        assert not seq.is_clean_k_sorted([1, 1, 0, 1], 2)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            seq.as_bits([0, 2, 1])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            seq.as_bits([[0, 1], [1, 0]])


class TestAMembership:
    def test_paper_examples_in_A8(self):
        # Definition 1's examples of A_8 members
        assert seq.in_A([0, 0, 0, 0, 1, 0, 1, 0])      # 0000/1010
        assert seq.in_A([0, 0, 1, 0, 1, 0, 1, 1])      # 00/1010/11
        assert seq.in_A([1, 0, 1, 0, 1, 0, 1, 1])      # 101010/11
        assert seq.in_A([0, 0, 0, 1, 0, 1, 1, 1])      # 00/0101/11
        assert seq.in_A([1] * 8)                        # 11111111

    def test_non_members(self):
        assert not seq.in_A([0, 1, 1, 0])
        assert not seq.in_A([1, 0, 0, 1, 0, 0, 0, 0])

    def test_every_sorted_sequence_in_A(self):
        # Remark after Definition 1
        for n in (2, 4, 8, 16):
            for ones in range(n + 1):
                assert seq.in_A(seq.sorted_sequence(n, ones))

    def test_enumerate_matches_regex_filter(self):
        # cross-check the block-split enumerator against brute force
        from repro.circuits import exhaustive_inputs

        for n in (2, 4, 6, 8):
            brute = {tuple(v) for v in exhaustive_inputs(n) if seq.in_A(v)}
            enum = {tuple(v) for v in seq.enumerate_A(n)}
            assert brute == enum

    def test_enumerate_sorted_unique(self):
        out = seq.enumerate_A(8)
        as_lists = [v.tolist() for v in out]
        assert as_lists == sorted(as_lists)
        assert len({tuple(v) for v in as_lists}) == len(out)

    def test_enumerate_odd_rejected(self):
        with pytest.raises(ValueError):
            seq.enumerate_A(5)


class TestCountA:
    @pytest.mark.parametrize("n", [0, 2, 4, 6, 8, 10, 12, 14, 16])
    def test_matches_enumeration(self, n):
        assert seq.count_A(n) == len(seq.enumerate_A(n))

    def test_scales_to_large_n(self):
        # |A_n| grows quadratically (block-split choices): n^2 + O(n)
        c = seq.count_A(256)
        assert 250 ** 2 < c < 260 ** 2

    def test_growth_is_quadratic(self):
        from repro.analysis import loglog_slope

        ns = [32, 64, 128, 256]
        cs = [seq.count_A(n) for n in ns]
        assert abs(loglog_slope(ns, cs) - 2.0) < 0.1

    def test_fraction_of_all_sequences_vanishes(self):
        # A_n is an exponentially thin slice of {0,1}^n — the reason the
        # patch-up network is so much cheaper than a general sorter
        assert seq.count_A(16) / 2 ** 16 < 0.005

    def test_odd_rejected(self):
        with pytest.raises(ValueError):
            seq.count_A(3)


class TestGenerators:
    def test_sorted_sequence(self):
        assert seq.sorted_sequence(4, 1).tolist() == [0, 0, 0, 1]
        with pytest.raises(ValueError):
            seq.sorted_sequence(4, 5)

    def test_random_sorted(self, rng):
        for _ in range(50):
            assert seq.is_sorted_binary(seq.random_sorted(16, rng))

    def test_random_bisorted(self, rng):
        for _ in range(50):
            assert seq.is_bisorted(seq.random_bisorted(16, rng))

    def test_random_k_sorted(self, rng):
        for _ in range(50):
            assert seq.is_k_sorted(seq.random_k_sorted(16, 4, rng), 4)

    def test_random_clean_k_sorted(self, rng):
        for _ in range(50):
            assert seq.is_clean_k_sorted(seq.random_clean_k_sorted(16, 4, rng), 4)

    def test_shuffle_concat_paper_example(self):
        out = seq.shuffle_concat([1, 1, 1, 1], [0, 0, 0, 1])
        assert out.tolist() == [1, 0, 1, 0, 1, 0, 1, 1]

    def test_shuffle_concat_length_mismatch(self):
        with pytest.raises(ValueError):
            seq.shuffle_concat([1, 1], [0])


@given(st.integers(1, 4).map(lambda p: 1 << p), st.data())
def test_property_A_closed_under_complement_reversal(lg, data):
    """A_n is closed under reversal of the bit-complement (by symmetry of
    the defining regular expression)."""
    n = lg * 2
    members = seq.enumerate_A(n)
    idx = data.draw(st.integers(0, len(members) - 1))
    v = members[idx]
    assert seq.in_A((1 - v)[::-1])
