"""Tests for the word-level (carrying) Benes fabric and sequence enumerators."""

import itertools
import math

import numpy as np
import pytest

from repro.core import sequences as seq
from repro.networks.benes import benes_switch_count
from repro.networks.carrying import CarryingBenes, build_carrying_benes


class TestCarryingBenes:
    def test_all_permutations_n4(self):
        cb = CarryingBenes(4, 3)
        pays = np.array([5, 2, 7, 1])
        for perm in itertools.permutations(range(4)):
            out = cb.permute(list(perm), pays)
            assert all(out[perm[i]] == pays[i] for i in range(4))

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_random_word_routing(self, n, rng):
        w = int(math.log2(n))
        cb = CarryingBenes(n, w)
        for _ in range(10):
            perm = rng.permutation(n)
            pays = rng.integers(0, 1 << w, n)
            out = cb.permute(perm, pays)
            assert all(out[perm[i]] == pays[i] for i in range(n))

    @pytest.mark.parametrize("n,w", [(8, 3), (16, 4), (64, 6)])
    def test_cost_is_width_times_switches(self, n, w):
        """Table II's bit-level Benes accounting, measured: every 2x2
        word switch = w bit switches sharing one control."""
        net = build_carrying_benes(n, w)
        assert net.cost() == w * benes_switch_count(n)

    def test_bit_level_cost_class(self):
        """With w = lg n address-width words, fabric cost is
        n lg^2 n - (n/2) lg n — the O(n lg^2 n) row of Table II."""
        for n in (16, 64, 256):
            w = int(math.log2(n))
            net = build_carrying_benes(n, w)
            assert net.cost() == w * (n * w - n // 2)

    def test_depth_unchanged_by_width(self):
        assert build_carrying_benes(16, 1).depth() == build_carrying_benes(
            16, 8
        ).depth()

    def test_validation(self):
        with pytest.raises(ValueError):
            build_carrying_benes(8, 0)
        with pytest.raises(ValueError):
            build_carrying_benes(6, 4)
        cb = CarryingBenes(8, 3)
        with pytest.raises(ValueError):
            cb.permute(list(range(8)), np.arange(4))


class TestSequenceEnumerators:
    def test_bisorted_count_and_membership(self):
        got = list(seq.enumerate_bisorted(8))
        assert len(got) == 25  # (h+1)^2
        assert all(seq.is_bisorted(x) for x in got)
        assert len({tuple(x) for x in got}) == 25

    def test_k_sorted_count_and_membership(self):
        got = list(seq.enumerate_k_sorted(8, 4))
        assert len(got) == 3 ** 4
        assert all(seq.is_k_sorted(x, 4) for x in got)

    def test_clean_k_sorted_count(self):
        got = list(seq.enumerate_clean_k_sorted(8, 4))
        assert len(got) == 16
        assert all(seq.is_clean_k_sorted(x, 4) for x in got)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(seq.enumerate_bisorted(5))
        with pytest.raises(ValueError):
            list(seq.enumerate_k_sorted(8, 3))
        with pytest.raises(ValueError):
            list(seq.enumerate_clean_k_sorted(8, 5))

    def test_exhaustive_merge_via_enumerator(self):
        """Use the enumerator to drive the k-way merger over its whole
        domain at n=8, k=2 — the enumerator as verification fuel."""
        from repro.core.kway import KWayMuxMerger

        m = KWayMuxMerger(8, 2)
        for x in seq.enumerate_k_sorted(8, 2):
            out, _, _ = m.merge(x)
            assert seq.is_sorted_binary(out)
