"""Tests for the design-choice ablations called out in DESIGN.md."""

import math

import pytest

from repro.analysis import verify_sorter_exhaustive
from repro.analysis.ablations import (
    build_patchup_naive,
    fish_k_sweep,
    prefix_sorter_adder_sweep,
)
from repro.core import build_prefix_sorter
from repro.core.fish_sorter import default_k


class TestNaiveSteeringAblation:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_naive_variant_still_sorts(self, n):
        assert verify_sorter_exhaustive(build_patchup_naive(n))

    def test_naive_steering_is_much_more_expensive(self):
        """Per-level popcounts push steering cost to Theta(n lg n) inside
        the patch-up alone — the shared-adder design is load-bearing."""
        for n in (64, 256):
            naive = build_patchup_naive(n).cost()
            shared = build_prefix_sorter(n).cost()
            assert naive > 2 * shared

    def test_gap_grows_with_n(self):
        gaps = [
            build_patchup_naive(n).cost() / build_prefix_sorter(n).cost()
            for n in (32, 128, 512)
        ]
        assert gaps[0] < gaps[-1]


class TestAdderSweep:
    def test_sweep_rows(self):
        rows = prefix_sorter_adder_sweep([16, 64])
        assert len(rows) == 2
        for row in rows:
            assert row["cost_ripple_adder"] < row["cost_prefix_adder"]
            assert row["depth_ripple_adder"] >= row["depth_prefix_adder"]


class TestFishKSweep:
    def test_cost_minimized_near_lg_n(self):
        """eq. (19): k = lg n minimizes cost."""
        n = 256
        rows = fish_k_sweep(n)
        best = min(rows, key=lambda r: r["cost"])
        assert best["k"] == default_k(n) == 8  # lg 256

    def test_time_increases_with_k(self):
        rows = fish_k_sweep(128)
        times = [r["sorting_time"] for r in rows]
        assert times == sorted(times)

    def test_all_below_paper_bound(self):
        for row in fish_k_sweep(64):
            assert row["cost"] <= row["paper_bound"]
