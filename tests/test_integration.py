"""Integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro import (
    BenesNetwork,
    FishSorter,
    RadixPermuter,
    SortingConcentrator,
    build_mux_merger_sorter,
    build_prefix_sorter,
)
from repro.baselines import (
    TimeMultiplexedColumnsort,
    build_balanced_sorter,
    build_odd_even_merge_sorter,
)
from repro.circuits import simulate
from repro.networks.concentrator import check_concentration
from repro.networks.permutation import check_permutation


class TestAllSortersAgree:
    """Differential test: every sorter in the repo produces identical
    output on identical inputs."""

    def test_differential(self, rng):
        n = 64
        nets = [
            build_prefix_sorter(n),
            build_mux_merger_sorter(n),
            build_odd_even_merge_sorter(n),
            build_balanced_sorter(n),
        ]
        fish = FishSorter(n)
        tm = TimeMultiplexedColumnsort(n)
        batch = rng.integers(0, 2, (40, n)).astype(np.uint8)
        expect = np.sort(batch, axis=1)
        for net in nets:
            assert np.array_equal(simulate(net, batch), expect)
        for row, exp in zip(batch, expect):
            assert np.array_equal(fish.sort(row)[0], exp)
            assert np.array_equal(tm.sort(row)[0], exp)


class TestConcentrateThenPermute:
    """A realistic routing pipeline: concentrate active packets, then
    realize a permutation on the concentrated set via Benes (exact) and
    radix permuter (packet-switched)."""

    def test_pipeline(self, rng):
        n = 16
        conc = SortingConcentrator(n)
        perm_net = RadixPermuter(n, backend="mux_merger")
        requests = np.zeros(n, dtype=np.uint8)
        active = rng.choice(n, size=9, replace=False)
        requests[active] = 1
        payloads = np.arange(n, dtype=np.int64) + 1000
        res = conc.concentrate(requests, payloads)
        assert check_concentration(requests, payloads, res)
        # pad concentrated payloads back to n and permute them
        padded = np.concatenate(
            [res.granted, np.full(n - res.count, -1, dtype=np.int64)]
        )
        target = rng.permutation(n)
        routed, _ = perm_net.permute(target, padded)
        assert check_permutation(target, padded, routed)

    def test_benes_equals_radix_permuter(self, rng):
        n = 16
        bn = BenesNetwork(n)
        rp = RadixPermuter(n, backend="mux_merger")
        pays = np.arange(n, dtype=np.int64)
        for _ in range(10):
            perm = rng.permutation(n)
            assert np.array_equal(
                bn.permute(perm, pays), rp.permute(perm, pays)[0]
            )


class TestCostHierarchy:
    """Section I/IV's cost landscape at a fixed n, as measured."""

    def test_sorter_cost_ordering(self):
        n = 1024
        fish = FishSorter(n).cost()
        mux = build_mux_merger_sorter(n).cost()
        prefix = build_prefix_sorter(n).cost()
        batcher = build_odd_even_merge_sorter(n).cost()
        balanced = build_balanced_sorter(n).cost()
        # the O(n)-cost fish sorter wins outright by n = 1024
        assert fish < batcher and fish < mux < prefix
        # among the O(n lg^2 n) designs, Batcher's constant (1/4) beats
        # the balanced sorter's (1/2)
        assert batcher < balanced

    def test_adaptive_vs_batcher_gap_grows(self):
        """The O(lg n)-factor advantage of the O(n lg n) adaptive sorters
        over Batcher's O(n lg^2 n) shows as a rising cost ratio; with
        measured constants the crossover itself lies past n = 2^17."""
        ratios = [
            build_odd_even_merge_sorter(n).cost()
            / build_mux_merger_sorter(n).cost()
            for n in (64, 256, 1024, 4096)
        ]
        assert ratios == sorted(ratios)

    def test_depth_ordering(self):
        n = 256
        # Batcher is shallowest among equals; fish trades depth for cost
        batcher = build_odd_even_merge_sorter(n).depth()
        mux = build_mux_merger_sorter(n).depth()
        assert batcher <= mux


class TestEndToEndClaims:
    def test_headline_abstract_claims(self):
        """Abstract: 'any sequence of n bits can be sorted ... in
        O(lg^2 n) bit-level delay using O(n) constant fanin gates'."""
        import math

        for n in (256, 1024):
            fs = FishSorter(n)
            assert fs.cost() / n < 25  # O(n) with small constant
            _, rep = fs.sort(np.zeros(n, dtype=np.uint8), pipelined=True)
            assert rep.sorting_time < 8 * math.log2(n) ** 2

    def test_permuter_headline(self):
        """Abstract: permutation networks with O(n lg n) bit-level cost
        and O(lg^3 n) bit-level delay."""
        import math

        n = 256
        rp = RadixPermuter(n, backend="fish")
        assert rp.cost() / (n * math.log2(n)) < 15
        assert rp.routing_time() < 8 * math.log2(n) ** 3
