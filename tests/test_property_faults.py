"""Property-based coverage of the adaptive steering paths under faults.

Two families of guarantees:

1. **Steering faults are caught** — for every ``n <= 16`` prefix and
   mux-merger sorter, *every* single stuck-at on a steering/control wire
   is caught by the exhaustive verifier, with exactly one principled
   exception: the prefix sorter's full-count MSB stuck at 0.  That wire
   is 1 only on the all-ones input, whose output is all-ones under any
   steering whatsoever — the test doesn't just allow the exception, it
   *proves* the redundancy by tapping the wire across all ``2^n`` inputs.

2. **Engines agree on broken circuits** — the bit-packed compiled engine
   and the element-at-a-time interpreter must produce identical outputs
   for arbitrary faulted netlists on arbitrary batches (hypothesis picks
   the faults and inputs; batches are >= 64 rows so the packed path is
   actually exercised).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import verify_sorter_exhaustive
from repro.circuits import (
    PACKED_MIN_BATCH,
    StuckAt,
    apply_fault,
    apply_faults,
    control_wires,
    enumerate_faults,
    get_plan,
    simulate,
)
from repro.circuits.simulate import simulate_interpreted
from repro.core import build_mux_merger_sorter, build_prefix_sorter

BUILDERS = {"prefix": build_prefix_sorter, "mux_merger": build_mux_merger_sorter}

# Build each sorter once at module scope: the property tests draw many
# (fault, input) examples against the same compiled netlists.
_NETS = {
    (name, n): BUILDERS[name](n)
    for name in BUILDERS
    for n in (4, 8, 16)
}


def _all_ones_redundant(net, wire: int) -> bool:
    """True iff ``wire`` is 0 on every input except all-ones.

    On the all-ones input every wire permutation network emits all ones,
    so steering is irrelevant there: a stuck-at-0 on such a wire can
    never corrupt an output.  Checked by tapping the wire across the
    full exhaustive batch with the compiled engine.
    """
    from repro.circuits import exhaustive_inputs

    n = len(net.inputs)
    X = exhaustive_inputs(n)
    _, tapped = get_plan(net).execute(X, taps=[wire])
    active = np.nonzero(tapped[:, 0])[0]
    return all((X[r] == 1).all() for r in active)


@pytest.mark.parametrize("name", sorted(BUILDERS))
@pytest.mark.parametrize("n", [4, 8, 16])
def test_every_control_stuck_at_caught_or_provably_redundant(name, n):
    net = _NETS[(name, n)]
    masked = []
    for w in sorted(control_wires(net)):
        for v in (0, 1):
            if verify_sorter_exhaustive(apply_fault(net, StuckAt(w, v))):
                masked.append((w, v))
    if name == "mux_merger":
        # the middle bits and switch selects have zero redundancy
        assert masked == []
        return
    # prefix: exactly the full-count MSB stuck at 0 survives, and only
    # because the wire is provably inert away from the all-ones input
    assert len(masked) == 1
    wire, value = masked[0]
    assert value == 0
    assert _all_ones_redundant(net, wire)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_every_control_inversion_caught(name):
    net = _NETS[(name, 8)]
    for f in enumerate_faults(net, kinds=("control",)):
        assert not verify_sorter_exhaustive(apply_fault(net, f)), f.id


@given(data=st.data())
@settings(max_examples=40)
def test_packed_engine_matches_interpreter_under_faults(data):
    name = data.draw(st.sampled_from(sorted(BUILDERS)), label="network")
    n = data.draw(st.sampled_from([8, 16]), label="n")
    net = _NETS[(name, n)]
    universe = enumerate_faults(net)
    k = data.draw(st.integers(min_value=1, max_value=3), label="k")
    faults = data.draw(
        st.lists(
            st.sampled_from(universe), min_size=k, max_size=k, unique=True
        ),
        label="faults",
    )
    mutant = apply_faults(net, faults)
    mutant.validate(strict=True)
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 16), label="seed")
    rows = data.draw(
        st.integers(min_value=PACKED_MIN_BATCH, max_value=2 * PACKED_MIN_BATCH),
        label="rows",
    )
    batch = np.random.default_rng(seed).integers(0, 2, (rows, n)).astype(np.uint8)
    assert batch.shape[0] >= PACKED_MIN_BATCH  # packed fast path engaged
    engine = simulate(mutant, batch)
    interp = simulate_interpreted(mutant, batch)
    assert np.array_equal(engine, interp), [f.id for f in faults]


@given(
    seed=st.integers(min_value=0, max_value=2 ** 16),
    cycle=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=20)
def test_transient_only_corrupts_inflight_groups(seed, cycle):
    """A single-cycle glitch in the Model-B pipeline never touches groups
    whose values were latched at other clocks: outputs differ from the
    clean run on at most one group."""
    from repro.circuits import PipelinedNetlist

    net = _NETS[("mux_merger", 8)]
    rng = np.random.default_rng(seed)
    groups = [rng.integers(0, 2, 8).tolist() for _ in range(4)]
    clean, _ = PipelinedNetlist(net).run([list(g) for g in groups])
    wire = int(rng.choice(sorted(control_wires(net))))
    glitched, _ = PipelinedNetlist(net, transients=[(wire, cycle)]).run(
        [list(g) for g in groups]
    )
    differing = sum(1 for a, b in zip(clean, glitched) if a != b)
    assert differing <= 1
