"""Tests for the chaos injectors driving ``tools/soak.py``.

Every injector must be (a) gated by its :class:`Schedule` — quiet when
the window is off — and (b) seeded-deterministic, so a resumed soak
replays the identical chaos timeline the uninterrupted run saw.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    CHAOS_INJECTORS,
    DeadlineStorm,
    FaultStorm,
    JitCacheCorruptor,
    Schedule,
    TraceTruncator,
    WorkerKillStorm,
    realize_fault,
    seeded_schedule,
)
from repro.circuits import apply_faults, enumerate_faults, simulate
from repro.core import make_sorter
from repro.errors import BuildError


def test_registry_names():
    assert CHAOS_INJECTORS == ("faults", "kills", "deadlines", "jitcache",
                               "obstrunc")


# -- schedules ----------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(period=st.integers(1, 20), duty=st.floats(0.01, 1.0),
       phase=st.integers(0, 19))
def test_schedule_duty_cycle_is_exact(period, duty, phase):
    sched = Schedule(period=period, duty=duty, phase=phase)
    on = max(1, int(round(duty * period))) if duty < 1.0 else period
    hits = sum(sched.active(i) for i in range(10 * period))
    assert hits == 10 * on


def test_schedule_edges():
    assert not any(Schedule(period=0, duty=0.5).active(i) for i in range(8))
    assert not any(Schedule(period=4, duty=0.0).active(i) for i in range(8))
    assert all(Schedule(period=4, duty=1.0).active(i) for i in range(8))


@settings(max_examples=20, deadline=None)
@given(period=st.integers(1, 16), index=st.integers(0, 200))
def test_schedule_window_is_stable_across_a_cycle(period, index):
    sched = Schedule(period=period, duty=0.5, phase=3)
    base = (index + 3) // period
    assert sched.window(index) == base


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_seeded_schedule_phase_is_deterministic_and_bounded(seed):
    a = seeded_schedule(seed, "faults", period=8, duty=0.25)
    b = seeded_schedule(seed, "faults", period=8, duty=0.25)
    assert a == b
    assert 0 <= a.phase < 8
    # Different injector names should not all fire in lockstep for at
    # least *some* seed; just assert the phase depends on the name.
    phases = {seeded_schedule(s, "kills", 8, 0.25).phase for s in range(16)}
    assert len(phases) > 1


# -- payload injectors --------------------------------------------------------


def test_fault_storm_seed_is_window_stable_and_gated():
    sched = Schedule(period=4, duty=0.5, phase=0)  # on for chunks 0,1 of 4
    storm = FaultStorm(sched, seed=7)
    assert storm.fault_seed(2) is None and storm.fault_seed(3) is None
    assert storm.fault_seed(0) == storm.fault_seed(1)  # same window
    assert storm.fault_seed(0) != storm.fault_seed(4)  # next window moves
    again = FaultStorm(Schedule(period=4, duty=0.5, phase=0), seed=7)
    assert again.fault_seed(0) == storm.fault_seed(0)


def test_realize_fault_is_deterministic_and_skips_inputs():
    net = make_sorter(8, "mux_merger")
    inputs = set(net.inputs)
    for fault_seed in (0, 1, 12345, 2**30):
        (fault,) = realize_fault(net, fault_seed)
        assert fault.wire not in inputs
        (fault2,) = realize_fault(net, fault_seed)
        assert fault == fault2
    universe = set(enumerate_faults(net, kinds=("stuck", "control")))
    (fault,) = realize_fault(net, 99)
    assert fault in universe


def test_realized_fault_is_applicable():
    net = make_sorter(8, "mux_merger")
    mutant = apply_faults(net, realize_fault(net, 42))
    rng = np.random.default_rng(0)
    x = (rng.random((4, 8)) < 0.5).astype(np.uint8)
    out = simulate(mutant, x)  # must still evaluate, right or wrong
    assert out.shape == x.shape


def test_deadline_storm():
    storm = DeadlineStorm(Schedule(period=2, duty=0.5), deadline_s=1e-3)
    vals = [storm.deadline(i) for i in range(4)]
    assert vals == [1e-3, None, 1e-3, None]
    with pytest.raises(BuildError):
        DeadlineStorm(Schedule(period=2, duty=0.5), deadline_s=0.0)


# -- environment injectors ----------------------------------------------------


def test_jitcache_corruptor_flips_bytes_only_when_active(tmp_path):
    payload = bytes(range(256)) * 8
    entry = tmp_path / "plan-abc.rjit"
    entry.write_bytes(payload)
    (tmp_path / "ignored.txt").write_bytes(b"not a cache entry")
    corr = JitCacheCorruptor(Schedule(period=2, duty=0.5), tmp_path, seed=3)
    assert corr.perturb(1) is None  # off-window: untouched
    assert entry.read_bytes() == payload
    summary = corr.perturb(0)
    assert summary["injector"] == "jitcache"
    assert summary["files"] == ["plan-abc.rjit"]
    mutated = entry.read_bytes()
    assert mutated != payload and len(mutated) == len(payload)
    assert (tmp_path / "ignored.txt").read_bytes() == b"not a cache entry"


def test_jitcache_corruptor_empty_cache(tmp_path):
    corr = JitCacheCorruptor(Schedule(period=1, duty=1.0), tmp_path, seed=0)
    assert corr.perturb(0)["note"] == "cache empty"


def test_trace_truncator_chops_the_tail(tmp_path):
    trace = tmp_path / "trace.jsonl"
    body = b'{"name": "x"}\n' * 100
    trace.write_bytes(body)
    trunc = TraceTruncator(Schedule(period=2, duty=0.5), trace, seed=5,
                           max_bytes=64)
    assert trunc.perturb(1) is None
    assert trace.read_bytes() == body
    summary = trunc.perturb(0)
    cut = summary["truncated_bytes"]
    assert 1 <= cut <= 64
    assert trace.read_bytes() == body[: len(body) - cut]


def test_trace_truncator_missing_file(tmp_path):
    trunc = TraceTruncator(Schedule(period=1, duty=1.0),
                           tmp_path / "none.jsonl", seed=0)
    assert trunc.perturb(0)["note"] == "no trace file"


def test_kill_storm_is_schedule_gated_and_reentrant():
    storm = WorkerKillStorm(Schedule(period=2, duty=0.5, phase=0), seed=0,
                            interval_s=0.01, max_kills=1)
    assert storm.start(1) is False  # off-window: no thread
    assert storm.start(0) is True
    assert storm.start(0) is False  # already running
    storm.stop()
    storm.stop()  # idempotent
    assert storm.kills_sent == 0  # no workers existed to kill


def test_kill_storm_context_manager_stops():
    with WorkerKillStorm(Schedule(period=1, duty=1.0), seed=0,
                         interval_s=0.01, max_kills=1) as storm:
        assert storm.start(0) is True
    assert storm._thread is None
