"""Tests for the concurrent error-detection layer (repro.circuits.checkers).

Three guarantee families:

1. **Soundness** — on healthy hardware no alarm ever fires (exhaustively
   for n <= 16), and the data outputs are untouched by the transform.
2. **Overhead** — measured cost/depth of every checker variant stays
   within (or exactly equals, where exact) the closed-form bounds for
   n = 4..64, so self-checking networks remain in the paper's cost model.
3. **Detection** — the sortedness alarm fires iff the observed output is
   non-monotone (hypothesis property), and every single fault from the
   PR 2 steering universe is masked or alarmed on checked hardware, with
   primary-input faults the only (documented) exception.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    ControlInvert,
    StuckAt,
    apply_fault,
    control_wires,
    enumerate_faults,
    exhaustive_inputs,
    simulate,
)
from repro.circuits.checkers import (
    CheckedNetlist,
    build_output_checker,
    control_checker_overhead,
    control_cone,
    count_checker_cost_bound,
    count_checker_depth_bound,
    sortedness_checker_cost,
    sortedness_checker_depth,
    with_checkers,
)
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.errors import BuildError, CheckerAlarm

BUILDERS = {"prefix": build_prefix_sorter, "mux_merger": build_mux_merger_sorter}

# Shared across the module: the property tests draw many examples
# against the same compiled (checked) netlists.
_NETS = {
    (name, n): BUILDERS[name](n) for name in BUILDERS for n in (4, 8, 16)
}
_CHECKED = {
    key: with_checkers(net, sortedness=True, count=True, control=True)
    for key, net in _NETS.items()
}


class TestSoundness:
    @pytest.mark.parametrize("key", sorted(_NETS))
    def test_no_alarm_on_healthy_hardware(self, key):
        name, n = key
        checked = _CHECKED[key]
        xs = exhaustive_inputs(n)
        out = simulate(checked.netlist, xs)
        data, alarms = checked.split(out)
        assert not alarms.any(), f"false alarm on healthy {name} n={n}"
        assert np.array_equal(data, np.sort(xs, axis=1))
        # check() passes the whole batch through untouched
        assert np.array_equal(checked.check(out), data)

    @pytest.mark.parametrize("key", sorted(_NETS))
    def test_source_netlist_untouched(self, key):
        net = _NETS[key]
        n_wires, n_elements = net.n_wires, len(net.elements)
        with_checkers(net, sortedness=True, count=True, control=True)
        assert net.n_wires == n_wires
        assert len(net.elements) == n_elements

    def test_wire_ids_stable_under_transform(self):
        # Original outputs/inputs keep their ids in the checked netlist:
        # a fault enumerated on the plain net applies verbatim.
        net = _NETS[("prefix", 8)]
        checked = _CHECKED[("prefix", 8)]
        assert checked.netlist.inputs == net.inputs
        assert list(checked.netlist.outputs[: len(net.outputs)]) == list(net.outputs)
        assert checked.netlist.elements[: len(net.elements)] == list(net.elements)

    def test_requires_at_least_one_checker(self):
        with pytest.raises(BuildError):
            with_checkers(_NETS[("prefix", 4)], sortedness=False, count=False,
                          control=False)


class TestOverheadBounds:
    NS = (4, 8, 16, 32, 64)

    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("builder", sorted(BUILDERS))
    def test_sortedness_exact(self, builder, n):
        net = BUILDERS[builder](n)
        c = with_checkers(net, sortedness=True, count=False, control=False)
        assert c.overhead_cost == sortedness_checker_cost(n)
        assert c.overhead_depth <= sortedness_checker_depth(n)

    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("adder", ["prefix", "ripple"])
    def test_count_bound(self, n, adder):
        net = build_mux_merger_sorter(n)
        c = with_checkers(net, sortedness=False, count=True, control=False,
                          adder=adder)
        assert c.overhead_cost <= count_checker_cost_bound(n, adder)
        assert c.overhead_depth <= count_checker_depth_bound(n, adder)

    @pytest.mark.parametrize("n", NS)
    @pytest.mark.parametrize("builder", sorted(BUILDERS))
    def test_control_exact(self, builder, n):
        net = BUILDERS[builder](n)
        c = with_checkers(net, sortedness=False, count=False, control=True)
        assert c.overhead_cost == control_checker_overhead(net)

    @pytest.mark.parametrize("n", NS)
    def test_overhead_stays_linearithmic(self, n):
        # The full checker suite must not change the asymptotic class of
        # the paper's networks: sortedness+count overhead is O(n lg lg n)
        # with prefix adders — comfortably under 6 n lg n for these n.
        net = build_mux_merger_sorter(n)
        c = with_checkers(net, sortedness=True, count=True, control=False)
        lg = max((n - 1).bit_length(), 1)
        assert c.overhead_cost <= 6 * n * lg

    def test_closed_forms_monotone(self):
        costs = [count_checker_cost_bound(1 << p) for p in range(2, 8)]
        assert costs == sorted(costs)
        assert sortedness_checker_cost(2) == 2  # NOT + AND, no tree


class TestSortednessProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=8, max_size=8),
        data=st.data(),
    )
    def test_alarm_iff_non_monotone(self, bits, data):
        """The sortedness alarm fires iff the observed output is not of
        the form 0...01...1 — forced by stuck-at faults pinning the
        sorter's outputs to an arbitrary chosen pattern."""
        net = _NETS[("prefix", 8)]
        checked = with_checkers(net, sortedness=True, count=False, control=False)
        mutant = checked.netlist
        for wire, value in zip(net.outputs, bits):
            mutant = apply_fault(mutant, StuckAt(wire, value))
        row = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=8, max_size=8)),
            dtype=np.uint8,
        )
        out = simulate(mutant, row[None, :])
        observed, alarms = checked.split(out)
        assert observed[0].tolist() == bits
        non_monotone = any(a > b for a, b in zip(bits, bits[1:]))
        assert bool(alarms[0, 0]) == non_monotone

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=16))
    def test_output_checker_matches_numpy(self, ys):
        n = 8
        ys = (ys + [0] * n)[:n]
        checker = build_output_checker(n)
        x = np.zeros(n, dtype=np.uint8)
        x[: sum(ys)] = 1  # same popcount: isolate the sortedness alarm
        fired = checker.fired(x[None, :], np.array(ys, dtype=np.uint8)[None, :])
        assert ("sortedness" in fired) == any(
            a > b for a, b in zip(ys, ys[1:])
        )
        assert "count" not in fired


class TestDetection:
    @pytest.mark.parametrize("key", [("prefix", 8), ("mux_merger", 8)])
    def test_every_noninput_fault_masked_or_alarmed(self, key):
        """The CED completeness guarantee on the PR 2 fault universe:
        every stuck-at / control-inversion either never corrupts a data
        output (masked) or raises an alarm on every corrupted row.
        Primary-input faults are the documented fault-secure boundary."""
        name, n = key
        net = _NETS[key]
        checked = _CHECKED[key]
        xs = exhaustive_inputs(n)
        expected = np.sort(xs, axis=1)
        inputs = set(net.inputs)
        for fault in enumerate_faults(net, kinds=("stuck", "control")):
            if getattr(fault, "wire", -1) in inputs:
                continue
            out = simulate(apply_fault(checked.netlist, fault), xs)
            data, alarms = checked.split(out)
            wrong = (data != expected).any(axis=1)
            alarmed = alarms.any(axis=1)
            assert not (wrong & ~alarmed).any(), (name, fault.id)

    def test_control_alarm_catches_masked_steering_corruption(self):
        """duplicate-and-compare alarms on a steering inversion even on
        rows where the data corruption happens to be masked."""
        net = _NETS[("mux_merger", 8)]
        checked = with_checkers(net, sortedness=False, count=False, control=True)
        steering = sorted(set(control_wires(net)) - set(net.inputs))
        assert steering, "mux merger must have element-driven steering"
        xs = exhaustive_inputs(8)
        mutant = apply_fault(checked.netlist, ControlInvert(steering[0]))
        _, alarms = checked.split(simulate(mutant, xs))
        assert alarms.any()

    def test_check_raises_with_alarm_names_and_rows(self):
        net = _NETS[("prefix", 8)]
        checked = _CHECKED[("prefix", 8)]
        steering = sorted(set(control_wires(net)) - set(net.inputs))
        mutant = apply_fault(checked.netlist, ControlInvert(steering[0]))
        out = simulate(mutant, exhaustive_inputs(8))
        with pytest.raises(CheckerAlarm) as err:
            checked.check(out)
        assert set(err.value.alarms) <= {"sortedness", "count", "control"}
        assert err.value.alarms and err.value.rows


class TestControlCone:
    def test_cone_covers_all_driven_steering(self):
        net = _NETS[("prefix", 8)]
        cone, compared = control_cone(net)
        driven = {w for e in net.elements for w in e.outs}
        assert set(compared) == set(control_wires(net)) & driven
        # every compared wire is produced by some element in the cone
        cone_outs = {w for i in cone for w in net.elements[i].outs}
        assert set(compared) <= cone_outs

    def test_overhead_zero_without_driven_steering(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder("plain")
        xs = b.add_inputs(4)
        ys = [b.not_(x) for x in xs]
        net = b.build(outputs=ys)
        assert control_checker_overhead(net) == 0


class TestOutputChecker:
    def test_shapes_and_alarm_names(self):
        checker = build_output_checker(8)
        assert checker.alarm_names == ("sortedness", "count")
        assert len(checker.netlist.inputs) == 16

    def test_fish_end_to_end(self):
        from repro.core.fish_sorter import FishSorter

        fs = FishSorter(8)
        checker = build_output_checker(8)
        rng = np.random.default_rng(7)
        for _ in range(8):
            bits = rng.integers(0, 2, 8).astype(np.uint8)
            out, _ = fs.sort(bits)
            assert checker.fired(bits[None, :], np.asarray(out)[None, :]) == ()

    def test_rejects_mismatched_shapes(self):
        checker = build_output_checker(8)
        with pytest.raises(BuildError):
            checker.alarms(np.zeros((1, 8)), np.zeros((1, 4)))
