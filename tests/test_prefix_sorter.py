"""Unit tests for Network 1 — the prefix binary sorter (Fig. 5)."""

import math

import numpy as np
import pytest

from repro.analysis import verify_netlist_random, verify_sorter_exhaustive
from repro.circuits import simulate
from repro.core import build_prefix_sorter
from repro.core.prefix_sorter import prefix_sort_behavioral


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_exhaustive(self, n):
        assert verify_sorter_exhaustive(build_prefix_sorter(n))

    @pytest.mark.parametrize("n", [32, 64, 128])
    def test_random_large(self, n):
        assert verify_netlist_random(build_prefix_sorter(n), trials=200)

    @pytest.mark.parametrize("adder", ["prefix", "ripple"])
    def test_adder_variants_sort(self, adder):
        assert verify_sorter_exhaustive(build_prefix_sorter(16, adder=adder))

    def test_behavioral_matches_netlist(self, rng):
        net = build_prefix_sorter(32)
        for _ in range(50):
            x = rng.integers(0, 2, 32).astype(np.uint8)
            assert np.array_equal(
                simulate(net, x[None, :])[0], prefix_sort_behavioral(x)
            )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            build_prefix_sorter(12)

    def test_corner_inputs(self):
        net = build_prefix_sorter(64)
        for x in (np.zeros(64), np.ones(64)):
            x = x.astype(np.uint8)
            assert np.array_equal(simulate(net, x[None, :])[0], np.sort(x))
        one = np.zeros(64, dtype=np.uint8)
        one[0] = 1
        out = simulate(net, one[None, :])[0]
        assert out.tolist() == [0] * 63 + [1]


class TestCountOutput:
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_emitted_count_is_popcount(self, n, rng):
        net = build_prefix_sorter(n, emit_count=True)
        assert len(net.outputs) == n + n.bit_length()
        for _ in range(30):
            x = rng.integers(0, 2, n).astype(np.uint8)
            out = simulate(net, x[None, :])[0]
            count_bits = out[n:]
            count = int((count_bits * (1 << np.arange(count_bits.size))).sum())
            assert count == int(x.sum())


class TestComplexityClaims:
    def test_switching_cost_tracks_3n_lg_n(self):
        """The comparator+switch cost (the paper counts everything at
        3n lg n with an idealized 3 lg n-cost adder) stays within a small
        factor of the claim; adders add an O(lg^2 n lg lg n) term."""
        for n in (16, 64, 256):
            net = build_prefix_sorter(n)
            lg = n.bit_length() - 1
            kinds = net.cost_by_kind()
            switching = kinds.get("COMPARATOR", 0) + kinds.get("SWITCH2", 0)
            assert switching <= 3 * n * lg
            # total including real gate-level adders stays within 1.5x
            assert net.cost() <= 1.5 * 3 * n * lg

    def test_cost_slope_is_n_polylog(self):
        from repro.analysis import loglog_slope

        sizes = [64, 128, 256, 512]
        costs = [build_prefix_sorter(n).cost() for n in sizes]
        slope = loglog_slope(sizes, costs)
        assert 1.0 < slope < 1.35  # n lg n territory

    def test_depth_polylog(self):
        from repro.analysis import loglog_slope

        sizes = [64, 128, 256, 512]
        depths = [build_prefix_sorter(n).depth() for n in sizes]
        # depth grows ~lg^2 n: doubling n adds O(lg n), so slope in
        # lg-space of depth vs lg n is ~2
        slope = loglog_slope(
            [math.log2(n) for n in sizes], depths
        )
        assert 1.4 < slope < 2.6

    def test_depth_below_paper_bound(self):
        # paper: D(n) = 3 lg^2 n + 2 lg n lg lg n
        for n in (16, 64, 256):
            lg = n.bit_length() - 1
            bound = 3 * lg * lg + 2 * lg * math.log2(max(lg, 2))
            assert build_prefix_sorter(n).depth() <= bound

    def test_ripple_adder_cheaper_but_deeper(self):
        ks = build_prefix_sorter(256, adder="prefix")
        rp = build_prefix_sorter(256, adder="ripple")
        assert rp.cost() < ks.cost()
        assert rp.depth() >= ks.depth()
