"""Tests for the generic time-multiplexed FSM stage (Model B hardware)."""

import numpy as np
import pytest

from repro.baselines.batcher import build_odd_even_merge_sorter
from repro.circuits import CircuitBuilder, build_time_multiplexed_stage, simulate
from repro.core import build_mux_merger_sorter
from repro.core.fish_sorter import FishSorter


class TestTimeMultiplexedStage:
    @pytest.mark.parametrize("k,g", [(2, 4), (4, 8), (8, 4)])
    def test_sorts_all_groups(self, k, g, rng):
        inner = build_mux_merger_sorter(g)
        stage = build_time_multiplexed_stage(inner, k)
        n = k * g
        for _ in range(15):
            x = rng.integers(0, 2, n).astype(np.uint8)
            stage.reset()
            out = stage.run(x.tolist(), k)
            expect = np.concatenate(
                [np.sort(x[i * g : (i + 1) * g]) for i in range(k)]
            )
            assert np.array_equal(np.array(out, dtype=np.uint8), expect)

    def test_incomplete_run_leaves_later_groups_blank(self, rng):
        inner = build_mux_merger_sorter(4)
        stage = build_time_multiplexed_stage(inner, 4)
        x = np.ones(16, dtype=np.uint8)
        stage.reset()
        out = stage.run(x.tolist(), 2)  # only two of four ticks
        assert out[:8] == [1] * 8
        assert out[8:] == [0] * 8  # staging registers still clear

    def test_works_with_any_inner_network(self, rng):
        inner = build_odd_even_merge_sorter(8)
        stage = build_time_multiplexed_stage(inner, 2)
        x = rng.integers(0, 2, 16).astype(np.uint8)
        stage.reset()
        out = stage.run(x.tolist(), 2)
        expect = np.concatenate([np.sort(x[:8]), np.sort(x[8:])])
        assert np.array_equal(np.array(out, dtype=np.uint8), expect)

    def test_matches_fish_phase1(self, rng):
        """The FSM stage computes exactly the fish sorter's phase 1."""
        fs = FishSorter(32, k=4)
        stage = build_time_multiplexed_stage(fs.group_sorter, 4)
        x = rng.integers(0, 2, 32).astype(np.uint8)
        stage.reset()
        out = np.array(stage.run(x.tolist(), 4), dtype=np.uint8)
        g = 8
        expect = np.concatenate(
            [np.sort(x[i * g : (i + 1) * g]) for i in range(4)]
        )
        assert np.array_equal(out, expect)

    def test_hardware_sharing_saves_cost(self):
        """One shared inner sorter + mux/demux/registers vs k copies —
        the saving that justifies Model B."""
        g, k = 16, 8
        inner = build_mux_merger_sorter(g)
        stage = build_time_multiplexed_stage(inner, k)
        parallel_cost = k * inner.cost()
        assert stage.combinational_cost() < parallel_cost

    def test_validation(self):
        inner = build_mux_merger_sorter(4)
        with pytest.raises(ValueError):
            build_time_multiplexed_stage(inner, 3)
        b = CircuitBuilder()
        x, y = b.add_inputs(2)
        lopsided = b.build([b.and_(x, y)])  # 2 in, 1 out
        with pytest.raises(ValueError):
            build_time_multiplexed_stage(lopsided, 2)

    def test_simulator_rejects_non_binary(self):
        net = build_mux_merger_sorter(4)
        with pytest.raises(ValueError, match="0/1"):
            simulate(net, [[0, 1, 2, 0]])
