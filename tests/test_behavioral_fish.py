"""Tests for the behavioral fish/k-way oracles and the time models."""

import numpy as np
import pytest

from repro.core.fish_sorter import (
    FishSorter,
    default_k,
    fish_sort_behavioral,
    fish_time_model,
)
from repro.core.kway import KWayMuxMerger, kway_merge_behavioral
from repro.core.sequences import is_sorted_binary, random_k_sorted


class TestKWayBehavioral:
    @pytest.mark.parametrize("n,k", [(8, 2), (16, 4), (32, 4), (64, 8)])
    def test_sorts(self, n, k, rng):
        for _ in range(40):
            x = random_k_sorted(n, k, rng)
            out = kway_merge_behavioral(x, k)
            assert is_sorted_binary(out)
            assert out.sum() == x.sum()

    def test_matches_clocked_merger(self, rng):
        m = KWayMuxMerger(32, 4)
        for _ in range(25):
            x = random_k_sorted(32, 4, rng)
            hw, _, _ = m.merge(x)
            assert np.array_equal(hw, kway_merge_behavioral(x, 4))


class TestFishBehavioral:
    @pytest.mark.parametrize("n", [16, 64, 128])
    def test_sorts(self, n, rng):
        for _ in range(25):
            x = rng.integers(0, 2, n).astype(np.uint8)
            assert np.array_equal(fish_sort_behavioral(x), np.sort(x))

    def test_matches_netlist_fish(self, rng):
        fs = FishSorter(64)
        for _ in range(15):
            x = rng.integers(0, 2, 64).astype(np.uint8)
            hw, _ = fs.sort(x)
            assert np.array_equal(hw, fish_sort_behavioral(x, fs.k))

    def test_explicit_k(self, rng):
        x = rng.integers(0, 2, 64).astype(np.uint8)
        for k in (2, 4, 8):
            assert np.array_equal(fish_sort_behavioral(x, k), np.sort(x))


class TestFishTimeModel:
    def test_measured_within_constant_of_model(self):
        """eqs. 22/25 shape check: measured/model ratio stays in a band
        across sizes for both modes."""
        ratios_seq, ratios_pipe = [], []
        for n in (64, 256, 1024):
            fs = FishSorter(n)
            x = np.zeros(n, dtype=np.uint8)
            _, rep_s = fs.sort(x)
            _, rep_p = fs.sort(x, pipelined=True)
            ratios_seq.append(rep_s.sorting_time / fish_time_model(n, fs.k))
            ratios_pipe.append(
                rep_p.sorting_time / fish_time_model(n, fs.k, pipelined=True)
            )
        for ratios in (ratios_seq, ratios_pipe):
            assert max(ratios) / min(ratios) < 2.0

    def test_pipelined_model_smaller(self):
        for n, k in [(256, 8), (1024, 8)]:
            assert fish_time_model(n, k, True) < fish_time_model(n, k, False)

    def test_model_orders(self):
        import math

        # unpipelined ~ lg^3 n at k = lg n; pipelined ~ lg^2 n
        n = 2 ** 16
        k = 16
        assert fish_time_model(n, k) / math.log2(n) ** 3 < 2
        assert fish_time_model(n, k, True) / math.log2(n) ** 2 < 3


class TestCliModes:
    def test_claims_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--claims"]) == 0
        out = capsys.readouterr().out
        assert "claims verified" in out
        assert "[PASS]" in out and "[FAIL]" not in out

    def test_models_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--models"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "fish" in out
