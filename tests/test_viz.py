"""Unit tests for the ASCII renderers."""

from repro.baselines.batcher import odd_even_merge_schedule
from repro.viz import render_block_diagram, render_comparator_network


class TestComparatorDiagram:
    def test_wire_rows_present(self):
        out = render_comparator_network(4, odd_even_merge_schedule(4))
        lines = out.splitlines()
        assert len(lines) == 7  # 4 wires + 3 gaps
        assert lines[0].startswith("x0")
        assert lines[6].startswith("x3")

    def test_comparator_count_matches(self):
        out = render_comparator_network(4, odd_even_merge_schedule(4))
        # each comparator renders two 'o' endpoints
        assert out.count("o") == 2 * 5

    def test_vertical_bars_connect(self):
        out = render_comparator_network(2, [[(0, 1)]])
        lines = out.splitlines()
        col = lines[0].index("o")
        assert lines[1][col] == "|"
        assert lines[2][col] == "o"


class TestBlockDiagram:
    def test_contains_labels(self):
        out = render_block_diagram(
            "fish", [("mux", "(n,n/k)"), ("sorter", "n/k"), ("merger", "k-way")]
        )
        assert "fish" in out
        assert "sorter" in out and "(n,n/k)" in out

    def test_arrows_between_blocks(self):
        out = render_block_diagram("t", [("a", ""), ("b", "")])
        assert "->" in out
