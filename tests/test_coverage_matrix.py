"""Tests for the paper-artifact coverage matrix."""

import pathlib

import pytest

from repro.analysis.coverage import ARTIFACTS, coverage_table

BENCH_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
TEST_DIR = pathlib.Path(__file__).parent


class TestCoverageMatrix:
    def test_all_paper_artifacts_present(self):
        refs = {a.ref for a in ARTIFACTS}
        for fig in range(1, 11):
            assert f"Fig. {fig}" in refs
        assert "Table I" in refs and "Table II" in refs
        for t in range(1, 5):
            assert f"Thm {t}" in refs
        assert "Corollary" in refs

    def test_regenerators_exist(self):
        for a in ARTIFACTS:
            target = a.regenerated_by
            if target.startswith("tests/"):
                assert (TEST_DIR.parent / target).is_file(), target
            else:
                assert (BENCH_DIR / target).is_file(), target

    def test_modules_resolve(self):
        import importlib

        for a in ARTIFACTS:
            for mod in a.module.split(","):
                importlib.import_module(f"repro.{mod.strip()}")

    def test_table_renders(self):
        text = coverage_table()
        assert "Fig. 10" in text and "Corollary" in text

    def test_cli_coverage_mode(self, capsys):
        from repro.__main__ import main

        assert main(["--coverage"]) == 0
        assert "all reproduced" in capsys.readouterr().out
