"""Run the full claims ledger — one test per paper claim."""

import pytest

from repro.analysis.claims import CLAIMS, run_all


@pytest.mark.parametrize("claim", CLAIMS, ids=[c.id for c in CLAIMS])
def test_claim(claim):
    ok, evidence = claim.check()
    assert ok, f"{claim.id} ({claim.section}): {claim.statement} — {evidence}"


def test_ledger_ids_unique():
    ids = [c.id for c in CLAIMS]
    assert len(ids) == len(set(ids))


def test_every_claim_cites_a_section():
    assert all(c.section for c in CLAIMS)
    assert all(c.statement for c in CLAIMS)


def test_run_all_shape():
    results = run_all()
    assert set(results) == {c.id for c in CLAIMS}
    assert all(isinstance(ev, str) and ev for _, ev in results.values())
