"""Unit tests for the analysis package."""

import math

import numpy as np
import pytest

from repro.analysis import (
    aks_cost_crossover,
    aks_time_crossover,
    batcher_improvement_factor,
    find_crossover,
    format_table,
    loglog_slope,
    measure_network,
    measure_sweep,
    normalized_constant,
    verify_netlist_random,
    verify_sorter_exhaustive,
    verify_sorter_random,
)
from repro.core import build_mux_merger_sorter


class TestMeasure:
    def test_measure_fields(self):
        m = measure_network("mux_merger", 32)
        assert m.network == "mux_merger" and m.n == 32
        assert m.cost > 0 and m.depth > 0 and m.time == m.depth
        assert m.claimed_cost == 4 * 32 * 5

    def test_measure_fish_has_time(self):
        m = measure_network("fish", 32)
        assert m.time > m.depth  # multiplexed passes exceed any one depth

    def test_measure_fish_pipelined_faster(self):
        seq = measure_network("fish", 64)
        pipe = measure_network("fish", 64, pipelined=True)
        assert pipe.time < seq.time

    def test_sweep(self):
        ms = measure_sweep("batcher_oem", [8, 16, 32])
        assert [m.n for m in ms] == [8, 16, 32]
        assert ms[0].cost < ms[1].cost < ms[2].cost

    def test_unknown_network(self):
        with pytest.raises(ValueError):
            measure_network("quicksort", 16)

    def test_all_supported_networks(self):
        for name in (
            "prefix", "mux_merger", "fish", "batcher_oem",
            "batcher_bitonic", "balanced", "columnsort_tm",
            "muller_preparata",
        ):
            m = measure_network(name, 16)
            assert m.cost > 0


class TestSlopes:
    def test_linear_data(self):
        assert loglog_slope([2, 4, 8, 16], [10, 20, 40, 80]) == pytest.approx(1.0)

    def test_quadratic_data(self):
        assert loglog_slope([2, 4, 8], [4, 16, 64]) == pytest.approx(2.0)

    def test_normalized_constant(self):
        ms = measure_sweep("mux_merger", [64, 256])
        consts = normalized_constant(ms, lambda n: n * math.log2(n))
        assert all(c < 4.0 for c in consts)  # below the paper's 4n lg n


class TestCrossover:
    def test_find_crossover_simple(self):
        # lg^2 n vs 100 lg n cross at lg n = 100
        res = find_crossover(
            ours=lambda n: math.log2(n) ** 2,
            theirs=lambda n: 100 * math.log2(n),
        )
        assert res.lg_n == pytest.approx(100, abs=0.5)

    def test_no_crossover(self):
        res = find_crossover(ours=lambda n: n, theirs=lambda n: 2 * n)
        assert res.lg_n is None

    def test_aks_time_crossover_astronomical(self):
        # paper's claim: AKS wins only for extremely large n (~2^78)
        res = aks_time_crossover()
        assert res.lg_n is not None
        assert res.lg_n > 60

    def test_aks_cost_never_crosses(self):
        assert aks_cost_crossover().lg_n is None

    def test_batcher_factor_grows_like_lg_squared(self):
        f20 = batcher_improvement_factor(2 ** 20)
        f40 = batcher_improvement_factor(2 ** 40)
        assert f40 / f20 == pytest.approx(4.0, rel=0.35)  # (40/20)^2


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(
            ["n", "cost"], [[16, 100], [256, 2000]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "cost" in lines[1]
        assert "2000" in lines[-1]

    def test_float_formatting(self):
        out = format_table(["x"], [[1234567.0], [0.000123], [3.14159]])
        assert "1.23e+06" in out
        assert "3.14" in out


class TestVerifyHelpers:
    def test_exhaustive_accepts_sorter(self):
        assert verify_sorter_exhaustive(build_mux_merger_sorter(8))

    def test_exhaustive_rejects_non_sorter(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        ws = b.add_inputs(4)
        net = b.build(list(ws))  # identity is not a sorter
        assert not verify_sorter_exhaustive(net)

    def test_exhaustive_refuses_wide(self):
        with pytest.raises(ValueError):
            verify_sorter_exhaustive(build_mux_merger_sorter(32))

    def test_random_helpers(self, rng):
        assert verify_sorter_random(np.sort, 32, trials=20, rng=rng)
        assert not verify_sorter_random(lambda x: x, 32, trials=50, rng=rng)
        assert verify_netlist_random(build_mux_merger_sorter(64), trials=64)
