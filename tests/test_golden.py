"""Golden regression values.

Exact cost/depth numbers for canonical sizes, captured from the verified
implementation.  These protect the reproduction's *measurements* from
silent drift: any structural change to a construction that alters its
cost or depth must consciously update this table (and EXPERIMENTS.md).
"""

import pytest

from repro.baselines.balanced import build_balanced_sorter
from repro.baselines.batcher import build_bitonic_sorter, build_odd_even_merge_sorter
from repro.baselines.columnsort import build_columnsort_network
from repro.baselines.muller_preparata import build_muller_preparata_sorter
from repro.core import build_mux_merger_sorter, build_prefix_sorter
from repro.core.fish_sorter import FishSorter
from repro.networks.benes import BenesNetwork

#: builder -> {n: (cost, depth)}
GOLDEN = {
    build_mux_merger_sorter: {
        16: (151, 16), 64: (1095, 36), 256: (6407, 64),
    },
    build_prefix_sorter: {
        16: (236, 25), 64: (1452, 54), 256: (7546, 95),
    },
    build_odd_even_merge_sorter: {
        16: (63, 10), 64: (543, 21), 256: (3839, 36),
    },
    build_bitonic_sorter: {
        16: (80, 10), 64: (672, 21), 256: (4608, 36),
    },
    build_balanced_sorter: {
        16: (128, 16), 64: (1152, 36), 256: (8192, 64),
    },
    build_muller_preparata_sorter: {
        16: (139, 28), 64: (583, 45),
    },
    build_columnsort_network: {
        16: (171, 24), 64: (1719, 60),
    },
}


@pytest.mark.parametrize(
    "builder,n,expected",
    [
        (builder, n, expected)
        for builder, table in GOLDEN.items()
        for n, expected in table.items()
    ],
    ids=lambda v: getattr(v, "__name__", str(v)),
)
def test_golden_cost_depth(builder, n, expected):
    net = builder(n)
    assert (net.cost(), net.depth()) == expected, (
        f"{builder.__name__}({n}) changed: measured "
        f"({net.cost()}, {net.depth()}), golden {expected} — if this is an "
        "intentional construction change, update GOLDEN and EXPERIMENTS.md"
    )


def test_golden_fish():
    expected = {64: 928, 256: 3889, 1024: 15883}
    for n, cost in expected.items():
        assert FishSorter(n).cost() == cost


def test_golden_benes():
    for n, (cost, depth) in {16: (56, 7), 256: (1920, 15)}.items():
        bn = BenesNetwork(n)
        assert (bn.cost(), bn.depth()) == (cost, depth)


def test_golden_fish_times():
    import numpy as np

    fs = FishSorter(256)
    x = np.zeros(256, dtype=np.uint8)
    _, seq_rep = fs.sort(x)
    _, pipe_rep = fs.sort(x, pipelined=True)
    assert (seq_rep.sorting_time, pipe_rep.sorting_time) == (389, 123)
