"""Unit tests for the fault-model layer and its supporting machinery.

Covers :mod:`repro.circuits.faults` (application semantics, enumeration,
deterministic sampling), the builder's control-wire tagging, strict
netlist validation, engine wire taps, Model-B transient glitches, the
resilience classifier, and the serialize-cache staleness fix.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis.resilience import (
    DETECTED,
    MASKED,
    SILENT,
    classify,
    damage_metrics,
    format_resilience_table,
    monotone_rows,
    ones_displacement,
    row_inversions,
    summarize,
)
from repro.circuits import (
    CircuitBuilder,
    ControlInvert,
    Netlist,
    OutputSwap,
    PipelinedNetlist,
    StuckAt,
    TransientFlip,
    apply_fault,
    apply_faults,
    control_wires,
    enumerate_faults,
    exhaustive_inputs,
    fault_set_id,
    get_plan,
    k_fault_sets,
    optimize,
    sample_faults,
    simulate,
)
from repro.circuits.faults import derived_control_wires, driven_wires
from repro.circuits.simulate import simulate_interpreted
from repro.core import build_mux_merger_sorter, build_prefix_sorter


def _tiny_sorter4() -> Netlist:
    """A 4-input sorter with a SWITCH2 so control tagging is exercised."""
    b = CircuitBuilder("tiny4")
    w = b.add_inputs(4)
    a0, a1 = b.comparator(w[0], w[1])
    b0, b1 = b.comparator(w[2], w[3])
    lo0, lo1 = b.comparator(a0, b0)
    hi0, hi1 = b.comparator(a1, b1)
    m0, m1 = b.comparator(lo1, hi0)
    return b.build([lo0, m0, m1, hi1])


class TestFaultApplication:
    def test_stuck_at_rewires_readers_and_outputs(self):
        net = _tiny_sorter4()
        w = net.elements[0].outs[0]  # first comparator's min output
        for v in (0, 1):
            mut = apply_fault(net, StuckAt(w, v))
            mut.validate(strict=True)
            assert mut.n_wires == net.n_wires + 1
            # nothing reads the original wire any more
            assert all(w not in e.ins for e in mut.elements)
            assert w not in mut.outputs
            assert mut.constants[net.n_wires] == v

    def test_stuck_input_wire_forces_constant_output_column(self):
        net = _tiny_sorter4()
        mut = apply_fault(net, StuckAt(net.inputs[0], 1))
        out = simulate(mut, exhaustive_inputs(4))
        assert (out.sum(axis=1) >= 1).all()  # the stuck 1 always present

    def test_output_swap_reverses_and_rejects_gates(self):
        net = _tiny_sorter4()
        mut = apply_fault(net, OutputSwap(0))
        assert mut.elements[0].outs == tuple(reversed(net.elements[0].outs))
        b = CircuitBuilder("gate")
        x, y = b.add_inputs(2)
        gnet = b.build([b.and_(x, y)])
        with pytest.raises(ValueError, match="not a routing element"):
            apply_fault(gnet, OutputSwap(0))

    def test_control_invert_splices_not_after_driver(self):
        net = _tiny_sorter4()
        w = net.elements[0].outs[1]
        mut = apply_fault(net, ControlInvert(w))
        mut.validate(strict=True)
        assert len(mut.elements) == len(net.elements) + 1
        # behavior: inverted wire flips downstream min/max of that path
        assert not np.array_equal(
            simulate(mut, exhaustive_inputs(4)), simulate(net, exhaustive_inputs(4))
        )

    def test_original_netlist_never_modified(self):
        net = _tiny_sorter4()
        before = (tuple(net.elements), net.n_wires, tuple(net.outputs))
        apply_faults(net, [OutputSwap(0), StuckAt(0, 1), ControlInvert(1)])
        assert (tuple(net.elements), net.n_wires, tuple(net.outputs)) == before

    def test_multi_fault_swap_indices_refer_to_original_elements(self):
        # ControlInvert inserts an element; OutputSwap(4) must still hit
        # the original element #4 because swaps are applied first.
        net = _tiny_sorter4()
        mut = apply_faults(net, [ControlInvert(net.elements[0].outs[0]), OutputSwap(4)])
        mut.validate(strict=True)
        swapped = [
            e for e in mut.elements
            if e.outs == tuple(reversed(net.elements[4].outs))
        ]
        assert swapped

    def test_engine_interpreter_agree_on_every_single_fault(self):
        net = _tiny_sorter4()
        X = exhaustive_inputs(4)
        for f in enumerate_faults(net, kinds=("stuck", "swap", "control")):
            mut = apply_fault(net, f)
            assert np.array_equal(
                simulate(mut, X), simulate_interpreted(mut, X)
            ), f.id


class TestEnumerationAndSampling:
    def test_universe_contents(self):
        net = _tiny_sorter4()
        uni = enumerate_faults(net)
        stuck = [f for f in uni if isinstance(f, StuckAt)]
        swaps = [f for f in uni if isinstance(f, OutputSwap)]
        assert len(stuck) == 2 * len(driven_wires(net))
        assert len(swaps) == 5  # every comparator
        trans = enumerate_faults(net, kinds=("transient",), cycles=[0, 1])
        assert len(trans) == 2 * len(driven_wires(net))  # no constants here
        with pytest.raises(ValueError, match="cycles"):
            enumerate_faults(net, kinds=("transient",))

    def test_sampling_is_deterministic_and_capped(self):
        net = build_prefix_sorter(8)
        uni = enumerate_faults(net)
        s1 = sample_faults(uni, 10, seed=7)
        s2 = sample_faults(uni, 10, seed=7)
        assert s1 == s2 and len(s1) == 10
        assert sample_faults(uni, 10, seed=8) != s1
        assert sample_faults(uni, 10 ** 6, seed=7) == list(uni)

    def test_k_fault_sets(self):
        net = _tiny_sorter4()
        uni = enumerate_faults(net, kinds=("swap",))
        full = k_fault_sets(uni, 2)
        assert len(full) == 10  # C(5, 2)
        capped = k_fault_sets(uni, 2, limit=4, seed=3)
        assert len(capped) == 4 == len(set(capped))
        assert capped == k_fault_sets(uni, 2, limit=4, seed=3)

    def test_fault_set_id_stable(self):
        assert fault_set_id(StuckAt(3, 1)) == "stuck@w3=1"
        assert (
            fault_set_id([OutputSwap(2), TransientFlip(1, 4)])
            == "swap@e2+flip@w1@t4"
        )


class TestControlWireTagging:
    def test_builder_auto_tags_switch_controls(self):
        b = CircuitBuilder("sw")
        x, y = b.add_inputs(2)
        c = b.add_input()
        net = b.build(list(b.switch2(x, y, c)))
        assert c in net.control_wires
        assert derived_control_wires(net) == {c}

    def test_explicit_tags_union_with_derived(self):
        b = CircuitBuilder("t")
        x, y = b.add_inputs(2)
        b.tag_control(y)
        net = b.build([b.and_(x, y)])
        assert control_wires(net) == {y}
        with pytest.raises(ValueError):
            b.tag_control(99)

    def test_core_builders_tag_steering(self):
        for builder in (build_prefix_sorter, build_mux_merger_sorter):
            net = builder(8)
            assert net.control_wires, builder.__name__
            net.validate(strict=True)

    def test_optimize_preserves_control_tags(self):
        net = build_prefix_sorter(8)
        assert optimize(net).control_wires == net.control_wires


class TestStrictValidate:
    """Construction validates eagerly, so broken netlists are forged by
    mutating ``elements`` in place — exactly the hand-editing scenario
    ``validate(strict=True)`` exists to debug."""

    @staticmethod
    def _valid_pair() -> Netlist:
        from repro.circuits.elements import Element

        return Netlist(
            4,
            [Element("NOT", (0,), (2,), None), Element("NOT", (2,), (3,), None)],
            [0, 1],
            [3],
            {},
        )

    def test_undriven_read_names_element(self):
        from repro.circuits.elements import Element

        net = self._valid_pair()
        net.elements[0] = Element("AND", (0, 1), (2,), None)
        net.elements[1] = Element("AND", (2, 9), (3,), None)
        with pytest.raises(ValueError, match=r"element #1 \(AND\) reads wire 9"):
            net.validate()

    def test_strict_collects_all_problems(self):
        from repro.circuits.elements import Element

        net = self._valid_pair()
        net.elements[0] = Element("NOT", (5,), (2,), None)   # out-of-range read
        net.elements[1] = Element("NOT", (0,), (1,), None)   # redrives input 1
        with pytest.raises(ValueError) as err:
            net.validate(strict=True)
        msg = str(err.value)
        # all three collected: bad read, duplicate driver, and the output
        # left undriven by the rewired element #1
        assert "out of range" in msg
        assert "multiple drivers" in msg
        assert "undriven" in msg
        assert "3 validation problem" in msg

    def test_strict_distinguishes_out_of_order_from_floating(self):
        net = self._valid_pair()
        net.elements.reverse()  # element reads wire 2 before its driver
        with pytest.raises(ValueError, match="before its driver"):
            net.validate(strict=True)

    def test_strict_checks_control_wire_range(self):
        net = self._valid_pair()
        net.control_wires = frozenset({99})
        with pytest.raises(ValueError, match="control wire"):
            net.validate(strict=True)


class TestEngineTaps:
    def test_taps_match_rewired_outputs(self):
        net = build_prefix_sorter(8)
        taps = sorted(control_wires(net))
        X = exhaustive_inputs(8)
        out, tapped = get_plan(net).execute(X, taps=taps)
        # ground truth: the same netlist with outputs = tapped wires
        probe = Netlist(
            net.n_wires, net.elements, net.inputs, taps, net.constants,
            name="probe", control_wires=net.control_wires,
        )
        assert np.array_equal(tapped, simulate_interpreted(probe, X))
        assert np.array_equal(out, np.sort(X, axis=1))

    def test_packed_and_unpacked_taps_agree(self):
        net = build_mux_merger_sorter(8)
        taps = sorted(control_wires(net))[:4]
        X = exhaustive_inputs(8)
        plan = get_plan(net)
        out_p, tap_p = plan.execute_packed(X, taps=taps)
        out_u, tap_u = plan.execute_unpacked(X, taps=taps)
        assert np.array_equal(tap_p, tap_u)
        assert np.array_equal(out_p, out_u)


class TestTransients:
    def test_transient_corrupts_only_inflight_group(self):
        net = build_mux_merger_sorter(4)
        groups = [[0, 1, 0, 1], [1, 1, 0, 0], [0, 0, 0, 1]]
        clean = PipelinedNetlist(net)
        ref, _ = clean.run([list(g) for g in groups])
        # flip an input wire at the clock when group 1 is latched
        glitched = PipelinedNetlist(net, transients=[TransientFlip(net.inputs[0], 1)])
        out, _ = glitched.run([list(g) for g in groups])
        assert out[0] == ref[0] and out[2] == ref[2]
        assert out[1] != ref[1]

    def test_tuple_transients_accepted_and_reset_clears_clock(self):
        net = build_mux_merger_sorter(4)
        p = PipelinedNetlist(net, transients=[(net.inputs[1], 0)])
        first, _ = p.run([[0, 1, 1, 0]])
        p.reset()
        again, _ = p.run([[0, 1, 1, 0]])
        assert first == again  # deterministic across reset

    def test_transient_wire_range_checked(self):
        net = build_mux_merger_sorter(4)
        with pytest.raises(ValueError, match="out of range"):
            PipelinedNetlist(net, transients=[(net.n_wires + 3, 0)])


class TestResilience:
    def test_row_metrics(self):
        rows = np.array(
            [[0, 0, 1, 1], [1, 1, 0, 0], [1, 0, 1, 0]], dtype=np.uint8
        )
        # [1,0,1,0]: (1 before 0) pairs are (0,1), (0,3), (2,3) -> 3;
        # its ones sit at {0,2} vs sorted {2,3} -> displacement 3 too
        assert row_inversions(rows).tolist() == [0, 4, 3]
        assert ones_displacement(rows).tolist() == [0, 4, 3]
        assert monotone_rows(rows).tolist() == [True, False, False]

    def test_classify_three_ways(self):
        expected = np.array([[0, 0, 1, 1]] * 2, dtype=np.uint8)
        assert classify(expected, expected) == MASKED
        broken = expected.copy()
        broken[0] = [1, 0, 0, 1]  # non-monotone
        assert classify(broken, expected) == DETECTED
        silent = expected.copy()
        silent[0] = [0, 1, 1, 1]  # monotone but wrong popcount
        assert classify(silent, expected) == SILENT

    def test_damage_metrics_and_summary_table(self):
        expected = np.array([[0, 0, 1, 1]], dtype=np.uint8)
        out = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        d = damage_metrics(out, expected)
        assert d["wrong_rows"] == 1 and d["max_inversions"] == 4
        assert d["mean_hamming"] == 4.0 and d["max_popcount_delta"] == 0
        records = [
            {"network": "x", "kind": "stuck", "outcome": DETECTED,
             "damage": d, "divergences": 0},
            {"network": "x", "kind": "stuck", "outcome": MASKED,
             "damage": damage_metrics(expected, expected), "divergences": 0},
        ]
        summary = summarize(records)
        assert summary[0]["total"] == 2 and summary[0]["detected_rate"] == 0.5
        table = format_resilience_table(summary)
        assert "detected%" in table and "stuck" in table


class TestSerializeControlWiresAndCache:
    def test_control_wires_round_trip(self, tmp_path):
        from repro.circuits import from_json, load, save, to_json

        net = build_prefix_sorter(8)
        assert from_json(to_json(net)).control_wires == net.control_wires
        p = tmp_path / "net.json"
        save(net, p)
        assert load(p, cache=False).control_wires == net.control_wires

    def test_key_omitted_when_empty(self):
        from repro.circuits import to_json

        net = _tiny_sorter4()
        assert not net.control_wires
        assert "control_wires" not in json.loads(to_json(net))

    def test_cache_reload_on_atomic_replace_with_forged_mtime(self, tmp_path):
        """(mtime_ns, size) collision across os.replace must not serve
        the stale netlist: the content hash fallback has to reload."""
        from repro.circuits import load, save

        p = tmp_path / "net.json"
        save(build_prefix_sorter(4), p)
        st = os.stat(p)
        first = load(p)
        assert first is load(p)  # plain cache hit
        # atomically replace with a same-length file, forging the mtime
        other = tmp_path / "other.json"
        save(build_mux_merger_sorter(4), other)
        text = other.read_text()
        text = text + " " * (st.st_size - len(text))  # pad to same size
        assert len(text) == st.st_size, "test needs same-size payloads"
        other.write_text(text)
        os.utime(other, ns=(st.st_atime_ns, st.st_mtime_ns))
        os.replace(other, p)
        st2 = os.stat(p)
        assert (st2.st_mtime_ns, st2.st_size) == (st.st_mtime_ns, st.st_size)
        second = load(p)
        assert second is not first
        assert second.name != first.name

    def test_cache_rehash_tolerates_inode_change_same_content(self, tmp_path):
        from repro.circuits import load, save

        p = tmp_path / "net.json"
        save(build_prefix_sorter(4), p)
        st = os.stat(p)
        first = load(p)
        # byte-identical copy swapped in with a forged mtime: same content,
        # new inode — the hash fallback may keep serving the cached object
        twin = tmp_path / "twin.json"
        twin.write_bytes(p.read_bytes())
        os.utime(twin, ns=(st.st_atime_ns, st.st_mtime_ns))
        os.replace(twin, p)
        assert load(p) is first


class TestFishFaultHooks:
    def test_clone_with_group_sorter_checks_width(self):
        from repro.core.fish_sorter import FishSorter

        fs = FishSorter(16)
        with pytest.raises(ValueError, match="inputs"):
            fs.clone_with_group_sorter(build_prefix_sorter(8))

    def test_clone_substitutes_without_touching_original(self):
        from repro.core.fish_sorter import FishSorter

        fs = FishSorter(16)
        mut = apply_fault(fs.group_sorter, OutputSwap(0))
        clone = fs.clone_with_group_sorter(mut)
        assert clone.group_sorter is mut
        assert fs.group_sorter is not mut
        bits = np.array([1, 0] * 8, dtype=np.uint8)
        out, _ = fs.sort_cycle_accurate(bits)
        assert np.array_equal(out, np.sort(bits))
