"""Smoke tests: every example script runs end to end.

Examples are part of the public surface (deliverable b); these tests run
each one's ``main()`` in-process with captured output and check for the
key artifacts in what they print.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name, *args):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main(*args)
    return mod


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart", 32)
        out = capsys.readouterr().out
        assert "identical sorted output" in out
        assert "Network 3: fish sorter" in out

    def test_concentrator_routing(self, capsys):
        _run("concentrator_routing")
        out = capsys.readouterr().out
        assert "requests granted" in out
        assert "tagging trick" in out

    def test_permutation_routing(self, capsys):
        _run("permutation_routing")
        out = capsys.readouterr().out
        assert "delivered identically" in out
        assert "self-routing example" in out

    def test_pipelined_sorting(self, capsys):
        _run("pipelined_sorting")
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "speedup" in out

    def test_scaling_study(self, capsys):
        _run("scaling_study", 8)
        out = capsys.readouterr().out
        assert "cost slope" in out

    def test_word_sorting(self, capsys):
        _run("word_sorting")
        out = capsys.readouterr().out
        assert "stable binary splits" in out

    def test_self_routing_hardware(self, capsys):
        _run("self_routing_hardware")
        out = capsys.readouterr().out
        assert "control pins" in out
        assert "hardware concentrator" in out

    def test_multistage_router(self, capsys):
        _run("multistage_router")
        out = capsys.readouterr().out
        assert "every delivery verified" in out

    def test_all_examples_covered(self):
        """Every example script has a smoke test here."""
        scripts = {p.stem for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart", "concentrator_routing", "permutation_routing",
            "pipelined_sorting", "scaling_study", "word_sorting",
            "self_routing_hardware", "multistage_router",
        }
        assert scripts == tested
