"""Tests for the supervised execution runtime (repro.runtime).

Covers the recovery ladder (jit -> engine -> interpreter -> behavioral), the
gate-level + software detection gates, deadline/retry guards, the
structured error hierarchy's backward compatibility, and the statistics
counters — including the acceptance property that a supervisor handed
deliberately broken hardware still returns correct sorted output for
every injected steering fault.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.circuits import ControlInvert, OutputSwap, StuckAt, apply_fault, control_wires
from repro.circuits.checkers import with_checkers
from repro.core import build_prefix_sorter
from repro.core.api import cache_info, clear_cache, make_sorter, set_cache_limit, sort_bits
from repro.errors import (
    BuildError,
    CheckerAlarm,
    DeadlineExceeded,
    ReproError,
    SimulationError,
)
from repro.runtime import (
    RecoveryPolicy,
    Supervisor,
    get_supervisor,
    reset_supervisors,
    run_guarded,
    supervisor_stats,
    time_limit,
)


@pytest.fixture(autouse=True)
def _isolate():
    clear_cache()
    reset_supervisors()
    yield
    clear_cache()
    reset_supervisors()
    set_cache_limit(32)


def _broken_supervisor(network="prefix", n=8, fault=None, **policy_kw):
    """A supervisor whose hardware for width ``n`` carries ``fault``."""
    net = make_sorter(n, network)
    checked = with_checkers(net, sortedness=True, count=True, control=True)
    mutated = apply_fault(checked.netlist, fault) if fault else checked.netlist
    broken = dataclasses.replace(checked, netlist=mutated)
    policy = RecoveryPolicy(max_retries=0, **policy_kw)
    return Supervisor(network, policy=policy, hardware=lambda _n: broken), net


class TestErrorHierarchy:
    def test_build_and_simulation_errors_stay_valueerrors(self):
        # years of callers say `except ValueError` — must keep working
        assert issubclass(BuildError, ValueError)
        assert issubclass(SimulationError, ValueError)
        assert issubclass(BuildError, ReproError)
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_one_base_class_catches_everything(self):
        for exc in (BuildError("x"), SimulationError("x"),
                    CheckerAlarm(("count",)), DeadlineExceeded(1.0)):
            with pytest.raises(ReproError):
                raise exc

    def test_api_raises_structured_types(self):
        with pytest.raises(BuildError):
            sort_bits([1, 0], network="timsort")
        with pytest.raises(SimulationError):
            sort_bits([0, 1, 2])

    def test_checker_alarm_payload(self):
        err = CheckerAlarm(("sortedness", "count"), rows=[3, 7])
        assert err.alarms == ("sortedness", "count")
        assert err.rows == (3, 7)
        assert "sortedness" in str(err)


class TestGuard:
    def test_time_limit_noop_without_budget(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass

    def test_time_limit_expires(self):
        with pytest.raises(DeadlineExceeded):
            with time_limit(0.05, "nap"):
                time.sleep(5)

    def test_run_guarded_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        assert run_guarded(flaky, retries=3, backoff_s=0, sleep=lambda s: None) == "ok"
        assert calls["n"] == 3

    def test_run_guarded_exponential_backoff(self):
        delays = []

        def always_fail():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            run_guarded(always_fail, retries=3, backoff_s=0.1,
                        backoff_factor=2.0, sleep=delays.append)
        assert delays == [0.1, 0.2, 0.4]

    def test_run_guarded_bounds_total_stall(self):
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            run_guarded(lambda: time.sleep(10), timeout_s=0.05, retries=1,
                        backoff_s=0, sleep=lambda s: None)
        assert time.perf_counter() - start < 2.0


class TestSupervisedHealthy:
    @pytest.mark.parametrize("network", ["mux_merger", "prefix", "fish"])
    def test_matches_unsupervised(self, network, rng):
        for length in (1, 3, 5, 8, 13):
            bits = rng.integers(0, 2, length).astype(np.uint8)
            out = sort_bits(bits, network=network, supervised=True)
            assert out.tolist() == sorted(bits.tolist()), (network, length)

    def test_healthy_calls_resolve_at_jit_tier(self, rng):
        sup = get_supervisor("prefix")
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == sorted(bits.tolist())
        assert report.tier == "jit"
        assert not report.fell_back and not report.detections

    def test_jit_disabled_resolves_at_engine_tier(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "0")
        sup = Supervisor("prefix")
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == sorted(bits.tolist())
        assert report.tier == "engine"
        # degrading past a disabled tier is not a detection event
        assert not report.detections

    def test_stats_accumulate(self, rng):
        sup = get_supervisor("mux_merger")
        for _ in range(3):
            sup.sort(rng.integers(0, 2, 8).astype(np.uint8))
        snap = supervisor_stats()["mux_merger"]
        assert snap["calls"] == 3
        assert snap["tier_used"].get("jit") == 3
        assert snap["mean_latency_s"] > 0

    def test_rejects_unknown_network(self):
        with pytest.raises(BuildError):
            Supervisor("timsort")


class TestSupervisedRecovery:
    def _steering(self, net):
        wires = sorted(set(control_wires(net)) - set(net.inputs))
        assert wires
        return wires

    def test_steering_fault_detected_and_recovered(self, rng):
        net0 = build_prefix_sorter(8)
        for wire in self._steering(net0)[:4]:
            sup, _ = _broken_supervisor(fault=ControlInvert(wire))
            bits = rng.integers(0, 2, 8).astype(np.uint8)
            out, report = sup.sort_verbose(bits)
            assert out.tolist() == sorted(bits.tolist()), wire
            if report.fell_back:
                assert report.detections  # never a silent fallback

    def test_every_steering_inversion_recovered(self, rng):
        """Acceptance: sort_bits-style supervised calls return correct
        output under EVERY steering inversion, via detection+fallback."""
        net0 = build_prefix_sorter(8)
        probes = [rng.integers(0, 2, 8).astype(np.uint8) for _ in range(4)]
        for wire in self._steering(net0):
            sup, _ = _broken_supervisor(fault=ControlInvert(wire))
            for bits in probes:
                assert sup.sort(bits).tolist() == sorted(bits.tolist()), wire

    def test_input_fault_recovered_by_invariant_gate(self):
        """A stuck primary input defeats the hardware checkers (they see
        the faulted bus) but not the supervisor's software gate, which
        compares against the caller-held input."""
        net0 = build_prefix_sorter(8)
        sup, _ = _broken_supervisor(fault=StuckAt(net0.inputs[0], 1))
        bits = np.zeros(8, dtype=np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == [0] * 8
        assert "invariant" in report.detections
        assert report.tier == "behavioral"

    def test_output_swap_recovered(self, rng):
        net0 = build_prefix_sorter(8)
        swappable = [
            i for i, e in enumerate(net0.elements) if len(e.outs) >= 2
        ]
        sup, _ = _broken_supervisor(fault=OutputSwap(swappable[0]))
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        assert sup.sort(bits).tolist() == sorted(bits.tolist())

    def test_report_counts_attempts_and_retries(self, rng):
        net0 = build_prefix_sorter(8)
        wire = self._steering(net0)[0]
        net = make_sorter(8, "prefix")
        checked = with_checkers(net, control=True)
        broken = dataclasses.replace(
            checked, netlist=apply_fault(checked.netlist, ControlInvert(wire))
        )
        sup = Supervisor(
            "prefix",
            policy=RecoveryPolicy(max_retries=1, backoff_s=0),
            hardware=lambda _n: broken,
        )
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == sorted(bits.tolist())
        assert report.fell_back
        # each failing tier is attempted 1 + max_retries times
        assert report.attempts > report.retries >= 1

    def test_fish_supervised_recovery(self, rng):
        """Fish hardware override: (sorter, boundary checker) pair."""
        from repro.circuits.checkers import build_output_checker
        from repro.core.fish_sorter import FishSorter

        fs = FishSorter(8)
        target = fs.group_sorter
        steering = sorted(set(control_wires(target)) - set(target.inputs))
        mutant = apply_fault(target, ControlInvert(steering[0]))
        broken = fs.clone_with_group_sorter(mutant)
        checker = build_output_checker(8)
        sup = Supervisor(
            "fish",
            policy=RecoveryPolicy(max_retries=0),
            hardware=lambda _n: (broken, checker),
        )
        for _ in range(4):
            bits = rng.integers(0, 2, 8).astype(np.uint8)
            assert sup.sort(bits).tolist() == sorted(bits.tolist())


class TestDeadline:
    def test_deadline_falls_back(self, monkeypatch, rng):
        """An engine tier that hangs past the deadline degrades to a
        fallback tier instead of hanging the caller."""
        sup = Supervisor("prefix", policy=RecoveryPolicy(
            max_retries=0, deadline_s=0.05))
        slow = lambda *a, **k: time.sleep(10)
        monkeypatch.setattr(
            type(sup), "_run_tier",
            lambda self, tier, padded, pipelined:
                slow() if tier in ("jit", "engine")
                else np.sort(padded),
        )
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == sorted(bits.tolist())
        assert report.deadline_hits >= 1
        assert report.fell_back

    def test_policy_validation(self):
        with pytest.raises(BuildError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(BuildError):
            RecoveryPolicy(tiers=("warp",))


class TestCacheLRU:
    def test_bounded_eviction(self):
        set_cache_limit(2)
        a = make_sorter(4, "mux_merger")
        make_sorter(8, "mux_merger")
        make_sorter(16, "mux_merger")  # evicts (mux_merger, 4)
        info = cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 1
        assert make_sorter(4, "mux_merger") is not a  # rebuilt

    def test_lru_order_refreshed_on_hit(self):
        set_cache_limit(2)
        a = make_sorter(4, "mux_merger")
        make_sorter(8, "mux_merger")
        assert make_sorter(4, "mux_merger") is a     # hit refreshes 4
        make_sorter(16, "mux_merger")                 # evicts 8, not 4
        assert make_sorter(4, "mux_merger") is a

    def test_stats_and_clear(self):
        make_sorter(4, "prefix")
        make_sorter(4, "prefix")
        info = cache_info()
        assert info["hits"] >= 1 and info["misses"] >= 1
        clear_cache()
        info = cache_info()
        assert info == {"size": 0, "limit": info["limit"], "hits": 0,
                        "misses": 0, "evictions": 0}

    def test_rejects_silly_limit(self):
        with pytest.raises(BuildError):
            set_cache_limit(0)

    def test_thread_safety_under_contention(self):
        import threading

        set_cache_limit(4)
        errors = []

        def worker():
            try:
                for _ in range(20):
                    s = make_sorter(8, "mux_merger")
                    assert s is make_sorter(8, "mux_merger")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestBackoffCap:
    """``RecoveryPolicy.max_backoff_s``: the per-sleep cap that keeps a
    deadline storm from burning more wall-clock sleeping between
    retries than the attempts themselves cost."""

    def test_validation_and_effective_cap(self):
        with pytest.raises(BuildError):
            RecoveryPolicy(max_backoff_s=-0.1)
        assert RecoveryPolicy().backoff_cap_s is None  # unlimited
        assert RecoveryPolicy(deadline_s=0.5).backoff_cap_s == 0.5
        assert RecoveryPolicy(max_backoff_s=0.2,
                              deadline_s=0.5).backoff_cap_s == 0.2
        assert RecoveryPolicy(max_backoff_s=0.0).backoff_cap_s == 0.0

    def test_retry_sleeps_are_capped(self, monkeypatch, rng):
        sup = Supervisor("prefix", policy=RecoveryPolicy(
            max_retries=2, backoff_s=1e-3, backoff_factor=10.0,
            max_backoff_s=2e-3, tiers=("engine", "behavioral")))
        calls = {"n": 0}

        def flaky(self, tier, padded, pipelined):
            calls["n"] += 1
            if tier == "engine":
                raise SimulationError("chaos")
            return np.sort(padded)

        monkeypatch.setattr(type(sup), "_run_tier", flaky)
        slept = []
        monkeypatch.setattr(
            "repro.runtime.supervisor.time.sleep", slept.append)
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        out, report = sup.sort_verbose(bits)
        assert out.tolist() == sorted(bits.tolist())
        assert report.fell_back and report.retries == 2
        # uncapped the sleeps would be 1ms then 10ms; the cap clamps
        # the second retry to 2ms
        assert slept == [pytest.approx(1e-3), pytest.approx(2e-3)]

    def test_uncapped_policy_still_grows(self, monkeypatch, rng):
        sup = Supervisor("prefix", policy=RecoveryPolicy(
            max_retries=2, backoff_s=1e-3, backoff_factor=10.0,
            tiers=("engine", "behavioral")))

        def flaky(self, tier, padded, pipelined):
            if tier == "engine":
                raise SimulationError("chaos")
            return np.sort(padded)

        monkeypatch.setattr(type(sup), "_run_tier", flaky)
        slept = []
        monkeypatch.setattr(
            "repro.runtime.supervisor.time.sleep", slept.append)
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        sup.sort_verbose(bits)
        assert slept == [pytest.approx(1e-3), pytest.approx(1e-2)]
