"""Unit tests for repro.circuits.elements."""

import pytest

from repro.circuits import elements as el
from repro.circuits.elements import ELEMENT_META, Element


class TestMetadata:
    def test_unit_cost_elements(self):
        # paper Section II: these four are the unit-cost accounting atoms
        for kind in (el.COMPARATOR, el.SWITCH2, el.MUX2, el.DEMUX2):
            assert ELEMENT_META[kind].cost == 1
            assert ELEMENT_META[kind].depth == 1

    def test_switch4_is_four_switch2(self):
        # "normalized to the number of 2x2 switches" (footnote 4)
        assert ELEMENT_META[el.SWITCH4].cost == 4
        assert ELEMENT_META[el.SWITCH4].depth == 1

    def test_gates_unit_cost(self):
        for kind in (el.NOT, el.AND, el.OR, el.XOR, el.NAND, el.NOR, el.XNOR):
            assert ELEMENT_META[kind].cost == 1
            assert ELEMENT_META[kind].depth == 1

    def test_buffer_is_free(self):
        assert ELEMENT_META[el.BUF].cost == 0
        assert ELEMENT_META[el.BUF].depth == 0

    def test_arity_table(self):
        assert ELEMENT_META[el.COMPARATOR].n_inputs == 2
        assert ELEMENT_META[el.COMPARATOR].n_outputs == 2
        assert ELEMENT_META[el.SWITCH2].n_inputs == 3  # a, b, control
        assert ELEMENT_META[el.SWITCH4].n_inputs == 6  # 4 data + 2 select
        assert ELEMENT_META[el.MUX2].n_inputs == 3
        assert ELEMENT_META[el.DEMUX2].n_outputs == 2


class TestValidation:
    def test_wrong_input_arity_rejected(self):
        e = Element(el.AND, (0,), (1,), None)
        with pytest.raises(ValueError, match="expects 2 inputs"):
            e.validate()

    def test_wrong_output_arity_rejected(self):
        e = Element(el.COMPARATOR, (0, 1), (2,), None)
        with pytest.raises(ValueError, match="expects 2 outputs"):
            e.validate()

    def test_switch4_requires_table(self):
        e = Element(el.SWITCH4, (0, 1, 2, 3, 4, 5), (6, 7, 8, 9), None)
        with pytest.raises(ValueError, match="permutation table"):
            e.validate()

    def test_switch4_rejects_non_permutation(self):
        bad = ((0, 1, 2, 3), (0, 0, 2, 3), (0, 1, 2, 3), (0, 1, 2, 3))
        e = Element(el.SWITCH4, (0, 1, 2, 3, 4, 5), (6, 7, 8, 9), bad)
        with pytest.raises(ValueError, match="invalid 4x4 permutation"):
            e.validate()

    def test_valid_element_passes(self):
        e = Element(el.XOR, (0, 1), (2,), None)
        e.validate()
        assert e.cost == 1 and e.depth == 1
