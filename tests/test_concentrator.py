"""Unit tests for concentrators (Section IV)."""

import numpy as np
import pytest

from repro.networks.concentrator import (
    ConcentrationResult,
    FishConcentrator,
    SortingConcentrator,
    check_concentration,
)


class TestSortingConcentrator:
    @pytest.mark.parametrize("backend", ["mux_merger", "prefix"])
    def test_all_request_masks_n8(self, backend):
        c = SortingConcentrator(8, sorter=backend)
        pays = np.arange(8, dtype=np.int64) + 10
        for mask in range(256):
            req = np.array([(mask >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
            res = c.concentrate(req, pays)
            assert check_concentration(req, pays, res)

    def test_granted_in_first_r_outputs(self, rng):
        c = SortingConcentrator(16)
        pays = rng.integers(100, 200, 16).astype(np.int64)
        req = np.zeros(16, dtype=np.uint8)
        req[[3, 7, 11]] = 1
        res = c.concentrate(req, pays)
        assert res.count == 3
        assert set(res.granted.tolist()) == set(pays[[3, 7, 11]].tolist())

    def test_capacity_enforced(self):
        c = SortingConcentrator(8, m=2)
        req = np.ones(8, dtype=np.uint8)
        with pytest.raises(ValueError, match="exceed capacity"):
            c.concentrate(req, np.arange(8))

    def test_m_up_to_capacity_allowed(self):
        c = SortingConcentrator(8, m=3)
        req = np.zeros(8, dtype=np.uint8)
        req[:3] = 1
        res = c.concentrate(req, np.arange(8))
        assert res.count == 3

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            SortingConcentrator(8, m=0)
        with pytest.raises(ValueError):
            SortingConcentrator(8, m=9)

    def test_invalid_request_mask(self):
        c = SortingConcentrator(8)
        with pytest.raises(ValueError):
            c.concentrate([0, 1, 2, 0, 0, 0, 0, 0], np.arange(8))

    def test_wrong_lengths(self):
        c = SortingConcentrator(8)
        with pytest.raises(ValueError):
            c.concentrate(np.zeros(4, dtype=np.uint8), np.arange(8))

    def test_custom_netlist_backend(self):
        from repro.core import build_prefix_sorter

        c = SortingConcentrator(8, sorter=build_prefix_sorter(8))
        req = np.array([1, 0, 1, 0, 0, 0, 0, 1], dtype=np.uint8)
        res = c.concentrate(req, np.arange(8))
        assert check_concentration(req, np.arange(8), res)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            SortingConcentrator(8, sorter="quicksort")

    def test_cost_depth_exposed(self):
        c = SortingConcentrator(16)
        assert c.cost() > 0 and c.depth() > 0


class TestFishConcentrator:
    def test_concentrates(self, rng):
        fc = FishConcentrator(32)
        pays = np.arange(32, dtype=np.int64)
        for _ in range(15):
            req = rng.integers(0, 2, 32).astype(np.uint8)
            res, report = fc.concentrate(req, pays)
            assert check_concentration(req, pays, res)
            assert report.sorting_time > 0

    def test_cost_linear_vs_combinational(self):
        # Section IV: the fish concentrator is the O(n)-cost one
        n = 512
        fish = FishConcentrator(n).cost()
        comb = SortingConcentrator(n).cost()
        assert fish < comb

    def test_pipelined_flag(self):
        fc = FishConcentrator(32)
        req = np.zeros(32, dtype=np.uint8)
        req[5] = 1
        _, rep_pipe = fc.concentrate(req, np.arange(32), pipelined=True)
        _, rep_seq = fc.concentrate(req, np.arange(32), pipelined=False)
        assert rep_pipe.sorting_time < rep_seq.sorting_time


class TestOutputVector:
    def test_outputs_idle_markers(self, rng):
        from repro.networks.concentrator import IDLE

        c = SortingConcentrator(8)
        req = np.array([0, 1, 0, 0, 1, 0, 0, 0], dtype=np.uint8)
        pays = np.arange(8, dtype=np.int64) + 30
        res = c.concentrate(req, pays)
        assert res.outputs is not None and res.outputs.size == 8
        assert set(res.outputs[:2].tolist()) == {31, 34}
        assert all(v == IDLE for v in res.outputs[2:])

    def test_truncated_outputs_length_m(self):
        c = SortingConcentrator(8, m=3)
        req = np.zeros(8, dtype=np.uint8)
        req[0] = 1
        res = c.concentrate(req, np.arange(8))
        assert res.outputs.size == 3

    def test_fish_outputs(self, rng):
        from repro.networks.concentrator import IDLE

        fc = FishConcentrator(32)
        req = np.zeros(32, dtype=np.uint8)
        req[[1, 2, 3]] = 1
        res, _ = fc.concentrate(req, np.arange(32, dtype=np.int64))
        assert res.outputs.size == 32
        assert sorted(res.outputs[:3].tolist()) == [1, 2, 3]
        assert all(v == IDLE for v in res.outputs[3:])


class TestCheckConcentration:
    def test_detects_wrong_payload(self):
        req = np.array([1, 0, 0, 0], dtype=np.uint8)
        pays = np.array([5, 6, 7, 8], dtype=np.int64)
        bad = ConcentrationResult(granted=np.array([6]), count=1)
        assert not check_concentration(req, pays, bad)

    def test_detects_wrong_count(self):
        req = np.array([1, 1, 0, 0], dtype=np.uint8)
        pays = np.array([5, 6, 7, 8], dtype=np.int64)
        bad = ConcentrationResult(granted=np.array([5]), count=1)
        assert not check_concentration(req, pays, bad)

    def test_accepts_any_order(self):
        req = np.array([1, 1, 0, 0], dtype=np.uint8)
        pays = np.array([5, 6, 7, 8], dtype=np.int64)
        ok = ConcentrationResult(granted=np.array([6, 5]), count=2)
        assert check_concentration(req, pays, ok)
