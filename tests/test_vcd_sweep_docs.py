"""Tests for VCD export, the sweep tool, the API doc generator, and
schedule compaction."""

import importlib.util
import json
import pathlib

import pytest

from repro.analysis.zero_one import compact_stages, extract_comparator_schedule
from repro.baselines.batcher import build_odd_even_merge_sorter
from repro.circuits.vcd import VcdRecorder, record_sequential

TOOLS = pathlib.Path(__file__).parent.parent / "tools"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCompactStages:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_recovers_network_depth(self, n):
        net = build_odd_even_merge_sorter(n)
        sched = extract_comparator_schedule(net)
        compact = compact_stages(sched)
        assert len(compact) == net.depth()

    def test_preserves_comparator_count(self):
        net = build_odd_even_merge_sorter(16)
        sched = extract_comparator_schedule(net)
        compact = compact_stages(sched)
        assert sum(len(s) for s in compact) == net.cost()

    def test_stages_are_disjoint(self):
        net = build_odd_even_merge_sorter(16)
        for stage in compact_stages(extract_comparator_schedule(net)):
            lines = [x for pair in stage for x in pair]
            assert len(lines) == len(set(lines))

    def test_still_sorts(self, rng):
        import numpy as np
        from repro.baselines.batcher import apply_schedule

        net = build_odd_even_merge_sorter(16)
        compact = compact_stages(extract_comparator_schedule(net))
        for _ in range(30):
            v = rng.integers(0, 100, 16)
            assert np.array_equal(apply_schedule(v, compact), np.sort(v))


class TestVcd:
    def test_records_and_dumps(self):
        rec = VcdRecorder(["a", "b"])
        rec.sample([0, 1])
        rec.sample([1, 1])
        rec.sample([1, 0])
        text = rec.dumps()
        assert "$var wire 1" in text
        assert text.count("#") == 4  # 3 cycles + final marker
        # only changes are dumped after cycle 0
        assert "a $end" in text and "b $end" in text

    def test_write(self, tmp_path):
        rec = VcdRecorder(["x"])
        rec.sample([1])
        path = tmp_path / "t.vcd"
        rec.write(path)
        assert path.read_text().startswith("$date")

    def test_validation(self):
        with pytest.raises(ValueError):
            VcdRecorder([])
        with pytest.raises(ValueError):
            VcdRecorder(["a", "a"])
        rec = VcdRecorder(["a"])
        with pytest.raises(ValueError):
            rec.sample([1, 0])

    def test_record_sequential_counter(self):
        from repro.circuits import CircuitBuilder
        from repro.circuits.fsm import SequentialCircuit

        b = CircuitBuilder()
        s0, s1 = b.add_inputs(2)
        carry = b.const(1)
        n0 = b.xor(s0, carry)
        c0 = b.and_(s0, carry)
        n1 = b.xor(s1, c0)
        net = b.build([n0, n1, b.buf(n0)])
        circ = SequentialCircuit(net, n_state=2)
        rec = record_sequential(circ, [], cycles=4)
        assert len(rec.samples) == 4
        # state counts 1, 2, 3, 0 across cycles
        vals = [s[0] + 2 * s[1] for s in rec.samples]
        assert vals == [1, 2, 3, 0]

    def test_hw_clean_sorter_trace(self, tmp_path):
        """End-to-end: dump a waveform of the clocked clean sorter."""
        import numpy as np
        from repro.core.hw_clean_sorter import HardwareCleanSorter

        hcs = HardwareCleanSorter(8, 4)
        circ = hcs.circuit
        circ.reset()
        rec = VcdRecorder(
            [f"st{i}" for i in range(circ.n_state)]
            + [f"o{i}" for i in range(circ.n_external_out)]
        )
        x = np.repeat(np.array([1, 0, 1, 0], dtype=np.uint8), 2)
        for _ in range(4):
            outs = circ.step(x.tolist())
            rec.sample(list(circ.state) + outs)
        assert outs == [0, 0, 0, 0, 1, 1, 1, 1]
        path = tmp_path / "clean.vcd"
        rec.write(path)
        assert path.stat().st_size > 100


class TestSweepTool:
    def test_sweep_runs(self, tmp_path):
        mod = _load("sweep")
        out = tmp_path / "sweep.json"
        assert mod.main(["--min-lg", "4", "--max-lg", "5", "--out", str(out)]) == 0
        records = json.loads(out.read_text())
        assert len(records) == len(mod.NETWORKS) * 2
        assert all("cost" in r and r["cost"] > 0 for r in records)

    def test_sweep_validates_range(self, tmp_path):
        mod = _load("sweep")
        assert mod.main(["--min-lg", "9", "--max-lg", "5"]) == 2

    def test_sweep_quarantines_slow_items(self, tmp_path):
        """A tiny per-item budget quarantines items into a sibling file
        (keeping the main record format intact) instead of failing."""
        mod = _load("sweep")
        out = tmp_path / "sweep.json"
        assert mod.main([
            "--min-lg", "4", "--max-lg", "5", "--out", str(out),
            "--item-timeout", "0.0005", "--item-retries", "0",
        ]) == 0
        qpath = tmp_path / "sweep.json.quarantine.json"
        records = json.loads(out.read_text())
        if qpath.is_file():
            quarantined = json.loads(qpath.read_text())
            assert all("DeadlineExceeded" in q["error"] for q in quarantined)
            assert len(records) + len(quarantined) == len(mod.NETWORKS) * 2
        else:  # machine fast enough that nothing tripped the budget
            assert len(records) == len(mod.NETWORKS) * 2

    def test_sweep_normal_run_leaves_no_quarantine(self, tmp_path):
        mod = _load("sweep")
        out = tmp_path / "sweep.json"
        assert mod.main([
            "--min-lg", "4", "--max-lg", "4", "--out", str(out),
            "--item-timeout", "120",
        ]) == 0
        assert not (tmp_path / "sweep.json.quarantine.json").is_file()


class TestApiDocsTool:
    def test_generates_reference(self):
        mod = _load("gen_api_docs")
        text = mod.generate()
        assert "# API reference" in text
        assert "`FishSorter` (class)" in text
        assert "repro.analysis" in text
        # every public package section present
        for pkg in mod.PACKAGES:
            assert f"## `{pkg}`" in text
