"""Unit tests for Network 3 — the fish binary sorter (Fig. 7)."""

import math

import numpy as np
import pytest

from repro.core import sequences as seq
from repro.core.fish_sorter import FishSorter, default_k


class TestCorrectness:
    def test_exhaustive_n8(self):
        fs = FishSorter(8, k=2)
        for v in range(256):
            x = np.array([(v >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
            out, _ = fs.sort(x)
            assert seq.is_sorted_binary(out)
            assert out.sum() == x.sum()

    @pytest.mark.parametrize("n,k", [(16, 2), (16, 4), (32, 4), (64, 8), (128, 4)])
    def test_random(self, n, k, rng):
        fs = FishSorter(n, k)
        for _ in range(30):
            x = rng.integers(0, 2, n).astype(np.uint8)
            out, _ = fs.sort(x)
            assert np.array_equal(out, np.sort(x))

    def test_corner_cases(self):
        fs = FishSorter(64)
        for x in (np.zeros(64), np.ones(64)):
            out, _ = fs.sort(x.astype(np.uint8))
            assert np.array_equal(out, np.sort(x))
        single = np.zeros(64, dtype=np.uint8)
        single[0] = 1
        out, _ = fs.sort(single)
        assert out.tolist() == [0] * 63 + [1]

    def test_pipelined_same_result(self, rng):
        fs = FishSorter(64)
        for _ in range(10):
            x = rng.integers(0, 2, 64).astype(np.uint8)
            a, _ = fs.sort(x)
            b, _ = fs.sort(x, pipelined=True)
            assert np.array_equal(a, b)

    def test_payload_routing(self, rng):
        fs = FishSorter(32)
        x = rng.integers(0, 2, 32).astype(np.uint8)
        pays = np.arange(32, dtype=np.int64)
        out, out_pays, _ = fs.sort_with_payload(x, pays)
        assert sorted(out_pays.tolist()) == list(range(32))
        assert all(x[p] == t for t, p in zip(out, out_pays))

    def test_validation(self):
        with pytest.raises(ValueError):
            FishSorter(12)
        with pytest.raises(ValueError):
            FishSorter(16, k=3)
        with pytest.raises(ValueError):
            FishSorter(16, k=16)  # group size 1
        fs = FishSorter(16)
        with pytest.raises(ValueError):
            fs.sort(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            fs.sort_with_payload(
                np.zeros(16, dtype=np.uint8), np.zeros(4, dtype=np.int64)
            )


class TestDefaultK:
    def test_tracks_lg_n(self):
        assert default_k(16) == 4
        assert default_k(256) == 8
        assert default_k(1024) == 8  # lg 1024 = 10 -> nearest power of 2 below
        assert default_k(4096) == 8

    def test_always_valid(self):
        for p in range(2, 13):
            n = 1 << p
            k = default_k(n)
            assert k >= 2 and k <= n // 2 and (k & (k - 1)) == 0


class TestComplexityClaims:
    def test_cost_below_paper_bound(self):
        # eq. (17) upper-bounds the cost for every (n, k)
        for n in (16, 64, 256, 1024):
            fs = FishSorter(n)
            assert fs.cost() <= fs.cost_bound_paper()

    def test_cost_linear_in_n(self):
        # the headline O(n) claim: cost/n stays bounded as n grows
        ratios = []
        for n in (256, 512, 1024, 2048):
            fs = FishSorter(n)
            ratios.append(fs.cost() / n)
        assert max(ratios) < 25  # paper's constant is <= 17 plus o(n) terms
        # and the per-n ratio must not grow like lg n: compare ends
        assert ratios[-1] < ratios[0] * 1.5

    def test_cost_beats_batcher_increasingly(self):
        from repro.baselines.batcher import build_odd_even_merge_sorter

        gaps = []
        for n in (64, 256, 1024):
            fish = FishSorter(n).cost()
            batcher = build_odd_even_merge_sorter(n).cost()
            gaps.append(batcher / fish)
        assert gaps[0] < gaps[1] < gaps[2]  # O(lg^2 n) improvement factor

    def test_sorting_time_polylog(self):
        # unpipelined time ~ lg^3 n: time / lg^3 n bounded
        for n in (64, 256, 1024):
            fs = FishSorter(n)
            _, rep = fs.sort(np.zeros(n, dtype=np.uint8))
            lg = math.log2(n)
            assert rep.sorting_time <= 6 * lg ** 3

    def test_pipelining_helps_phase1(self):
        fs = FishSorter(256)
        x = np.zeros(256, dtype=np.uint8)
        _, seq_rep = fs.sort(x)
        _, pipe_rep = fs.sort(x, pipelined=True)
        assert pipe_rep.phase1_time < seq_rep.phase1_time
        assert pipe_rep.sorting_time < seq_rep.sorting_time

    def test_report_time_decomposition(self):
        fs = FishSorter(64)
        _, rep = fs.sort(np.zeros(64, dtype=np.uint8))
        assert rep.sorting_time == rep.phase1_time + rep.merge_time
        assert rep.n == 64 and rep.k == fs.k

    def test_inventory_total(self):
        fs = FishSorter(128)
        assert fs.cost() == sum(p.cost for p in fs.inventory())
