"""Tests for (n,m)-concentrator truncation and parallel verification."""

import numpy as np
import pytest

from repro.analysis.verify import verify_sorter_exhaustive_parallel
from repro.baselines.batcher import build_odd_even_merge_sorter
from repro.core import build_mux_merger_sorter
from repro.networks.concentrator import SortingConcentrator, check_concentration


class TestTruncatedConcentrator:
    @pytest.mark.parametrize("m", [1, 2, 4, 7])
    def test_correct_for_all_masks_within_capacity(self, m, rng):
        c = SortingConcentrator(8, m)
        pays = np.arange(8, dtype=np.int64)
        for mask in range(256):
            req = np.array([(mask >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
            if int(req.sum()) > m:
                continue
            res = c.concentrate(req, pays)
            assert check_concentration(req, pays, res)

    def test_never_costs_more(self):
        for m in (2, 4, 8):
            c = SortingConcentrator(16, m)
            assert c.cost() <= c.full_cost

    def test_batcher_backend_prunes_substantially(self):
        """Comparator networks specialize well: an (16,2)-concentrator
        over Batcher drops ~1/3 of the full sorter."""
        c = SortingConcentrator(16, 2, sorter=build_odd_even_merge_sorter(16))
        assert c.cost() < 0.75 * c.full_cost

    def test_mux_merger_prunes_little(self):
        """Honest negative: the mux-merger's top-level OUT-SWAP touches
        every output, so truncation barely helps — the adaptive design
        trades specializability for total cost."""
        c = SortingConcentrator(16, 2)
        assert c.cost() >= 0.9 * c.full_cost

    def test_truncate_false_keeps_full(self):
        c = SortingConcentrator(16, 4, truncate=False)
        assert c.cost() == c.full_cost
        assert len(c.netlist.outputs) == 16

    def test_truncated_output_count(self):
        c = SortingConcentrator(16, 4)
        assert len(c.netlist.outputs) == 4


class TestParallelVerification:
    def test_accepts_correct_sorter(self):
        net = build_mux_merger_sorter(16)
        assert verify_sorter_exhaustive_parallel(net, workers=2, batch_bits=10)

    def test_rejects_broken_sorter(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        ws = b.add_inputs(10)
        net = b.build(list(ws))  # identity
        assert not verify_sorter_exhaustive_parallel(net, workers=2, batch_bits=8)

    def test_single_worker_path(self):
        net = build_mux_merger_sorter(8)
        assert verify_sorter_exhaustive_parallel(net, workers=1)

    def test_matches_serial_verifier(self):
        from repro.analysis import verify_sorter_exhaustive

        net = build_mux_merger_sorter(16)
        assert verify_sorter_exhaustive_parallel(net, workers=2, batch_bits=8) \
            == verify_sorter_exhaustive(net)

    def test_validation(self):
        net = build_mux_merger_sorter(8)
        with pytest.raises(ValueError):
            verify_sorter_exhaustive_parallel(net, workers=0)
