"""Tests for the process-parallel execution layer and the deadline-guard
signal-loss fixes that ride with it.

Covers, in order:

* :mod:`repro.parallel` — deterministic ordering, crash isolation (a
  SIGKILLed worker loses only its in-flight item), error quarantine,
  per-worker init, and per-item deadlines that actually preempt (they
  run on each worker's main thread);
* the guard bugfixes — a SIGALRM landing inside a GC callback or
  ``__del__`` no longer loses the deadline (deferred re-arm + post-body
  expiry check), and an unenforceable deadline (off the main thread)
  announces itself instead of silently not guarding;
* fork-aware observability — :class:`repro.obs.FileSink` shards per pid
  under fork, shards merge back, worker metrics fold into the parent;
* the ``--jobs`` wiring — ``tools/sweep.py`` and
  ``tools/fault_campaign.py`` produce records identical to their serial
  runs, and the batch APIs (:func:`repro.core.sort_bits_many`,
  :meth:`repro.runtime.Supervisor.run_many`) match their serial paths
  bit for bit.
"""

import gc
import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import warnings

import numpy as np
import pytest

import repro.obs as obs
from repro.core import sort_bits_many
from repro.errors import DeadlineExceeded, SimulationError
from repro.obs import FileSink, MetricsRegistry, merge_shards, read_trace, shard_paths
from repro.parallel import ItemOutcome, run_items, split_outcomes
from repro.runtime import Supervisor
from repro.runtime.guard import (
    _reset_unguarded_warning,
    _unraisable_frame,
    run_guarded,
    time_limit,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# executor tasks must be module-level so both fork and spawn contexts can
# reach them


def _square(x):
    return x * x


def _square_or_die(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if x == "boom":
        raise ValueError("boom payload")
    return x * x


def _sleepy(x):
    time.sleep(30.0)
    return x


_INIT_STATE = {}


def _remember_init(arg):
    _INIT_STATE["base"] = arg


def _add_init(x):
    return _INIT_STATE["base"] + x


class TestExecutor:
    def test_parallel_matches_serial_in_order(self):
        items = [(f"i{k}", k) for k in range(12)]
        serial = run_items(items, _square, jobs=1)
        parallel = run_items(items, _square, jobs=3)
        assert [o.value for o in serial] == [k * k for k in range(12)]
        assert [o.value for o in parallel] == [o.value for o in serial]
        assert [o.index for o in parallel] == list(range(12))
        assert all(o.ok for o in parallel)
        # genuinely ran elsewhere
        assert any(o.pid != os.getpid() for o in parallel)
        assert all(o.pid == os.getpid() for o in serial)

    def test_error_item_is_quarantined_not_fatal(self):
        items = [("a", 2), ("bad", "boom"), ("c", 3)]
        outcomes = run_items(items, _square_or_die, jobs=2)
        values, quarantine = split_outcomes(outcomes)
        assert values == [4, 9]
        assert len(quarantine) == 1
        assert quarantine[0]["id"] == "bad"
        assert "boom payload" in quarantine[0]["error"]
        assert "unguarded" not in quarantine[0]

    def test_sigkilled_worker_loses_only_its_item(self):
        clean = [(f"i{k}", k) for k in range(8)]
        serial = run_items(clean, _square_or_die, jobs=1)
        killer = clean[:4] + [("victim", "die")] + clean[4:]
        outcomes = run_items(killer, _square_or_die, jobs=2)
        bad = [o for o in outcomes if not o.ok]
        assert len(bad) == 1 and bad[0].id == "victim"
        assert "worker died mid-item" in bad[0].error
        # every other record identical to the serial run, still in order
        survivors = [o for o in outcomes if o.ok]
        assert [(o.id, o.value) for o in survivors] == \
               [(o.id, o.value) for o in serial]

    def test_worker_init_runs_in_every_worker(self):
        items = [(f"i{k}", k) for k in range(6)]
        outcomes = run_items(
            items, _add_init, jobs=2,
            worker_init=_remember_init, init_arg=100,
        )
        assert [o.value for o in outcomes] == [100 + k for k in range(6)]

    def test_per_item_deadline_preempts_in_worker(self):
        items = [("fast", 5), ("slow", 6)]
        t0 = time.perf_counter()
        outcomes = run_items(
            [items[1]], _sleepy, jobs=2, timeout_s=0.3, retries=0,
        )
        assert time.perf_counter() - t0 < 10.0
        assert not outcomes[0].ok
        assert "DeadlineExceeded" in outcomes[0].error
        assert outcomes[0].guarded  # worker main thread: guard is real
        fast = run_items([items[0]], _square, jobs=2, timeout_s=5.0)
        assert fast[0].ok and fast[0].value == 25

    def test_quarantine_record_marks_unguarded(self):
        out = ItemOutcome(index=0, id="x", ok=False, error="E",
                          attempts=2, guarded=False)
        rec = out.quarantine_record()
        assert rec == {"id": "x", "error": "E", "attempts": 2,
                       "unguarded": True}


class TestGuardSignalLoss:
    def test_unraisable_frame_detects_gc_callback_and_del(self):
        captured = []

        def cb(phase, info):
            if not captured:
                captured.append(sys._getframe())

        gc.callbacks.append(cb)
        try:
            gc.collect()
            assert captured
            assert _unraisable_frame(captured[0])
        finally:
            gc.callbacks.remove(cb)

        frames = []

        class Finalized:
            def __del__(self):
                frames.append(sys._getframe())

        Finalized()
        gc.collect()
        assert frames and _unraisable_frame(frames[0])
        assert not _unraisable_frame(sys._getframe())

    def test_deadline_survives_gc_callback_storm(self):
        # Repro for the lost-deadline bug: keep the process inside busy
        # GC callbacks so SIGALRM keeps landing in frames that cannot
        # propagate exceptions.  The fixed guard defers (re-arms) until
        # the raise can land; the broken one discarded the exception via
        # sys.unraisablehook and the loop below would run to its 2 s
        # cap with no DeadlineExceeded at ~0.05 s.
        def busy_cb(phase, info):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.002:
                pass

        gc.callbacks.append(busy_cb)
        try:
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                with time_limit(0.05, "gc-storm"):
                    stop = time.perf_counter() + 2.0
                    while time.perf_counter() < stop:
                        gc.collect()
            elapsed = time.perf_counter() - t0
        finally:
            gc.callbacks.remove(busy_cb)
        assert elapsed < 5.0

    def test_expiry_survives_swallowed_raise(self):
        # Even an adversarial body that swallows every exception cannot
        # make the deadline disappear: the expiry flag is re-checked
        # when the body completes.
        with pytest.raises(DeadlineExceeded):
            with time_limit(0.03, "swallower"):
                for _ in range(40):
                    try:
                        time.sleep(0.005)
                    except DeadlineExceeded:
                        pass  # swallowed — guard must still surface it


class TestUnguardedAnnouncement:
    def test_off_main_thread_reports_and_warns_once(self, tmp_path):
        trace = tmp_path / "unguarded.jsonl"
        _reset_unguarded_warning()
        obs.reset()
        obs.enable(trace_path=str(trace))
        results = {}

        def work(slot):
            report = {}
            results[slot] = (
                run_guarded(_square, 4, timeout_s=0.5, report=report),
                report,
            )

        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for slot in ("first", "second"):
                    t = threading.Thread(target=work, args=(slot,))
                    t.start()
                    t.join()
        finally:
            obs.reset()
        for slot in ("first", "second"):
            value, report = results[slot]
            assert value == 16
            assert report["guarded"] is False
            assert report["attempts"] == 1
        hits = [w for w in caught
                if issubclass(w.category, RuntimeWarning)
                and "unguarded" in str(w.message)]
        assert len(hits) == 1  # one-time warning, but...
        events = [e for e in read_trace(trace).events
                  if e.get("name") == "guard.unguarded"]
        assert len(events) == 2  # ...a trace event per occurrence
        assert events[0]["attrs"]["main_thread"] is False

    def test_on_main_thread_report_says_guarded(self):
        report = {}
        assert run_guarded(_square, 3, timeout_s=5.0, report=report) == 9
        assert report["guarded"] is True


class TestForkAwareObs:
    def test_filesink_shards_per_pid_and_merges(self, tmp_path):
        base = tmp_path / "trace.jsonl"
        sink = FileSink(base)
        sink.write({"name": "parent-before"})
        pid = os.fork()
        if pid == 0:  # forked child: write through the inherited sink
            try:
                sink.write({"name": "child"})
            finally:
                os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert status == 0
        sink.write({"name": "parent-after"})
        sink.close()

        shards = shard_paths(base)
        assert shards == [FileSink.shard_path(base, pid)]
        base_names = [e["name"] for e in read_trace(base).events]
        assert base_names == ["parent-before", "parent-after"]

        assert merge_shards(base) >= 1
        assert shard_paths(base) == []
        merged = [e["name"] for e in read_trace(base).events]
        assert sorted(merged) == ["child", "parent-after", "parent-before"]

    def test_metrics_dump_and_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs_total").inc(2)
        b.counter("jobs_total").inc(3)
        b.gauge("depth").set(7)
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        b.histogram("lat", buckets=(0.1, 1.0)).observe(5.0)

        a.merge_state(b.dump_state())
        state = {(e["name"]): e for e in a.dump_state()}
        assert state["jobs_total"]["value"] == 5.0
        assert state["depth"]["value"] == 7.0
        assert state["lat"]["count"] == 2
        assert state["lat"]["bucket_counts"] == [1, 0, 1]

        mismatched = MetricsRegistry()
        mismatched.histogram("lat", buckets=(0.5,)).observe(1.0)
        with pytest.raises(ValueError):
            a.merge_state(mismatched.dump_state())


SWEEP_ARGS = ["--min-lg", "4", "--max-lg", "5", "--item-timeout", "120"]
CAMPAIGN_ARGS = [
    "--n", "8", "--networks", "prefix", "--faults", "stuck,control",
    "--max-faults", "20", "--item-timeout", "120",
]


class TestJobsDifferential:
    def test_sweep_jobs_matches_serial(self, tmp_path):
        docs = {}
        for tag, extra in (("serial", []), ("jobs", ["--jobs", "4"])):
            out = tmp_path / f"sweep-{tag}.json"
            proc = subprocess.run(
                [sys.executable, str(REPO / "tools" / "sweep.py"),
                 *SWEEP_ARGS, "--out", str(out), *extra],
                capture_output=True, text=True, env=_env(), timeout=600,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            docs[tag] = json.loads(out.read_text())
        strip = [{k: v for k, v in r.items() if k != "time"}
                 for r in docs["serial"]]
        strip_jobs = [{k: v for k, v in r.items() if k != "time"}
                      for r in docs["jobs"]]
        assert strip and strip == strip_jobs

    def test_campaign_jobs_matches_serial_byte_identical(self, tmp_path):
        texts = {}
        for tag, extra in (("serial", []), ("jobs", ["--jobs", "4"])):
            out = tmp_path / f"faults-{tag}.json"
            proc = subprocess.run(
                [sys.executable, str(REPO / "tools" / "fault_campaign.py"),
                 *CAMPAIGN_ARGS, "--out", str(out), *extra],
                capture_output=True, text=True, env=_env(), timeout=600,
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
            texts[tag] = out.read_text()
        doc = json.loads(texts["serial"])
        assert doc["records"] and doc["meta"]["complete"]
        # not just equivalent — byte-identical documents
        assert texts["serial"] == texts["jobs"]


class TestBatchAPIs:
    def test_sort_bits_many_parallel_matches_serial(self):
        rng = np.random.default_rng(0x5EED)
        seqs = [rng.integers(0, 2, size=rng.integers(0, 40)).astype(np.uint8)
                for _ in range(23)]
        serial = sort_bits_many(seqs, jobs=1)
        parallel = sort_bits_many(seqs, jobs=2)
        assert len(parallel) == len(seqs)
        for got, ser, src in zip(parallel, serial, seqs):
            assert np.array_equal(got, ser)
            assert np.array_equal(got, np.sort(src))

    def test_sort_bits_many_validates_and_reports_shard_failure(self):
        with pytest.raises(SimulationError):
            sort_bits_many([[0, 1], [0, 2]], jobs=2)
        assert sort_bits_many([], jobs=4) == []

    def test_sort_bits_many_fish_supervised(self):
        rng = np.random.default_rng(7)
        seqs = [rng.integers(0, 2, size=9).astype(np.uint8)
                for _ in range(6)]
        out = sort_bits_many(seqs, network="fish", supervised=True, jobs=2)
        for got, src in zip(out, seqs):
            assert np.array_equal(got, np.sort(src))

    def test_supervisor_run_many_matches_serial_and_folds_stats(self):
        rng = np.random.default_rng(11)
        seqs = [rng.integers(0, 2, size=rng.integers(1, 33)).astype(np.uint8)
                for _ in range(10)]
        ser_sup = Supervisor("prefix")
        ser_out, ser_reports = ser_sup.run_many(seqs, jobs=1)
        par_sup = Supervisor("prefix")
        par_out, par_reports = par_sup.run_many(seqs, jobs=2)
        for got, want, src in zip(par_out, ser_out, seqs):
            assert np.array_equal(got, want)
            assert np.array_equal(got, np.sort(src))
        assert [r.tier for r in par_reports] == [r.tier for r in ser_reports]
        # every shard's reports were folded into the parent's stats
        assert par_sup.stats.snapshot()["calls"] == len(seqs)


def _nap_if_stuck(x):
    if x == "nap":
        time.sleep(30.0)
    return x


class TestHangBudget:
    """The configurable parent-side hang watch: explicit kwarg > env var
    > computed worst-case budget, plus the ``parallel.stalled`` trace
    event that records per-worker in-flight state before the kill."""

    def test_resolution_order(self, monkeypatch):
        from repro.parallel.executor import ENV_HANG_BUDGET, _resolve_hang_budget

        monkeypatch.delenv(ENV_HANG_BUDGET, raising=False)
        # computed: no timeout -> no watch; with timeout -> factor + grace
        assert _resolve_hang_budget(None, None, 0, 0.0, 5.0) is None
        computed = _resolve_hang_budget(None, 1.0, 0, 0.0, 5.0)
        assert computed is not None and computed > 5.0
        # env overrides computed
        monkeypatch.setenv(ENV_HANG_BUDGET, "42.5")
        assert _resolve_hang_budget(None, 1.0, 0, 0.0, 5.0) == 42.5
        assert _resolve_hang_budget(None, None, 0, 0.0, 5.0) == 42.5
        # env <= 0 disables outright
        monkeypatch.setenv(ENV_HANG_BUDGET, "0")
        assert _resolve_hang_budget(None, 1.0, 0, 0.0, 5.0) is None
        # explicit kwarg beats the env either way
        monkeypatch.setenv(ENV_HANG_BUDGET, "42.5")
        assert _resolve_hang_budget(7.0, 1.0, 0, 0.0, 5.0) == 7.0
        assert _resolve_hang_budget(-1.0, 1.0, 0, 0.0, 5.0) is None

    def test_bad_env_value_falls_back_and_announces(self, monkeypatch, tmp_path):
        from repro.parallel.executor import ENV_HANG_BUDGET, _resolve_hang_budget

        trace = tmp_path / "trace.jsonl"
        obs.reset()
        obs.enable(trace_path=str(trace))
        try:
            monkeypatch.setenv(ENV_HANG_BUDGET, "not-a-number")
            computed = _resolve_hang_budget(None, 1.0, 0, 0.0, 5.0)
            assert computed == _resolve_hang_budget(None, 1.0, 0, 0.0, 5.0)
            assert computed is not None
        finally:
            obs.reset()
        events = [e for e in read_trace(trace).events
                  if e.get("name") == "parallel.bad_hang_budget"]
        assert events and events[0]["attrs"]["value"] == "not-a-number"

    def test_kwarg_budget_kills_hung_worker_and_traces(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.reset()
        obs.enable(trace_path=str(trace))
        try:
            t0 = time.perf_counter()
            # the "nap" payload sleeps 30s with no per-item deadline:
            # only the explicit hang budget can reclaim its worker.
            outcomes = run_items([("stuck", "nap"), ("ok", 1)],
                                 _nap_if_stuck, jobs=2, hang_budget_s=1.0)
            elapsed = time.perf_counter() - t0
        finally:
            obs.reset()
        assert elapsed < 20.0
        stuck, ok = outcomes
        assert not stuck.ok and "hung past hard budget" in stuck.error
        assert ok.ok and ok.value == 1
        stalled = [e for e in read_trace(trace).events
                   if e.get("name") == "parallel.stalled"]
        assert len(stalled) == 1
        attrs = stalled[0]["attrs"]
        assert attrs["stalled_item"] == "stuck"
        assert attrs["hard_budget_s"] == 1.0
        assert attrs["stalled_elapsed_s"] >= 1.0
        flight = {w["item"]: w for w in attrs["in_flight"]}
        assert "stuck" in flight  # the fast item may already be done
        assert flight["stuck"]["pid"] == attrs["stalled_pid"]
        assert flight["stuck"]["elapsed_s"] >= 1.0

    def test_env_budget_applies_via_run_items(self, monkeypatch):
        from repro.parallel.executor import ENV_HANG_BUDGET

        monkeypatch.setenv(ENV_HANG_BUDGET, "1.0")
        t0 = time.perf_counter()
        outcomes = run_items([("stuck", "nap"), ("ok", 2)],
                             _nap_if_stuck, jobs=2)
        assert time.perf_counter() - t0 < 20.0
        assert not outcomes[0].ok
        assert "hung past hard budget" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 2
