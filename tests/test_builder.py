"""Unit tests for the CircuitBuilder DSL."""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder, exhaustive_inputs, simulate


def _truth(build_fn, n_inputs):
    b = CircuitBuilder()
    ws = b.add_inputs(n_inputs)
    out = build_fn(b, ws)
    net = b.build([out])
    return simulate(net, exhaustive_inputs(n_inputs))[:, 0].tolist()


class TestGates:
    def test_not(self):
        assert _truth(lambda b, w: b.not_(w[0]), 1) == [1, 0]

    def test_and(self):
        assert _truth(lambda b, w: b.and_(*w), 2) == [0, 0, 0, 1]

    def test_or(self):
        assert _truth(lambda b, w: b.or_(*w), 2) == [0, 1, 1, 1]

    def test_xor(self):
        assert _truth(lambda b, w: b.xor(*w), 2) == [0, 1, 1, 0]

    def test_nand(self):
        assert _truth(lambda b, w: b.nand(*w), 2) == [1, 1, 1, 0]

    def test_nor(self):
        assert _truth(lambda b, w: b.nor(*w), 2) == [1, 0, 0, 0]

    def test_xnor(self):
        assert _truth(lambda b, w: b.xnor(*w), 2) == [1, 0, 0, 1]

    def test_buf_identity(self):
        assert _truth(lambda b, w: b.buf(w[0]), 1) == [0, 1]


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8])
    def test_and_tree(self, width):
        b = CircuitBuilder()
        ws = b.add_inputs(width)
        net = b.build([b.and_tree(ws)])
        inp = exhaustive_inputs(width)
        out = simulate(net, inp)[:, 0]
        assert np.array_equal(out, inp.min(axis=1))

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8])
    def test_or_tree(self, width):
        b = CircuitBuilder()
        ws = b.add_inputs(width)
        net = b.build([b.or_tree(ws)])
        inp = exhaustive_inputs(width)
        out = simulate(net, inp)[:, 0]
        assert np.array_equal(out, inp.max(axis=1))

    def test_tree_depth_is_logarithmic(self):
        b = CircuitBuilder()
        ws = b.add_inputs(16)
        net = b.build([b.or_tree(ws)])
        assert net.depth() == 4
        assert net.cost() == 15

    def test_empty_tree_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError, match="zero wires"):
            b.or_tree([])


class TestMuxDemuxTrees:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_mux_tree_selects_each_input(self, m):
        lg = m.bit_length() - 1
        b = CircuitBuilder()
        data = b.add_inputs(m)
        sel = b.add_inputs(lg)
        net = b.build([b.mux_tree(data, sel)])
        for v in range(m):
            vec = [0] * m
            vec[v] = 1
            sel_bits = [(v >> (lg - 1 - i)) & 1 for i in range(lg)]
            assert simulate(net, [vec + sel_bits])[0, 0] == 1

    def test_mux_tree_cost_m_minus_1(self):
        b = CircuitBuilder()
        data = b.add_inputs(8)
        sel = b.add_inputs(3)
        net = b.build([b.mux_tree(data, sel)])
        assert net.cost() == 7  # m - 1 (2,1)-muxes, Fig. 3(a) accounting
        assert net.depth() == 3  # lg m

    def test_mux_tree_width_mismatch(self):
        b = CircuitBuilder()
        data = b.add_inputs(6)
        sel = b.add_inputs(2)
        with pytest.raises(ValueError):
            b.mux_tree(data, sel)

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_demux_tree_routes_to_selected(self, m):
        lg = m.bit_length() - 1
        b = CircuitBuilder()
        w = b.add_input()
        sel = b.add_inputs(lg)
        net = b.build(b.demux_tree(w, sel))
        for v in range(m):
            sel_bits = [(v >> (lg - 1 - i)) & 1 for i in range(lg)]
            out = simulate(net, [[1] + sel_bits])[0]
            expect = [0] * m
            expect[v] = 1
            assert out.tolist() == expect

    def test_demux_tree_cost(self):
        b = CircuitBuilder()
        w = b.add_input()
        sel = b.add_inputs(3)
        net = b.build(b.demux_tree(w, sel))
        assert net.cost() == 7 and net.depth() == 3


class TestConstants:
    def test_const_cached(self):
        b = CircuitBuilder()
        assert b.const(1) == b.const(1)
        assert b.const(0) != b.const(1)

    def test_const_value(self):
        b = CircuitBuilder()
        x = b.add_input()
        net = b.build([b.and_(x, b.const(1)), b.or_(x, b.const(0))])
        assert simulate(net, [[1]]).tolist() == [[1, 1]]
        assert simulate(net, [[0]]).tolist() == [[0, 0]]

    def test_const_rejects_non_bit(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError):
            b.const(2)


class TestSwitches:
    def test_switch2_semantics(self):
        b = CircuitBuilder()
        x, y, c = b.add_inputs(3)
        o = b.switch2(x, y, c)
        net = b.build(list(o))
        assert simulate(net, [[1, 0, 0]]).tolist() == [[1, 0]]  # straight
        assert simulate(net, [[1, 0, 1]]).tolist() == [[0, 1]]  # crossed

    def test_switch4_applies_selected_perm(self):
        perms = ((0, 1, 2, 3), (1, 2, 3, 0), (3, 2, 1, 0), (2, 3, 0, 1))
        b = CircuitBuilder()
        data = b.add_inputs(4)
        s1, s0 = b.add_inputs(2)
        net = b.build(list(b.switch4(data, s1, s0, perms)))
        vec = [1, 0, 0, 1]
        for sel in range(4):
            out = simulate(net, [vec + [(sel >> 1) & 1, sel & 1]])[0]
            assert out.tolist() == [vec[perms[sel][i]] for i in range(4)]

    def test_switch4_wrong_data_width(self):
        b = CircuitBuilder()
        data = b.add_inputs(3)
        s1, s0 = b.add_inputs(2)
        with pytest.raises(ValueError, match="4 data wires"):
            b.switch4(data, s1, s0, ((0, 1, 2, 3),) * 4)
