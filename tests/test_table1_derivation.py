"""Tests for the programmatic Table I derivation."""

import numpy as np
import pytest

from repro.core.mux_merger import IN_SWAP_PERMS, OUT_SWAP_PERMS
from repro.core.table1 import (
    CASES,
    Table1Assignment,
    candidate_in_perms,
    derive_table1,
    matching_out_perms,
)


class TestCandidates:
    def test_candidate_counts(self):
        # 2 orders for the clean pair x 2 orders for the bisorted pair
        for sel in range(4):
            assert len(candidate_in_perms(sel)) == 4

    def test_candidates_are_permutations(self):
        for sel in range(4):
            for perm in candidate_in_perms(sel):
                assert sorted(perm) == [0, 1, 2, 3]

    def test_pair_lands_at_bottom(self):
        for sel in range(4):
            _, pair, _ = CASES[sel]
            for perm in candidate_in_perms(sel):
                assert set(perm[2:]) == set(pair)

    def test_out_variants_for_identical_cleans(self):
        # cases 00/11 have two interchangeable clean quarters
        ip = candidate_in_perms(0)[0]
        assert len(matching_out_perms(0, ip)) == 2
        ip = candidate_in_perms(1)[0]
        assert len(matching_out_perms(1, ip)) == 1


class TestDerivation:
    @pytest.fixture(scope="class")
    def derived(self):
        return derive_table1(verify_n=8, max_results=2000)

    def test_every_structural_candidate_verifies(self, derived):
        # 8 * 4 * 4 * 8 combinations, all functionally correct
        assert len(derived) == 1024

    def test_shipped_tables_are_derived(self, derived):
        assert any(
            r.in_perms == IN_SWAP_PERMS and r.out_perms == OUT_SWAP_PERMS
            for r in derived
        )

    def test_sampled_assignments_sort_at_larger_n(self, derived, rng):
        from repro.circuits import simulate
        from repro.core.mux_merger import build_mux_merger
        from repro.core.sequences import is_sorted_binary, sorted_sequence

        for idx in rng.integers(0, len(derived), size=4):
            r = derived[int(idx)]
            net = build_mux_merger(32, r.in_perms, r.out_perms)
            for zu in range(0, 17, 4):
                for zl in range(0, 17, 4):
                    x = np.concatenate(
                        [sorted_sequence(16, zu), sorted_sequence(16, zl)]
                    )
                    assert is_sorted_binary(simulate(net, x[None, :])[0])

    def test_max_results_cap(self):
        capped = derive_table1(verify_n=8, max_results=3)
        assert len(capped) == 3
        assert all(isinstance(r, Table1Assignment) for r in capped)
