"""Hypothesis properties of the network classes over their input spaces.

Uses the public strategies (repro.testing) against cached instances of
the k-way machinery, clean sorters, concentrators, and permuters —
the same quantification the paper's theorems use, applied to the built
systems rather than the theorem statements.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import testing as rt
from repro.circuits import simulate
from repro.core import sequences as seq
from repro.core.kway import CleanSorter, KWayMuxMerger, build_k_swap
from repro.networks.concentrator import SortingConcentrator, check_concentration

# cached instances (hypothesis re-runs bodies many times)
_KWAY = KWayMuxMerger(32, 4)
_CLEAN = CleanSorter(16, 4)
_KSWAP = build_k_swap(32, 4)
_CONC = SortingConcentrator(16)
_HW_CLEAN = None


def _hw_clean():
    global _HW_CLEAN
    if _HW_CLEAN is None:
        from repro.core.hw_clean_sorter import HardwareCleanSorter

        _HW_CLEAN = HardwareCleanSorter(16, 4)
    return _HW_CLEAN


@given(rt.k_sorted_sequences(k=4, min_lg_block=3, max_lg_block=3))
def test_kway_merger_sorts_its_whole_domain(x):
    out, _, _ = _KWAY.merge(x)
    assert seq.is_sorted_binary(out)
    assert out.sum() == x.sum()


@given(rt.k_sorted_sequences(k=4, min_lg_block=3, max_lg_block=3))
def test_kswap_theorem4_property(x):
    y = simulate(_KSWAP, x[None, :])[0]
    assert seq.is_clean_k_sorted(y[:16], 4)
    assert seq.is_k_sorted(y[16:], 4)


@given(rt.clean_k_sorted_sequences(k=4, min_lg_block=2, max_lg_block=2))
def test_clean_sorter_domain(x):
    out, _, _ = _CLEAN.sort(x)
    assert seq.is_sorted_binary(out)
    assert out.sum() == x.sum()


@given(rt.clean_k_sorted_sequences(k=4, min_lg_block=2, max_lg_block=2))
@settings(max_examples=25, deadline=None)
def test_hw_clean_sorter_matches_orchestrated(x):
    hw, _ = _hw_clean().sort(x)
    sw, _, _ = _CLEAN.sort(x)
    assert np.array_equal(hw, sw)


@given(st.integers(0, 2 ** 16 - 1))
def test_concentrator_every_request_mask(mask):
    req = np.array([(mask >> i) & 1 for i in range(16)], dtype=np.uint8)
    pays = np.arange(16, dtype=np.int64) + 100
    res = _CONC.concentrate(req, pays)
    assert check_concentration(req, pays, res)


@given(st.permutations(list(range(8))))
@settings(max_examples=40, deadline=None)
def test_benes_every_permutation(perm):
    from repro.networks.benes import BenesNetwork

    global _BENES
    try:
        bn = _BENES
    except NameError:
        bn = _BENES = BenesNetwork(8)
    pays = np.arange(8, dtype=np.int64)
    out = bn.permute(list(perm), pays)
    assert all(out[perm[i]] == pays[i] for i in range(8))


@given(st.permutations(list(range(8))))
@settings(max_examples=40, deadline=None)
def test_radix_permuter_every_permutation(perm):
    from repro.networks.permutation import RadixPermuter, check_permutation

    global _RADIX
    try:
        rp = _RADIX
    except NameError:
        rp = _RADIX = RadixPermuter(8, backend="mux_merger")
    pays = np.arange(8, dtype=np.int64)
    out, _ = rp.permute(list(perm), pays)
    assert check_permutation(list(perm), pays, out)


@given(rt.binary_sequences(min_lg=2, max_lg=4))
@settings(max_examples=30, deadline=None)
def test_sort_bits_arbitrary_then_padded(x):
    """sort_bits on a truncated (non-power-of-two) prefix still sorts."""
    from repro.core.api import sort_bits

    trunc = x[: max(1, x.size - 3)]
    out = sort_bits(trunc)
    assert out.tolist() == sorted(trunc.tolist())
