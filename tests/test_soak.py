"""End-to-end tests for the chaos-soak driver (``tools/soak.py``).

The three load-bearing properties:

* a small smoke soak under payload chaos **passes its SLOs** and emits a
  BENCH file that ``tools/compare_sweeps.py`` gates;
* the deterministic soak document is **byte-identical** across runs of
  the same seed (the resume/audit contract);
* a soak SIGKILLed mid-run and restarted produces the **same bytes** as
  one that was never interrupted (crash-safe checkpointing).

Kill-storm chaos is exercised by the CI smoke job at 50k requests; at
this scale a single kill would blow the quarantine-rate SLO, so these
tests stick to the deterministic injectors.
"""

import importlib.util
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SOAK = REPO / "tools" / "soak.py"

pytestmark = pytest.mark.slow


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _soak_cmd(tmp, tag, requests=640, workloads="uniform,adversarial",
              chaos="faults,deadlines", extra=()):
    out = tmp / f"{tag}.json"
    cmd = [
        sys.executable, str(SOAK),
        "--requests", str(requests),
        "--workloads", workloads,
        "--chaos", chaos,
        "--jobs", "2",
        "--n", "8",
        "--seed", "7",
        "--workdir", str(tmp / f"{tag}.work"),
        "--out", str(out),
        "--measured-out", str(tmp / f"{tag}.measured.json"),
        # A few hundred requests is only a handful of chunks, so run
        # the payload chaos always-on with a 50/50 mode split: batch
        # chunks prove fault detection (they ignore deadlines), while
        # supervised chunks prove deadline hits.
        "--chunk", "64",
        "--chaos-period", "1",
        "--chaos-duty", "1.0",
        "--supervised-fraction", "0.5",
    ]
    cmd.extend(extra)
    return cmd, out


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(name, REPO / "tools" / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestSmoke:
    def test_pass_verdict_and_bench_gating(self, tmp_path):
        bench = tmp_path / "BENCH_workloads.json"
        cmd, out = _soak_cmd(tmp_path, "smoke",
                             extra=["--bench-out", str(bench)])
        proc = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        doc = json.loads(out.read_text())
        assert doc["verdict"] == "PASS"
        assert all(doc["slo"].values())
        # the driver proves every answer: silent corruption must be 0
        measured = json.loads((tmp_path / "smoke.measured.json").read_text())
        assert measured["slo"]["silent_corruption"]["value"] == 0
        # chaos efficacy: both payload injectors actually fired
        assert measured["slo"]["chaos_faults_detected"]["value"] > 0
        assert measured["slo"]["chaos_deadlines_hit"]["value"] > 0

        records = json.loads(bench.read_text())
        assert {r["workload"] for r in records} == {"uniform", "adversarial"}
        assert all(r["chaos"] == "deadlines+faults" for r in records)
        # compare_sweeps understands, self-gates, and floors the format
        cs = _load_tool("compare_sweeps")
        assert cs.main([str(bench), str(bench)]) == 0
        bad = json.loads(bench.read_text())
        bad[0]["slo_pass"] = False
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(bad))
        assert cs.main([str(bench), str(broken)]) == 1

    def test_same_seed_byte_identical_and_resume_after_sigkill(self, tmp_path):
        cmd_a, out_a = _soak_cmd(tmp_path, "a", requests=600,
                                 workloads="uniform")
        proc = subprocess.run(cmd_a, env=_env(), capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

        # same seed, fresh workdir -> byte-identical deterministic doc
        cmd_b, out_b = _soak_cmd(tmp_path, "b", requests=600,
                                 workloads="uniform")
        subprocess.run(cmd_b, env=_env(), capture_output=True, check=True)
        assert out_b.read_bytes() == out_a.read_bytes()

        # SIGKILL a third run mid-flight, then restart it to completion:
        # the checkpointed resume must land on the identical bytes
        cmd_c, out_c = _soak_cmd(tmp_path, "c", requests=600,
                                 workloads="uniform")
        victim = subprocess.Popen(cmd_c, env=_env(),
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        checkpoint = tmp_path / "c.work" / "checkpoint.json"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                break
            if victim.poll() is not None:  # finished before we could kill
                break
            time.sleep(0.05)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            assert victim.returncode == -signal.SIGKILL
        resumed = subprocess.run(cmd_c, env=_env(), capture_output=True,
                                 text=True)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert out_c.read_bytes() == out_a.read_bytes()


class TestUsageErrors:
    def test_obstrunc_requires_trace(self, tmp_path):
        cmd, _ = _soak_cmd(tmp_path, "x", chaos="obstrunc")
        proc = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
        assert proc.returncode == 2
        assert "obstrunc" in (proc.stdout + proc.stderr)

    def test_unknown_workload_and_injector(self, tmp_path):
        cmd, _ = _soak_cmd(tmp_path, "y", workloads="quicksort")
        proc = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
        assert proc.returncode == 2
        assert "unknown workload" in (proc.stdout + proc.stderr)
        cmd, _ = _soak_cmd(tmp_path, "z", chaos="meteor")
        proc = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
        assert proc.returncode == 2
