"""Tests for the report aggregator tool."""

import importlib.util
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).parent.parent / "tools"


def _load():
    spec = importlib.util.spec_from_file_location(
        "collect_results", TOOLS / "collect_results.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCollectResults:
    def test_collects_existing_results(self, tmp_path):
        mod = _load()
        # synthesize a results dir
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_fig01_sorting_network.test_x.txt").write_text("TABLE A")
        (results / "bench_unknown_module.test_y.txt").write_text("TABLE B")
        mod.RESULTS = results
        out = tmp_path / "REPORT.md"
        assert mod.collect(out) == 0
        text = out.read_text()
        assert "Fig. 1" in text
        assert "TABLE A" in text
        assert "bench_unknown_module" in text  # unlisted modules still emitted
        assert "TABLE B" in text

    def test_missing_dir_fails_gracefully(self, tmp_path, capsys):
        mod = _load()
        mod.RESULTS = tmp_path / "nope"
        assert mod.collect(tmp_path / "out.md") == 1

    def test_empty_dir_fails_gracefully(self, tmp_path):
        mod = _load()
        empty = tmp_path / "results"
        empty.mkdir()
        mod.RESULTS = empty
        assert mod.collect(tmp_path / "out.md") == 1

    def test_titles_cover_all_benches(self):
        mod = _load()
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        modules = {p.stem for p in bench_dir.glob("bench_*.py")}
        assert modules <= set(mod.TITLES), modules - set(mod.TITLES)


class TestCompareSweeps:
    def _mod(self):
        spec = importlib.util.spec_from_file_location(
            "compare_sweeps", TOOLS / "compare_sweeps.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _write(self, path, records):
        import json

        path.write_text(json.dumps(records))

    def test_no_drift(self, tmp_path):
        mod = self._mod()
        recs = [{"network": "fish", "n": 64, "cost": 928, "depth": 9, "time": 144}]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, recs)
        self._write(b, recs)
        assert mod.main([str(a), str(b)]) == 0

    def test_drift_detected(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 928, "depth": 9, "time": 144}])
        self._write(b, [{"network": "fish", "n": 64, "cost": 1000, "depth": 9, "time": 144}])
        assert mod.main([str(a), str(b)]) == 1
        assert "cost 928 -> 1000" in capsys.readouterr().out

    def test_tolerance_suppresses_small_drift(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 1000, "depth": 9, "time": 144}])
        self._write(b, [{"network": "fish", "n": 64, "cost": 1010, "depth": 9, "time": 144}])
        assert mod.main([str(a), str(b), "--tol", "0.05"]) == 0

    def test_missing_records_reported(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 1, "depth": 1, "time": 1}])
        self._write(b, [{"network": "fish", "n": 128, "cost": 1, "depth": 1, "time": 1}])
        assert mod.main([str(a), str(b)]) == 1

    def test_missing_file(self, tmp_path):
        mod = self._mod()
        a = tmp_path / "a.json"
        self._write(a, [])
        assert mod.main([str(a), str(tmp_path / "nope.json")]) == 2


class TestCompareSweepsEngine:
    """Engine-bench records: one-sided speedup drift plus absolute floors."""

    def _mod(self):
        spec = importlib.util.spec_from_file_location(
            "compare_sweeps", TOOLS / "compare_sweeps.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _rec(self, speedup, floor=1.0, mode="batched"):
        return {
            "network": "prefix",
            "n": 1024,
            "mode": mode,
            "speedup": speedup,
            "floor": floor,
        }

    def _write(self, path, records):
        import json

        path.write_text(json.dumps(records))

    def test_speedup_increase_is_not_drift(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0)])
        self._write(b, [self._rec(9.0)])  # faster engine: never a regression
        assert mod.main([str(a), str(b)]) == 0

    def test_speedup_decrease_is_drift(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(10.0)])
        self._write(b, [self._rec(6.0)])
        assert mod.main([str(a), str(b), "--tol", "0.3"]) == 1
        assert "throughput drift" in capsys.readouterr().out

    def test_embedded_floor_enforced(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0, floor=5.0)])
        self._write(b, [self._rec(4.5, floor=5.0)])
        # 10% decrease is inside --tol, but the record's own floor fails
        assert mod.main([str(a), str(b), "--tol", "0.3"]) == 1
        assert "below floor 5.0x" in capsys.readouterr().out

    def test_min_speedup_overrides_floor(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0, floor=5.0)])
        self._write(b, [self._rec(4.5, floor=5.0)])
        assert (
            mod.main([str(a), str(b), "--tol", "0.3", "--min-speedup", "2.0"])
            == 0
        )
