"""Tests for the report aggregator tool."""

import importlib.util
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).parent.parent / "tools"


def _load():
    spec = importlib.util.spec_from_file_location(
        "collect_results", TOOLS / "collect_results.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCollectResults:
    def test_collects_existing_results(self, tmp_path):
        mod = _load()
        # synthesize a results dir
        results = tmp_path / "results"
        results.mkdir()
        (results / "bench_fig01_sorting_network.test_x.txt").write_text("TABLE A")
        (results / "bench_unknown_module.test_y.txt").write_text("TABLE B")
        mod.RESULTS = results
        out = tmp_path / "REPORT.md"
        assert mod.collect(out) == 0
        text = out.read_text()
        assert "Fig. 1" in text
        assert "TABLE A" in text
        assert "bench_unknown_module" in text  # unlisted modules still emitted
        assert "TABLE B" in text

    def test_missing_dir_fails_gracefully(self, tmp_path, capsys):
        mod = _load()
        mod.RESULTS = tmp_path / "nope"
        assert mod.collect(tmp_path / "out.md") == 1

    def test_empty_dir_fails_gracefully(self, tmp_path):
        mod = _load()
        empty = tmp_path / "results"
        empty.mkdir()
        mod.RESULTS = empty
        assert mod.collect(tmp_path / "out.md") == 1

    def test_titles_cover_all_benches(self):
        mod = _load()
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        modules = {p.stem for p in bench_dir.glob("bench_*.py")}
        assert modules <= set(mod.TITLES), modules - set(mod.TITLES)


class TestCompareSweeps:
    def _mod(self):
        spec = importlib.util.spec_from_file_location(
            "compare_sweeps", TOOLS / "compare_sweeps.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _write(self, path, records):
        import json

        path.write_text(json.dumps(records))

    def test_no_drift(self, tmp_path):
        mod = self._mod()
        recs = [{"network": "fish", "n": 64, "cost": 928, "depth": 9, "time": 144}]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, recs)
        self._write(b, recs)
        assert mod.main([str(a), str(b)]) == 0

    def test_drift_detected(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 928, "depth": 9, "time": 144}])
        self._write(b, [{"network": "fish", "n": 64, "cost": 1000, "depth": 9, "time": 144}])
        assert mod.main([str(a), str(b)]) == 1
        assert "cost 928 -> 1000" in capsys.readouterr().out

    def test_tolerance_suppresses_small_drift(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 1000, "depth": 9, "time": 144}])
        self._write(b, [{"network": "fish", "n": 64, "cost": 1010, "depth": 9, "time": 144}])
        assert mod.main([str(a), str(b), "--tol", "0.05"]) == 0

    def test_missing_records_reported(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [{"network": "fish", "n": 64, "cost": 1, "depth": 1, "time": 1}])
        self._write(b, [{"network": "fish", "n": 128, "cost": 1, "depth": 1, "time": 1}])
        assert mod.main([str(a), str(b)]) == 1

    def test_missing_file(self, tmp_path):
        mod = self._mod()
        a = tmp_path / "a.json"
        self._write(a, [])
        assert mod.main([str(a), str(tmp_path / "nope.json")]) == 2


class TestCompareSweepsEngine:
    """Engine-bench records: one-sided speedup drift plus absolute floors."""

    def _mod(self):
        spec = importlib.util.spec_from_file_location(
            "compare_sweeps", TOOLS / "compare_sweeps.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _rec(self, speedup, floor=1.0, mode="batched"):
        return {
            "network": "prefix",
            "n": 1024,
            "mode": mode,
            "speedup": speedup,
            "floor": floor,
        }

    def _write(self, path, records):
        import json

        path.write_text(json.dumps(records))

    def test_speedup_increase_is_not_drift(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0)])
        self._write(b, [self._rec(9.0)])  # faster engine: never a regression
        assert mod.main([str(a), str(b)]) == 0

    def test_speedup_decrease_is_drift(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(10.0)])
        self._write(b, [self._rec(6.0)])
        assert mod.main([str(a), str(b), "--tol", "0.3"]) == 1
        assert "throughput drift" in capsys.readouterr().out

    def test_embedded_floor_enforced(self, tmp_path, capsys):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0, floor=5.0)])
        self._write(b, [self._rec(4.5, floor=5.0)])
        # 10% decrease is inside --tol, but the record's own floor fails
        assert mod.main([str(a), str(b), "--tol", "0.3"]) == 1
        assert "below floor 5.0x" in capsys.readouterr().out

    def test_min_speedup_overrides_floor(self, tmp_path):
        mod = self._mod()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, [self._rec(5.0, floor=5.0)])
        self._write(b, [self._rec(4.5, floor=5.0)])
        assert (
            mod.main([str(a), str(b), "--tol", "0.3", "--min-speedup", "2.0"])
            == 0
        )


class TestCheckDocsLinks:
    def _mod(self):
        spec = importlib.util.spec_from_file_location(
            "check_docs_links", TOOLS / "check_docs_links.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _repo(self, tmp_path, files):
        for name, text in files.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return tmp_path

    def test_slugify_github_rules(self):
        mod = self._mod()
        assert mod.slugify("Quick start") == "quick-start"
        assert mod.slugify("The `repro.serve` API") == "the-reproserve-api"
        assert mod.slugify("SLO tuning & shed semantics") == "slo-tuning--shed-semantics"
        assert mod.slugify("What's in v1.0?") == "whats-in-v10"
        assert mod.slugify("snake_case stays") == "snake_case-stays"
        assert mod.slugify("[linked](docs/X.md) heading") == "linked-heading"

    def test_duplicate_headings_get_suffixes(self):
        mod = self._mod()
        anchors = mod.heading_anchors("# Setup\n## Setup\ntext\n### Setup\n")
        assert anchors == {"setup", "setup-1", "setup-2"}

    def test_code_fences_hide_headings_and_links(self, tmp_path):
        mod = self._mod()
        anchors = mod.heading_anchors(
            "# Real\n```sh\n# not a heading\n```\n## Also real\n"
        )
        assert anchors == {"real", "also-real"}
        root = self._repo(tmp_path, {
            "README.md": "```\n[dead](missing.md)\n```\n[ok](docs/A.md)\n",
            "docs/A.md": "# A\n",
        })
        assert mod.main(["--root", str(root)]) == 0

    def test_good_anchors_pass(self, tmp_path):
        mod = self._mod()
        root = self._repo(tmp_path, {
            "README.md": (
                "# Top\n## Quick start\n"
                "[here](#quick-start) and [there](docs/A.md#the-runbook)\n"
                '<a name="pin"></a>\n[pin](#pin)\n'
            ),
            "docs/A.md": "# Title\n## The runbook\n[back](../README.md#top)\n",
        })
        assert mod.main(["--root", str(root)]) == 0

    def test_stale_anchor_fails(self, tmp_path, capsys):
        mod = self._mod()
        root = self._repo(tmp_path, {
            "README.md": "# Top\n[gone](#no-such-section)\n",
        })
        assert mod.main(["--root", str(root)]) == 1
        assert "no-such-section" in capsys.readouterr().out

    def test_cross_doc_stale_anchor_fails(self, tmp_path, capsys):
        mod = self._mod()
        root = self._repo(tmp_path, {
            "README.md": "[x](docs/A.md#renamed-away)\n",
            "docs/A.md": "# Only heading\n",
        })
        assert mod.main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "renamed-away" in out and "A.md" in out

    def test_missing_file_still_fails(self, tmp_path, capsys):
        mod = self._mod()
        root = self._repo(tmp_path, {"README.md": "[x](docs/NOPE.md#a)\n"})
        assert mod.main(["--root", str(root)]) == 1
        assert "missing file" in capsys.readouterr().out

    def test_external_and_nonmd_fragments_skipped(self, tmp_path):
        mod = self._mod()
        root = self._repo(tmp_path, {
            "README.md": (
                "[w](https://example.com/x#frag) [m](mailto:a@b.c)\n"
                "[s](tools/x.py#L10)\n"
            ),
            "tools/x.py": "pass\n",
        })
        assert mod.main(["--root", str(root)]) == 0
