"""Unit tests for cost-model fitting."""

import math

import pytest

from repro.analysis.fitting import fit_cost_model, fit_network_constant


class TestFitCostModel:
    def test_exact_linear(self):
        sizes = [16, 32, 64, 128]
        costs = [7 * n for n in sizes]
        fit = fit_cost_model(sizes, costs, ["n"])
        assert fit.coefficients["n"] == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-9)

    def test_two_term_recovery(self):
        sizes = [16, 32, 64, 128, 256]
        costs = [3 * n * math.log2(n) + 5 * n for n in sizes]
        fit = fit_cost_model(sizes, costs, ["n*lg(n)", "n"])
        assert fit.coefficients["n*lg(n)"] == pytest.approx(3.0)
        assert fit.coefficients["n"] == pytest.approx(5.0)

    def test_predict(self):
        fit = fit_cost_model([2, 4, 8], [4, 8, 16], ["n"])
        assert fit.predict(16) == pytest.approx(32.0)

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_model([16], [100], ["n", "n*lg(n)"])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_cost_model([16, 32], [100], ["n"])


class TestNetworkConstants:
    def test_network1_constant_near_3(self):
        fit = fit_network_constant(
            "prefix", [64, 128, 256, 512], "n*lg(n)", ["n", "lg(n)**2"]
        )
        assert fit.coefficients["n*lg(n)"] == pytest.approx(3.0, abs=0.4)

    def test_network2_constant_near_4(self):
        fit = fit_network_constant(
            "mux_merger", [64, 128, 256, 512], "n*lg(n)", ["n"]
        )
        assert fit.coefficients["n*lg(n)"] == pytest.approx(4.0, abs=0.4)

    def test_network3_constant_near_17(self):
        fit = fit_network_constant(
            "fish", [64, 128, 256, 512], "n", ["lg(n)**2 * lg(lg(n))"]
        )
        assert fit.coefficients["n"] == pytest.approx(17.0, abs=2.5)

    def test_good_fits(self):
        fit = fit_network_constant("batcher_oem", [64, 128, 256], "n*lg(n)**2", ["n"])
        assert fit.r_squared > 0.999
