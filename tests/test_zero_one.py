"""Tests for zero-one principle tooling (nonadaptive vs adaptive)."""

import numpy as np
import pytest

from repro.analysis.zero_one import extract_comparator_schedule, is_nonadaptive
from repro.baselines.batcher import apply_schedule, build_odd_even_merge_sorter, build_bitonic_sorter
from repro.baselines.balanced import build_balanced_sorter
from repro.core import (
    build_alternative_oem_sorter,
    build_mux_merger_sorter,
    build_prefix_sorter,
)


class TestIsNonadaptive:
    def test_comparator_networks_are_nonadaptive(self):
        assert is_nonadaptive(build_odd_even_merge_sorter(16))
        assert is_nonadaptive(build_balanced_sorter(16))
        assert is_nonadaptive(build_alternative_oem_sorter(16))

    def test_adaptive_networks_are_adaptive(self):
        # the paper's whole point: Networks 1 and 2 use non-comparator
        # elements (swappers, adders) to steer on conditions
        assert not is_nonadaptive(build_prefix_sorter(16))
        assert not is_nonadaptive(build_mux_merger_sorter(16))


class TestScheduleExtraction:
    @pytest.mark.parametrize(
        "builder", [build_odd_even_merge_sorter, build_alternative_oem_sorter,
                    build_balanced_sorter, build_bitonic_sorter]
    )
    def test_zero_one_principle_experimentally(self, builder, rng):
        """Extract the schedule from a netlist verified only on bits and
        replay it on arbitrary integers — the zero-one principle says it
        must sort them, and it does."""
        net = builder(16)
        sched = extract_comparator_schedule(net)
        assert sum(len(s) for s in sched) == net.cost()
        for _ in range(50):
            v = rng.integers(-1000, 1000, 16)
            assert np.array_equal(apply_schedule(v, sched), np.sort(v))

    def test_adaptive_network_rejected(self):
        with pytest.raises(ValueError, match="nonadaptive"):
            extract_comparator_schedule(build_mux_merger_sorter(8))

    def test_broken_output_mapping_detected(self):
        from repro.circuits import Netlist

        net = build_odd_even_merge_sorter(8)
        outs = list(net.outputs)
        outs[0], outs[1] = outs[1], outs[0]
        scrambled = Netlist(
            net.n_wires, net.elements, net.inputs, outs, net.constants
        )
        with pytest.raises(ValueError, match="line-preserving"):
            extract_comparator_schedule(scrambled)

    def test_schedule_matches_bit_level_simulation(self, rng):
        from repro.circuits import simulate

        net = build_alternative_oem_sorter(8)
        sched = extract_comparator_schedule(net)
        for _ in range(30):
            bits = rng.integers(0, 2, 8).astype(np.uint8)
            assert np.array_equal(
                apply_schedule(bits, sched), simulate(net, bits[None, :])[0]
            )
