"""Differential fuzzing: every interpreter/transform agrees on random circuits.

For each random netlist, five views must agree bit for bit:

1. the vectorized simulator (reference),
2. the register-transfer pipelined executor,
3. the gate-lowered netlist,
4. the optimizer's output,
5. a JSON serialization round-trip.

Plus payload/tag consistency between the plain and payload simulators.
"""

import numpy as np
import pytest

from repro.circuits import (
    PipelinedNetlist,
    exhaustive_inputs,
    lower_to_gates,
    optimize,
    simulate,
    simulate_payload,
)
from repro.circuits.fuzz import random_netlist
from repro.circuits.serialize import from_json, to_json

SEEDS = list(range(12))


def _batch(net, rng):
    n = len(net.inputs)
    if n <= 10:
        return exhaustive_inputs(n)
    return rng.integers(0, 2, (64, n)).astype(np.uint8)


@pytest.mark.parametrize("seed", SEEDS)
def test_lowered_and_optimized_and_serialized_agree(seed):
    rng = np.random.default_rng(seed)
    net = random_netlist(rng, n_inputs=6, n_elements=40)
    batch = _batch(net, rng)
    ref = simulate(net, batch)
    assert np.array_equal(simulate(lower_to_gates(net), batch), ref)
    assert np.array_equal(simulate(optimize(net), batch), ref)
    assert np.array_equal(simulate(from_json(to_json(net)), batch), ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_pipeline_agrees(seed):
    rng = np.random.default_rng(1000 + seed)
    net = random_netlist(rng, n_inputs=5, n_elements=25)
    batch = rng.integers(0, 2, (6, 5)).astype(np.uint8)
    ref = simulate(net, batch)
    pipe = PipelinedNetlist(net)
    outs, makespan = pipe.run([row.tolist() for row in batch])
    assert np.array_equal(np.array(outs, dtype=np.uint8), ref)
    assert makespan == len(batch) - 1 + pipe.latency


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_payload_tags_match_plain_simulation(seed):
    rng = np.random.default_rng(2000 + seed)
    net = random_netlist(rng, n_inputs=6, n_elements=30)
    batch = _batch(net, rng)
    pays = np.tile(
        np.arange(len(net.inputs), dtype=np.int64), (batch.shape[0], 1)
    )
    tags, _ = simulate_payload(net, batch, pays)
    assert np.array_equal(tags, simulate(net, batch))


def test_fuzzer_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_netlist(rng, n_inputs=0)
    net = random_netlist(rng, n_elements=0, allow_constants=False)
    assert net.cost() == 0


def test_fuzzer_reproducible():
    a = random_netlist(np.random.default_rng(7), n_elements=20)
    b = random_netlist(np.random.default_rng(7), n_elements=20)
    assert to_json(a) == to_json(b)
