"""Extension: sorting words by a cascade of binary sorting steps (§I).

The paper's introduction observes that "the permutation and sorting
problems can be broken into a sequence of sorting steps on binary
sequences".  This module makes that executable: an LSD radix sorter for
W-bit words whose every stage is a *stable binary split* built from the
repo's own machinery —

1. a gate-level **rank circuit** computes each item's destination from
   the current bit: zeros keep their relative order in positions
   ``0..n0-1``, ones in ``n0..n-1``.  Ranks come from a parallel prefix
   popcount scan (``O(n lg n)`` gates, logarithmic adder levels);
2. a **self-routing permutation network** (the paper's Fig. 10 radix
   permuter, or a Benes network for the circuit-switched comparison)
   physically moves the words to those destinations.

Because each split is stable, W cascaded stages sort W-bit words — the
sorting-as-binary-sorting decomposition the paper appeals to, with cost
``W * (O(n lg n) rank + permuter)`` and no word-width comparators
anywhere (contrast Batcher word sorters whose every comparator costs
``O(W)`` gates and ``O(lg W)`` depth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate
from ..components.prefix_adder import add_counts, prefix_sum_scan
from .benes import BenesNetwork
from .permutation import RadixPermuter


def _lg(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    return n.bit_length() - 1


def _const_vector(b: CircuitBuilder, value: int, width: int) -> List[int]:
    return [b.const((value >> i) & 1) for i in range(width)]


def _not_vector(b: CircuitBuilder, bits: Sequence[int]) -> List[int]:
    return [b.not_(w) for w in bits]


def _pad(b: CircuitBuilder, bits: Sequence[int], width: int) -> List[int]:
    out = list(bits)[:width]
    while len(out) < width:
        out.append(b.const(0))
    return out


def build_rank_circuit(n: int) -> Netlist:
    """Stable-split destination circuit for ``n`` tag bits.

    Inputs: the n tags.  Outputs: n destinations of ``lg n`` bits each
    (MSB first, matching the radix permuter's address convention):

    * ``dest[i] = i - ones_before(i)``          when ``tag[i] = 0``
    * ``dest[i] = (n - ones_total) + ones_before(i)``  when ``tag[i] = 1``

    Subtractions are two's-complement tricks (NOT + add constant), so
    the whole circuit is adders, muxes, and inverters.
    """
    lg_n = _lg(n)
    w = lg_n + 1  # counts range 0..n
    b = CircuitBuilder(f"rank-circuit-{n}")
    tags = b.add_inputs(n)
    inclusive = prefix_sum_scan(b, tags)
    total = _pad(b, inclusive[n - 1], w)
    # n0 = n - total  ==  (NOT_w(total) + n + 1) mod 2^w
    n0 = add_counts(b, _not_vector(b, total), _const_vector(b, n + 1, w))[:w]
    dest_wires: List[int] = []
    for i in range(n):
        ones_before = (
            _const_vector(b, 0, w)
            if i == 0
            else _pad(b, inclusive[i - 1], w)
        )
        # zero-destination: i - ones_before = NOT(ones_before) + i + 1
        zero_dest = add_counts(
            b, _not_vector(b, ones_before), _const_vector(b, i + 1, w)
        )[:w]
        one_dest = add_counts(b, n0, ones_before)[:w]
        chosen = [
            b.mux2(zero_dest[j], one_dest[j], tags[i]) for j in range(lg_n)
        ]
        dest_wires.extend(reversed(chosen))  # MSB first per item
    return b.build(dest_wires)


@dataclass(frozen=True)
class WordSortReport:
    """Accounting of one word sort."""

    n: int
    width: int
    passes: int
    rank_cost: int
    permuter_cost: int
    total_cost: int
    sort_time: int


class RadixWordSorter:
    """Sorts ``n`` unsigned ``width``-bit words via stable binary splits."""

    def __init__(self, n: int, width: int, permuter: str = "benes") -> None:
        _lg(n)
        if width < 1:
            raise ValueError("width must be >= 1")
        self.n, self.width = n, width
        self.rank_circuit = build_rank_circuit(n)
        self.permuter_kind = permuter
        if permuter == "benes":
            self._benes: Optional[BenesNetwork] = BenesNetwork(n)
            self._radix: Optional[RadixPermuter] = None
            self._permuter_cost = self._benes.cost()
            self._permute_time = self._benes.depth()
        elif permuter in ("radix_fish", "radix_mux"):
            backend = "fish" if permuter == "radix_fish" else "mux_merger"
            self._benes = None
            self._radix = RadixPermuter(n, backend=backend)
            self._permuter_cost = self._radix.cost()
            self._permute_time = self._radix.routing_time()
        else:
            raise ValueError(f"unknown permuter {permuter!r}")

    # -- accounting ---------------------------------------------------------------

    def cost(self) -> int:
        """Hardware for the full W-stage cascade."""
        return self.width * (self.rank_circuit.cost() + self._permuter_cost)

    def sort_time(self) -> int:
        """Unit delays through the cascade."""
        return self.width * (self.rank_circuit.depth() + self._permute_time)

    @staticmethod
    def batcher_word_cost(n: int, width: int) -> float:
        """Baseline model: Batcher OEM with W-bit word comparators.

        A W-bit comparator-exchange is ~``5W`` gates (compare + swap),
        so the word network costs ``5W x (n/4)(lg^2 n - lg n + 4)``.
        """
        lg = math.log2(n)
        return 5 * width * (n / 4) * (lg * lg - lg + 4)

    # -- sorting ---------------------------------------------------------------------

    def _split_dests(self, tags: np.ndarray) -> np.ndarray:
        out = simulate(self.rank_circuit, tags[None, :])[0]
        lg_n = self.n.bit_length() - 1
        dests = np.empty(self.n, dtype=np.int64)
        for i in range(self.n):
            bits = out[i * lg_n : (i + 1) * lg_n]  # MSB first
            dests[i] = int("".join(map(str, bits)), 2) if lg_n else 0
        return dests

    def sort(self, values) -> Tuple[np.ndarray, WordSortReport]:
        """Sort ``n`` unsigned integers of at most ``width`` bits."""
        vals = np.asarray(values, dtype=np.int64).ravel()
        if vals.size != self.n:
            raise ValueError(f"expected {self.n} values, got {vals.size}")
        if vals.min(initial=0) < 0 or vals.max(initial=0) >= (1 << self.width):
            raise ValueError(f"values must fit in {self.width} unsigned bits")
        current = vals.copy()
        for bit in range(self.width):
            tags = ((current >> bit) & 1).astype(np.uint8)
            dests = self._split_dests(tags)
            if self._benes is not None:
                current = self._benes.permute(dests.tolist(), current)
            else:
                current, _ = self._radix.permute(dests.tolist(), current)
        report = WordSortReport(
            n=self.n,
            width=self.width,
            passes=self.width,
            rank_cost=self.rank_circuit.cost(),
            permuter_cost=self._permuter_cost,
            total_cost=self.cost(),
            sort_time=self.sort_time(),
        )
        return current, report
