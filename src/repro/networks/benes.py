"""Benes rearrangeable permutation network + looping routing (baseline).

The Benes network (reference [4]) is Table II's classical baseline:
``n lg n - n/2`` 2x2 switches, depth ``2 lg n - 1``.  It is
rearrangeable — any permutation can be realized — but the switch settings
must be *computed* (the looping algorithm); the paper charges
``O(lg^4 n / lg lg n)`` parallel routing time on ``n lg n`` processors
[18], which is exactly the weakness the self-routing radix permuter
avoids.

:class:`BenesNetwork` builds the switch fabric as a netlist whose control
wires are primary inputs, implements the looping algorithm (as a
two-coloring of the input-pair/output-pair constraint graph), and routes
real payloads through the fabric with the payload-carrying simulator.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate_payload


def _lg(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    return n.bit_length() - 1


def benes_switch_count(n: int) -> int:
    """Exact switch count ``n lg n - n/2``."""
    return n * _lg(n) - n // 2


def benes_depth(n: int) -> int:
    """Exact depth ``2 lg n - 1``."""
    return 2 * _lg(n) - 1


class BenesNetwork:
    """An n-input Benes network with looping-algorithm routing."""

    def __init__(self, n: int) -> None:
        _lg(n)
        self.n = n
        b = CircuitBuilder(f"benes-{n}")
        data = b.add_inputs(n)
        controls = b.add_inputs(benes_switch_count(n))
        ctrl_iter = iter(controls)
        outputs = self._construct(b, data, ctrl_iter)
        try:
            next(ctrl_iter)
        except StopIteration:
            pass
        else:  # pragma: no cover - structural invariant
            raise AssertionError("control count mismatch")
        self.netlist = b.build(outputs)
        self.n_controls = len(controls)

    def _construct(
        self, b: CircuitBuilder, data: Sequence[int], ctrl: Iterator[int]
    ) -> List[int]:
        n = len(data)
        if n == 2:
            o0, o1 = b.switch2(data[0], data[1], next(ctrl))
            return [o0, o1]
        half = n // 2
        upper_in: List[int] = []
        lower_in: List[int] = []
        for i in range(half):
            o0, o1 = b.switch2(data[2 * i], data[2 * i + 1], next(ctrl))
            upper_in.append(o0)
            lower_in.append(o1)
        upper_out = self._construct(b, upper_in, ctrl)
        lower_out = self._construct(b, lower_in, ctrl)
        outputs: List[int] = []
        for j in range(half):
            o0, o1 = b.switch2(upper_out[j], lower_out[j], next(ctrl))
            outputs.extend((o0, o1))
        return outputs

    # -- routing (looping algorithm) --------------------------------------------

    def route(self, perm: Sequence[int]) -> List[int]:
        """Compute switch settings realizing ``perm`` (input i -> output
        perm[i]), serialized in construction order."""
        perm = list(perm)
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        return self._route(perm)

    def _route(self, perm: List[int]) -> List[int]:
        n = len(perm)
        if n == 2:
            return [1 if perm[0] == 1 else 0]
        half = n // 2
        inv = [0] * n
        for i, d in enumerate(perm):
            inv[d] = i
        # Two-color the constraint graph: input-switch partners must use
        # different subnetworks, and so must the two inputs destined to
        # the same output switch.  Every vertex has exactly these two
        # neighbors, the cycles alternate edge types (hence are even),
        # so greedy alternation never conflicts.
        color = [-1] * n
        for seed in range(n):
            if color[seed] != -1:
                continue
            color[seed] = 0
            stack = [seed]
            while stack:
                i = stack.pop()
                for j in (i ^ 1, inv[perm[i] ^ 1]):
                    if color[j] == -1:
                        color[j] = color[i] ^ 1
                        stack.append(j)
                    elif color[j] == color[i]:  # pragma: no cover
                        raise AssertionError("looping two-coloring conflict")
        in_bits: List[int] = []
        out_bits = [0] * half
        upper_perm = [-1] * half
        lower_perm = [-1] * half
        for sw in range(half):
            a, b_ = 2 * sw, 2 * sw + 1
            if color[a] == 0:
                in_bits.append(0)
                up_src, lo_src = a, b_
            else:
                in_bits.append(1)
                up_src, lo_src = b_, a
            up_dst, lo_dst = perm[up_src], perm[lo_src]
            upper_perm[sw] = up_dst // 2
            lower_perm[sw] = lo_dst // 2
            out_bits[up_dst // 2] = up_dst & 1
        return (
            in_bits + self._route(upper_perm) + self._route(lower_perm) + out_bits
        )

    # -- execution ---------------------------------------------------------------

    def permute(self, perm: Sequence[int], payloads) -> np.ndarray:
        """Route ``payloads`` so output ``perm[i]`` receives input i's."""
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if pays.size != self.n:
            raise ValueError(f"expected {self.n} payloads")
        settings = self.route(perm)
        tags = np.zeros(self.n + self.n_controls, dtype=np.uint8)
        tags[self.n :] = settings
        full_pays = np.concatenate(
            [pays, np.full(self.n_controls, -1, dtype=np.int64)]
        )
        _, out_pays = simulate_payload(self.netlist, tags[None, :], full_pays[None, :])
        return out_pays[0]

    # -- accounting ----------------------------------------------------------------

    def cost(self) -> int:
        return self.netlist.cost()

    def depth(self) -> int:
        return self.netlist.depth()

    @staticmethod
    def bit_level_cost_model(n: float) -> float:
        """Table II's Benes row: fabric + O(n lg n) routing processors of
        lg n bit-cost each -> ``O(n lg^2 n)``."""
        return n * math.log2(n) ** 2

    @staticmethod
    def parallel_routing_time_model(n: float) -> float:
        """Nassimi–Sahni parallel set-up time ``O(lg^4 n / lg lg n)``."""
        lg = math.log2(n)
        return lg ** 4 / math.log2(max(lg, 2))
