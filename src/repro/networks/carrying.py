"""Bundle-carrying networks: whole words moving through the switches.

The concentrators and permuters of Section IV move *data*, not just
tags.  :func:`repro.circuits.simulate.simulate_payload` models that at
the interpreter level; this module builds it as physical hardware — each
packet is a *bundle* of wires (1 tag + B bus bits), and every switching
decision routes the entire bundle:

* a **bundle comparator** sorts two bundles by tag: one 1-bit comparator
  for the tags, two gates deriving the swap decision, and ``B`` 2x2
  switches moving the bus (cost ``B + 3``, depth 2);
* **bundle four-way swappers** apply the mux-merger's IN-/OUT-SWAP to
  every lane, sharing the two select wires (cost ``(B+1) n`` per
  swapper).

On top of these, :func:`build_carrying_sorter` is a mux-merger binary
sorter that physically carries a B-bit bus with every element, and
:func:`build_self_routing_permuter` cascades ``lg n`` levels of carrying
sorters keyed on successive destination-address bits — the *fully
combinational, self-routing* realization of Fig. 10's circuit-switched
radix permuter, as one netlist whose measured bit-level cost reproduces
the ``O(n lg^3 n)`` class Table II assigns to sorting-network-based
permutation switching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate
from ..components.swappers import four_way_swapper
from ..core.mux_merger import IN_SWAP_PERMS, OUT_SWAP_PERMS

#: lanes[0] is the tag lane; lanes[1..] are bus bit lanes.  Each lane is
#: a list of n wires (one per bundle position).
Lanes = List[List[int]]


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"expected a power of two, got {n}")
    return n.bit_length() - 1


def bundle_comparator(
    b: CircuitBuilder,
    tag_a: int,
    bus_a: Sequence[int],
    tag_b: int,
    bus_b: Sequence[int],
) -> Tuple[int, List[int], int, List[int]]:
    """Sort two bundles by tag; buses follow their tags.

    Returns ``(tag_lo, bus_lo, tag_hi, bus_hi)``.  Ties pass straight
    (swap only when ``tag_a = 1, tag_b = 0``), matching the
    payload-carrying interpreter's comparator semantics.
    """
    if len(bus_a) != len(bus_b):
        raise ValueError("bus widths must match")
    lo, hi = b.comparator(tag_a, tag_b)
    if not bus_a:  # degenerate to a plain comparator
        return lo, [], hi, []
    swap = b.and_(tag_a, b.not_(tag_b))
    bus_lo: List[int] = []
    bus_hi: List[int] = []
    for wa, wb in zip(bus_a, bus_b):
        o0, o1 = b.switch2(wa, wb, swap)
        bus_lo.append(o0)
        bus_hi.append(o1)
    return lo, bus_lo, hi, bus_hi


def _swap_lanes(
    b: CircuitBuilder, lanes: Lanes, sel_hi: int, sel_lo: int, perms
) -> Lanes:
    """Apply one four-way swapper to every lane with shared selects."""
    return [four_way_swapper(b, lane, sel_hi, sel_lo, perms) for lane in lanes]


def _carrying_merge(b: CircuitBuilder, lanes: Lanes) -> Lanes:
    """Mux-merger on bundles: merges a bisorted tag sequence, carrying
    every bus lane through the same IN-/OUT-SWAP settings."""
    n = len(lanes[0])
    if n == 1:
        return [list(lane) for lane in lanes]
    if n == 2:
        tag_lo, bus_lo, tag_hi, bus_hi = bundle_comparator(
            b,
            lanes[0][0],
            [lane[0] for lane in lanes[1:]],
            lanes[0][1],
            [lane[1] for lane in lanes[1:]],
        )
        out: Lanes = [[tag_lo, tag_hi]]
        for j in range(len(lanes) - 1):
            out.append([bus_lo[j], bus_hi[j]])
        return out
    sel_hi = lanes[0][n // 4]
    sel_lo = lanes[0][3 * n // 4]
    staged = _swap_lanes(b, lanes, sel_hi, sel_lo, IN_SWAP_PERMS)
    bottom = [lane[n // 2 :] for lane in staged]
    merged = _carrying_merge(b, bottom)
    combined = [
        list(staged[i][: n // 2]) + merged[i] for i in range(len(lanes))
    ]
    return _swap_lanes(b, combined, sel_hi, sel_lo, OUT_SWAP_PERMS)


def carrying_sorter_lanes(b: CircuitBuilder, lanes: Lanes) -> Lanes:
    """Network 2 on bundles: sort by tag lane, carrying all bus lanes."""
    n = len(lanes[0])
    if n <= 2:
        return _carrying_merge(b, lanes)
    upper = carrying_sorter_lanes(b, [lane[: n // 2] for lane in lanes])
    lower = carrying_sorter_lanes(b, [lane[n // 2 :] for lane in lanes])
    joined = [upper[i] + lower[i] for i in range(len(lanes))]
    return _carrying_merge(b, joined)


def build_carrying_sorter(n: int, bus_width: int) -> Netlist:
    """A mux-merger binary sorter that carries ``bus_width`` bus bits.

    Inputs are bundle-major: for each position, the tag wire then its
    ``bus_width`` bus wires.  Outputs in the same layout, sorted by tag.
    """
    _lg(n)
    b = CircuitBuilder(f"carrying-sorter-{n}x{bus_width}")
    lanes: Lanes = [[] for _ in range(bus_width + 1)]
    for _ in range(n):
        lanes[0].append(b.add_input())
        for j in range(bus_width):
            lanes[j + 1].append(b.add_input())
    out_lanes = carrying_sorter_lanes(b, lanes)
    outputs: List[int] = []
    for i in range(n):
        outputs.append(out_lanes[0][i])
        for j in range(bus_width):
            outputs.append(out_lanes[j + 1][i])
    return b.build(outputs)


def build_self_routing_permuter(n: int, payload_width: int = 0) -> Netlist:
    """Fig. 10's circuit-switched radix permuter as one netlist.

    Each input bundle is ``lg n`` destination-address bits (MSB first)
    followed by ``payload_width`` payload bits.  Level ``l`` sorts every
    contiguous block of ``n / 2^l`` bundles by address bit ``l``; after
    ``lg n`` levels, bundle ``i``'s payload sits at output position
    ``address_i``.  Outputs are bundle-major (address bits then payload
    bits per position).

    Entirely self-routing: the only "control" anywhere is the data's own
    address bits — no looping algorithm, no external setup.
    """
    lg_n = _lg(n)
    if payload_width < 0:
        raise ValueError("payload_width must be >= 0")
    b = CircuitBuilder(f"self-routing-permuter-{n}")
    width = lg_n + payload_width
    # lanes[j][i] = bit j of bundle i
    lanes: Lanes = [[] for _ in range(width)]
    for _ in range(n):
        for j in range(width):
            lanes[j].append(b.add_input())
    for level in range(lg_n):
        block = n >> level
        new_lanes: Lanes = [[] for _ in range(width)]
        for start in range(0, n, block):
            sub = [lane[start : start + block] for lane in lanes]
            # tag lane = address bit `level`; other lanes ride the bus
            order = [level] + [j for j in range(width) if j != level]
            sorted_sub = carrying_sorter_lanes(b, [sub[j] for j in order])
            unordered = [None] * width
            for pos, j in enumerate(order):
                unordered[j] = sorted_sub[pos]
            for j in range(width):
                new_lanes[j].extend(unordered[j])
        lanes = new_lanes
    outputs: List[int] = []
    for i in range(n):
        for j in range(width):
            outputs.append(lanes[j][i])
    return b.build(outputs)


def build_carrying_benes(n: int, payload_width: int) -> Netlist:
    """A Benes fabric whose switches move ``payload_width``-bit words.

    Table II charges the Benes network's *bit-level* cost with "the lg n
    factor [that] accounts for the bit-level cost of each processor" /
    word: each 2x2 switch becomes ``payload_width`` bit-switches sharing
    one control pin.  This builds that fabric, so the
    ``O(n lg^2 n)``-class bit-level cost is measured rather than modeled
    (controls remain external — routing still needs the looping
    algorithm; contrast :func:`build_self_routing_permuter`).

    Inputs: ``n * payload_width`` data wires (bundle-major), then one
    control wire per switch in :class:`~repro.networks.benes.BenesNetwork`
    construction order.  Outputs: routed bundles.
    """
    from .benes import benes_switch_count

    _lg(n)
    if payload_width < 1:
        raise ValueError("payload_width must be >= 1")
    b = CircuitBuilder(f"carrying-benes-{n}x{payload_width}")
    bundles = [b.add_inputs(payload_width) for _ in range(n)]
    controls = iter(b.add_inputs(benes_switch_count(n)))

    def construct(data: List[List[int]]) -> List[List[int]]:
        m = len(data)
        if m == 2:
            ctrl = next(controls)
            lo, hi = [], []
            for wa, wb in zip(data[0], data[1]):
                o0, o1 = b.switch2(wa, wb, ctrl)
                lo.append(o0)
                hi.append(o1)
            return [lo, hi]
        half = m // 2
        upper_in: List[List[int]] = []
        lower_in: List[List[int]] = []
        for i in range(half):
            ctrl = next(controls)
            up, dn = [], []
            for wa, wb in zip(data[2 * i], data[2 * i + 1]):
                o0, o1 = b.switch2(wa, wb, ctrl)
                up.append(o0)
                dn.append(o1)
            upper_in.append(up)
            lower_in.append(dn)
        upper_out = construct(upper_in)
        lower_out = construct(lower_in)
        out: List[List[int]] = []
        for j in range(half):
            ctrl = next(controls)
            o_even, o_odd = [], []
            for wa, wb in zip(upper_out[j], lower_out[j]):
                o0, o1 = b.switch2(wa, wb, ctrl)
                o_even.append(o0)
                o_odd.append(o1)
            out.extend([o_even, o_odd])
        return out

    routed = construct(bundles)
    outputs = [w for bundle in routed for w in bundle]
    return b.build(outputs)


class CarryingBenes:
    """Word-level Benes: fabric from :func:`build_carrying_benes` plus
    the looping-algorithm router from
    :class:`~repro.networks.benes.BenesNetwork`."""

    def __init__(self, n: int, payload_width: int) -> None:
        from .benes import BenesNetwork

        self.n, self.payload_width = n, payload_width
        self.netlist = build_carrying_benes(n, payload_width)
        self._router = BenesNetwork(n)

    def cost(self) -> int:
        return self.netlist.cost()

    def depth(self) -> int:
        return self.netlist.depth()

    def permute(self, perm: Sequence[int], payloads) -> np.ndarray:
        """Route word payloads so output ``perm[i]`` gets input i's word."""
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if pays.size != self.n:
            raise ValueError(f"expected {self.n} payloads")
        settings = self._router.route(perm)
        vec: List[int] = []
        for p in pays:
            vec.extend(
                (int(p) >> j) & 1
                for j in range(self.payload_width - 1, -1, -1)
            )
        vec.extend(settings)
        out = simulate(self.netlist, [vec])[0]
        w = self.payload_width
        return np.array(
            [
                int("".join(map(str, out[i * w : (i + 1) * w])), 2)
                for i in range(self.n)
            ],
            dtype=np.int64,
        )


def build_carrying_concentrator(n: int, payload_width: int) -> Netlist:
    """A physical (n,n)-concentrator: the paper's tagging trick in hardware.

    Inputs per position: one *request* wire (1 = wants an output) and
    ``payload_width`` payload wires.  Internally the request is inverted
    into the paper's 0-tag ("tag the inputs to be concentrated with 0's")
    and a carrying sorter moves whole bundles; outputs per position are
    a *valid* wire (1 = this output received a request) and the payload.
    """
    _lg(n)
    if payload_width < 1:
        raise ValueError("payload_width must be >= 1")
    b = CircuitBuilder(f"carrying-concentrator-{n}x{payload_width}")
    lanes: Lanes = [[] for _ in range(payload_width + 1)]
    for _ in range(n):
        req = b.add_input()
        lanes[0].append(b.not_(req))  # requesters tagged 0
        for j in range(payload_width):
            lanes[j + 1].append(b.add_input())
    out_lanes = carrying_sorter_lanes(b, lanes)
    outputs: List[int] = []
    for i in range(n):
        outputs.append(b.not_(out_lanes[0][i]))  # valid = tag 0
        for j in range(payload_width):
            outputs.append(out_lanes[j + 1][i])
    return b.build(outputs)


class CarryingConcentrator:
    """Convenience wrapper around :func:`build_carrying_concentrator`."""

    def __init__(self, n: int, payload_width: int) -> None:
        self.n, self.payload_width = n, payload_width
        self.netlist = build_carrying_concentrator(n, payload_width)

    def cost(self) -> int:
        return self.netlist.cost()

    def depth(self) -> int:
        return self.netlist.depth()

    def concentrate(self, requests, payloads) -> List[int]:
        """Returns the granted payload values, in output order."""
        req = np.asarray(requests, dtype=np.uint8).ravel()
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if req.size != self.n or pays.size != self.n:
            raise ValueError(f"expected {self.n} requests/payloads")
        vec: List[int] = []
        for r, p in zip(req, pays):
            vec.append(int(r))
            vec.extend(
                (int(p) >> j) & 1
                for j in range(self.payload_width - 1, -1, -1)
            )
        out = simulate(self.netlist, [vec])[0]
        stride = self.payload_width + 1
        granted: List[int] = []
        for pos in range(self.n):
            if out[pos * stride]:
                bits = out[pos * stride + 1 : (pos + 1) * stride]
                granted.append(int("".join(map(str, bits)), 2))
            else:
                break  # grants are contiguous from the top by construction
        return granted


@dataclass(frozen=True)
class SelfRoutingPermuter:
    """Convenience wrapper around :func:`build_self_routing_permuter`."""

    n: int
    payload_width: int
    netlist: Netlist

    @classmethod
    def create(cls, n: int, payload_width: int = 0) -> "SelfRoutingPermuter":
        return cls(n, payload_width, build_self_routing_permuter(n, payload_width))

    def permute(self, perm: Sequence[int], payloads=None) -> np.ndarray:
        """Route; returns per-output payload values (or addresses if
        ``payload_width`` is 0, as a self-check)."""
        lg_n = _lg(self.n)
        perm = list(perm)
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        if payloads is None:
            payloads = [0] * self.n
        vec: List[int] = []
        for i in range(self.n):
            dest = perm[i]
            for j in range(lg_n - 1, -1, -1):
                vec.append((dest >> j) & 1)
            for j in range(self.payload_width - 1, -1, -1):
                vec.append((int(payloads[i]) >> j) & 1)
        out = simulate(self.netlist, [vec])[0]
        width = lg_n + self.payload_width
        results = np.empty(self.n, dtype=np.int64)
        for pos in range(self.n):
            bits = out[pos * width : (pos + 1) * width]
            if self.payload_width:
                pay_bits = bits[lg_n:]
                results[pos] = int("".join(map(str, pay_bits)), 2)
            else:
                results[pos] = int("".join(map(str, bits[:lg_n])), 2)
        return results
