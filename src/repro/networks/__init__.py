"""Interconnection networks built from binary sorters (Section IV)."""

from .benes import BenesNetwork, benes_depth, benes_switch_count
from .concentrator import (
    IDLE,
    ConcentrationResult,
    FishConcentrator,
    SortingConcentrator,
    check_concentration,
)
from .permutation import (
    FISH_MIN_SIZE,
    PermutationReport,
    RadixPermuter,
    check_permutation,
)
from .carrying import (
    CarryingBenes,
    CarryingConcentrator,
    SelfRoutingPermuter,
    build_carrying_benes,
    build_carrying_concentrator,
    build_carrying_sorter,
    build_self_routing_permuter,
    bundle_comparator,
)
from .fabric import MuxStats, Packet, StatisticalMultiplexer
from .word_sorter import (
    RadixWordSorter,
    WordSortReport,
    build_rank_circuit,
)

__all__ = [
    "BenesNetwork",
    "CarryingBenes",
    "CarryingConcentrator",
    "ConcentrationResult",
    "FISH_MIN_SIZE",
    "FishConcentrator",
    "IDLE",
    "MuxStats",
    "Packet",
    "PermutationReport",
    "RadixPermuter",
    "RadixWordSorter",
    "SelfRoutingPermuter",
    "SortingConcentrator",
    "StatisticalMultiplexer",
    "WordSortReport",
    "benes_depth",
    "benes_switch_count",
    "build_carrying_benes",
    "build_carrying_concentrator",
    "build_carrying_sorter",
    "build_rank_circuit",
    "build_self_routing_permuter",
    "bundle_comparator",
    "check_concentration",
    "check_permutation",
]
