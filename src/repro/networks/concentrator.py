"""Concentrators built from binary sorters (Section IV).

An (n,m)-concentrator maps any ``r <= m`` of its inputs to ``r`` distinct
outputs — here, as in the paper, to the *first* ``r`` outputs.  "A binary
sorter does form an (n,n)-concentrator.  All that is needed is to tag the
inputs to be concentrated with 0's and tag the remaining inputs with
1's": sorting the tags ascending moves every active payload to the top.

Two realizations, matching the paper's Section IV inventory:

* :class:`SortingConcentrator` — circuit-switched, over any combinational
  binary sorter netlist (prefix or mux-merger: ``O(n lg n)`` cost,
  ``O(lg^2 n)`` concentration time).
* :class:`FishConcentrator` — packet-switched/time-multiplexed, over the
  fish sorter (``O(n)`` cost, ``O(lg^2 n)`` concentration time) — "the
  asymptotically least-cost practical concentrator to date".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate_payload
from ..core.fish_sorter import FishSorter, SortReport
from ..core.mux_merger import build_mux_merger_sorter
from ..core.prefix_sorter import build_prefix_sorter

#: Payload value reported on outputs that received no request.
IDLE = -1


def _as_requests(requests) -> np.ndarray:
    req = np.asarray(requests, dtype=np.uint8).ravel()
    if req.size and req.max() > 1:
        raise ValueError("requests must be a 0/1 mask")
    return req


@dataclass(frozen=True)
class ConcentrationResult:
    """Outcome of one concentration operation."""

    #: payloads of the granted requests, in output order (length r)
    granted: np.ndarray
    #: number of requests routed
    count: int
    #: full output vector (length m): granted payloads then :data:`IDLE`
    #: markers for outputs that received no request; None when the
    #: realization does not expose it
    outputs: Optional[np.ndarray] = None


class SortingConcentrator:
    """(n,m)-concentrator over a combinational adaptive binary sorter.

    With ``m < n`` and ``truncate=True`` (default) the sorter netlist is
    cut down to its first ``m`` outputs and dead-pruned: switching
    elements that only influence the never-read outputs disappear, so a
    partial concentrator costs measurably less than the full sorter —
    the specialization a hardware designer would perform.
    """

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        sorter: str = "mux_merger",
        truncate: bool = True,
    ):
        if m is None:
            m = n
        if not 1 <= m <= n:
            raise ValueError(f"need 1 <= m <= n, got m={m} n={n}")
        self.n, self.m = n, m
        if isinstance(sorter, Netlist):
            self.netlist = sorter
        elif sorter == "mux_merger":
            self.netlist = build_mux_merger_sorter(n)
        elif sorter == "prefix":
            self.netlist = build_prefix_sorter(n)
        else:
            raise ValueError(f"unknown sorter backend {sorter!r}")
        self.full_cost = self.netlist.cost()
        if truncate and m < n:
            from ..circuits.opt import prune_dead

            truncated = Netlist(
                self.netlist.n_wires,
                self.netlist.elements,
                self.netlist.inputs,
                self.netlist.outputs[:m],
                self.netlist.constants,
                f"{self.netlist.name}-trunc{m}",
            )
            self.netlist = prune_dead(truncated)

    def cost(self) -> int:
        return self.netlist.cost()

    def depth(self) -> int:
        """Concentration time = network depth (combinational)."""
        return self.netlist.depth()

    def concentrate(self, requests, payloads) -> ConcentrationResult:
        """Route the payloads of requesting inputs to the first outputs.

        ``requests`` is a 0/1 mask (1 = wants an output); ``payloads``
        holds one integer per input.  Raises if more than ``m`` inputs
        request (the concentrator's capacity).
        """
        req = _as_requests(requests)
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if req.size != self.n or pays.size != self.n:
            raise ValueError(f"expected {self.n} requests/payloads")
        r = int(req.sum())
        if r > self.m:
            raise ValueError(f"{r} requests exceed capacity m={self.m}")
        # paper's tagging: requesters are tagged 0 so they sort to the top
        tags = (1 - req).astype(np.uint8)
        out_tags, out_pays = simulate_payload(
            self.netlist, tags[None, :], pays[None, :]
        )
        granted = out_pays[0, :r].copy()
        outputs = np.full(self.m, IDLE, dtype=np.int64)
        outputs[:r] = granted
        return ConcentrationResult(granted=granted, count=r, outputs=outputs)


class FishConcentrator:
    """Time-multiplexed (n,n)-concentrator over the fish sorter.

    ``O(n)`` cost and ``O(lg^2 n)`` concentration time (pipelined), the
    complexities Section IV credits to this construction and to the
    columnsort network alone among practical designs.
    """

    def __init__(self, n: int, k: Optional[int] = None):
        self.sorter = FishSorter(n, k)
        self.n = n

    def cost(self) -> int:
        return self.sorter.cost()

    def concentrate(
        self, requests, payloads, pipelined: bool = True
    ) -> Tuple[ConcentrationResult, SortReport]:
        req = _as_requests(requests)
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if req.size != self.n or pays.size != self.n:
            raise ValueError(f"expected {self.n} requests/payloads")
        tags = (1 - req).astype(np.uint8)
        out_tags, out_pays, report = self.sorter.sort_with_payload(
            tags, pays, pipelined=pipelined
        )
        r = int(req.sum())
        outputs = np.full(self.n, IDLE, dtype=np.int64)
        outputs[:r] = out_pays[:r]
        return (
            ConcentrationResult(granted=out_pays[:r].copy(), count=r,
                                outputs=outputs),
            report,
        )


def check_concentration(
    requests, payloads, result: ConcentrationResult
) -> bool:
    """Validate the concentration property: exactly the requested
    payloads appear, each exactly once, on the first ``r`` outputs."""
    req = _as_requests(requests)
    pays = np.asarray(payloads, dtype=np.int64).ravel()
    wanted = sorted(int(p) for p, m in zip(pays, req) if m)
    got = sorted(int(p) for p in result.granted)
    return wanted == got and result.count == len(wanted)
