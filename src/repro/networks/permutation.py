"""The radix permuter built from adaptive binary sorters (Section IV, Fig. 10).

Jan and Oruc's radix permuter recursion, with the paper's twist: "by
sorting the leading bits in the destination address, a binary sorter can
distribute the inputs to the upper and lower half-size radix permuters".
An n-input permuter is a binary sorter on the destination MSB feeding two
(n/2)-input permuters on the remaining bits.

Backends (Section IV distinguishes them):

* ``"fish"`` — packet-switched: each distributor is a time-multiplexed
  fish sorter.  Cost ``C_rp(n) = O(n) + 2 C_rp(n/2) = O(n lg n)``,
  routing time ``D_rp(n) = O(lg^2 n) + D_rp(n/2) = O(lg^3 n)`` — the
  first permutation network with ``O(n lg n)`` bit-level cost (Table II).
* ``"mux_merger"`` / ``"prefix"`` — circuit-switched: combinational
  distributors; cost ``O(n lg^2 n)`` "but with a much simpler design"
  (Section V).

Every distribution physically routes payloads through the corresponding
sorter with the payload-carrying simulator; nothing is permuted "on
paper".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate_payload
from ..core.fish_sorter import FishSorter
from ..core.mux_merger import build_mux_merger_sorter
from ..core.prefix_sorter import build_prefix_sorter

#: Smallest size at which the fish backend actually time-multiplexes;
#: below it the recursion falls back to a combinational mux-merger
#: distributor (the paper's asymptotic analysis is silent on base sizes).
FISH_MIN_SIZE = 8


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    return n.bit_length() - 1


@dataclass(frozen=True)
class PermutationReport:
    """Cost/time of one permutation routing."""

    n: int
    backend: str
    routing_time: int
    distributor_levels: int


class RadixPermuter:
    """Fig. 10's recursive permutation network over binary sorters."""

    def __init__(self, n: int, backend: str = "fish", pipelined: bool = True):
        _lg(n)
        if n < 2:
            raise ValueError("permuter needs n >= 2")
        if backend not in ("fish", "mux_merger", "prefix"):
            raise ValueError(f"unknown backend {backend!r}")
        self.n = n
        self.backend = backend
        self.pipelined = pipelined
        # one distributor instance per level size (hardware has 2^i of
        # them at size n/2^i; they are identical, so we simulate with one
        # and account cost with multiplicity)
        self._combinational: Dict[int, Netlist] = {}
        self._fish: Dict[int, FishSorter] = {}
        m = n
        while m >= 2:
            if backend == "fish" and m >= FISH_MIN_SIZE:
                self._fish[m] = FishSorter(m)
            elif backend == "prefix":
                self._combinational[m] = build_prefix_sorter(m)
            else:
                self._combinational[m] = build_mux_merger_sorter(m)
            m //= 2

    # -- accounting ----------------------------------------------------------------

    def cost(self) -> int:
        """Total bit-level cost: every distributor at every level."""
        total = 0
        m, copies = self.n, 1
        while m >= 2:
            if m in self._fish:
                total += copies * self._fish[m].cost()
            else:
                total += copies * self._combinational[m].cost()
            m //= 2
            copies *= 2
        return total

    def distributor_time(self, m: int) -> int:
        """Routing time through one level-m distributor."""
        if m in self._fish:
            # a representative sort's reported time (data-independent)
            fs = self._fish[m]
            _, report = fs.sort(np.zeros(m, dtype=np.uint8), pipelined=self.pipelined)
            return report.sorting_time
        return self._combinational[m].depth()

    def routing_time(self) -> int:
        """Total routing time: distributors at successive levels are
        sequential; sibling permuters run in parallel."""
        return sum(self.distributor_time(m) for m in self._level_sizes())

    def _level_sizes(self) -> List[int]:
        sizes = []
        m = self.n
        while m >= 2:
            sizes.append(m)
            m //= 2
        return sizes

    # -- routing ---------------------------------------------------------------------

    def permute(self, perm: Sequence[int], payloads) -> Tuple[np.ndarray, PermutationReport]:
        """Route payloads so output ``perm[i]`` receives input i's payload."""
        perm = np.asarray(perm, dtype=np.int64)
        pays = np.asarray(payloads, dtype=np.int64).ravel()
        if sorted(perm.tolist()) != list(range(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        if pays.size != self.n:
            raise ValueError(f"expected {self.n} payloads")
        out = self._distribute(perm.copy(), pays.copy())
        report = PermutationReport(
            n=self.n,
            backend=self.backend,
            routing_time=self.routing_time(),
            distributor_levels=len(self._level_sizes()),
        )
        return out, report

    def _distribute(self, dests: np.ndarray, pays: np.ndarray) -> np.ndarray:
        """Recursively sort by destination MSB and split."""
        m = dests.size
        if m == 1:
            return pays
        half = m // 2
        tags = (dests >= half).astype(np.uint8)
        ids = np.arange(m, dtype=np.int64)
        if m in self._fish:
            _, out_ids, _ = self._fish[m].sort_with_payload(
                tags, ids, pipelined=self.pipelined
            )
        else:
            _, out_ids_b = simulate_payload(
                self._combinational[m], tags[None, :], ids[None, :]
            )
            out_ids = out_ids_b[0]
        dests = dests[out_ids]
        pays = pays[out_ids]
        upper = self._distribute(dests[:half], pays[:half])
        lower = self._distribute(dests[half:] - half, pays[half:])
        return np.concatenate([upper, lower])


def check_permutation(perm, payloads, routed) -> bool:
    """Validate that output ``perm[i]`` received input i's payload."""
    perm = np.asarray(perm)
    pays = np.asarray(payloads)
    routed = np.asarray(routed)
    return all(routed[perm[i]] == pays[i] for i in range(perm.size))
