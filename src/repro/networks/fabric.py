"""A statistical multiplexer built on the paper's concentrators.

This is the downstream application Section I motivates: "many routing
problems in parallel processing ... can be cast as sorting problems."
An (n, m)-statistical multiplexer accepts up to ``n`` packets per cycle
and forwards at most ``m`` of them onto trunk outputs; a concentrator is
exactly the switch fabric that delivers any ``r <= m`` active inputs to
``r`` distinct trunks.

:class:`StatisticalMultiplexer` runs a cycle-accurate simulation:

* each cycle, Bernoulli(load) arrivals enter per-input queues;
* heads of non-empty queues request the concentrator, *oldest-first up
  to the trunk capacity* (requests beyond ``m`` stay queued — the
  concentrator itself is only guaranteed for r <= m);
* granted packets leave through the fabric (payload-carrying, so the
  simulation checks real delivery, not bookkeeping);
* statistics: throughput, drop/backlog, queueing delay.

The fabric backend is pluggable (combinational sorter vs fish), which is
the Section IV cost/time trade made operational.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Literal, Optional, Tuple

import numpy as np

from .concentrator import FishConcentrator, SortingConcentrator, check_concentration


@dataclass
class MuxStats:
    """Aggregate statistics of one simulation run."""

    cycles: int = 0
    arrivals: int = 0
    forwarded: int = 0
    dropped: int = 0
    backlog: int = 0
    total_delay: int = 0

    @property
    def throughput(self) -> float:
        return self.forwarded / self.cycles if self.cycles else 0.0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.forwarded if self.forwarded else 0.0

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.arrivals if self.arrivals else 0.0


@dataclass(frozen=True)
class Packet:
    """One packet: identity plus its arrival cycle (for delay stats)."""

    pid: int
    arrived: int


class StatisticalMultiplexer:
    """(n, m)-statistical multiplexer over a sorting concentrator."""

    def __init__(
        self,
        n: int,
        m: Optional[int] = None,
        backend: str = "mux_merger",
        queue_capacity: int = 8,
    ) -> None:
        self.n = n
        self.m = n if m is None else m
        if not 1 <= self.m <= n:
            raise ValueError(f"need 1 <= m <= n, got m={self.m}")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.queue_capacity = queue_capacity
        self.backend = backend
        if backend == "fish":
            self._fish: Optional[FishConcentrator] = FishConcentrator(n)
            self._sorting: Optional[SortingConcentrator] = None
            self.fabric_cost = self._fish.cost()
        else:
            self._fish = None
            self._sorting = SortingConcentrator(n, n, sorter=backend)
            self.fabric_cost = self._sorting.cost()
        self.queues: List[Deque[Packet]] = [deque() for _ in range(n)]
        self._next_pid = 0

    # -- one cycle ---------------------------------------------------------------

    def step(self, arrivals: np.ndarray, now: int, stats: MuxStats) -> List[Packet]:
        """Advance one cycle; returns the packets forwarded this cycle."""
        arrivals = np.asarray(arrivals, dtype=np.uint8)
        if arrivals.size != self.n:
            raise ValueError(f"expected {self.n} arrival flags")
        for i in range(self.n):
            if arrivals[i]:
                stats.arrivals += 1
                if len(self.queues[i]) >= self.queue_capacity:
                    stats.dropped += 1
                else:
                    self.queues[i].append(Packet(self._next_pid, now))
                    self._next_pid += 1

        # oldest-head-first admission up to trunk capacity m
        heads = [
            (self.queues[i][0].arrived, i)
            for i in range(self.n)
            if self.queues[i]
        ]
        heads.sort()
        admitted = {i for _, i in heads[: self.m]}
        requests = np.zeros(self.n, dtype=np.uint8)
        payloads = np.full(self.n, -1, dtype=np.int64)
        for i in admitted:
            requests[i] = 1
            payloads[i] = self.queues[i][0].pid

        if requests.any():
            if self._fish is not None:
                res, _ = self._fish.concentrate(requests, payloads)
            else:
                res = self._sorting.concentrate(requests, payloads)
            assert check_concentration(requests, payloads, res)
            granted_pids = set(int(p) for p in res.granted)
        else:
            granted_pids = set()

        forwarded: List[Packet] = []
        for i in admitted:
            pkt = self.queues[i][0]
            if pkt.pid in granted_pids:
                self.queues[i].popleft()
                forwarded.append(pkt)
                stats.forwarded += 1
                stats.total_delay += now - pkt.arrived
        return forwarded

    # -- full run ------------------------------------------------------------------

    def run(
        self,
        cycles: int,
        load: float,
        rng: Optional[np.random.Generator] = None,
    ) -> MuxStats:
        """Simulate ``cycles`` rounds of Bernoulli(load) arrivals."""
        rng = rng or np.random.default_rng(0)
        stats = MuxStats()
        for t in range(cycles):
            arrivals = (rng.random(self.n) < load).astype(np.uint8)
            self.step(arrivals, t, stats)
            stats.cycles += 1
        stats.backlog = sum(len(q) for q in self.queues)
        return stats
