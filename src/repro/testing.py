"""Hypothesis strategies for the paper's sequence classes.

Public so downstream users can property-test their own code against the
same input spaces the paper's theorems quantify over::

    from hypothesis import given
    from repro.testing import bisorted_sequences

    @given(bisorted_sequences(max_lg=5))
    def test_my_merger(x):
        ...

Every strategy draws power-of-two lengths (the paper's convention) and
returns ``numpy.uint8`` arrays.
"""

from __future__ import annotations

import numpy as np

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover
    raise ImportError(
        "repro.testing requires hypothesis (pip install hypothesis)"
    ) from exc

from .core import sequences as seq

__all__ = [
    "binary_sequences",
    "sorted_sequences",
    "bisorted_sequences",
    "k_sorted_sequences",
    "clean_k_sorted_sequences",
    "a_n_members",
]


def _length(min_lg: int, max_lg: int):
    return st.integers(min_lg, max_lg).map(lambda p: 1 << p)


def binary_sequences(min_lg: int = 1, max_lg: int = 6) -> st.SearchStrategy:
    """Arbitrary 0/1 sequences of power-of-two length."""
    return _length(min_lg, max_lg).flatmap(
        lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)
    ).map(lambda v: np.array(v, dtype=np.uint8))


def sorted_sequences(min_lg: int = 1, max_lg: int = 8) -> st.SearchStrategy:
    """Ascending binary sequences (all 0's then all 1's)."""
    return _length(min_lg, max_lg).flatmap(
        lambda n: st.integers(0, n).map(lambda z: seq.sorted_sequence(n, z))
    )


def bisorted_sequences(min_lg: int = 1, max_lg: int = 8) -> st.SearchStrategy:
    """Definition 3: both halves sorted."""

    def build(n):
        h = n // 2
        return st.tuples(st.integers(0, h), st.integers(0, h)).map(
            lambda zz: np.concatenate(
                [seq.sorted_sequence(h, zz[0]), seq.sorted_sequence(h, zz[1])]
            )
        )

    return _length(min_lg, max_lg).flatmap(build)


def k_sorted_sequences(
    k: int = 4, min_lg_block: int = 1, max_lg_block: int = 5
) -> st.SearchStrategy:
    """Definition 4: k equal-size sorted blocks (k a power of two)."""
    if k < 1 or k & (k - 1):
        raise ValueError("k must be a power of two")

    def build(block):
        return st.lists(
            st.integers(0, block), min_size=k, max_size=k
        ).map(
            lambda zs: np.concatenate(
                [seq.sorted_sequence(block, z) for z in zs]
            )
        )

    return _length(min_lg_block, max_lg_block).flatmap(build)


def clean_k_sorted_sequences(
    k: int = 4, min_lg_block: int = 1, max_lg_block: int = 5
) -> st.SearchStrategy:
    """Definition 5: k equal-size clean blocks."""
    if k < 1 or k & (k - 1):
        raise ValueError("k must be a power of two")

    def build(block):
        return st.lists(st.integers(0, 1), min_size=k, max_size=k).map(
            lambda bs: np.repeat(np.array(bs, dtype=np.uint8), block)
        )

    return _length(min_lg_block, max_lg_block).flatmap(build)


def a_n_members(min_lg: int = 1, max_lg: int = 7) -> st.SearchStrategy:
    """Definition 1: members of the regular language ``A_n``.

    Draws the three block patterns and lengths directly from the
    defining expression, so arbitrarily long members are cheap.
    """

    def build(n):
        def assemble(parts):
            a_pairs, pa, pb, pc = parts
            b_pairs_max = n // 2 - a_pairs
            return st.integers(0, b_pairs_max).map(
                lambda b_pairs: _assemble(n, a_pairs, b_pairs, pa, pb, pc)
            )

        return st.tuples(
            st.integers(0, n // 2),
            st.sampled_from(["00", "11"]),
            st.sampled_from(["01", "10"]),
            st.sampled_from(["00", "11"]),
        ).flatmap(assemble)

    return _length(min_lg, max_lg).flatmap(build)


def _assemble(n, a_pairs, b_pairs, pa, pb, pc) -> np.ndarray:
    c_pairs = n // 2 - a_pairs - b_pairs
    s = pa * a_pairs + pb * b_pairs + pc * c_pairs
    return np.frombuffer(s.encode(), dtype=np.uint8) - ord("0")
