"""Trace-driven workload models: deterministic request streams for soak runs.

The paper's Section IV positions the adaptive sorters as switching-fabric
building blocks — concentrators and the Fig. 10 radix permuter — which
in production see sustained, bursty, adversarial *traffic*, not one-shot
batches.  This package supplies that traffic as reproducible streams:
a :class:`Workload` couples an **arrival process** (when requests land)
with a **request model** (what each request asks to sort) and emits
``(arrival_time, Request)`` pairs that are byte-deterministic under a
fixed seed — the property every soak, chaos campaign, and resume path
in ``tools/soak.py`` leans on.

Arrival processes (:mod:`repro.workloads.arrivals`):

* :class:`UniformArrivals` — fixed inter-arrival gap, the closed-loop
  baseline;
* :class:`PoissonArrivals` — memoryless open-loop traffic at a declared
  mean rate;
* :class:`OnOffArrivals` — Markov-modulated on/off bursts (optionally
  Pareto-heavy dwell times for self-similar burstiness) whose *declared*
  mean rate accounts for the off periods.

Request models (:mod:`repro.workloads.models`):

* :class:`BernoulliModel` — i.i.d. 0/1 vectors, the uniform reference
  load;
* :class:`ZipfHotKeyModel` — Zipf-skewed hot-key activity across input
  lanes, the concentrator/permuter "popular destination" pattern;
* :class:`AdversarialModel` — bit-reversal and transpose permutation
  bit-planes (the classic worst cases for radix routing) plus
  steering-cone worst-case vectors (maximum-alternation and
  reverse-sorted rows that force every adaptive steering decision);
* :class:`MixedSizeModel` — a declared mix of request widths.

Every generator declares its mean rate (``Workload.declared_rate``) and
the property tests in ``tests/test_workloads.py`` hold the empirical
stream to it; :func:`stream_digest` is the canonical fingerprint used to
prove two streams identical byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

import numpy as np

from ..errors import BuildError
from .arrivals import ArrivalProcess, OnOffArrivals, PoissonArrivals, UniformArrivals
from .models import (
    AdversarialModel,
    BernoulliModel,
    MixedSizeModel,
    RequestModel,
    ZipfHotKeyModel,
    bit_reversal_permutation,
    permutation_bit_planes,
    transpose_permutation,
    worst_case_vectors,
)

__all__ = [
    "AdversarialModel",
    "ArrivalProcess",
    "BernoulliModel",
    "MixedSizeModel",
    "OnOffArrivals",
    "PoissonArrivals",
    "Request",
    "RequestModel",
    "UniformArrivals",
    "WORKLOADS",
    "Workload",
    "ZipfHotKeyModel",
    "bit_reversal_permutation",
    "make_workload",
    "permutation_bit_planes",
    "stream_digest",
    "transpose_permutation",
    "worst_case_vectors",
]


def stable_hash(*parts) -> int:
    """FNV-1a over the string forms of ``parts`` — a stable, processless
    seed derivation (same recipe as the campaign tools)."""
    h = 0xCBF29CE484222325
    for p in parts:
        for ch in str(p):
            h = ((h ^ ord(ch)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFF


@dataclass(frozen=True)
class Request:
    """One sort request drawn from a workload stream."""

    index: int  #: position in the stream (0-based)
    t: float  #: arrival time in seconds since stream start
    bits: np.ndarray  #: the 0/1 row to sort (uint8)
    tag: str  #: request-model label (e.g. ``"zipf"``, ``"bitrev/p2"``)

    @property
    def n(self) -> int:
        """Request width (bits per row)."""
        return int(self.bits.size)


class Workload:
    """An arrival process crossed with a request model, seeded.

    ``stream(count)`` regenerates the identical request sequence every
    time it is called — the arrival and model RNGs are re-derived from
    ``seed`` per call — so resuming a soak is just "generate the stream
    again and skip the first *k* requests".
    """

    def __init__(
        self,
        name: str,
        arrivals: ArrivalProcess,
        model: RequestModel,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.arrivals = arrivals
        self.model = model
        self.seed = int(seed)

    @property
    def declared_rate(self) -> float:
        """Declared mean request rate (requests/second)."""
        return self.arrivals.rate

    def stream(self, count: int, skip: int = 0) -> Iterator[Request]:
        """Yield ``count - skip`` requests, starting at index ``skip``.

        The full stream is always regenerated from the seed; ``skip``
        merely suppresses the prefix, so a resumed consumer sees exactly
        the requests an uninterrupted one would have.
        """
        if count < 0 or skip < 0:
            raise BuildError("stream count/skip must be >= 0")
        arrival_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, stable_hash(self.name, "arrivals")])
        )
        model_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, stable_hash(self.name, "model")])
        )
        gaps = self.arrivals.gaps(arrival_rng)
        rows = self.model.rows(model_rng)
        t = 0.0
        for index in range(count):
            t += next(gaps)
            bits, tag = next(rows)
            if index >= skip:
                yield Request(index=index, t=t, bits=bits, tag=tag)

    def digest(self, count: int) -> str:
        """Fingerprint of the first ``count`` requests (arrival times,
        widths, and payload bytes) — equal digests mean byte-identical
        streams."""
        return stream_digest(self.stream(count))


def stream_digest(requests: Iterable[Request]) -> str:
    """SHA-256 over every request's (time, width, bits) bytes."""
    h = hashlib.sha256()
    for req in requests:
        h.update(np.float64(req.t).tobytes())
        h.update(np.uint32(req.n).tobytes())
        h.update(np.ascontiguousarray(req.bits, dtype=np.uint8).tobytes())
    return h.hexdigest()


#: Registered workload names understood by :func:`make_workload` (and by
#: ``tools/soak.py --workloads``).
WORKLOADS = ("uniform", "poisson", "bursty", "zipf", "adversarial", "mixed")


def make_workload(
    name: str,
    n: int = 16,
    rate: float = 2000.0,
    seed: int = 0,
    sizes: Optional[List[int]] = None,
) -> Workload:
    """Build one of the registered workloads at width ``n`` and the
    declared mean ``rate``.

    ``sizes`` overrides the width mix of the ``"mixed"`` workload
    (default: ``n/2``, ``n``, ``2n`` clipped to >= 4).
    """
    if name not in WORKLOADS:
        raise BuildError(
            f"unknown workload {name!r}; choose one of {WORKLOADS}"
        )
    if name == "uniform":
        return Workload(name, UniformArrivals(rate), BernoulliModel(n), seed)
    if name == "poisson":
        return Workload(name, PoissonArrivals(rate), BernoulliModel(n), seed)
    if name == "bursty":
        # Bursts at 4x the mean rate, 25% duty cycle, Pareto-heavy
        # on-periods: the self-similar-ish stress case.
        return Workload(
            name,
            OnOffArrivals(peak_rate=4.0 * rate, mean_on_s=0.05,
                          mean_off_s=0.15, heavy_tail=True),
            BernoulliModel(n),
            seed,
        )
    if name == "zipf":
        return Workload(name, PoissonArrivals(rate), ZipfHotKeyModel(n), seed)
    if name == "adversarial":
        return Workload(name, UniformArrivals(rate), AdversarialModel(n), seed)
    # mixed request sizes
    if sizes is None:
        sizes = sorted({max(4, n // 2), max(4, n), max(4, 2 * n)})
    return Workload(
        name, PoissonArrivals(rate),
        MixedSizeModel(sizes, model=BernoulliModel), seed,
    )
