"""Arrival-time processes: when requests land.

Each process is a declared-rate generator of inter-arrival gaps.  The
*declared* rate is the long-run mean the generator promises (requests
per second, off periods included); the property tests in
``tests/test_workloads.py`` hold every process's empirical rate to it.
All randomness flows through the caller-supplied
:class:`numpy.random.Generator`, so a seeded stream is byte-reproducible.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import BuildError

__all__ = [
    "ArrivalProcess",
    "OnOffArrivals",
    "PoissonArrivals",
    "UniformArrivals",
]


class ArrivalProcess:
    """Base class: a declared mean rate plus a gap generator."""

    #: Declared long-run mean arrival rate (requests/second).
    rate: float

    def __init__(self, rate: float) -> None:
        if not rate or rate <= 0:
            raise BuildError("arrival rate must be > 0")
        self.rate = float(rate)

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Infinite generator of inter-arrival gaps in seconds."""
        raise NotImplementedError


class UniformArrivals(ArrivalProcess):
    """Deterministic fixed-gap arrivals: exactly ``rate`` requests/s."""

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        mean = 1.0 / self.rate
        while True:
            # Draw in blocks: one numpy call per 1024 gaps, still
            # consuming the stream deterministically.
            for gap in rng.exponential(mean, size=1024):
                yield float(gap)


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated on/off bursts (optionally heavy-tailed).

    While **on**, arrivals are Poisson at ``peak_rate``; while **off**,
    nothing arrives.  Dwell times are exponential with means
    ``mean_on_s`` / ``mean_off_s`` — or, with ``heavy_tail=True``,
    on-periods are Pareto(``alpha``) with the same mean, which gives the
    long-range-dependent burst structure of self-similar traffic.  The
    declared mean rate is the duty-cycle-weighted peak rate::

        rate = peak_rate * mean_on_s / (mean_on_s + mean_off_s)
    """

    def __init__(
        self,
        peak_rate: float,
        mean_on_s: float,
        mean_off_s: float,
        heavy_tail: bool = False,
        alpha: float = 1.5,
    ) -> None:
        if peak_rate <= 0 or mean_on_s <= 0 or mean_off_s < 0:
            raise BuildError("peak_rate/mean_on_s must be > 0, mean_off_s >= 0")
        if heavy_tail and alpha <= 1.0:
            raise BuildError("Pareto alpha must be > 1 for a finite mean")
        self.peak_rate = float(peak_rate)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.heavy_tail = bool(heavy_tail)
        self.alpha = float(alpha)
        super().__init__(
            peak_rate * mean_on_s / (mean_on_s + mean_off_s)
        )

    def _on_dwell(self, rng: np.random.Generator) -> float:
        if not self.heavy_tail:
            return float(rng.exponential(self.mean_on_s))
        # Pareto with mean mean_on_s: scale x_m = mean * (alpha-1)/alpha.
        xm = self.mean_on_s * (self.alpha - 1.0) / self.alpha
        return float(xm * (1.0 + rng.pareto(self.alpha)))

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        mean_gap = 1.0 / self.peak_rate
        carry = 0.0  # accumulated off time owed to the next arrival
        while True:
            dwell = self._on_dwell(rng)
            elapsed = 0.0
            while True:
                gap = float(rng.exponential(mean_gap))
                if elapsed + gap > dwell:
                    # Burst over: the remainder of the dwell plus the
                    # following off period precede the next arrival.
                    carry += dwell - elapsed
                    break
                elapsed += gap
                yield gap + carry
                carry = 0.0
            carry += float(rng.exponential(self.mean_off_s)) if self.mean_off_s else 0.0
