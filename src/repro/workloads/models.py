"""Request models: what each workload request asks the fabric to sort.

A request model turns a seeded RNG into an infinite sequence of
``(bits, tag)`` rows.  Binary-sorter traffic is 0/1 rows; permuter
traffic (the Fig. 10 radix permuter routes a permutation by sorting the
destination address one bit-plane at a time) enters as the bit-planes of
destination permutations — which is exactly how the adversarial model
smuggles the classic worst-case permutations (bit-reversal, transpose)
into a binary-sorter soak.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import BuildError

__all__ = [
    "AdversarialModel",
    "BernoulliModel",
    "MixedSizeModel",
    "RequestModel",
    "ZipfHotKeyModel",
    "bit_reversal_permutation",
    "permutation_bit_planes",
    "transpose_permutation",
    "worst_case_vectors",
]


def _require_pow2(n: int, what: str) -> int:
    if n < 2 or n & (n - 1):
        raise BuildError(f"{what} requires a power-of-two width, got {n}")
    return int(n)


class RequestModel:
    """Base class: an infinite seeded generator of ``(bits, tag)`` rows."""

    def rows(self, rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, str]]:
        raise NotImplementedError


class BernoulliModel(RequestModel):
    """i.i.d. Bernoulli(``p``) rows of width ``n`` — the uniform load."""

    def __init__(self, n: int, p: float = 0.5) -> None:
        if n < 1:
            raise BuildError("width must be >= 1")
        if not 0.0 < p < 1.0:
            raise BuildError("p must be in (0, 1)")
        self.n = int(n)
        self.p = float(p)

    def rows(self, rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, str]]:
        while True:
            block = (rng.random((256, self.n)) < self.p).astype(np.uint8)
            for row in block:
                yield row, "bernoulli"


class ZipfHotKeyModel(RequestModel):
    """Zipf-skewed hot-key activity across the ``n`` input lanes.

    Lane *i* is active in a request with probability proportional to the
    Zipf weight of its (seeded-shuffled) rank — a handful of hot lanes
    fire in nearly every request while the tail idles, the canonical
    "popular destination" pattern for concentrator/permuter traffic.
    ``load`` is the mean fraction of active lanes per request.
    """

    def __init__(self, n: int, s: float = 1.2, load: float = 0.5) -> None:
        if n < 1:
            raise BuildError("width must be >= 1")
        if s <= 0:
            raise BuildError("Zipf exponent s must be > 0")
        if not 0.0 < load < 1.0:
            raise BuildError("load must be in (0, 1)")
        self.n = int(n)
        self.s = float(s)
        self.load = float(load)

    def lane_probabilities(self, rng: np.random.Generator) -> np.ndarray:
        """Per-lane activation probabilities (consumes one shuffle).

        Water-filled so the mean is *exactly* ``load``: Zipf weights are
        scaled to the target mass, lanes that would exceed probability 1
        saturate (the "hot lane fires every request" regime), and the
        excess mass redistributes over the remaining lanes — clipping
        alone would silently shed mass and under-deliver the declared
        load.
        """
        weights = 1.0 / np.arange(1, self.n + 1, dtype=np.float64) ** self.s
        probs = np.zeros(self.n, dtype=np.float64)
        free = np.ones(self.n, dtype=bool)
        remaining = self.load * self.n
        while remaining > 1e-12 and free.any():
            scaled = weights[free] * (remaining / weights[free].sum())
            if scaled.max() < 1.0:
                probs[free] = scaled
                break
            idx = np.flatnonzero(free)
            saturated = idx[scaled >= 1.0]
            probs[saturated] = 1.0
            free[saturated] = False
            remaining = self.load * self.n - probs.sum()
        rng.shuffle(probs)  # hot lanes land at seeded positions
        return probs

    def rows(self, rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, str]]:
        probs = self.lane_probabilities(rng)
        while True:
            block = (rng.random((256, self.n)) < probs).astype(np.uint8)
            for row in block:
                yield row, "zipf"


# -- adversarial structure ----------------------------------------------------


def bit_reversal_permutation(n: int) -> np.ndarray:
    """The bit-reversal permutation on ``n = 2**m`` points."""
    m = _require_pow2(n, "bit_reversal_permutation").bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(m):
        rev |= ((idx >> b) & 1) << (m - 1 - b)
    return rev


def transpose_permutation(n: int) -> np.ndarray:
    """The perfect-shuffle (matrix transpose) permutation on ``n = 2**m``:
    destination = left-rotation of the source's ``m``-bit address."""
    m = _require_pow2(n, "transpose_permutation").bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    return ((idx << 1) | (idx >> (m - 1))) & (n - 1)


def permutation_bit_planes(perm: np.ndarray) -> np.ndarray:
    """Destination-address bit-planes of a permutation, LSB first.

    The Fig. 10 radix permuter realizes ``perm`` by binary-sorting each
    of these ``lg n`` rows in turn; a permutation whose planes stress
    the steering cones is therefore a worst case *for the sorter*.
    """
    perm = np.asarray(perm, dtype=np.int64)
    m = _require_pow2(perm.size, "permutation_bit_planes").bit_length() - 1
    return np.stack([
        ((perm >> b) & 1).astype(np.uint8) for b in range(m)
    ])


def worst_case_vectors(n: int) -> List[Tuple[np.ndarray, str]]:
    """Steering-cone worst-case rows (after Sergeev's structure analysis
    of small sorting networks): maximum-alternation rows force every
    adaptive steering element to switch, and the reverse-sorted row
    maximizes displacement through the merge cone."""
    alt = (np.arange(n) & 1).astype(np.uint8)
    return [
        (alt, "alternating"),
        ((1 - alt).astype(np.uint8), "alternating-inv"),
        (np.concatenate([np.ones(n // 2, dtype=np.uint8),
                         np.zeros(n - n // 2, dtype=np.uint8)]), "reverse-sorted"),
    ]


class AdversarialModel(RequestModel):
    """Deterministic cycle through the adversarial family at width ``n``:
    every bit-plane of the bit-reversal and transpose permutations, then
    the steering-cone worst-case vectors.  No randomness — the stream is
    the same regardless of seed, by design."""

    def __init__(self, n: int) -> None:
        _require_pow2(n, "AdversarialModel")
        self.n = int(n)
        family: List[Tuple[np.ndarray, str]] = []
        for name, perm in (("bitrev", bit_reversal_permutation(n)),
                           ("transpose", transpose_permutation(n))):
            for b, plane in enumerate(permutation_bit_planes(perm)):
                family.append((plane, f"{name}/p{b}"))
        family.extend(worst_case_vectors(n))
        self.family = family

    def rows(self, rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, str]]:
        k = 0
        while True:
            bits, tag = self.family[k % len(self.family)]
            yield bits.copy(), tag
            k += 1


class MixedSizeModel(RequestModel):
    """A declared mix of request widths over an inner model per width.

    ``sizes`` / ``weights`` declare the width distribution (weights
    default to uniform); ``model`` is a factory ``n -> RequestModel``
    for the per-width payload (default :class:`BernoulliModel`).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        weights: Sequence[float] = None,
        model: Callable[[int], RequestModel] = None,
    ) -> None:
        if not sizes:
            raise BuildError("MixedSizeModel needs at least one size")
        self.sizes = [int(s) for s in sizes]
        if weights is None:
            weights = [1.0] * len(self.sizes)
        if len(weights) != len(self.sizes):
            raise BuildError("weights must match sizes")
        total = float(sum(weights))
        if total <= 0:
            raise BuildError("weights must sum to > 0")
        self.weights = [float(w) / total for w in weights]
        self.model = model or BernoulliModel

    def rows(self, rng: np.random.Generator) -> Iterator[Tuple[np.ndarray, str]]:
        inner = {n: self.model(n).rows(rng) for n in self.sizes}
        probs = np.asarray(self.weights)
        while True:
            for pick in rng.choice(len(self.sizes), size=256, p=probs):
                n = self.sizes[int(pick)]
                bits, tag = next(inner[n])
                yield bits, f"{tag}/n{n}"
