"""Reusable network components (paper Section II building blocks)."""

from .comparator import adjacent_comparator_stage, half_distance_comparator_stage
from .demux import group_demultiplexer
from .mux import group_multiplexer
from .prefix_adder import (
    add_counts,
    half_adder_count,
    kogge_stone_add,
    popcount,
    ripple_add,
)
from .shuffle import (
    apply_indices,
    k_way_shuffle,
    k_way_shuffle_indices,
    k_way_unshuffle,
    k_way_unshuffle_indices,
    two_way_shuffle,
    two_way_unshuffle,
)
from .swappers import (
    four_way_swapper,
    k_swap,
    quarter_perm_from_cycles,
    two_way_swapper,
)

__all__ = [
    "add_counts",
    "adjacent_comparator_stage",
    "apply_indices",
    "four_way_swapper",
    "group_demultiplexer",
    "group_multiplexer",
    "half_adder_count",
    "half_distance_comparator_stage",
    "k_swap",
    "k_way_shuffle",
    "k_way_shuffle_indices",
    "k_way_unshuffle",
    "k_way_unshuffle_indices",
    "kogge_stone_add",
    "popcount",
    "quarter_perm_from_cycles",
    "ripple_add",
    "two_way_shuffle",
    "two_way_swapper",
    "two_way_unshuffle",
]
