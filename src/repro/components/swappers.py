"""Swapping networks (paper Section II-A/B and the k-SWAP of Section III-C).

* :func:`two_way_swapper` — Fig. 2(a): a two-way shuffle, a stage of
  ``n/2`` 2x2 switches sharing one control, and a reversed shuffle.
  Control 0 passes straight; control 1 exchanges the two halves.
  Cost ``n/2``, depth 1.
* :func:`four_way_swapper` — Fig. 2(b): a four-way shuffle, ``n/4`` 4x4
  switches sharing two select signals, and a reversed four-way shuffle.
  The set of four quarter-permutations is a parameter; the IN-SWAP and
  OUT-SWAP instantiations used by the mux-merger sorter live in
  :mod:`repro.core.mux_merger`.  Cost ``n`` (4x4 switch = four 2x2
  switches), depth 1.
* :func:`k_swap` — Section III-C: ``k`` independent ``n/k``-input two-way
  swappers, each steered by its own control bit.  Cost ``n/2``, depth 1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from .shuffle import k_way_shuffle, k_way_unshuffle, two_way_shuffle, two_way_unshuffle

#: Quarter-permutation table type: ``perms[sel][out_quarter] = in_quarter``.
QuarterPerms = Tuple[Tuple[int, int, int, int], ...]


def two_way_swapper(
    b: CircuitBuilder, wires: Sequence[int], control: int
) -> List[int]:
    """Build an n-input two-way swapper; returns the n output wires.

    When ``control`` is 1 the upper half of inputs appears on the lower
    half of outputs and vice versa; when 0 the mapping is straight.
    """
    n = len(wires)
    if n % 2:
        raise ValueError(f"two-way swapper needs an even input count, got {n}")
    shuffled = two_way_shuffle(list(wires))
    stage: List[int] = []
    for i in range(0, n, 2):
        o0, o1 = b.switch2(shuffled[i], shuffled[i + 1], control)
        stage.extend((o0, o1))
    return two_way_unshuffle(stage)


def four_way_swapper(
    b: CircuitBuilder,
    wires: Sequence[int],
    sel_hi: int,
    sel_lo: int,
    perms: QuarterPerms,
) -> List[int]:
    """Build an n-input four-way swapper; returns the n output wires.

    ``perms`` gives, for each 2-bit select value, the permutation of the
    four input quarters onto the four output quarters
    (``perms[sel][out_quarter] = in_quarter``).  All ``n/4`` internal 4x4
    switches share the two select signals and the same table.
    """
    n = len(wires)
    if n % 4:
        raise ValueError(f"four-way swapper needs n divisible by 4, got {n}")
    if len(perms) != 4:
        raise ValueError("need one quarter-permutation per 2-bit select value")
    shuffled = k_way_shuffle(list(wires), 4)
    stage: List[int] = []
    for i in range(0, n, 4):
        outs = b.switch4(shuffled[i : i + 4], sel_hi, sel_lo, perms)
        stage.extend(outs)
    return k_way_unshuffle(stage, 4)


def k_swap(
    b: CircuitBuilder, wires: Sequence[int], controls: Sequence[int]
) -> List[int]:
    """Build the k-SWAP of Section III-C; returns the n output wires.

    Input is viewed as ``k`` contiguous subsequences of ``n/k`` elements;
    subsequence ``i`` passes through its own two-way swapper steered by
    ``controls[i]``.
    """
    n, k = len(wires), len(controls)
    if k <= 0 or n % k:
        raise ValueError(f"cannot split {n} wires into {k} subsequences")
    m = n // k
    out: List[int] = []
    for i in range(k):
        out.extend(two_way_swapper(b, wires[i * m : (i + 1) * m], controls[i]))
    return out


def quarter_perm_from_cycles(*cycles: Sequence[int]) -> Tuple[int, int, int, int]:
    """Build a quarter permutation from cycle notation over quarters 1-4.

    The paper writes four-way swap patterns in cycle notation, e.g.
    ``(1)(243)`` meaning quarter 2 goes to position 4, 4 to 3, and 3
    to 2.  Returns the output-centric table
    ``perm[out_quarter0] = in_quarter0`` (0-indexed) used by
    :func:`four_way_swapper`.
    """
    dest = {q: q for q in (1, 2, 3, 4)}  # quarter -> output position
    seen = set()
    for cycle in cycles:
        for i, q in enumerate(cycle):
            if q not in dest or q in seen:
                raise ValueError(f"cycles {cycles!r} do not form a permutation")
            seen.add(q)
            dest[q] = cycle[(i + 1) % len(cycle)]
    if sorted(dest.values()) != [1, 2, 3, 4]:
        raise ValueError(f"cycles {cycles!r} do not form a permutation")
    perm = [0, 0, 0, 0]
    for q, pos in dest.items():
        perm[pos - 1] = q - 1
    return tuple(perm)
