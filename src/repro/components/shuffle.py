"""Shuffle wirings.

Shuffles are pure wiring permutations — they cost nothing and add no
depth (Section II counts only switching elements).  They are therefore
implemented as index permutations over Python lists of wire ids, usable
both on wires during construction and on NumPy arrays during behavioral
simulation.

Conventions follow the paper's figures: a *two-way shuffle* interleaves
the two halves of its inputs (output ``2i`` reads input ``i``, output
``2i+1`` reads input ``n/2 + i``); a *k-way shuffle* interleaves ``k``
contiguous blocks.  The "reversed" shuffle in the figures is the inverse
permutation (the unshuffle).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _check(n: int, k: int) -> None:
    if k <= 0 or n % k:
        raise ValueError(f"cannot {k}-way shuffle {n} items")


def k_way_shuffle_indices(n: int, k: int) -> List[int]:
    """Index map for a k-way shuffle: ``out[pos] = in[idx[pos]]``.

    Output position ``k*i + j`` reads input ``j*(n/k) + i`` — element
    ``i`` of block ``j``.
    """
    _check(n, k)
    m = n // k
    return [j * m + i for i in range(m) for j in range(k)]


def k_way_unshuffle_indices(n: int, k: int) -> List[int]:
    """Inverse of :func:`k_way_shuffle_indices`."""
    idx = k_way_shuffle_indices(n, k)
    inv = [0] * n
    for pos, src in enumerate(idx):
        inv[src] = pos
    return inv


def apply_indices(items: Sequence[T], indices: Sequence[int]) -> List[T]:
    """Permute ``items`` so output ``pos`` holds ``items[indices[pos]]``."""
    if len(items) != len(indices):
        raise ValueError("length mismatch")
    return [items[i] for i in indices]


def two_way_shuffle(items: Sequence[T]) -> List[T]:
    """Perfect shuffle: interleave the two halves."""
    return apply_indices(items, k_way_shuffle_indices(len(items), 2))


def two_way_unshuffle(items: Sequence[T]) -> List[T]:
    """Inverse perfect shuffle."""
    return apply_indices(items, k_way_unshuffle_indices(len(items), 2))


def k_way_shuffle(items: Sequence[T], k: int) -> List[T]:
    """Interleave ``k`` contiguous blocks of ``items``."""
    return apply_indices(items, k_way_shuffle_indices(len(items), k))


def k_way_unshuffle(items: Sequence[T], k: int) -> List[T]:
    """Inverse of :func:`k_way_shuffle`."""
    return apply_indices(items, k_way_unshuffle_indices(len(items), k))
