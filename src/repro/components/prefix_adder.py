"""Gate-level adders and population counters.

The prefix binary sorter (Network 1) steers its patch-up network with a
"simple lg n-bit prefix adder that gives the count of the number of 1's
in the entire input sequence ... by recursively adding the numbers of 1's
in the two half-size input sequences" (Section III-A).  The paper charges
``3 lg n`` cost and ``2 lg lg n`` depth per adder, citing carry-lookahead
constructions.

This module provides the pieces at gate level so measured costs are real:

* :func:`half_adder_count` — counts the 1's among two bits (cost 2).
* :func:`kogge_stone_add` — parallel-prefix (carry-lookahead) adder with
  ``O(lg m)`` depth, the "prefix adder" proper.
* :func:`ripple_add` — the ``O(m)``-depth ablation baseline.
* :func:`popcount` — a full adder-tree population counter used by
  ablations and the Muller–Preparata baseline.

All multi-bit numbers are wire lists, least-significant bit first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder


def half_adder_count(b: CircuitBuilder, x: int, y: int) -> List[int]:
    """2-bit count of the ones among two input bits (LSB first)."""
    return [b.xor(x, y), b.and_(x, y)]


def _full_add_bit(
    b: CircuitBuilder, x: int, y: int, c: int
) -> Tuple[int, int]:
    """One full-adder cell; returns ``(sum, carry_out)`` (5 gates)."""
    p = b.xor(x, y)
    s = b.xor(p, c)
    carry = b.or_(b.and_(x, y), b.and_(p, c))
    return s, carry


def ripple_add(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]
) -> List[int]:
    """Ripple-carry addition of two equal-width numbers (LSB first).

    Returns ``len(xs) + 1`` sum bits.  Cost ``O(m)``, depth ``O(m)`` —
    used only as an ablation against the prefix adder.
    """
    if len(xs) != len(ys):
        raise ValueError("ripple_add requires equal widths")
    out: List[int] = []
    carry = None
    for x, y in zip(xs, ys):
        if carry is None:
            out.append(b.xor(x, y))
            carry = b.and_(x, y)
        else:
            s, carry = _full_add_bit(b, x, y, carry)
            out.append(s)
    out.append(carry if carry is not None else b.const(0))
    return out


def kogge_stone_add(
    b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]
) -> List[int]:
    """Parallel-prefix (Kogge–Stone) addition of two equal-width numbers.

    Returns ``m + 1`` sum bits (LSB first).  Depth ``O(lg m)``, cost
    ``O(m lg m)`` gates — this is the "prefix adder" of Section III-A.
    """
    m = len(xs)
    if m != len(ys):
        raise ValueError("kogge_stone_add requires equal widths")
    if m == 0:
        return [b.const(0)]
    if m == 1:
        return half_adder_count(b, xs[0], ys[0])
    propagate = [b.xor(x, y) for x, y in zip(xs, ys)]
    generate = [b.and_(x, y) for x, y in zip(xs, ys)]
    # (G, P) prefix scan with span doubling: after the scan, G[i] is the
    # carry out of bit positions 0..i.
    G = list(generate)
    P = list(propagate)
    d = 1
    while d < m:
        newG = list(G)
        newP = list(P)
        for i in range(d, m):
            newG[i] = b.or_(G[i], b.and_(P[i], G[i - d]))
            newP[i] = b.and_(P[i], P[i - d])
        G, P = newG, newP
        d <<= 1
    sums = [propagate[0]]
    for i in range(1, m):
        sums.append(b.xor(propagate[i], G[i - 1]))
    sums.append(G[m - 1])
    return sums


def add_counts(
    b: CircuitBuilder,
    xs: Sequence[int],
    ys: Sequence[int],
    adder: str = "prefix",
) -> List[int]:
    """Add two counts of possibly different widths (LSB first)."""
    xs, ys = list(xs), list(ys)
    width = max(len(xs), len(ys))
    while len(xs) < width:
        xs.append(b.const(0))
    while len(ys) < width:
        ys.append(b.const(0))
    if adder == "prefix":
        return kogge_stone_add(b, xs, ys)
    if adder == "ripple":
        return ripple_add(b, xs, ys)
    raise ValueError(f"unknown adder {adder!r}")


def prefix_sum_scan(
    b: CircuitBuilder, bits: Sequence[int], adder: str = "prefix"
) -> List[List[int]]:
    """Inclusive prefix popcount: out[i] = number of 1's in bits[0..i].

    Ladner–Fischer over :func:`add_counts`: pair adjacent items, scan the
    pair sums recursively, then fix up even positions — ``O(n)`` adder
    nodes of width ``<= lg n``, total ``O(n lg n)`` gates with ``O(lg n)``
    adder levels.  Each output is a bit vector (LSB first); widths grow
    toward ``lg n + 1``.  This is the rank machinery behind the stable
    binary splitter (:mod:`repro.networks.word_sorter`).
    """
    m = len(bits)
    if m == 0:
        return []
    if m == 1:
        return [[bits[0]]]
    max_width = m.bit_length()  # counts never exceed m
    pairs = [
        half_adder_count(b, bits[i], bits[i + 1]) for i in range(0, m - 1, 2)
    ]
    sub = _scan_counts(b, pairs, adder, max_width)
    out: List[List[int]] = []
    for i in range(m):
        if i % 2 == 1:
            out.append(sub[i // 2])
        elif i == 0:
            out.append([bits[0]])
        else:
            s = add_counts(b, sub[i // 2 - 1], [bits[i]], adder=adder)
            out.append(s[:max_width])
    return out


def _scan_counts(
    b: CircuitBuilder, items: List[List[int]], adder: str, max_width: int
) -> List[List[int]]:
    """Inclusive scan over multi-bit counts with :func:`add_counts`.

    Sums are truncated to ``max_width`` bits — safe because the true
    counts fit, and essential to keep the scan at ``O(n)`` adder bits
    per level instead of letting carry bits accrete one per level.
    """
    m = len(items)
    if m == 1:
        return [items[0]]
    pairs = [
        add_counts(b, items[i], items[i + 1], adder=adder)[:max_width]
        for i in range(0, m - 1, 2)
    ]
    sub = _scan_counts(b, pairs, adder, max_width)
    out: List[List[int]] = []
    for i in range(m):
        if i % 2 == 1:
            out.append(sub[i // 2])
        elif i == 0:
            out.append(items[0])
        else:
            s = add_counts(b, sub[i // 2 - 1], items[i], adder=adder)
            out.append(s[:max_width])
    return out


def prefix_or_scan(b: CircuitBuilder, bits: Sequence[int]) -> List[int]:
    """Inclusive prefix OR: ``out[i] = OR(bits[0..i])``.

    Ladner–Fischer-style recursive scan: cost ``< 2m`` gates, depth
    ``<= 2 lg m`` — the linear-cost building block behind thermometer
    decoding in the Muller–Preparata baseline.
    """
    m = len(bits)
    if m == 0:
        return []
    if m == 1:
        return [bits[0]]
    pairs = [b.or_(bits[i], bits[i + 1]) for i in range(0, m - 1, 2)]
    sub = prefix_or_scan(b, pairs)
    out: List[int] = []
    for i in range(m):
        if i % 2 == 1:
            out.append(sub[i // 2])
        elif i == 0:
            out.append(bits[0])
        else:
            out.append(b.or_(sub[i // 2 - 1], bits[i]))
    return out


def suffix_or_scan(b: CircuitBuilder, bits: Sequence[int]) -> List[int]:
    """Inclusive suffix OR: ``out[i] = OR(bits[i..])``."""
    return list(reversed(prefix_or_scan(b, list(reversed(bits)))))


def popcount(
    b: CircuitBuilder, wires: Sequence[int], adder: str = "prefix"
) -> List[int]:
    """Count the 1's among ``wires``; returns the count LSB-first.

    Built as a balanced tree of adders: ``n/2`` half-adders at the leaves,
    then ``lg n - 1`` levels of progressively wider adders.  Total cost
    ``O(n)`` gates with ripple adders at inner levels, ``O(n lg lg n)``
    with prefix adders (depth ``O(lg n lg lg n)`` vs ``O(lg n)``... the
    classic counter trade; both are exposed for measurement).
    """
    items = [[w] for w in wires]
    if not items:
        return [b.const(0)]
    while len(items) > 1:
        nxt: List[List[int]] = []
        for i in range(0, len(items) - 1, 2):
            a, c = items[i], items[i + 1]
            if len(a) == 1 and len(c) == 1:
                nxt.append(half_adder_count(b, a[0], c[0]))
            else:
                nxt.append(add_counts(b, a, c, adder=adder))
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]
