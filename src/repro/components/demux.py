"""(k,n)-demultiplexers (paper Section II-D, Fig. 3(b)).

A (k,n)-demultiplexer connects its ``k`` inputs to one of ``n/k`` groups
of outputs according to ``lg(n/k)`` select bits; all other outputs are 0.
It is formed by coupling ``k`` (1,n/k)-demultiplexer trees, so its cost
is ``k * (n/k - 1) = n - k`` (the paper rounds to ``n``) and its depth is
``lg(n/k)``.

Output indexing mirrors :mod:`repro.components.mux`: output ``o`` belongs
to group ``o // k`` at position ``o % k``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuits.builder import CircuitBuilder


def group_demultiplexer(
    b: CircuitBuilder, wires: Sequence[int], groups: int, sel_bits: Sequence[int]
) -> List[int]:
    """Build a (k,n)-demultiplexer; returns its ``k * groups`` output wires.

    ``wires`` are the ``k`` inputs; ``sel_bits`` (most-significant first)
    picks the destination group.  Output ``g*k + j`` carries input ``j``
    when the select value is ``g`` and 0 otherwise.
    """
    k = len(wires)
    if groups <= 0 or 1 << len(sel_bits) != groups:
        raise ValueError(
            f"(k,n)-demultiplexer with {groups} groups needs lg({groups}) "
            f"select bits, got {len(sel_bits)}"
        )
    # per-input demux trees: tree[j][g] = input j's copy for group g
    trees: List[List[int]] = []
    for j in range(k):
        if groups == 1:
            trees.append([wires[j]])
        else:
            trees.append(b.demux_tree(wires[j], sel_bits))
    outs: List[int] = []
    for g in range(groups):
        for j in range(k):
            outs.append(trees[j][g])
    return outs
