"""Comparator-stage helpers shared by sorter constructions.

A comparator stage applies 1-bit ascending comparators to disjoint wire
pairs.  The two pairings that recur throughout the paper:

* adjacent pairing ``(0,1), (2,3), ...`` — the first stage of Fig. 4(b),
  producing ``n/2`` sorted two-element subsequences;
* half-distance pairing ``(i, i + n/2)`` — the first stage of a balanced
  merging block after the shuffle has been undone (equivalently, adjacent
  pairs after a two-way shuffle).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from .shuffle import two_way_shuffle, two_way_unshuffle


def adjacent_comparator_stage(
    b: CircuitBuilder, wires: Sequence[int]
) -> List[int]:
    """Comparators on pairs ``(2i, 2i+1)``; min stays on the even index."""
    n = len(wires)
    if n % 2:
        raise ValueError(f"comparator stage needs an even input count, got {n}")
    out: List[int] = []
    for i in range(0, n, 2):
        lo, hi = b.comparator(wires[i], wires[i + 1])
        out.extend((lo, hi))
    return out


def half_distance_comparator_stage(
    b: CircuitBuilder, wires: Sequence[int]
) -> List[int]:
    """Comparators on pairs ``(i, i + n/2)``; min stays in the upper half.

    This is the stage a balanced merging block applies to a shuffled
    concatenation of two sorted halves (Theorem 2's "first stage of n/2
    comparators").
    """
    n = len(wires)
    if n % 2:
        raise ValueError(f"comparator stage needs an even input count, got {n}")
    shuffled = two_way_shuffle(list(wires))
    staged = adjacent_comparator_stage(b, shuffled)
    return two_way_unshuffle(staged)
