"""(n,k)-multiplexers (paper Section II-C, Fig. 3(a)).

An (n,k)-multiplexer selects one of ``n/k`` groups of ``k`` inputs and
connects it to its ``k`` outputs, according to ``lg(n/k)`` select bits.
It is formed by coupling ``k`` (n/k,1)-multiplexer trees, one per output
position, so its cost is ``k * (n/k - 1) = n - k`` (the paper rounds this
to ``n``) and its depth is ``lg(n/k)``.

Input indexing follows Fig. 3(a): input ``i`` belongs to group
``i // k`` (the group id is the leftmost ``lg(n/k)`` bits of the input's
binary code) and occupies position ``i % k`` within the group.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuits.builder import CircuitBuilder


def group_multiplexer(
    b: CircuitBuilder, wires: Sequence[int], k: int, sel_bits: Sequence[int]
) -> List[int]:
    """Build an (n,k)-multiplexer; returns its ``k`` output wires.

    ``sel_bits`` is the group select, most-significant bit first; group
    ``g`` (inputs ``g*k .. g*k+k-1``) is routed to the outputs when the
    select value is ``g``.
    """
    n = len(wires)
    if k <= 0 or n % k:
        raise ValueError(f"(n,k)-multiplexer needs k | n, got n={n} k={k}")
    groups = n // k
    if 1 << len(sel_bits) != groups:
        raise ValueError(
            f"(n,k)-multiplexer with {groups} groups needs lg({groups}) "
            f"select bits, got {len(sel_bits)}"
        )
    outs: List[int] = []
    for j in range(k):
        candidates = [wires[g * k + j] for g in range(groups)]
        if groups == 1:
            outs.append(candidates[0])
        else:
            outs.append(b.mux_tree(candidates, sel_bits))
    return outs
