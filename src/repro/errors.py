"""Structured exception hierarchy for the whole reproduction.

Every error the package raises deliberately derives from
:class:`ReproError`, so callers embedding the sorters in a larger system
can catch one base class at the service boundary.  The two historical
families — bad construction parameters and bad simulation inputs — kept
raising plain :class:`ValueError` for years of tests and downstream
code, so :class:`BuildError` and :class:`SimulationError` *also* inherit
from :class:`ValueError`: ``except ValueError`` keeps working everywhere
while new code can discriminate precisely.

The two runtime-supervision errors are new with :mod:`repro.runtime`:

* :class:`CheckerAlarm` — a gate-level concurrent checker
  (:mod:`repro.circuits.checkers`) raised an alarm wire during a
  supervised sort: the hardware *detected* its own corruption online.
* :class:`DeadlineExceeded` — a supervised call (or a guarded campaign
  item, see :func:`repro.runtime.guard.run_guarded`) ran past its time
  budget.  Inherits :class:`TimeoutError` so generic timeout handling
  composes.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "BuildError",
    "CheckerAlarm",
    "DeadlineExceeded",
    "ReproError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by :mod:`repro`."""


class BuildError(ReproError, ValueError):
    """A network/netlist/sequence construction was asked for impossible
    or inconsistent parameters (bad ``n``, unknown network name, invalid
    block split, ...).  Subclasses :class:`ValueError` for backwards
    compatibility."""


class SimulationError(ReproError, ValueError):
    """A simulator was handed inputs it cannot evaluate (wrong arity,
    non-binary values, mismatched payload shapes, ...).  Subclasses
    :class:`ValueError` for backwards compatibility."""


class CheckerAlarm(ReproError):
    """One or more concurrent error-detection alarms fired.

    ``alarms`` names the checkers that fired (e.g. ``("sortedness",)``),
    ``rows`` optionally carries the batch rows on which they fired.
    """

    def __init__(
        self,
        alarms: Sequence[str],
        rows: Optional[Sequence[int]] = None,
        message: Optional[str] = None,
    ) -> None:
        self.alarms = tuple(alarms)
        self.rows = None if rows is None else tuple(int(r) for r in rows)
        if message is None:
            message = f"checker alarm(s) fired: {', '.join(self.alarms) or '?'}"
            if self.rows is not None:
                message += f" on {len(self.rows)} row(s)"
        super().__init__(message)


class DeadlineExceeded(ReproError, TimeoutError):
    """A supervised or guarded operation exceeded its time budget."""

    def __init__(self, budget_s: float, what: str = "operation") -> None:
        self.budget_s = float(budget_s)
        self.what = what
        super().__init__(f"{what} exceeded deadline of {budget_s:.6g}s")
