"""Crash-safe file I/O helpers.

Long-running tools (sweeps, fault campaigns) checkpoint partial results
to disk; a plain ``open(...).write(...)`` interrupted by a crash or a
SIGKILL can leave a truncated file that poisons the next resume.  These
helpers follow the standard atomic-replace protocol:

1. write the full payload to a temporary file in the *same directory*
   (``os.replace`` is only atomic within one filesystem);
2. flush and ``fsync`` so the bytes are durable before the rename;
3. ``os.replace`` onto the destination — readers see either the old
   complete file or the new complete file, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_bytes(path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    Binary twin of :func:`atomic_write_text`; used by the JIT disk cache
    (:mod:`repro.circuits.jit`), whose entries embed marshalled code
    objects and must never be observable half-written.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path, payload: Any, indent: int = 2) -> None:
    """Atomically replace ``path`` with ``payload`` serialized as JSON."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
