"""Batcher's odd-even merge and bitonic sorting networks (baselines).

These are the classical *nonadaptive* comparator networks the paper
improves upon (Fig. 4(a) shows the 16-input odd-even merge sorter).  Both
are represented as explicit comparator schedules — lists of stages, each
stage a list of ``(i, j)`` pairs with ``i < j`` — from which netlists,
behavioral sorts, and exact cost/depth counts all derive.

Known exact counts for ``n = 2^p`` (verified by tests against the built
networks):

* odd-even merge sorter: ``(p^2 - p + 4) * 2^(p-2) - 1`` comparators,
  depth ``p (p + 1) / 2``;
* bitonic sorter: ``p (p + 1) * 2^(p-2)`` comparators, same depth.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist

Stage = List[Tuple[int, int]]


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    return n.bit_length() - 1


# -- comparator schedules ------------------------------------------------------


def odd_even_merge_schedule(n: int) -> List[Stage]:
    """Comparator stages of Batcher's n-input odd-even merge sorter."""
    _lg(n)

    def sort(lo: int, m: int) -> List[Stage]:
        if m <= 1:
            return []
        half = m // 2
        upper = sort(lo, half)
        lower = sort(lo + half, half)
        head = [
            a + b for a, b in zip(_pad(upper, lower), _pad(lower, upper))
        ]
        return head + merge(lo, m, 1)

    def merge(lo: int, m: int, step: int) -> List[Stage]:
        jump = step * 2
        if jump >= m:
            return [[(lo, lo + step)]]
        evens = merge(lo, m, jump)
        odds = merge(lo + step, m, jump)
        head = [a + b for a, b in zip(_pad(evens, odds), _pad(odds, evens))]
        tail: Stage = [
            (i, i + step)
            for i in range(lo + step, lo + m - step, jump)
        ]
        return head + [tail]

    def _pad(a: List[Stage], b: List[Stage]) -> List[Stage]:
        return a + [[] for _ in range(len(b) - len(a))]

    return [s for s in sort(0, n) if s]


def bitonic_schedule(n: int) -> List[Stage]:
    """Comparator stages of Batcher's n-input bitonic sorter.

    Uses the standard ascending formulation where every comparator is
    ``(min up, max down)`` — pairs ``(i, i ^ j)`` compared when the
    containing block is ascending, reversed otherwise, normalized to
    ``i < j`` order with direction folded in.  We emit only ascending
    comparators by using the "bitonic merge on i & k" form.
    """
    _lg(n)
    stages: List[Stage] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage: Stage = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if i & k:
                        stage.append((partner, i))  # descending block
                    else:
                        stage.append((i, partner))
                    # normalize below
            stage = [(min(a, b), max(a, b), a > b) for a, b in stage]
            stages.append(stage)  # type: ignore[arg-type]
            j //= 2
        k *= 2
    # Each entry is (lo_index, hi_index, reversed?) where reversed means
    # max goes to lo_index.
    return stages  # type: ignore[return-value]


# -- netlists ------------------------------------------------------------------


def build_from_schedule(n: int, stages: Sequence[Stage], name: str) -> Netlist:
    """Build a comparator netlist from a schedule of (i, j) stages."""
    b = CircuitBuilder(name)
    wires = b.add_inputs(n)
    current = list(wires)
    for stage in stages:
        for pair in stage:
            if len(pair) == 3:  # (lo, hi, reversed)
                i, j, rev = pair  # type: ignore[misc]
            else:
                i, j = pair  # type: ignore[misc]
                rev = False
            lo, hi = b.comparator(current[i], current[j])
            if rev:
                current[i], current[j] = hi, lo
            else:
                current[i], current[j] = lo, hi
    return b.build(current)


def build_odd_even_merge_sorter(n: int) -> Netlist:
    """Batcher odd-even merge sorter netlist (Fig. 4(a) for n=16)."""
    return build_from_schedule(n, odd_even_merge_schedule(n), f"batcher-oem-{n}")


def build_bitonic_sorter(n: int) -> Netlist:
    """Batcher bitonic sorter netlist."""
    return build_from_schedule(n, bitonic_schedule(n), f"batcher-bitonic-{n}")


# -- exact formulas -------------------------------------------------------------


def oem_comparator_count(n: int) -> int:
    """Exact comparator count of the odd-even merge sorter."""
    p = _lg(n)
    if p == 0:
        return 0
    return (p * p - p + 4) * (1 << (p - 2)) - 1 if p >= 2 else 1


def bitonic_comparator_count(n: int) -> int:
    """Exact comparator count of the bitonic sorter."""
    p = _lg(n)
    if p <= 1:
        return p  # 0 or 1 comparators
    return p * (p + 1) * (1 << (p - 2))


def batcher_depth(n: int) -> int:
    """Depth of either Batcher sorter: ``lg n (lg n + 1) / 2``."""
    p = _lg(n)
    return p * (p + 1) // 2


# -- behavioral ----------------------------------------------------------------


def apply_schedule(values, stages: Sequence[Stage]) -> np.ndarray:
    """Run a comparator schedule on arbitrary comparable values (oracle).

    Works on any dtype; used to check the zero-one principle claims and
    as a general-purpose sorter oracle.
    """
    out = np.array(values).copy()
    for stage in stages:
        for pair in stage:
            if len(pair) == 3:
                i, j, rev = pair  # type: ignore[misc]
            else:
                i, j = pair  # type: ignore[misc]
                rev = False
            a, c = out[i], out[j]
            if rev:
                out[i], out[j] = max(a, c), min(a, c)
            else:
                out[i], out[j] = min(a, c), max(a, c)
    return out
