"""AKS sorting network — cost model (substitution, see DESIGN.md).

The paper never constructs AKS; it argues (abstract, Sections I and V)
that although AKS achieves ``O(lg n)`` depth and ``O(n lg n)`` cost
asymptotically, "the constants hidden in these complexities are so large
that our complexities outperform those of the AKS sorting network until
n becomes extremely large", and that its own constants are "very small
(<= 17)".

We therefore model AKS by its published constants rather than building
it.  Paterson's simplification (Algorithmica 1990, reference [20]) gives
depth approximately ``c * lg n`` with ``c ~ 6100``; the original
Ajtai–Komlós–Szemerédi constant is larger still (often quoted in the
thousands to millions depending on the analysis).  The model exposes the
constant as a parameter so the crossover analysis
(:mod:`repro.analysis.crossover`) can sweep it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Depth constant of Paterson's variant of AKS (reference [20]).
PATERSON_DEPTH_CONSTANT = 6100.0


@dataclass(frozen=True)
class AKSModel:
    """Parametric cost/depth model of an AKS-family sorting network."""

    depth_constant: float = PATERSON_DEPTH_CONSTANT

    def depth(self, n: float) -> float:
        """Bit-level depth ``c * lg n``."""
        return self.depth_constant * math.log2(n)

    def cost(self, n: float) -> float:
        """Bit-level cost: ``(n/2)`` comparators per level times depth."""
        return (n / 2.0) * self.depth(n)

    def sorting_time(self, n: float) -> float:
        """Sorting time equals depth for a combinational network."""
        return self.depth(n)
