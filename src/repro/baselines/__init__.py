"""Baseline networks and cost models the paper compares against."""

from .aks import AKSModel, PATERSON_DEPTH_CONSTANT
from .balanced import (
    balanced_sort_behavioral,
    balanced_sorter_cost,
    build_balanced_sorter,
)
from .batcher import (
    apply_schedule,
    batcher_depth,
    bitonic_comparator_count,
    bitonic_schedule,
    build_bitonic_sorter,
    build_from_schedule,
    build_odd_even_merge_sorter,
    odd_even_merge_schedule,
    oem_comparator_count,
)
from .columnsort import (
    ColumnsortReport,
    TimeMultiplexedColumnsort,
    build_columnsort_network,
    choose_dims,
    columnsort,
    columnsort_cost_model,
    leighton_valid,
)
from .costmodels import SORTER_MODELS, TABLE2_ROWS, ComplexityModel, Table2Row
from .muller_preparata import build_muller_preparata_sorter, csa_popcount

__all__ = [
    "AKSModel",
    "ColumnsortReport",
    "ComplexityModel",
    "PATERSON_DEPTH_CONSTANT",
    "SORTER_MODELS",
    "TABLE2_ROWS",
    "Table2Row",
    "TimeMultiplexedColumnsort",
    "apply_schedule",
    "balanced_sort_behavioral",
    "balanced_sorter_cost",
    "batcher_depth",
    "bitonic_comparator_count",
    "bitonic_schedule",
    "build_balanced_sorter",
    "build_bitonic_sorter",
    "build_columnsort_network",
    "build_from_schedule",
    "build_muller_preparata_sorter",
    "build_odd_even_merge_sorter",
    "choose_dims",
    "columnsort",
    "columnsort_cost_model",
    "csa_popcount",
    "leighton_valid",
    "odd_even_merge_schedule",
    "oem_comparator_count",
]
