"""Closed-form complexity models for every network the paper discusses.

Two registries:

* :data:`SORTER_MODELS` — the paper's binary-sorter landscape
  (Sections I, III): claimed bit-level cost, depth, and sorting time of
  each binary sorting network, as callables of ``n`` (and ``k`` where
  applicable).  Used by the analysis package to check measured netlists
  against claims and to reproduce the crossover arguments.
* :data:`TABLE2_ROWS` — Table II, "Complexities of various permutation
  network designs in bit level", encoded exactly as the paper presents
  it (asymptotic expressions), plus evaluable representative functions
  so the table can be regenerated with numbers.

Where the paper states only an order expression the representative
callable uses constant 1; where it states a constant (e.g. ``3 n lg n``
for Network 1, ``4 n lg n`` for Network 2, eq. 17/19 for Network 3) the
callable uses the paper's constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

Fn = Callable[[float], float]


def _lg(n: float) -> float:
    return math.log2(n)


@dataclass(frozen=True)
class ComplexityModel:
    """Claimed complexity of one network design."""

    name: str
    #: human-readable asymptotic expressions, as printed in the paper
    cost_expr: str
    depth_expr: str
    time_expr: str
    #: representative numeric forms (paper constants where given)
    cost: Fn
    depth: Fn
    time: Fn
    source: str = ""


SORTER_MODELS: Dict[str, ComplexityModel] = {
    "prefix": ComplexityModel(
        name="Network 1 (prefix binary sorter)",
        cost_expr="3 n lg n + O(lg^2 n)",
        depth_expr="3 lg^2 n + 2 lg n lg lg n",
        time_expr="= depth",
        cost=lambda n: 3 * n * _lg(n),
        depth=lambda n: 3 * _lg(n) ** 2 + 2 * _lg(n) * _lg(max(_lg(n), 2)),
        time=lambda n: 3 * _lg(n) ** 2 + 2 * _lg(n) * _lg(max(_lg(n), 2)),
        source="Section III-A",
    ),
    "mux_merger": ComplexityModel(
        name="Network 2 (mux-merger binary sorter)",
        cost_expr="4 n lg n",
        depth_expr="O(lg^2 n)",
        time_expr="= depth",
        cost=lambda n: 4 * n * _lg(n),
        depth=lambda n: _lg(n) * (_lg(n) + 1),  # sum of 2 lg m per level
        time=lambda n: _lg(n) * (_lg(n) + 1),
        source="Section III-B",
    ),
    "fish": ComplexityModel(
        name="Network 3 (fish binary sorter, k = lg n)",
        cost_expr="17n + 5 lg^2 n lg lg n + 4 lg n lg lg n = O(n)",
        depth_expr="O(lg^2 n)",
        time_expr="O(lg^3 n) unpipelined / O(lg^2 n) pipelined",
        cost=lambda n: 17 * n
        + 5 * _lg(n) ** 2 * _lg(max(_lg(n), 2))
        + 4 * _lg(n) * _lg(max(_lg(n), 2)),
        depth=lambda n: 2 * _lg(n) + 2 * _lg(n) ** 2 + _lg(n) + 2 * _lg(n) ** 2,
        time=lambda n: _lg(n) ** 3,
        source="Section III-C, eqs. 17-24",
    ),
    "batcher_oem": ComplexityModel(
        name="Batcher odd-even merge (binary)",
        cost_expr="(lg^2 n - lg n + 4) n/4 - 1 = O(n lg^2 n)",
        depth_expr="lg n (lg n + 1) / 2",
        time_expr="= depth",
        cost=lambda n: (_lg(n) ** 2 - _lg(n) + 4) * n / 4 - 1,
        depth=lambda n: _lg(n) * (_lg(n) + 1) / 2,
        time=lambda n: _lg(n) * (_lg(n) + 1) / 2,
        source="Batcher 1968 (reference [3])",
    ),
    "balanced": ComplexityModel(
        name="Balanced sorting network (Dowd et al.)",
        cost_expr="(n/2) lg^2 n",
        depth_expr="lg^2 n",
        time_expr="= depth",
        cost=lambda n: n / 2 * _lg(n) ** 2,
        depth=lambda n: _lg(n) ** 2,
        time=lambda n: _lg(n) ** 2,
        source="references [8], [9]",
    ),
    "columnsort_tm": ComplexityModel(
        name="Time-multiplexed columnsort (Batcher sub-sorters)",
        cost_expr="O(n)",
        depth_expr="O(lg^2 n)",
        time_expr="O(lg^4 n) unpipelined / O(lg^2 n) pipelined",
        cost=lambda n: n,
        depth=lambda n: _lg(n) ** 2,
        time=lambda n: _lg(n) ** 4,
        source="Leighton 1985 (reference [14]), Section III-C discussion",
    ),
    "aks": ComplexityModel(
        name="AKS sorting network (Paterson constants)",
        cost_expr="O(n lg n), huge constants",
        depth_expr="~6100 lg n",
        time_expr="= depth",
        cost=lambda n: 6100.0 * _lg(n) * n / 2,
        depth=lambda n: 6100.0 * _lg(n),
        time=lambda n: 6100.0 * _lg(n),
        source="references [1], [20]",
    ),
    "muller_preparata": ComplexityModel(
        name="Muller-Preparata Boolean sorting circuit (non-carrying)",
        cost_expr="O(n)",
        depth_expr="O(lg n)",
        time_expr="= depth",
        cost=lambda n: 9 * n,
        depth=lambda n: 2 * _lg(n),
        time=lambda n: 2 * _lg(n),
        source="references [17], [26]",
    ),
}


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II (permutation-network comparison)."""

    construction: str
    cost_expr: str
    depth_expr: str
    time_expr: str
    cost: Fn
    time: Fn
    in_repo: str  # which module realizes/measures it, "" if model-only


TABLE2_ROWS: Dict[str, Table2Row] = {
    "benes": Table2Row(
        construction="Benes network [4] (+ O(n lg n)-processor routing [18])",
        cost_expr="O(n lg^2 n)",
        depth_expr="O(lg n)",
        time_expr="O(lg^4 n / lg lg n)",
        cost=lambda n: n * _lg(n) ** 2,
        time=lambda n: _lg(n) ** 4 / _lg(max(_lg(n), 2)),
        in_repo="repro.networks.benes",
    ),
    "batcher": Table2Row(
        construction="Batcher sorting networks [3] (word-level comparators)",
        cost_expr="O(n lg^3 n)",
        depth_expr="O(lg^3 n)",
        time_expr="O(lg^3 n)",
        cost=lambda n: n * _lg(n) ** 3,
        time=lambda n: _lg(n) ** 3,
        in_repo="repro.baselines.batcher",
    ),
    "koppelman_oruc": Table2Row(
        construction="Koppelman-Oruc self-routing network [13]",
        cost_expr="O(n lg^3 n)",
        depth_expr="O(lg^3 n)",
        time_expr="O(lg^3 n)",
        cost=lambda n: n * _lg(n) ** 3,
        time=lambda n: _lg(n) ** 3,
        in_repo="",
    ),
    "jan_oruc": Table2Row(
        construction="Jan-Oruc radix permuter [11]",
        cost_expr="O(n lg^2 n)",
        depth_expr="O(lg^2 n lg lg n)",
        time_expr="O(lg^2 n lg lg n)",
        cost=lambda n: n * _lg(n) ** 2,
        time=lambda n: _lg(n) ** 2 * _lg(max(_lg(n), 2)),
        in_repo="",
    ),
    "this_paper": Table2Row(
        construction="This paper (radix permuter over fish binary sorters)",
        cost_expr="O(n lg n)",
        depth_expr="O(lg^3 n)",
        time_expr="O(lg^3 n)",
        cost=lambda n: n * _lg(n),
        time=lambda n: _lg(n) ** 3,
        in_repo="repro.networks.permutation",
    ),
}
