"""Leighton's columnsort and its time-multiplexed network version.

Columnsort (Leighton 1985, [14] in the paper) sorts ``n = r*s`` values
arranged as an ``r x s`` matrix (column-major order) in eight steps, four
of which sort columns; validity needs ``s | r`` and ``r >= 2 (s-1)^2``.

The paper's Section III-C compares the fish sorter against the
*time-multiplexed network version*: every column-sorting step is realized
by multiplexing columns through one ``r``-input Batcher sorter, giving an
``O(n)``-cost binary sorting network whose sorting time is ``O(lg^4 n)``
unpipelined and ``O(lg^2 n)`` pipelined — but pipelining requires the
data to be "separately pipelined through each of the four sorters",
whereas the fish sorter pipelines through a *single* ``n/lg n``-input
sorter.  :class:`TimeMultiplexedColumnsort` reproduces that design with
a real Batcher netlist doing every column pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate
from .batcher import batcher_depth, build_odd_even_merge_sorter


def leighton_valid(r: int, s: int) -> bool:
    """Columnsort's validity condition: ``s | r`` and ``r >= 2(s-1)^2``."""
    return s >= 1 and r >= 1 and r % s == 0 and r >= 2 * (s - 1) ** 2


def _check_dims(n: int, r: int, s: int) -> None:
    if r * s != n:
        raise ValueError(f"r*s = {r * s} != n = {n}")
    if not leighton_valid(r, s):
        raise ValueError(
            f"columnsort needs s | r and r >= 2(s-1)^2; got r={r}, s={s}"
        )


def columnsort(values, r: int, s: int) -> np.ndarray:
    """Leighton's 8-step columnsort; returns the sorted flat array.

    ``values`` is read and returned in column-major order (the order in
    which columnsort defines sortedness).  Works on any comparable dtype.
    """
    flat = np.asarray(values).ravel()
    _check_dims(flat.size, r, s)
    # column-major matrix: mat[:, j] is column j
    mat = flat.reshape(s, r).T.astype(flat.dtype)

    def sort_columns(m: np.ndarray) -> np.ndarray:
        return np.sort(m, axis=0)

    mat = sort_columns(mat)                      # step 1
    mat = mat.T.reshape(r, s)                    # step 2: transpose & reshape
    mat = sort_columns(mat)                      # step 3
    mat = mat.reshape(s, r).T                    # step 4: inverse of step 2
    mat = sort_columns(mat)                      # step 5
    half = r // 2
    # step 6: shift down by floor(r/2) in column-major order, padding the
    # head with -inf and the tail with +inf (an r x (s+1) matrix).
    lo, hi = _pad_values(flat)
    linear = mat.T.ravel()  # column-major flatten
    padded = np.concatenate(
        [np.full(half, lo, dtype=flat.dtype), linear,
         np.full(r - half, hi, dtype=flat.dtype)]
    )
    shifted = padded.reshape(s + 1, r).T
    shifted = sort_columns(shifted)              # step 7
    # step 8: unshift (drop the sentinels, shift back up)
    return shifted.T.ravel()[half : half + flat.size]


def _pad_values(flat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """-inf / +inf sentinels for the shift step, per dtype."""
    if flat.dtype.kind == "f":
        return np.array(-np.inf, dtype=flat.dtype), np.array(np.inf, dtype=flat.dtype)
    info = np.iinfo(flat.dtype)
    return np.array(info.min, dtype=flat.dtype), np.array(info.max, dtype=flat.dtype)


def choose_dims(n: int) -> Tuple[int, int]:
    """Pick valid power-of-two ``(r, s)`` with the most columns.

    Maximizing ``s`` under ``r >= 2(s-1)^2`` tracks the paper's
    ``s = lg^2 n`` scaling as closely as powers of two allow.
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    best: Optional[Tuple[int, int]] = None
    s = 1
    while s * s <= n:
        r = n // s
        if leighton_valid(r, s):
            best = (r, s)
        s *= 2
    if best is None:
        raise ValueError(f"no valid power-of-two columnsort dims for n={n}")
    return best


@dataclass(frozen=True)
class ColumnsortReport:
    """Timing of one time-multiplexed columnsort run."""

    n: int
    r: int
    s: int
    pipelined: bool
    sorting_time: int
    column_passes: int


class TimeMultiplexedColumnsort:
    """Columnsort with every column pass through one Batcher netlist.

    Hardware: one ``r``-input Batcher odd-even merge sorter, an
    ``(n, r)``-multiplexer and an ``(r, n)``-demultiplexer (charged at the
    paper's cost ``n`` / depth ``lg(n/r)`` each; the shift steps are free
    wiring).  Binary inputs only — this is the baseline the paper's
    Section III-C compares the fish sorter against.
    """

    def __init__(self, n: int, r: Optional[int] = None, s: Optional[int] = None):
        if (r is None) != (s is None):
            raise ValueError("give both r and s, or neither")
        if r is None:
            r, s = choose_dims(n)
        _check_dims(n, r, s)
        self.n, self.r, self.s = n, r, s
        self.sorter: Netlist = build_odd_even_merge_sorter(r)
        self.mux_depth = max(1, math.ceil(math.log2(max(self.s + 1, 2))))

    def cost(self) -> int:
        """Sorter cost plus the paper-convention mux/demux cost (2n)."""
        return self.sorter.cost() + 2 * self.n

    def _sort_columns(self, mat: np.ndarray) -> np.ndarray:
        out = simulate(self.sorter, mat.T.astype(np.uint8))
        return out.T

    def sort(self, bits, pipelined: bool = False) -> Tuple[np.ndarray, ColumnsortReport]:
        """Sort ``n`` bits; returns ``(sorted_bits, report)``."""
        flat = np.asarray(bits, dtype=np.uint8).ravel()
        if flat.size != self.n:
            raise ValueError(f"expected {self.n} bits, got {flat.size}")
        r, s, half = self.r, self.s, self.r // 2
        mat = flat.reshape(s, r).T
        passes = 0
        time = 0
        d = self.sorter.depth()

        def charge(cols: int) -> int:
            per_pass = self.mux_depth + d + self.mux_depth
            if pipelined:
                return (cols - 1) + per_pass
            return cols * per_pass

        mat = self._sort_columns(mat); passes += s; time += charge(s)   # 1
        mat = mat.T.reshape(r, s)                                        # 2
        mat = self._sort_columns(mat); passes += s; time += charge(s)   # 3
        mat = mat.reshape(s, r).T                                        # 4
        mat = self._sort_columns(mat); passes += s; time += charge(s)   # 5
        linear = mat.T.ravel()                                           # 6
        padded = np.concatenate(
            [np.zeros(half, dtype=np.uint8), linear,
             np.ones(r - half, dtype=np.uint8)]
        )
        shifted = padded.reshape(s + 1, r).T
        shifted = self._sort_columns(shifted)                            # 7
        passes += s + 1; time += charge(s + 1)
        out = shifted.T.ravel()[half : half + self.n]                    # 8
        report = ColumnsortReport(
            n=self.n, r=r, s=s, pipelined=pipelined,
            sorting_time=time, column_passes=passes,
        )
        return out, report


def build_columnsort_network(n: int, r: Optional[int] = None,
                             s: Optional[int] = None) -> "Netlist":
    """The *non-multiplexed* binary columnsort network (Section III-C end).

    "Without time-multiplexing, a practical binary columnsort network,
    e.g., one using Batcher's sorters, would require lg^2 n
    (n/lg^2 n)-input Batcher's sorters in its construction, resulting in
    a bit-level cost of O(n lg^2 n)."

    This builds that network as one combinational netlist: four
    column-sorting stages (each a bank of parallel Batcher sorters),
    pure-wiring transpose/untranspose/shift permutations, and constant
    0/1 pads for the shift stage.  Binary inputs only.
    """
    from ..circuits.builder import CircuitBuilder
    from .batcher import build_from_schedule, odd_even_merge_schedule

    if (r is None) != (s is None):
        raise ValueError("give both r and s, or neither")
    if r is None:
        r, s = choose_dims(n)
    _check_dims(n, r, s)
    b = CircuitBuilder(f"columnsort-network-{n}")
    inputs = b.add_inputs(n)
    schedule = odd_even_merge_schedule(r)

    def sort_columns(wires, n_cols):
        out = []
        for c in range(n_cols):
            col = wires[c * r : (c + 1) * r]
            current = list(col)
            for stage in schedule:
                for i, j in stage:
                    lo, hi = b.comparator(current[i], current[j])
                    current[i], current[j] = lo, hi
            out.extend(current)
        return out

    # column-major wire list: wires[c*r + i] = row i of column c
    wires = list(inputs)
    wires = sort_columns(wires, s)                           # step 1
    # step 2: transpose & reshape == np: mat.T.reshape(r, s) on (r, s)
    # column-major wires: new[c*r + i] = old value at matrix position
    # given by the numpy identity; derive the index map directly.
    wires = [wires[_transpose_index(p, r, s)] for p in range(n)]
    wires = sort_columns(wires, s)                           # step 3
    wires_inv = [0] * n
    for p in range(n):
        wires_inv[_transpose_index(p, r, s)] = wires[p]      # step 4 (inverse)
    wires = wires_inv
    wires = sort_columns(wires, s)                           # step 5
    half = r // 2
    padded = (
        [b.const(0)] * half + wires + [b.const(1)] * (r - half)  # step 6
    )
    padded = sort_columns(padded, s + 1)                     # step 7
    outputs = padded[half : half + n]                        # step 8
    return b.build(outputs)


def _transpose_index(p: int, r: int, s: int) -> int:
    """Column-major index map of columnsort's step-2 transpose.

    Output column-major position ``p`` reads input column-major position
    computed via the numpy identity ``B = A.T.reshape(r, s)`` used by
    :func:`columnsort`.
    """
    # output position p -> matrix coords (row i, col c), column-major
    c, i = divmod(p, r)
    # B[i, c] = A.T.reshape(r,s)[i, c]; flat row-major index of B is
    # i*s + c, which reads A.T's flat row-major = A's column-major order.
    flat = i * s + c
    # A's column-major position `flat` corresponds to A[row=flat % r,
    # col=flat // r]; our input layout is also column-major, so it is
    # exactly index `flat`.
    return flat


def columnsort_cost_model(n: int) -> dict:
    """Asymptotic cost/time model of the paper's Section III-C comparison.

    With ``s = lg^2 n`` columns of ``r = n / lg^2 n`` elements sorted by a
    Batcher sorter, the network has ``O(n)`` cost, ``O(lg^4 n)``
    unpipelined sorting time, and ``O(lg^2 n)`` pipelined sorting time.
    """
    lg = math.log2(n)
    r = n / (lg * lg) if lg > 0 else 1.0
    lgr = math.log2(max(r, 2))
    batcher_cost = r * lgr * (lgr + 1) / 4
    return {
        "n": n,
        "r": r,
        "s": lg * lg,
        "sorter_cost": batcher_cost,
        "total_cost": batcher_cost + 2 * n,
        "time_unpipelined": 4 * lg * lg * (lgr * (lgr + 1) / 2),
        "time_pipelined": 4 * (lg * lg + lgr * (lgr + 1) / 2),
    }
