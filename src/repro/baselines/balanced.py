"""The periodic balanced sorting network of Dowd, Perl, Rudolph, and Saks.

Reference [8]/[9] in the paper: ``lg n`` identical *balanced merging
blocks* in cascade sort any input.  Each block is the recursive
``(i, n-1-i)`` comparator structure of
:func:`repro.core.balanced_merge.balanced_merging_block` (depth ``lg n``,
cost ``(n/2) lg n``), giving the full sorter cost ``(n/2) lg^2 n`` and
depth ``lg^2 n``.

This is the network family from which the paper borrows its merging
block; it serves as the ``O(n lg^2 n)`` nonadaptive baseline alongside
Batcher's sorters.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..core.balanced_merge import (
    balanced_merge_behavioral,
    balanced_merging_block,
)


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    return n.bit_length() - 1


def build_balanced_sorter(n: int) -> Netlist:
    """Periodic balanced sorter: ``lg n`` cascaded balanced merging blocks."""
    lg_n = _lg(n)
    b = CircuitBuilder(f"balanced-sorter-{n}")
    wires: List[int] = b.add_inputs(n)
    for _ in range(max(lg_n, 1) if n > 1 else 0):
        wires = balanced_merging_block(b, wires)
    return b.build(wires)


def balanced_sorter_cost(n: int) -> int:
    """Closed-form cost ``(n/2) lg^2 n``."""
    lg_n = _lg(n)
    return (n // 2) * lg_n * lg_n


def balanced_sort_behavioral(bits) -> np.ndarray:
    """NumPy oracle: apply ``lg n`` balanced merging blocks."""
    out = np.asarray(bits, dtype=np.uint8).copy()
    n = out.size
    if n <= 1:
        return out
    for _ in range(_lg(n)):
        out = balanced_merge_behavioral(out)
    return out
