"""Muller–Preparata-style Boolean sorting *circuit* (reference [17]).

Section I notes: "there exist O(n) bit-level cost and O(lg n) bit-level
depth n-input Boolean sorting circuits ... These circuits cannot carry,
or move the inputs through, however; they generate only sorted bits at
their outputs.  Therefore, they are outside the focus of this paper."

We build one anyway, to make that distinction executable:

1. a carry-save (3:2 compressor) adder tree counts the 1's with ``O(n)``
   gates and ``O(lg n)`` depth, finished by one small prefix adder;
2. a ``(1, n+1)``-demultiplexer tree decodes the count to one-hot;
3. an OR suffix scan turns the one-hot into the thermometer code, which
   *is* the ascending sorted output (output ``j`` is 1 iff
   ``count >= n - j``).

The payload-carrying simulator shows the non-carrying property concretely:
every output of this circuit reports ``NO_PAYLOAD`` because all values
pass through logic gates — no input data ever reaches an output, which is
precisely why the paper's concentrators cannot be built this way.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.prefix_adder import kogge_stone_add, suffix_or_scan


def csa_popcount(b: CircuitBuilder, wires: Sequence[int]) -> List[int]:
    """Population count via a Wallace tree of full-adder compressors.

    Maintains per-weight columns of wires; every 3 wires of weight ``w``
    compress into one of weight ``w`` and one of weight ``2w`` (5 gates),
    every remaining pair into weights ``w``/``2w`` via a half adder
    (2 gates).  Linear cost, logarithmic depth; the final two rows are
    summed with a Kogge–Stone adder.
    """
    columns: List[List[int]] = [list(wires)]
    while any(len(col) > 2 for col in columns):
        new_cols: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for w, col in enumerate(columns):
            i = 0
            while len(col) - i >= 3:
                x, y, z = col[i : i + 3]
                i += 3
                p = b.xor(x, y)
                s = b.xor(p, z)
                c = b.or_(b.and_(x, y), b.and_(p, z))
                new_cols[w].append(s)
                new_cols[w + 1].append(c)
            new_cols[w].extend(col[i:])
        while new_cols and not new_cols[-1]:
            new_cols.pop()
        columns = new_cols
    # at most two wires per column: split into two addends
    xs: List[int] = []
    ys: List[int] = []
    for col in columns:
        xs.append(col[0] if len(col) >= 1 else b.const(0))
        ys.append(col[1] if len(col) >= 2 else b.const(0))
    return kogge_stone_add(b, xs, ys)


def build_muller_preparata_sorter(n: int) -> Netlist:
    """O(n)-cost, O(lg n)-depth Boolean sorting circuit for ``n`` bits."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    b = CircuitBuilder(f"muller-preparata-{n}")
    wires = b.add_inputs(n)
    if n == 1:
        return b.build([b.buf(wires[0])])
    count = csa_popcount(b, wires)  # lg n + 1 bits, LSB first
    width = n.bit_length()  # count in 0..n needs lg n + 1 bits
    count = count[:width]
    while len(count) < width:
        count.append(b.const(0))
    # one-hot decode of the count over 2^width slots; slots above n are
    # always 0 (the count never exceeds n), so they fold away in the scan.
    onehot = b.demux_tree(b.const(1), list(reversed(count)))
    # suffix OR: thermo[i] = OR_{v >= i} onehot[v] = [count >= i]
    thermo = suffix_or_scan(b, onehot[: n + 1])
    outputs = [thermo[n - j] for j in range(n)]
    return b.build(outputs)
