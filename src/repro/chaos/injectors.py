"""Chaos injector implementations (see the package docstring).

Two shapes of injector:

* **payload injectors** (:class:`FaultStorm`, :class:`DeadlineStorm`)
  resolve to per-chunk flags in the soak *parent* — a fault seed, a
  deadline budget — that travel inside the work-item payload and are
  applied by whichever worker process executes the chunk.  This keeps
  them fully deterministic even under a crash-isolated process pool.
* **environment injectors** (:class:`JitCacheCorruptor`,
  :class:`TraceTruncator`, :class:`WorkerKillStorm`) perturb shared
  state the workers depend on — the JIT disk cache, the obs trace file,
  the worker processes themselves — from the parent, between or during
  rounds.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import BuildError

__all__ = [
    "CHAOS_INJECTORS",
    "DeadlineStorm",
    "FaultStorm",
    "JitCacheCorruptor",
    "Schedule",
    "TraceTruncator",
    "WorkerKillStorm",
    "realize_fault",
    "seeded_schedule",
]

#: Injector names understood by ``tools/soak.py --chaos``.
CHAOS_INJECTORS = ("faults", "kills", "deadlines", "jitcache", "obstrunc")


def _stable_hash(*parts) -> int:
    h = 0xCBF29CE484222325
    for p in parts:
        for ch in str(p):
            h = ((h ^ ord(ch)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFF


@dataclass(frozen=True)
class Schedule:
    """Deterministic periodic on/off windows over an integer index.

    Active for the first ``round(duty * period)`` indices of every
    ``period``-long cycle, phase-shifted by ``phase`` (seeded via
    :func:`seeded_schedule` so different injectors don't all fire in
    lockstep).  ``period <= 0`` or ``duty <= 0`` is never active;
    ``duty >= 1`` is always active.
    """

    period: int
    duty: float
    phase: int = 0

    def active(self, index: int) -> bool:
        if self.period <= 0 or self.duty <= 0:
            return False
        if self.duty >= 1.0:
            return True
        on = max(1, int(round(self.duty * self.period)))
        return (int(index) + self.phase) % self.period < on

    def window(self, index: int) -> int:
        """The cycle number ``index`` falls in (stable across a window —
        used to hold one injected fault steady for a whole window)."""
        if self.period <= 0:
            return 0
        return (int(index) + self.phase) // self.period


def seeded_schedule(seed: int, name: str, period: int, duty: float) -> Schedule:
    """A :class:`Schedule` with a seed-derived phase per injector name."""
    phase = _stable_hash(seed, name) % max(int(period), 1)
    return Schedule(period=int(period), duty=float(duty), phase=phase)


# ---------------------------------------------------------------------------
# Payload injectors
# ---------------------------------------------------------------------------


class FaultStorm:
    """Schedules deterministic netlist-fault swaps into the load path.

    While active, every chunk carries a ``fault_seed`` derived from the
    soak seed and the schedule *window* (not the chunk — so one broken
    circuit stays in place for a whole window and compiled mutant plans
    amortize).  Workers turn the seed into an actual fault via
    :func:`realize_fault` against their local copy of the hardware.
    """

    name = "faults"

    def __init__(self, schedule: Schedule, seed: int) -> None:
        self.schedule = schedule
        self.seed = int(seed)

    def fault_seed(self, chunk_index: int) -> Optional[int]:
        if not self.schedule.active(chunk_index):
            return None
        return _stable_hash(self.seed, "fault", self.schedule.window(chunk_index))


def realize_fault(netlist, fault_seed: int) -> Tuple:
    """Deterministically pick one injectable fault for ``netlist``.

    Enumerates the stuck-at and control-inversion universe on driven,
    *non-primary-input* wires (an input-wire stuck-at sits upstream of
    the gate-level checkers' fault-secure region; the software invariant
    gate still catches it, but excluding it keeps "every injected fault
    is checker-detectable or masked" a clean invariant for the soak) and
    indexes into it with the seed.  Every process that evaluates the
    same ``(netlist, fault_seed)`` derives the same fault.
    """
    from ..circuits import enumerate_faults

    inputs = set(netlist.inputs)
    faults = [
        f for f in enumerate_faults(netlist, kinds=("stuck", "control"))
        if getattr(f, "wire", -1) not in inputs
    ]
    if not faults:
        raise BuildError("netlist has no injectable non-input faults")
    return (faults[int(fault_seed) % len(faults)],)


class DeadlineStorm:
    """Schedules tiny per-attempt deadline budgets onto chunks.

    While active, chunks carry ``deadline_s`` (default 200 µs — small
    enough that circuit tiers miss it, surfacing deadline hits, retries,
    and backoff capping; the driver's recovery path still produces the
    correct answer).
    """

    name = "deadlines"

    def __init__(self, schedule: Schedule, deadline_s: float = 2e-4) -> None:
        if deadline_s <= 0:
            raise BuildError("deadline_s must be > 0")
        self.schedule = schedule
        self.deadline_s = float(deadline_s)

    def deadline(self, chunk_index: int) -> Optional[float]:
        return self.deadline_s if self.schedule.active(chunk_index) else None


# ---------------------------------------------------------------------------
# Environment injectors
# ---------------------------------------------------------------------------


class JitCacheCorruptor:
    """Flips seeded bytes inside warm ``*.rjit`` disk-cache entries.

    The JIT's loads are specified corruption-tolerant (bad entries
    recompile); this injector proves it *while plans are hot*.  Returns
    a summary dict per perturbation for the chaos log.
    """

    name = "jitcache"

    def __init__(self, schedule: Schedule, cache_dir, seed: int,
                 max_files: int = 2, max_flips: int = 8) -> None:
        self.schedule = schedule
        self.cache_dir = os.fspath(cache_dir)
        self.rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), _stable_hash("jitcache")])
        )
        self.max_files = int(max_files)
        self.max_flips = int(max_flips)

    def perturb(self, round_index: int) -> Optional[Dict[str, object]]:
        if not self.schedule.active(round_index):
            return None
        try:
            entries = sorted(
                name for name in os.listdir(self.cache_dir)
                if name.endswith(".rjit")
            )
        except OSError:
            entries = []
        if not entries:
            return {"injector": self.name, "files": [], "note": "cache empty"}
        count = min(len(entries), 1 + int(self.rng.integers(self.max_files)))
        picks = self.rng.choice(len(entries), size=count, replace=False)
        corrupted: List[str] = []
        for idx in sorted(int(i) for i in picks):
            path = os.path.join(self.cache_dir, entries[idx])
            try:
                with open(path, "r+b") as fh:
                    fh.seek(0, os.SEEK_END)
                    size = fh.tell()
                    if size == 0:
                        continue
                    flips = 1 + int(self.rng.integers(self.max_flips))
                    for _ in range(flips):
                        pos = int(self.rng.integers(size))
                        fh.seek(pos)
                        byte = fh.read(1)
                        fh.seek(pos)
                        fh.write(bytes([(byte[0] if byte else 0) ^ 0xFF]))
                corrupted.append(entries[idx])
            except OSError:
                continue
        return {"injector": self.name, "files": corrupted}


class TraceTruncator:
    """Chops a seeded number of bytes off the obs trace file's tail.

    Emulates a sink dying mid-write (disk full, SIGKILL): the file may
    end mid-line, and the next append from the still-open sink creates
    one garbled joint line.  Downstream readers must survive both —
    ``read_trace(strict=False)`` / ``trace_report.py --lenient`` do.
    """

    name = "obstrunc"

    def __init__(self, schedule: Schedule, trace_path, seed: int,
                 max_bytes: int = 512) -> None:
        self.schedule = schedule
        self.trace_path = os.fspath(trace_path)
        self.rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), _stable_hash("obstrunc")])
        )
        self.max_bytes = int(max_bytes)

    def perturb(self, round_index: int) -> Optional[Dict[str, object]]:
        if not self.schedule.active(round_index):
            return None
        try:
            size = os.path.getsize(self.trace_path)
        except OSError:
            return {"injector": self.name, "truncated_bytes": 0,
                    "note": "no trace file"}
        if size == 0:
            return {"injector": self.name, "truncated_bytes": 0}
        cut = min(size, 1 + int(self.rng.integers(self.max_bytes)))
        try:
            os.truncate(self.trace_path, size - cut)
        except OSError:
            return {"injector": self.name, "truncated_bytes": 0,
                    "note": "truncate failed"}
        return {"injector": self.name, "truncated_bytes": int(cut)}


class WorkerKillStorm:
    """SIGKILLs random live :mod:`repro.parallel` workers during a round.

    Runs as a parent-side thread while a scheduled round is in flight:
    every ``interval_s`` it kills one of the current process's live
    multiprocessing children (with seeded probability ``kill_prob``), up
    to ``max_kills`` per round.  The executor quarantines exactly the
    in-flight item and replenishes the pool; the soak driver re-runs the
    quarantined chunk, so the storm costs latency, never answers.
    """

    name = "kills"

    def __init__(self, schedule: Schedule, seed: int,
                 interval_s: float = 0.05, kill_prob: float = 0.5,
                 max_kills: int = 4) -> None:
        self.schedule = schedule
        self.rng = np.random.default_rng(
            np.random.SeedSequence([int(seed), _stable_hash("kills")])
        )
        self.interval_s = float(interval_s)
        self.kill_prob = float(kill_prob)
        self.max_kills = int(max_kills)
        self.kills_sent = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _storm(self) -> None:
        import multiprocessing as mp

        sent = 0
        while not self._stop.is_set() and sent < self.max_kills:
            if self._stop.wait(self.interval_s):
                break
            if self.rng.random() >= self.kill_prob:
                continue
            children = [p for p in mp.active_children() if p.pid]
            if not children:
                continue
            victim = children[int(self.rng.integers(len(children)))]
            try:
                os.kill(victim.pid, signal.SIGKILL)
                sent += 1
                self.kills_sent += 1
            except (OSError, TypeError):
                continue

    def start(self, round_index: int) -> bool:
        """Begin a storm for this round if scheduled; returns whether
        the storm is running."""
        if not self.schedule.active(round_index) or self._thread is not None:
            return False
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._storm, name="chaos-kill-storm", daemon=True
        )
        self._thread.start()
        return True

    def stop(self) -> None:
        """End the current storm (no-op when none is running)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "WorkerKillStorm":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
