"""Schedulable chaos injectors that run concurrently with load.

Where :mod:`repro.circuits.faults` enumerates *what* can break, this
package decides *when* it breaks — during a live soak, against the
repo's real failure surfaces:

* **hardware faults** (:class:`FaultStorm`) — netlist fault rewrites
  swapped into the execution path mid-run, realized deterministically
  from a seed by :func:`realize_fault`;
* **process kills** (:class:`WorkerKillStorm`) — SIGKILL storms against
  the live :mod:`repro.parallel` worker pool;
* **deadline storms** (:class:`DeadlineStorm`) — tiny per-attempt
  ``time_limit`` budgets that make every tier miss its deadline;
* **plan-cache corruption** (:class:`JitCacheCorruptor`) — byte flips in
  warm ``*.rjit`` entries of the :mod:`repro.circuits.jit` disk cache;
* **observability truncation** (:class:`TraceTruncator`) — the obs
  file sink's tail chopped off mid-run, the crash-damage mode
  :func:`repro.obs.read_trace` is specified to survive.

Every injector carries a :class:`Schedule` — a deterministic on/off
window function over chunk/round indices — and derives all randomness
from the soak seed, so *which* windows are chaotic, *which* fault is
injected, and *which* bytes are flipped are identical run to run.  (The
one honest exception: which in-flight item a SIGKILL lands on is a race
by nature; the storm's schedule and kill count are still seeded.)

``tools/soak.py`` is the driver that wires these into a request stream
from :mod:`repro.workloads` and asserts the SLOs; see docs/SOAK.md.
"""

from .injectors import (
    CHAOS_INJECTORS,
    DeadlineStorm,
    FaultStorm,
    JitCacheCorruptor,
    Schedule,
    TraceTruncator,
    WorkerKillStorm,
    realize_fault,
    seeded_schedule,
)

__all__ = [
    "CHAOS_INJECTORS",
    "DeadlineStorm",
    "FaultStorm",
    "JitCacheCorruptor",
    "Schedule",
    "TraceTruncator",
    "WorkerKillStorm",
    "realize_fault",
    "seeded_schedule",
]
