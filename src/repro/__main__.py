"""Command-line entry point: ``python -m repro``.

Modes:

* ``python -m repro [n]`` — compact reproduction report at size ``n``
  (default 256): builds, verifies, and measures the paper's main
  constructions.
* ``python -m repro --claims`` — run the full claims ledger
  (:data:`repro.analysis.claims.CLAIMS`) and print each claim's verdict
  and evidence.
* ``python -m repro --models`` — print the complexity-model registry
  (the paper's claimed formulas for every network).
* ``python -m repro --coverage`` — print the paper-artifact coverage
  matrix (every figure/table/theorem and how it is reproduced).

For the full figure/table regeneration, run
``pytest benchmarks/ --benchmark-only``.
"""

import sys

from .analysis.report import reproduction_report


def _run_claims() -> int:
    from .analysis.claims import CLAIMS

    failures = 0
    for claim in CLAIMS:
        ok, evidence = claim.check()
        mark = "PASS" if ok else "FAIL"
        print(f"[{mark}] {claim.id} ({claim.section})")
        print(f"       claim:    {claim.statement}")
        print(f"       evidence: {evidence}\n")
        failures += not ok
    print(f"{len(CLAIMS) - failures}/{len(CLAIMS)} claims verified")
    return 1 if failures else 0


def _run_models() -> int:
    from .analysis.tables import format_table
    from .baselines.costmodels import SORTER_MODELS, TABLE2_ROWS

    rows = [
        [m.name, m.cost_expr, m.depth_expr, m.time_expr]
        for m in SORTER_MODELS.values()
    ]
    print(format_table(
        ["network", "cost", "depth", "sorting time"], rows,
        title="Binary sorting networks (claimed complexities)",
    ))
    print()
    rows = [
        [r.construction, r.cost_expr, r.depth_expr, r.time_expr]
        for r in TABLE2_ROWS.values()
    ]
    print(format_table(
        ["construction", "cost", "depth", "permutation time"], rows,
        title="Table II: permutation networks",
    ))
    return 0


def _run_coverage() -> int:
    from .analysis.coverage import coverage_table

    print(coverage_table())
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--claims":
        return _run_claims()
    if argv and argv[0] == "--models":
        return _run_models()
    if argv and argv[0] == "--coverage":
        return _run_coverage()
    n = 256
    if argv:
        try:
            n = int(argv[0])
        except ValueError:
            print(
                "usage: python -m repro [n | --claims | --models]   "
                f"(got {argv[0]!r})"
            )
            return 2
        if n < 8 or n & (n - 1):
            print(f"n must be a power of two >= 8, got {n}")
            return 2
    print(
        "Adaptive Binary Sorting Schemes and Associated Interconnection "
        "Networks\nChien & Oruc (ICPP'92 / TPDS'94) - reproduction report\n"
    )
    print(reproduction_report(n))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
