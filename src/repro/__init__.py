"""Adaptive binary sorting schemes and associated interconnection networks.

A full reproduction of Chien & Oruc (ICPP 1992 / IEEE TPDS 1994): the
three adaptive binary sorting networks (prefix, mux-merger, and the
time-multiplexed "fish" sorter), the concentrators and permutation
networks built from them, the baselines they are compared against
(Batcher, balanced, columnsort, AKS cost model, Muller–Preparata), and
the measurement machinery that regenerates every figure and table of the
paper's evaluation.

Quick start::

    import numpy as np
    from repro import build_mux_merger_sorter, FishSorter
    from repro.circuits import simulate

    net = build_mux_merger_sorter(16)          # Network 2, n = 16
    print(net.cost(), net.depth())             # bit-level cost/depth
    out = simulate(net, [[1,0,1,1,0,0,1,0]*2]) # sorts any 0/1 sequence

    fish = FishSorter(256)                     # Network 3, O(n) cost
    bits = np.random.default_rng(0).integers(0, 2, 256)
    sorted_bits, report = fish.sort(bits, pipelined=True)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from . import analysis, baselines, circuits, components, core, networks, obs, runtime, serve, viz
from .errors import (
    BuildError,
    CheckerAlarm,
    DeadlineExceeded,
    ReproError,
    SimulationError,
)
from .ioutil import atomic_write_json, atomic_write_text
from .core import (
    FishSorter,
    KWayMuxMerger,
    SortReport,
    build_mux_merger,
    build_mux_merger_sorter,
    build_patchup_network,
    build_prefix_sorter,
    cache_info,
    clear_cache,
    make_sorter,
    set_cache_limit,
    sort_bits,
    sort_bits_many,
)
from .networks import (
    BenesNetwork,
    FishConcentrator,
    RadixPermuter,
    RadixWordSorter,
    SortingConcentrator,
)

__version__ = "1.0.0"

__all__ = [
    "BenesNetwork",
    "BuildError",
    "CheckerAlarm",
    "DeadlineExceeded",
    "FishConcentrator",
    "FishSorter",
    "KWayMuxMerger",
    "RadixPermuter",
    "RadixWordSorter",
    "ReproError",
    "SimulationError",
    "SortReport",
    "SortingConcentrator",
    "analysis",
    "atomic_write_json",
    "atomic_write_text",
    "baselines",
    "build_mux_merger",
    "build_mux_merger_sorter",
    "build_patchup_network",
    "build_prefix_sorter",
    "cache_info",
    "circuits",
    "clear_cache",
    "components",
    "core",
    "make_sorter",
    "networks",
    "obs",
    "runtime",
    "serve",
    "set_cache_limit",
    "sort_bits",
    "sort_bits_many",
    "viz",
]
