"""Process-parallel, crash-isolated execution of independent work items.

The evaluation workloads in this reproduction — parameter sweeps over
(network, n), fault-injection campaigns over (network, fault, vector),
batch sorting of many input sequences — are embarrassingly parallel but
individually *dangerous*: an item can hang (pathological netlist), crash
the interpreter (native-extension fault), or blow its deadline.  The
:func:`run_items` executor runs such items across a pool of worker
processes with the property that **one bad item costs exactly one
item**: it is quarantined, the pool is replenished, and every other
result is identical to what a serial run would have produced — in the
same order.

See :mod:`repro.parallel.executor` for the design notes; the public
surface is::

    from repro.parallel import ItemOutcome, run_items, split_outcomes

    outcomes = run_items(
        [(item_id, payload), ...], task, jobs=4,
        worker_init=warm_caches, timeout_s=30.0, retries=1,
    )
    values, quarantined = split_outcomes(outcomes)
"""

from .executor import ItemOutcome, run_items, split_outcomes

__all__ = ["ItemOutcome", "run_items", "split_outcomes"]
