"""Crash-isolated process-parallel execution of independent work items.

The paper's whole evaluation surface — cost/depth/time sweeps over
(network, n) and fault campaigns over (fault, vector) — decomposes into
independent items, so the executor here is deliberately shaped like a
work-queue shard farm rather than a clever scheduler:

* **work-queue sharding** — the parent holds the item list and deals the
  next item to whichever worker frees up first, so a slow item never
  stalls the others and load balances itself;
* **deterministic result ordering** — outcomes are keyed by submission
  index; :func:`run_items` returns them in submission order regardless
  of completion order, so a parallel sweep's records are *identical* to
  the serial sweep's;
* **per-worker warm caches** — workers are long-lived (one pull loop,
  not one process per item), so per-process caches — compiled
  :class:`~repro.circuits.engine.ExecutionPlan` instances, the
  ``make_sorter`` LRU — warm up once per worker and amortize across all
  the items that worker handles; ``worker_init`` lets callers pre-warm
  explicitly;
* **crash isolation** — a worker that dies mid-item (segfault, OOM
  kill, SIGKILL) loses only the item it was holding: the parent
  notices the death, quarantines that item, and replenishes the pool;
  a worker that *hangs* past the enforceable budget is SIGKILLed and
  handled the same way;
* **deadlines that still mean something** — each item runs under
  :func:`repro.runtime.guard.run_guarded` *on the worker process's main
  thread*, where the fixed SIGALRM guard can actually preempt; the
  ``guarded`` flag in each :class:`ItemOutcome` records whether that
  was true;
* **fork-aware observability** — workers write their traces to per-pid
  shard files and ship metric snapshots back on exit; the parent merges
  both (see :func:`repro.obs.merge_trace_shards`), so a traced
  ``--jobs N`` run yields one coherent trace readable by
  ``tools/trace_report.py``.

Transport is one duplex :func:`multiprocessing.Pipe` per worker, *not* a
shared ``multiprocessing.Queue``: queue puts happen on a background
feeder thread, so a worker SIGKILLed mid-item can take its own progress
reports down with it (and a worker killed while holding the shared
queue's read lock poisons the queue for everyone).  With a private pipe,
sends are synchronous in the calling thread, the parent — which did the
dealing — is the single source of truth for which item each worker
holds, and a dead worker surfaces as EOF on exactly one channel.

``jobs <= 1`` runs the exact same item pipeline in-process (no
subprocess, no pickling), which is both the serial baseline for the
differential tests and the degraded path on platforms without ``fork``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import BuildError
from ..runtime.guard import run_guarded

__all__ = ["ItemOutcome", "run_items", "split_outcomes"]

#: Extra wall-clock slack on top of the worst-case guarded budget before
#: the parent declares a worker hung and SIGKILLs it.
DEFAULT_HANG_GRACE_S = 5.0

#: Environment override for the parent-side hang-watch hard budget in
#: seconds.  Applies even when no per-item ``timeout_s`` is set (where
#: the computed budget would otherwise be disabled), so long soaks can
#: bound a stalled worker without imposing per-item deadlines.  An
#: explicit ``run_items(..., hang_budget_s=...)`` wins over the env.
ENV_HANG_BUDGET = "REPRO_PARALLEL_HANG_BUDGET"

#: Safety factor applied to the nominal per-item budget when computing
#: the parent-side hard kill deadline (the in-worker guard should fire
#: long before this; the hard deadline only catches guards defeated by
#: signal-blocking C code).
HARD_BUDGET_FACTOR = 1.5


@dataclass
class ItemOutcome:
    """What happened to one submitted item."""

    index: int  #: submission index (results are returned sorted by it)
    id: str  #: caller-supplied item id (stable across serial/parallel)
    ok: bool  #: True when ``task(payload)`` returned a value
    value: Any = None  #: the task's return value (None on failure)
    error: Optional[str] = None  #: ``repr`` of the failure, if any
    attempts: int = 1  #: attempts made by the retry guard
    guarded: bool = True  #: whether the deadline could actually preempt
    duration_s: float = 0.0  #: wall-clock of the final state of the item
    pid: Optional[int] = None  #: process that ran (or lost) the item

    def quarantine_record(self) -> Dict[str, Any]:
        """The quarantine-list entry format used by the campaign tools
        (id/error/attempts, plus ``unguarded`` only when the budget
        could not actually be enforced)."""
        record: Dict[str, Any] = {
            "id": self.id,
            "error": self.error,
            "attempts": self.attempts,
        }
        if not self.guarded:
            record["unguarded"] = True
        return record


def split_outcomes(
    outcomes: Sequence[ItemOutcome],
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """Split outcomes into (ordered successful values, quarantine records)."""
    values = [o.value for o in outcomes if o.ok]
    quarantined = [o.quarantine_record() for o in outcomes if not o.ok]
    return values, quarantined


# ---------------------------------------------------------------------------
# Shared per-item pipeline (used in-process when jobs <= 1, and by workers)
# ---------------------------------------------------------------------------


def _run_one(
    index: int,
    item_id: str,
    payload: Any,
    task: Callable[[Any], Any],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    span: Optional[str],
) -> ItemOutcome:
    import repro.obs as obs

    report: Dict[str, object] = {}
    started = time.perf_counter()
    with obs.trace_span(span or "parallel.item", item=item_id) as attrs:
        try:
            value = run_guarded(
                task,
                payload,
                timeout_s=timeout_s,
                retries=retries,
                backoff_s=backoff_s,
                what=item_id,
                report=report,
            )
            attrs["ok"] = True
            ok, error = True, None
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            attrs["ok"] = False
            attrs["error"] = repr(exc)
            ok, value, error = False, None, repr(exc)
    return ItemOutcome(
        index=index,
        id=item_id,
        ok=ok,
        value=value,
        error=error,
        attempts=int(report.get("attempts", 1) or 1),
        guarded=bool(report.get("guarded", True)),
        duration_s=time.perf_counter() - started,
        pid=os.getpid(),
    )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _parent_obs_config() -> Optional[Dict[str, Any]]:
    import repro.obs as obs

    if not obs.enabled():
        return None
    paths = obs.trace_paths()
    return {"trace": paths[0] if paths else None, "activity": obs.OBS.activity}


def _worker_obs_setup(cfg: Optional[Dict[str, Any]]) -> None:
    """Give the worker its own clean observability state.

    Under ``fork`` the child inherits the parent's sinks, metric values,
    and activity profiles; keeping them would double-count everything
    when the parent merges worker snapshots back in.  Reset, then
    re-enable pointing the file sink directly at this worker's per-pid
    shard.
    """
    import repro.obs as obs

    if obs.enabled() or obs.OBS.tracer.sinks:
        obs.reset()
    if cfg is None:
        return
    trace = cfg.get("trace")
    shard = obs.FileSink.shard_path(trace, os.getpid()) if trace else None
    obs.enable(trace_path=shard, activity=bool(cfg.get("activity", True)))


def _worker_obs_state() -> Optional[List[Dict[str, Any]]]:
    """Flush this worker's activity and return its metrics snapshot."""
    import repro.obs as obs

    if not obs.enabled():
        return None
    obs.flush_activity()
    state = obs.registry().dump_state()
    obs.OBS.tracer.clear_sinks()
    return state or None


def _worker_main(
    conn,
    task: Callable[[Any], Any],
    worker_init: Optional[Callable[[Any], None]],
    init_arg: Any,
    guard: Tuple[Optional[float], int, float, Optional[str]],
    obs_cfg: Optional[Dict[str, Any]],
) -> None:
    try:
        _worker_obs_setup(obs_cfg)
        if worker_init is not None:
            worker_init(init_arg)
    except BaseException as exc:
        conn.send(("init_error", repr(exc)))
        conn.close()
        return
    timeout_s, retries, backoff_s, span = guard
    conn.send(("ready",))
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            index, item_id, payload = message
            outcome = _run_one(
                index, item_id, payload, task, timeout_s, retries,
                backoff_s, span,
            )
            conn.send(("done", outcome))
    except (KeyboardInterrupt, EOFError):
        return
    state = _worker_obs_state()
    if state:
        conn.send(("metrics", state))
    conn.send(("exit",))
    conn.close()


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


def _pick_context(mp_context):
    if mp_context is not None:
        return mp.get_context(mp_context) if isinstance(mp_context, str) else mp_context
    # fork keeps task callables out of pickle (tools load as scripts)
    # and inherits warm imports; spawn is the portable fallback.
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def _hard_budget(timeout_s: Optional[float], retries: int,
                 backoff_s: float, hang_grace_s: float) -> Optional[float]:
    """Parent-side SIGKILL deadline per item (None = no hang watch)."""
    if not timeout_s or timeout_s <= 0:
        return None
    nominal = timeout_s * (retries + 1) + backoff_s * (2 ** max(retries, 0))
    return nominal * HARD_BUDGET_FACTOR + hang_grace_s


def _resolve_hang_budget(
    hang_budget_s: Optional[float],
    timeout_s: Optional[float],
    retries: int,
    backoff_s: float,
    hang_grace_s: float,
) -> Optional[float]:
    """Effective hang-watch budget: explicit kwarg > env var > computed.

    An explicit or env value <= 0 disables the hang watch outright; an
    unparseable env value is ignored (announced via a trace event) and
    the computed budget applies.
    """
    if hang_budget_s is not None:
        return float(hang_budget_s) if hang_budget_s > 0 else None
    raw = os.environ.get(ENV_HANG_BUDGET)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            import repro.obs as obs

            obs.trace_event("parallel.bad_hang_budget", value=raw)
        else:
            return value if value > 0 else None
    return _hard_budget(timeout_s, retries, backoff_s, hang_grace_s)


class _Worker:
    """Parent-side handle: process, channel, and the item it holds."""

    __slots__ = ("proc", "conn", "assigned", "finished")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        #: (index, item_id, dispatch_time) while an item is in flight.
        self.assigned: Optional[Tuple[int, str, float]] = None
        self.finished = False


def run_items(
    items: Sequence[Tuple[str, Any]],
    task: Callable[[Any], Any],
    jobs: int = 1,
    *,
    worker_init: Optional[Callable[[Any], None]] = None,
    init_arg: Any = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.05,
    span: Optional[str] = None,
    on_outcome: Optional[Callable[[ItemOutcome], None]] = None,
    hang_grace_s: float = DEFAULT_HANG_GRACE_S,
    hang_budget_s: Optional[float] = None,
    mp_context=None,
) -> List[ItemOutcome]:
    """Run ``task(payload)`` for every ``(item_id, payload)`` item.

    With ``jobs <= 1`` everything runs in-process (the serial baseline);
    otherwise a pool of ``jobs`` worker processes pulls items as they
    free up.  Either way the returned list is ordered by submission
    index and contains exactly one :class:`ItemOutcome` per item: a
    failing, hanging, or dying item is *quarantined* (``ok=False`` with
    the error recorded) and never takes the rest of the batch down.

    ``worker_init(init_arg)`` runs once per worker before any item (and
    once in-process for the serial path) — use it to warm per-process
    caches.  ``timeout_s``/``retries``/``backoff_s`` are the per-item
    :func:`~repro.runtime.guard.run_guarded` parameters; because each
    worker runs items on its own main thread, the deadline actually
    preempts there.  ``span`` names the per-item trace span (e.g.
    ``"sweep.item"``).  ``on_outcome`` is called in the parent for every
    outcome in *completion* order — checkpointing hooks go here.

    A worker that dies mid-item is detected via EOF on its channel; the
    item it held is quarantined and a replacement worker is spawned if
    undispatched work remains.  A worker whose item overruns the
    enforceable budget by :data:`HARD_BUDGET_FACTOR` plus
    ``hang_grace_s`` is SIGKILLed and handled the same way (this only
    triggers when the in-worker SIGALRM guard was itself defeated, e.g.
    by signal-blocking C code).  ``hang_budget_s`` (or the
    :data:`ENV_HANG_BUDGET` environment variable) overrides that
    computed budget with an absolute per-item wall-clock cap — it
    applies even with no ``timeout_s``, which is how long soak runs
    bound a stalled pool; a stall emits a ``parallel.stalled`` trace
    event carrying every worker's in-flight item before the kill, so
    the stall is diagnosable from the trace alone.
    """
    items = [(str(item_id), payload) for item_id, payload in items]
    if jobs is None:
        jobs = 1
    if retries < 0:
        raise BuildError("retries must be >= 0")
    if not items:
        return []
    if jobs <= 1 or len(items) == 1:
        if worker_init is not None:
            worker_init(init_arg)
        outcomes = []
        for index, (item_id, payload) in enumerate(items):
            outcome = _run_one(
                index, item_id, payload, task, timeout_s, retries,
                backoff_s, span,
            )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes
    return _run_pool(
        items, task, min(int(jobs), len(items)),
        worker_init, init_arg, timeout_s, retries, backoff_s, span,
        on_outcome, hang_grace_s, hang_budget_s, mp_context,
    )


def _run_pool(
    items, task, jobs, worker_init, init_arg, timeout_s, retries,
    backoff_s, span, on_outcome, hang_grace_s, hang_budget_s, mp_context,
) -> List[ItemOutcome]:
    import repro.obs as obs

    ctx = _pick_context(mp_context)
    guard = (timeout_s, retries, backoff_s, span)
    obs_cfg = _parent_obs_config()
    hard_budget = _resolve_hang_budget(
        hang_budget_s, timeout_s, retries, backoff_s, hang_grace_s
    )

    def spawn() -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, task, worker_init, init_arg, guard, obs_cfg),
            daemon=True,
        )
        proc.start()
        # Close the parent's copy of the child end, else the pipe never
        # reports EOF when the worker dies.
        child_conn.close()
        return _Worker(proc, parent_conn)

    workers: List[_Worker] = [spawn() for _ in range(jobs)]
    resolved: Dict[int, ItemOutcome] = {}
    next_index = 0  # first item not yet dealt to a worker
    init_error: Optional[str] = None

    def resolve(outcome: ItemOutcome) -> None:
        if outcome.index in resolved:
            return
        resolved[outcome.index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    def dispatch(worker: _Worker) -> None:
        """Deal the next undispatched item (or the stop sentinel)."""
        nonlocal next_index
        if next_index < len(items):
            index = next_index
            next_index += 1
            item_id, payload = items[index]
            worker.assigned = (index, item_id, time.monotonic())
            try:
                worker.conn.send((index, item_id, payload))
            except (BrokenPipeError, OSError):
                # The worker died (e.g. a kill storm) between its last
                # message and this hand-off.  Nothing was delivered, so
                # put the item back for the replacement worker instead
                # of quarantining an answer that was never attempted.
                worker.assigned = None
                next_index = index
                retire(worker)
        else:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                retire(worker)

    def retire(worker: _Worker, reason: Optional[str] = None) -> None:
        """Handle a dead/killed worker: quarantine its item, replenish."""
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - zombie teardown
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
        if reason is None:
            reason = (
                f"worker died mid-item (pid {worker.proc.pid}, "
                f"exitcode {worker.proc.exitcode})"
            )
        worker.conn.close()
        workers.remove(worker)
        if worker.assigned is not None:
            index, item_id, started = worker.assigned
            worker.assigned = None
            resolve(ItemOutcome(
                index=index, id=item_id, ok=False,
                error=reason, attempts=1, guarded=True,
                duration_s=time.monotonic() - started,
                pid=worker.proc.pid,
            ))
            obs.trace_event("parallel.worker_lost", item=item_id,
                            pid=worker.proc.pid, reason=reason)
        if next_index < len(items) and len(workers) < jobs:
            workers.append(spawn())

    def handle(worker: _Worker, message) -> None:
        nonlocal init_error
        kind = message[0]
        if kind == "ready":
            dispatch(worker)
        elif kind == "done":
            worker.assigned = None
            resolve(message[1])
            dispatch(worker)
        elif kind == "metrics":
            if obs.enabled():
                obs.registry().merge_state(message[1])
        elif kind == "exit":
            worker.finished = True
        elif kind == "init_error":
            init_error = message[1]

    try:
        while len(resolved) < len(items):
            active = [w for w in workers if not w.finished]
            if not active:  # pragma: no cover - every replenish failed
                for index in range(len(items)):
                    if index not in resolved:
                        resolve(ItemOutcome(
                            index=index, id=items[index][0], ok=False,
                            error="worker pool exhausted", attempts=0,
                        ))
                break
            ready = _conn_wait([w.conn for w in active], timeout=0.05)
            by_conn = {w.conn: w for w in active}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    retire(worker)
                    continue
                except Exception as exc:  # garbled frame from a dying peer
                    retire(
                        worker,
                        f"worker channel corrupted (pid {worker.proc.pid}): "
                        f"{exc!r}",
                    )
                    continue
                handle(worker, message)
            if init_error is not None:
                raise RuntimeError(
                    f"parallel worker initialization failed: {init_error}"
                )
            if hard_budget is not None:
                now = time.monotonic()
                for worker in list(workers):
                    held = worker.assigned
                    if held and now - held[2] > hard_budget:
                        obs.trace_event(
                            "parallel.stalled",
                            hard_budget_s=hard_budget,
                            stalled_item=held[1],
                            stalled_pid=worker.proc.pid,
                            stalled_elapsed_s=now - held[2],
                            in_flight=[
                                {"pid": w.proc.pid, "item": w.assigned[1],
                                 "elapsed_s": now - w.assigned[2]}
                                for w in workers if w.assigned is not None
                            ],
                        )
                        worker.proc.kill()
                        retire(
                            worker,
                            f"worker hung past hard budget "
                            f"({hard_budget:.1f}s) and was killed "
                            f"(pid {worker.proc.pid})",
                        )
        # All items resolved: drain teardown traffic (metrics, exits)
        # and let the workers leave.
        deadline = time.monotonic() + 10.0
        while (any(not w.finished for w in workers)
               and time.monotonic() < deadline):
            pending = [w for w in workers if not w.finished]
            ready = _conn_wait([w.conn for w in pending], timeout=0.05)
            by_conn = {w.conn: w for w in pending}
            for conn in ready:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except Exception:
                    worker.finished = True
                    continue
                handle(worker, message)
        for worker in workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck teardown
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
    finally:
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.kill()
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if obs.enabled():
            obs.merge_trace_shards()
    return [resolved[i] for i in range(len(items))]
