"""Network 3 — the fish binary sorter (Section III-C, Fig. 7).

A time-multiplexed (Model B) binary sorter:

1. the input is split arbitrarily into ``k`` groups of ``n/k`` elements;
2. each group passes through an ``(n, n/k)``-multiplexer into a *single*
   ``n/k``-input binary sorter (a mux-merger sorter) and out through an
   ``(n/k, n)``-demultiplexer — sequentially, or pipelined one group per
   clock;
3. the resulting k-sorted sequence is merged by an ``n``-input k-way
   mux-merger (:class:`repro.core.kway.KWayMuxMerger`).

With ``k = lg n`` the paper claims (eqs. 17-26):

* cost ``C(n, lg n) <= 17n + o(n)`` — linear, the headline result;
* depth ``O(lg^2 n)``;
* sorting time ``O(lg^3 n)`` unpipelined, ``O(lg^2 n)`` with the groups
  pipelined through the single small sorter.

Every phase runs on real netlists; timing follows the paper's unit-delay
accounting via explicit clock arithmetic (parallel branches join on max).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..errors import BuildError, SimulationError
from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate, simulate_payload
from ..components.demux import group_demultiplexer
from ..components.mux import group_multiplexer
from .kway import KWayMuxMerger, PhaseCost
from .mux_merger import build_mux_merger_sorter


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise BuildError(f"expected a power of two, got {n}")
    return n.bit_length() - 1


def fish_sort_behavioral(bits, k: Optional[int] = None) -> np.ndarray:
    """NumPy oracle of Network 3: sort k groups, then k-way merge."""
    from .kway import kway_merge_behavioral

    bits = np.asarray(bits, dtype=np.uint8).ravel()
    n = bits.size
    kk = default_k(n) if k is None else k
    g = n // kk
    staged = np.concatenate(
        [np.sort(bits[i * g : (i + 1) * g]) for i in range(kk)]
    )
    return kway_merge_behavioral(staged, kk)


def fish_time_model(n: int, k: int, pipelined: bool = False) -> float:
    """Closed-form sorting-time model from eqs. (22)-(26).

    Unpipelined (eq. 22): ``k lg^2(n/k) + lg(n/k) + lg n lg k`` classes;
    pipelined (eq. 25): ``lg^2(n/k) + k + lg k + lg n lg k``.  Constants
    set to 1 — callers compare *shape* (ratios bounded), as the paper's
    O-notation licenses.
    """
    import math

    lg = math.log2
    g = n / k
    if pipelined:
        return lg(g) ** 2 + k + lg(k) + lg(n) * lg(k)
    return k * lg(g) ** 2 + lg(g) + lg(n) * lg(k)


def default_k(n: int) -> int:
    """The paper's cost-minimizing choice ``k = lg n`` (rounded to a
    power of two so the k-way machinery stays power-of-two throughout)."""
    lg_n = _lg(n)
    k = 1 << max(1, (lg_n.bit_length() - 1))
    while k * 2 <= lg_n:
        k *= 2
    return max(2, min(k, n // 2))


@dataclass(frozen=True)
class SortReport:
    """Outcome of one fish sort: result bits plus timing breakdown."""

    n: int
    k: int
    pipelined: bool
    sorting_time: int
    phase1_time: int
    merge_time: int


class FishSorter:
    """Network 3: O(n)-cost time-multiplexed adaptive binary sorter.

    ``group_sorter`` selects the n/k-input sorter the groups multiplex
    through — "any binary sorting network including those described in
    the previous subsection can be used in this kind of multiplexed
    sorting" (Section III-C).  ``"mux_merger"`` (default) gives the
    paper's cost bound; ``"prefix"`` and ``"batcher"`` are the ablation
    choices.
    """

    def __init__(
        self, n: int, k: Optional[int] = None, group_sorter: str = "mux_merger"
    ) -> None:
        if n < 4 or n & (n - 1):
            raise BuildError(f"n must be a power of two >= 4, got {n}")
        self.n = n
        self.k = default_k(n) if k is None else k
        k = self.k
        if k < 2 or k & (k - 1) or n % k or n // k < 2:
            raise BuildError(
                f"k must be a power of two with 2 <= k <= n/2, got {k}"
            )
        self.group = n // k
        self.lg_k = _lg(k)
        self.group_sorter_kind = group_sorter
        if group_sorter == "mux_merger":
            self.group_sorter = build_mux_merger_sorter(self.group)
        elif group_sorter == "prefix":
            from .prefix_sorter import build_prefix_sorter

            self.group_sorter = build_prefix_sorter(self.group)
        elif group_sorter == "batcher":
            from ..baselines.batcher import build_odd_even_merge_sorter

            self.group_sorter = build_odd_even_merge_sorter(self.group)
        else:
            raise BuildError(f"unknown group sorter {group_sorter!r}")
        # (n, n/k)-multiplexer front end
        b = CircuitBuilder(f"fish-mux-{n}")
        wires = b.add_inputs(n)
        sel = b.add_inputs(self.lg_k)
        b.tag_control(*sel)  # the group-select steering inputs
        self.input_mux = b.build(group_multiplexer(b, wires, self.group, sel))
        # (n/k, n)-demultiplexer back end
        b = CircuitBuilder(f"fish-demux-{n}")
        wires = b.add_inputs(self.group)
        sel = b.add_inputs(self.lg_k)
        b.tag_control(*sel)
        self.output_demux = b.build(group_demultiplexer(b, wires, k, sel))
        self.merger = KWayMuxMerger(n, k)

    # -- fault-injection hook ---------------------------------------------------

    def clone_with_group_sorter(self, netlist: Netlist) -> "FishSorter":
        """Return a copy of this sorter with ``netlist`` as the group sorter.

        The time-shared group sorter is the single point of failure of
        Model B hardware — one physical fault corrupts every group that
        passes through it.  Fault campaigns use this hook to substitute a
        mutated netlist (see :mod:`repro.circuits.faults`) while reusing
        the mux/demux/merger stages unchanged.
        """
        if len(netlist.inputs) != len(self.group_sorter.inputs):
            raise BuildError(
                f"group sorter needs {len(self.group_sorter.inputs)} inputs, "
                f"got {len(netlist.inputs)}"
            )
        clone = object.__new__(FishSorter)
        clone.__dict__.update(self.__dict__)
        clone.group_sorter = netlist
        return clone

    # -- cost ------------------------------------------------------------------

    def inventory(self) -> List[PhaseCost]:
        """Full hardware inventory (cost per physical component)."""
        inv = [
            PhaseCost(f"(n,n/k)-mux(n={self.n})",
                      self.input_mux.cost(), self.input_mux.depth()),
            PhaseCost(f"group-sorter(n/k={self.group})",
                      self.group_sorter.cost(), self.group_sorter.depth()),
            PhaseCost(f"(n/k,n)-demux(n={self.n})",
                      self.output_demux.cost(), self.output_demux.depth()),
        ]
        inv.extend(self.merger.inventory())
        return inv

    def cost(self) -> int:
        """Total bit-level cost (the paper's eq. 17 bounds this by
        ``2n + 4(n/k) lg(n/k) + 11n + k lg(n/k) + 4k lg k lg(n/k) + 4k lg k``)."""
        return sum(p.cost for p in self.inventory())

    def cost_bound_paper(self) -> float:
        """Right-hand side of eq. (17) for this (n, k)."""
        import math

        n, k = self.n, self.k
        lg = math.log2
        return (
            2 * n
            + 4 * (n / k) * lg(n / k)
            + 11 * n
            + k * lg(n / k)
            + 4 * k * lg(k) * lg(n / k)
            + 4 * k * lg(k)
        )

    # -- sorting ------------------------------------------------------------------

    def sort(self, bits, pipelined: bool = False) -> Tuple[np.ndarray, SortReport]:
        """Sort ``n`` bits; returns ``(sorted_bits, report)``.

        Phase 1 runs the ``k`` groups through the single ``n/k``-input
        sorter — sequentially (each pass charged mux + sorter + demux
        depth) or pipelined (one group per clock through the segmented
        sorter).  Phase 2 is the k-way merge.
        """
        out, _, report = self.sort_with_payload(bits, None, pipelined=pipelined)
        return out, report

    def sort_cycle_accurate(self, bits, transients=()) -> Tuple[np.ndarray, SortReport]:
        """Pipelined sort with phase 1 on a real register-transfer pipeline.

        Instead of charging the pipelined makespan algebraically, this
        streams the ``k`` groups through a
        :class:`~repro.circuits.sequential.PipelinedNetlist` built from
        the group sorter — genuine per-cycle register state — and charges
        the *measured* makespan.  Functionally and temporally identical
        to ``sort(..., pipelined=True)`` (asserted by tests), it exists
        to demonstrate Model B's clocked semantics are real, not
        notational.

        ``transients`` is an optional sequence of ``(wire, cycle)``
        single-cycle bit flips injected into the pipeline's register
        state (see :class:`~repro.circuits.sequential.PipelinedNetlist`);
        fault campaigns use it to model per-cycle glitches that corrupt
        only the group in flight at that clock.
        """
        from ..circuits.sequential import PipelinedNetlist

        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if bits.size != self.n:
            raise SimulationError(f"expected {self.n} bits, got {bits.size}")
        n, k, g = self.n, self.k, self.group
        groups = [
            bits[i * g : (i + 1) * g].tolist() for i in range(k)
        ]
        pipeline = PipelinedNetlist(self.group_sorter, transients=transients)
        sorted_groups, makespan = pipeline.run(groups)
        staged = np.array(
            [bit for grp in sorted_groups for bit in grp], dtype=np.uint8
        )
        phase1 = self.input_mux.depth() + makespan + self.output_demux.depth()
        merged, _, finish = self.merger.merge(
            staged, start=phase1, pipelined=True
        )
        report = SortReport(
            n=n,
            k=k,
            pipelined=True,
            sorting_time=finish,
            phase1_time=phase1,
            merge_time=finish - phase1,
        )
        return merged, report

    def sort_with_payload(
        self, bits, payloads, pipelined: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray], SortReport]:
        """Like :meth:`sort`, but carries an int payload on every input.

        This is what makes the fish sorter usable as a *packet-switched*
        concentrator (Section IV): payloads ride the same switch settings
        the tags do, through every multiplexed phase.
        """
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if bits.size != self.n:
            raise SimulationError(f"expected {self.n} bits, got {bits.size}")
        if payloads is not None:
            payloads = np.asarray(payloads, dtype=np.int64).ravel()
            if payloads.size != self.n:
                raise SimulationError("payloads must match the input length")
        n, k, g = self.n, self.k, self.group

        # ---- phase 1: time-multiplex groups through the small sorter.
        # The k cycles are functionally independent (the timeline below
        # still charges them as clocked passes), so each netlist runs
        # once on a k-row batch instead of k single-row calls — the
        # compiled engine evaluates all cycles of the dispatch loop in
        # one fused pass.
        mux_d = self.input_mux.depth()
        demux_d = self.output_demux.depth()
        sorter_d = self.group_sorter.depth()
        from ..circuits.simulate import exhaustive_inputs

        sels = exhaustive_inputs(self.lg_k)  # row i = counter value i
        mux_in = np.hstack([np.tile(bits, (k, 1)), sels])
        if payloads is None:
            groups = simulate(self.input_mux, mux_in)
            group_pays = None
        else:
            no_pay = np.full((k, self.lg_k), -1, dtype=np.int64)
            mux_pays = np.hstack([np.tile(payloads, (k, 1)), no_pay])
            groups, group_pays = simulate_payload(self.input_mux, mux_in, mux_pays)
        if payloads is None:
            sorted_groups = simulate(self.group_sorter, groups)
            sorted_pays = None
        else:
            sorted_groups, sorted_pays = simulate_payload(
                self.group_sorter, groups, group_pays
            )
        dem_in = np.hstack([sorted_groups, sels])
        # Row i of the demux output only matters on its own group's slice
        # [i*g, (i+1)*g) — gather those diagonal blocks into the staged
        # k-sorted sequence.
        rows = np.arange(k)[:, None]
        cols = (np.arange(k) * g)[:, None] + np.arange(g)[None, :]
        if payloads is None:
            routed = simulate(self.output_demux, dem_in)
            staged_pays = None
        else:
            routed, routed_pays = simulate_payload(
                self.output_demux, dem_in, np.hstack([sorted_pays, no_pay])
            )
            staged_pays = np.ascontiguousarray(routed_pays[rows, cols]).reshape(n)
        staged = np.ascontiguousarray(routed[rows, cols]).reshape(n)
        if pipelined:
            phase1 = mux_d + (k - 1) + sorter_d + demux_d
        else:
            phase1 = k * (mux_d + sorter_d + demux_d)

        # ---- phase 2: k-way merge of the k-sorted sequence
        merged, merged_pays, finish = self.merger.merge(
            staged, start=phase1, pipelined=pipelined, payloads=staged_pays
        )
        report = SortReport(
            n=n,
            k=k,
            pipelined=pipelined,
            sorting_time=finish,
            phase1_time=phase1,
            merge_time=finish - phase1,
        )
        return merged, merged_pays, report
