"""Balanced merging block and the alternative odd-even merge sorter (Fig. 4).

The *balanced merging block* of Dowd, Perl, Rudolph, and Saks applies a
stage of ``n/2`` comparators on the "balanced" pairs ``(i, n-1-i)`` and
recurses on both halves.  For a binary input in ``A_n`` (Definition 1),
Theorem 2 guarantees that after the first stage one half is clean and the
other is in ``A_{n/2}``, and that every element of the upper half is at
most every element of the lower half — so the recursion sorts.  Cost
``(n/2) lg n``, depth ``lg n``.

Cascading this with two recursively built half-size sorters and a shuffle
yields the paper's Fig. 4(b) "alternative odd-even merge sorting
network", a *nonadaptive* binary sorter with ``O(n lg^2 n)`` cost that
Network 1 then improves to ``O(n lg n)`` by replacing the merging block
with the adaptive patch-up network.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.shuffle import two_way_shuffle


def balanced_comparator_stage(
    b: CircuitBuilder, wires: Sequence[int]
) -> List[int]:
    """One stage of comparators on pairs ``(i, n-1-i)``; min keeps index i."""
    n = len(wires)
    if n % 2:
        raise ValueError(f"balanced stage needs an even input count, got {n}")
    out = list(wires)
    for i in range(n // 2):
        lo, hi = b.comparator(wires[i], wires[n - 1 - i])
        out[i], out[n - 1 - i] = lo, hi
    return out


def balanced_merging_block(
    b: CircuitBuilder, wires: Sequence[int]
) -> List[int]:
    """Recursive balanced merging block: sorts any ``A_n`` member."""
    n = len(wires)
    if n == 1:
        return list(wires)
    staged = balanced_comparator_stage(b, wires)
    upper = balanced_merging_block(b, staged[: n // 2])
    lower = balanced_merging_block(b, staged[n // 2 :])
    return upper + lower


def build_balanced_merging_block(n: int) -> Netlist:
    """Standalone balanced merging block netlist for ``n`` inputs."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    b = CircuitBuilder(f"balanced-merging-block-{n}")
    wires = b.add_inputs(n)
    return b.build(balanced_merging_block(b, wires))


def alternative_oem_sorter(
    b: CircuitBuilder, wires: Sequence[int]
) -> List[int]:
    """Fig. 4(b): recursively sort halves, shuffle, balanced-merge."""
    n = len(wires)
    if n == 1:
        return list(wires)
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    upper = alternative_oem_sorter(b, wires[: n // 2])
    lower = alternative_oem_sorter(b, wires[n // 2 :])
    shuffled = two_way_shuffle(upper + lower)
    return balanced_merging_block(b, shuffled)


def build_alternative_oem_sorter(n: int) -> Netlist:
    """Fig. 4(b) binary sorter netlist: ``O(n lg^2 n)`` cost, nonadaptive."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    b = CircuitBuilder(f"alternative-oem-sorter-{n}")
    wires = b.add_inputs(n)
    return b.build(alternative_oem_sorter(b, wires))


# -- behavioral (oracle) versions --------------------------------------------


def balanced_stage_behavioral(bits: np.ndarray) -> np.ndarray:
    """NumPy oracle of :func:`balanced_comparator_stage`."""
    n = bits.size
    out = bits.copy()
    left = bits[: n // 2]
    right = bits[n // 2 :][::-1]
    out[: n // 2] = np.minimum(left, right)
    out[n // 2 :] = np.maximum(left, right)[::-1]
    return out


def balanced_merge_behavioral(bits: np.ndarray) -> np.ndarray:
    """NumPy oracle of :func:`balanced_merging_block`."""
    n = bits.size
    if n == 1:
        return bits.copy()
    staged = balanced_stage_behavioral(bits)
    return np.concatenate(
        [
            balanced_merge_behavioral(staged[: n // 2]),
            balanced_merge_behavioral(staged[n // 2 :]),
        ]
    )
