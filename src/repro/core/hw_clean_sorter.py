"""The clean sorter as a literal clocked circuit (Model B, Fig. 9).

:class:`repro.core.kway.CleanSorter` orchestrates the time-multiplexed
dispatch in Python with netlist passes per step.  This module instead
builds the whole thing as ONE synchronous circuit
(:class:`~repro.circuits.fsm.SequentialCircuit`) — the paper's "simple
sequential or clocked circuit" made explicit:

* **state**: a ``lg k``-bit step counter plus ``s`` output-accumulator
  register bits;
* **combinational core** (all real netlist elements):

  1. a bundle-carrying ``k``-input sorter sorts the blocks' leading bits
     carrying each block's *index* (as constant wires) — its output at
     position ``t`` is the id of the block to dispatch at step ``t``;
  2. a ``(k,1)``-multiplexer selects that id using the step counter —
     exactly the "(k,1)-multiplexer" of the paper's clean-sorter
     inventory;
  3. the ``(s, s/k)``-multiplexer fetches the block, the
     ``(s/k, s)``-demultiplexer routes it to output group ``t``;
  4. OR-accumulators fold the routed block into the output registers,
     and a half-adder chain increments the counter.

After ``k`` clock ticks the output registers hold the sorted sequence.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.fsm import SequentialCircuit
from ..components.demux import group_demultiplexer
from ..components.mux import group_multiplexer
from ..networks.carrying import carrying_sorter_lanes


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"expected a power of two, got {n}")
    return n.bit_length() - 1


class HardwareCleanSorter:
    """s-input k-way clean sorter as a single synchronous circuit."""

    def __init__(self, s: int, k: int) -> None:
        if k < 2 or k & (k - 1) or s % k:
            raise ValueError(f"need power-of-two k >= 2 dividing s, got s={s} k={k}")
        self.s, self.k = s, k
        self.block = s // k
        lg_k = self.lg_k = _lg(k)

        b = CircuitBuilder(f"hw-clean-sorter-{s}x{k}")
        # ---- state inputs: counter (LSB first), then output registers
        counter = b.add_inputs(lg_k)
        out_regs = b.add_inputs(s)
        # ---- external inputs: the clean k-sorted data
        data = b.add_inputs(s)

        # (1) carrying k-sorter over (leading bit, block index) bundles
        leading = [data[i * self.block] for i in range(k)]
        index_lanes: List[List[int]] = []
        for bit in range(lg_k):  # MSB first lanes
            index_lanes.append(
                [b.const((i >> (lg_k - 1 - bit)) & 1) for i in range(k)]
            )
        sorted_lanes = carrying_sorter_lanes(b, [leading] + index_lanes)
        # sorted_lanes[1 + bit][t] = bit of pi(t) (MSB first)

        # (2) (k,1)-multiplexer: select pi(counter)
        counter_msb_first = list(reversed(counter))
        src_bits_msb: List[int] = []
        for bit in range(lg_k):
            lane = [sorted_lanes[1 + bit][t] for t in range(k)]
            src_bits_msb.append(b.mux_tree(lane, counter_msb_first))

        # (3) fetch the block, route it to group `counter`
        grabbed = group_multiplexer(b, data, self.block, src_bits_msb)
        routed = group_demultiplexer(b, grabbed, k, counter_msb_first)

        # (4) accumulate into output registers; increment the counter
        next_out = [b.or_(out_regs[i], routed[i]) for i in range(s)]
        next_counter: List[int] = []
        carry = b.const(1)
        for bit in counter:
            next_counter.append(b.xor(bit, carry))
            carry = b.and_(bit, carry)

        netlist = b.build(next_counter + next_out + list(next_out))
        self.circuit = SequentialCircuit(netlist, n_state=lg_k + s)

    # -- accounting ----------------------------------------------------------------

    def cost(self) -> int:
        """Combinational cost of the clocked core."""
        return self.circuit.combinational_cost()

    def register_bits(self) -> int:
        return self.circuit.register_bits()

    def sorting_time(self) -> int:
        """k clock ticks of the core's cycle time, in unit delays."""
        return self.k * self.circuit.cycle_time()

    # -- operation ------------------------------------------------------------------

    def sort(self, bits) -> Tuple[np.ndarray, int]:
        """Run the machine for k ticks; returns (sorted, clock_ticks)."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if bits.size != self.s:
            raise ValueError(f"expected {self.s} bits, got {bits.size}")
        self.circuit.reset()
        out = self.circuit.run(bits.tolist(), self.k)
        return np.array(out, dtype=np.uint8), self.circuit.cycles
