"""Programmatic derivation of Table I (mux-merger swap settings).

The printed Table I in the available scan of the paper is partially
garbled, so :mod:`repro.core.mux_merger` documents a hand derivation.
This module *searches* the full space of four-way-swapper settings and
returns every assignment that realizes the merger, making the derivation
checkable rather than asserted:

* for each select case, the IN-SWAP must put the two non-clean quarters
  (in either order) into the bottom two slots, and the two clean
  quarters (in either order) into the top two slots — 4 candidate
  permutations per case;
* given an IN choice, the OUT-SWAP is *determined* by where the final
  layout needs each quarter, except that identical clean quarters
  (cases 00 and 11) may also swap with each other — so 1 or 2 candidates.

Every combination is then verified exhaustively against all bisorted
inputs at n = 16.  The shipped tables are asserted to be members of the
valid set (see ``tests/test_table1_derivation.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..circuits.simulate import simulate
from .mux_merger import build_mux_merger
from .sequences import is_sorted_binary, sorted_sequence

Perm = Tuple[int, int, int, int]

#: per select case: (clean quarter indices, pair quarter indices, final
#: layout as a list of slots: "c0"/"c1" = clean quarters in input order,
#: "m0"/"m1" = merged halves)
CASES: Dict[int, Tuple[Tuple[int, int], Tuple[int, int], List[str]]] = {
    0: ((0, 2), (1, 3), ["c0", "c1", "m0", "m1"]),  # zeros first
    1: ((0, 3), (1, 2), ["c0", "m0", "m1", "c1"]),
    2: ((2, 1), (0, 3), ["c0", "m0", "m1", "c1"]),  # c0 = q3 (zeros)
    3: ((1, 3), (0, 2), ["m0", "m1", "c0", "c1"]),
}


def candidate_in_perms(sel: int) -> List[Perm]:
    """IN-SWAP candidates: clean quarters on top, the pair at the bottom."""
    clean, pair, _ = CASES[sel]
    out: List[Perm] = []
    for top in itertools.permutations(clean):
        for bottom in itertools.permutations(pair):
            out.append((top[0], top[1], bottom[0], bottom[1]))
    return out


def matching_out_perms(sel: int, in_perm: Perm) -> List[Perm]:
    """OUT-SWAP candidates completing ``in_perm`` to the sorted layout.

    The OUT swapper sees [bypass0, bypass1, m0, m1] (the IN result with
    the bottom half merged) and must emit the case's final layout.  The
    merged halves are ordered (m0 then m1); clean quarters with *equal
    contents* are interchangeable.
    """
    clean, _, layout = CASES[sel]
    # where each symbolic item currently sits after the merge
    position_of = {"m0": 2, "m1": 3}
    # bypass slots hold the clean quarters in in_perm order
    bypass = [in_perm[0], in_perm[1]]
    # symbolic names: c0/c1 = clean quarters in CASES order
    for i, name in enumerate(("c0", "c1")):
        q = clean[i]
        position_of[name] = bypass.index(q)
    variants = [position_of]
    if sel in (0, 3):  # both clean quarters identical: swappable
        swapped = dict(position_of)
        swapped["c0"], swapped["c1"] = position_of["c1"], position_of["c0"]
        variants.append(swapped)
    out: List[Perm] = []
    for pos in variants:
        perm = tuple(pos[layout[slot]] for slot in range(4))
        if perm not in out:
            out.append(perm)  # type: ignore[arg-type]
    return out  # type: ignore[return-value]


@dataclass(frozen=True)
class Table1Assignment:
    """One complete, verified Table I setting."""

    in_perms: Tuple[Perm, Perm, Perm, Perm]
    out_perms: Tuple[Perm, Perm, Perm, Perm]


def _verify(in_perms, out_perms, n: int = 16) -> bool:
    net = build_mux_merger(n, tuple(in_perms), tuple(out_perms))
    h = n // 2
    for zu in range(h + 1):
        for zl in range(h + 1):
            x = np.concatenate([sorted_sequence(h, zu), sorted_sequence(h, zl)])
            out = simulate(net, x[None, :])[0]
            if not is_sorted_binary(out) or out.sum() != x.sum():
                return False
    return True


def derive_table1(verify_n: int = 16, max_results: int = 64) -> List[Table1Assignment]:
    """Search and exhaustively verify all Table I assignments.

    Per-case candidates multiply to ``prod(|IN_c| * |OUT_c|)``
    combinations; all structurally consistent ones are verified by
    simulation over every bisorted input of length ``verify_n``.
    """
    per_case: List[List[Tuple[Perm, Perm]]] = []
    for sel in range(4):
        options = []
        for ip in candidate_in_perms(sel):
            for op in matching_out_perms(sel, ip):
                options.append((ip, op))
        per_case.append(options)
    results: List[Table1Assignment] = []
    for combo in itertools.product(*per_case):
        in_perms = tuple(c[0] for c in combo)
        out_perms = tuple(c[1] for c in combo)
        if _verify(in_perms, out_perms, verify_n):
            results.append(Table1Assignment(in_perms, out_perms))
            if len(results) >= max_results:
                break
    return results
