"""Binary sequence classes from the paper (Definitions 1-5).

* :func:`in_A` — Definition 1's regular language ``A_n``: sequences made
  of a block of repeated ``00``/``11`` pairs, then a block of repeated
  ``01``/``10`` pairs, then a block of repeated ``00``/``11`` pairs.
  Theorem 1 shows that shuffling the concatenation of two sorted halves
  always lands in ``A_n``; Theorem 2 shows a balanced comparator stage
  maps ``A_n`` to (clean half, ``A_{n/2}`` half).
* :func:`is_clean` — Definition 2 (all elements identical).
* :func:`is_bisorted` — Definition 3 (both halves sorted).
* :func:`is_k_sorted` / :func:`is_clean_k_sorted` — Definitions 4-5.

Plus enumerators and random generators used by tests and hypothesis
strategies.  Sequences are anything convertible to a 1-D 0/1 NumPy array.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import BuildError, SimulationError

_A_PATTERN = re.compile(r"^((00)*|(11)*)((01)*|(10)*)((00)*|(11)*)$")


def as_bits(seq) -> np.ndarray:
    """Normalize to a 1-D uint8 array of 0/1 values."""
    arr = np.asarray(seq, dtype=np.uint8)
    if arr.ndim != 1:
        raise SimulationError(
            f"expected a 1-D sequence, got shape {arr.shape}"
        )
    if arr.size and arr.max() > 1:
        raise SimulationError("sequence contains non-binary values")
    return arr


def is_sorted_binary(seq) -> bool:
    """True iff the sequence is ascending (all 0's before all 1's)."""
    bits = as_bits(seq)
    return bool(np.all(np.diff(bits.astype(np.int8)) >= 0))


def is_clean(seq) -> bool:
    """Definition 2: all elements identical (all 0 or all 1)."""
    bits = as_bits(seq)
    return bits.size == 0 or bool(np.all(bits == bits[0]))


def is_bisorted(seq) -> bool:
    """Definition 3: each of the two halves is sorted."""
    bits = as_bits(seq)
    if bits.size % 2:
        raise BuildError("bisorted is defined for even lengths")
    h = bits.size // 2
    return is_sorted_binary(bits[:h]) and is_sorted_binary(bits[h:])


def is_k_sorted(seq, k: int) -> bool:
    """Definition 4: k equal-size sorted subsequences."""
    bits = as_bits(seq)
    if k <= 0 or bits.size % k:
        raise BuildError(f"cannot split length {bits.size} into {k} blocks")
    m = bits.size // k
    return all(is_sorted_binary(bits[i * m : (i + 1) * m]) for i in range(k))


def is_clean_k_sorted(seq, k: int) -> bool:
    """Definition 5: k equal-size *clean* subsequences."""
    bits = as_bits(seq)
    if k <= 0 or bits.size % k:
        raise BuildError(f"cannot split length {bits.size} into {k} blocks")
    m = bits.size // k
    return all(is_clean(bits[i * m : (i + 1) * m]) for i in range(k))


def in_A(seq) -> bool:
    """Definition 1: membership in the regular language ``A_n``.

    ``A_n = {0,1}^n ∩ ((00)*+(11)*)((01)*+(10)*)((00)*+(11)*)``.
    Zero multiples of each block are allowed; every sorted sequence of
    even length is a member.
    """
    bits = as_bits(seq)
    return bool(_A_PATTERN.match("".join("01"[b] for b in bits)))


def enumerate_A(n: int) -> List[np.ndarray]:
    """All members of ``A_n`` (deduplicated), in lexicographic order.

    Enumerates block-length splits directly rather than filtering all
    ``2**n`` strings, so it stays cheap for the sizes tests use.
    """
    if n % 2:
        raise BuildError("A_n is defined for even n")
    seen = set()
    out: List[np.ndarray] = []
    for a in range(0, n + 1, 2):
        for b in range(0, n - a + 1, 2):
            c = n - a - b
            for pa in ("00", "11") if a else ("",):
                for pb in ("01", "10") if b else ("",):
                    for pc in ("00", "11") if c else ("",):
                        s = pa * (a // 2) + pb * (b // 2) + pc * (c // 2)
                        if s not in seen:
                            seen.add(s)
                            out.append(
                                np.frombuffer(s.encode(), dtype=np.uint8) - ord("0")
                            )
    out.sort(key=lambda v: v.tolist())
    return out


def enumerate_bisorted(n: int) -> Iterator[np.ndarray]:
    """All bisorted sequences of length ``n`` (Definition 3's space)."""
    if n % 2:
        raise BuildError("bisorted needs even n")
    h = n // 2
    for zu in range(h + 1):
        for zl in range(h + 1):
            yield np.concatenate(
                [sorted_sequence(h, zu), sorted_sequence(h, zl)]
            )


def enumerate_k_sorted(n: int, k: int) -> Iterator[np.ndarray]:
    """All k-sorted sequences of length ``n`` (Definition 4's space).

    There are ``(n/k + 1) ** k`` of them — use for small n, k.
    """
    if k <= 0 or n % k:
        raise BuildError(f"cannot split length {n} into {k} blocks")
    m = n // k
    import itertools

    for counts in itertools.product(range(m + 1), repeat=k):
        yield np.concatenate([sorted_sequence(m, z) for z in counts])


def enumerate_clean_k_sorted(n: int, k: int) -> Iterator[np.ndarray]:
    """All clean k-sorted sequences of length ``n`` (Definition 5)."""
    if k <= 0 or n % k:
        raise BuildError(f"cannot split length {n} into {k} blocks")
    m = n // k
    import itertools

    for bits in itertools.product((0, 1), repeat=k):
        yield np.repeat(np.array(bits, dtype=np.uint8), m)


def count_A(n: int) -> int:
    """|A_n| — the number of distinct members of Definition 1's language.

    Computed exactly by dynamic programming over the minimal DFA of the
    defining regular expression (subset construction over a small NFA
    with one branch per choice of block patterns), so it scales to n in
    the thousands.  Cross-checked against :func:`enumerate_A` in tests.
    """
    if n < 0 or n % 2:
        raise BuildError("A_n is defined for even n >= 0")
    # NFA: for each branch (pa, pb, pc) in {00,11} x {01,10} x {00,11},
    # states track (part, offset) with epsilon moves between parts.
    # We enumerate branch NFAs jointly via a frozenset-of-states DP.
    branches = [
        (pa, pb, pc)
        for pa in ("00", "11")
        for pb in ("01", "10")
        for pc in ("00", "11")
    ]
    # state = (branch_index, part 0..2, offset 0..1); start of each part
    # is also reachable by skipping previous (possibly empty) parts.
    def closure(states):
        out = set(states)
        changed = True
        while changed:
            changed = False
            for (bi, part, off) in list(out):
                if off == 0 and part < 2:
                    nxt = (bi, part + 1, 0)
                    if nxt not in out:
                        out.add(nxt)
                        changed = True
        return frozenset(out)

    def step(states, bit):
        ch = "01"[bit]
        nxt = set()
        for (bi, part, off) in states:
            pattern = branches[bi][part]
            if pattern[off] == ch:
                nxt.add((bi, part, (off + 1) % 2))
        return closure(nxt)

    start = closure({(bi, 0, 0) for bi in range(len(branches))})

    def accepting(states):
        return any(off == 0 and part == 2 for (_, part, off) in states) or any(
            off == 0 and part < 2 for (_, part, off) in states
        )

    # DP over string length with DFA-state (frozenset) keys
    from collections import defaultdict

    current = {start: 1}
    for _ in range(n):
        nxt: dict = defaultdict(int)
        for st, cnt in current.items():
            for bit in (0, 1):
                ns = step(st, bit)
                if ns:
                    nxt[ns] += cnt
        current = dict(nxt)
    return sum(cnt for st, cnt in current.items() if accepting(st))


def sorted_sequence(n: int, ones: int) -> np.ndarray:
    """The ascending binary sequence of length ``n`` with ``ones`` 1's."""
    if not 0 <= ones <= n:
        raise BuildError(f"ones={ones} out of range for n={n}")
    out = np.zeros(n, dtype=np.uint8)
    out[n - ones :] = 1
    return out


def random_sorted(n: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random sorted binary sequence of length ``n``."""
    return sorted_sequence(n, int(rng.integers(0, n + 1)))


def random_bisorted(n: int, rng: np.random.Generator) -> np.ndarray:
    """A random bisorted sequence of length ``n``."""
    if n % 2:
        raise BuildError("bisorted needs even n")
    h = n // 2
    return np.concatenate([random_sorted(h, rng), random_sorted(h, rng)])


def random_k_sorted(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """A random k-sorted sequence of length ``n``."""
    if k <= 0 or n % k:
        raise BuildError(f"cannot split length {n} into {k} blocks")
    m = n // k
    return np.concatenate([random_sorted(m, rng) for _ in range(k)])


def random_clean_k_sorted(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """A random clean k-sorted sequence of length ``n``."""
    if k <= 0 or n % k:
        raise BuildError(f"cannot split length {n} into {k} blocks")
    m = n // k
    blocks = [np.full(m, rng.integers(0, 2), dtype=np.uint8) for _ in range(k)]
    return np.concatenate(blocks)


def shuffle_concat(upper, lower) -> np.ndarray:
    """Two-way shuffle of the concatenation of two equal halves.

    This is the operation of Theorem 1: the result is in ``A_n`` whenever
    both halves are sorted.
    """
    xu, xl = as_bits(upper), as_bits(lower)
    if xu.size != xl.size:
        raise BuildError("halves must have equal length")
    out = np.empty(xu.size * 2, dtype=np.uint8)
    out[0::2] = xu
    out[1::2] = xl
    return out
