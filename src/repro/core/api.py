"""Convenience API: sort any-length bit sequences on any network.

The paper assumes power-of-two inputs "with no loss of generality"; this
module supplies the generality: inputs of arbitrary length are padded
with 1's up to the next power of two (padding 1's sort to the bottom and
are stripped), so downstream users get a plain ``sort_bits`` call.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate
from .fish_sorter import FishSorter
from .mux_merger import build_mux_merger_sorter
from .prefix_sorter import build_prefix_sorter

#: netlist cache shared by :func:`sort_bits` calls
_CACHE: Dict[Tuple[str, int], Union[Netlist, FishSorter]] = {}

NETWORKS = ("mux_merger", "prefix", "fish")


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n < 1:
        return 1
    return 1 << (n - 1).bit_length()


def make_sorter(n: int, network: str = "mux_merger"):
    """Build (and cache) a sorter instance for exactly ``n`` inputs.

    ``n`` must be a power of two here; :func:`sort_bits` handles padding.
    Returns a :class:`~repro.circuits.netlist.Netlist` for the
    combinational networks and a :class:`FishSorter` for ``"fish"``.
    """
    key = (network, n)
    if key not in _CACHE:
        if network == "mux_merger":
            _CACHE[key] = build_mux_merger_sorter(n)
        elif network == "prefix":
            _CACHE[key] = build_prefix_sorter(n)
        elif network == "fish":
            _CACHE[key] = FishSorter(n)
        else:
            raise ValueError(
                f"unknown network {network!r}; choose one of {NETWORKS}"
            )
    return _CACHE[key]


def sort_bits(
    bits, network: str = "mux_merger", pipelined: bool = False
) -> np.ndarray:
    """Sort a 0/1 sequence of any length on the chosen adaptive network.

    Pads with 1's to the next power of two, sorts, and strips the
    padding (1's are the maximal element, so the first ``len(bits)``
    outputs are exactly the sorted original sequence).
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and arr.max() > 1:
        raise ValueError("sort_bits expects a 0/1 sequence")
    if arr.size <= 1:
        return arr.copy()
    n = next_power_of_two(max(arr.size, 4 if network == "fish" else 2))
    padded = np.concatenate([arr, np.ones(n - arr.size, dtype=np.uint8)])
    sorter = make_sorter(n, network)
    if network == "fish":
        out, _ = sorter.sort(padded, pipelined=pipelined)
    else:
        out = simulate(sorter, padded[None, :])[0]
    return out[: arr.size]


def clear_cache() -> None:
    """Drop all cached sorter instances (frees memory in long sessions)."""
    _CACHE.clear()
