"""Convenience API: sort any-length bit sequences on any network.

The paper assumes power-of-two inputs "with no loss of generality"; this
module supplies the generality: inputs of arbitrary length are padded
with 1's up to the next power of two (padding 1's sort to the bottom and
are stripped), so downstream users get a plain ``sort_bits`` call.

Two serving-oriented features live here as well:

* the sorter cache is a **bounded, thread-safe LRU** — long-running
  services calling :func:`sort_bits` across many sizes/networks no
  longer grow memory without bound, and concurrent callers cannot race
  the build (``clear_cache`` / ``set_cache_limit`` / ``cache_info`` are
  the management hooks);
* ``sort_bits(..., supervised=True)`` routes the call through the
  :class:`repro.runtime.Supervisor` — the sort runs on self-checking
  hardware (:mod:`repro.circuits.checkers`) under a recovery policy, so
  a faulty netlist is detected online and the call still returns the
  correct answer via fallback;
* :func:`sort_bits_many` sorts a whole batch of sequences, optionally
  sharded over crash-isolated worker processes (``jobs=N``, via
  :mod:`repro.parallel`) with results in input order regardless of
  which worker sorted what.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate
from ..errors import BuildError, SimulationError
from .fish_sorter import FishSorter
from .mux_merger import build_mux_merger_sorter
from .prefix_sorter import build_prefix_sorter

#: netlist cache shared by :func:`sort_bits` calls — bounded LRU,
#: guarded by :data:`_CACHE_LOCK` (builds for large n take seconds; the
#: lock makes concurrent first-calls build once, not n_threads times).
_CACHE: "OrderedDict[Tuple[str, int], Union[Netlist, FishSorter]]" = OrderedDict()
_CACHE_LOCK = threading.RLock()
_CACHE_LIMIT = 32
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}

NETWORKS = ("mux_merger", "prefix", "fish")


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n < 1:
        return 1
    return 1 << (n - 1).bit_length()


def _build_sorter(n: int, network: str):
    if network == "mux_merger":
        return build_mux_merger_sorter(n)
    if network == "prefix":
        return build_prefix_sorter(n)
    if network == "fish":
        return FishSorter(n)
    raise BuildError(f"unknown network {network!r}; choose one of {NETWORKS}")


def make_sorter(n: int, network: str = "mux_merger"):
    """Build (and cache) a sorter instance for exactly ``n`` inputs.

    ``n`` must be a power of two here; :func:`sort_bits` handles padding.
    Returns a :class:`~repro.circuits.netlist.Netlist` for the
    combinational networks and a :class:`FishSorter` for ``"fish"``.
    Cached in a bounded thread-safe LRU (see :func:`cache_info`).
    """
    key = (network, n)
    with _CACHE_LOCK:
        sorter = _CACHE.get(key)
        if sorter is not None:
            _CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            return sorter
        # Build under the lock: concurrent first-calls must not each pay
        # the (multi-second at large n) construction, and an unknown
        # network name must fail before touching the cache.
        sorter = _build_sorter(n, network)
        _CACHE_STATS["misses"] += 1
        _CACHE[key] = sorter
        while len(_CACHE) > _CACHE_LIMIT:
            _CACHE.popitem(last=False)
            _CACHE_STATS["evictions"] += 1
        return sorter


def sort_bits(
    bits,
    network: str = "mux_merger",
    pipelined: bool = False,
    supervised: bool = False,
) -> np.ndarray:
    """Sort a 0/1 sequence of any length on the chosen adaptive network.

    Pads with 1's to the next power of two, sorts, and strips the
    padding (1's are the maximal element, so the first ``len(bits)``
    outputs are exactly the sorted original sequence).

    With ``supervised=True`` the sort runs through the shared
    :class:`repro.runtime.Supervisor` for this network: self-checking
    hardware, alarm watching, retry, and graceful degradation down to a
    behavioral fallback — the call returns a correct answer even when
    the cached netlist is faulty (see :func:`supervisor_stats`).
    """
    if supervised:
        from ..runtime import get_supervisor

        return get_supervisor(network).sort(bits, pipelined=pipelined)
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and arr.max() > 1:
        raise SimulationError("sort_bits expects a 0/1 sequence")
    if arr.size <= 1:
        return arr.copy()
    n = next_power_of_two(max(arr.size, 4 if network == "fish" else 2))
    padded = np.concatenate([arr, np.ones(n - arr.size, dtype=np.uint8)])
    sorter = make_sorter(n, network)
    if network == "fish":
        out, _ = sorter.sort(padded, pipelined=pipelined)
    else:
        out = simulate(sorter, padded[None, :])[0]
    return out[: arr.size]


def _batch_worker_init(arg) -> None:
    """Pre-warm each worker's sorter LRU for the sizes in the batch, so
    the (multi-second at large n) netlist builds happen once per worker
    instead of lazily inside the first guarded item."""
    network, sizes = arg
    for n in sizes:
        make_sorter(n, network)


def _sort_shard(payload) -> List[np.ndarray]:
    """Sort one contiguous shard of the batch (runs in a worker)."""
    network, pipelined, supervised, arrays = payload
    return [
        sort_bits(arr, network=network, pipelined=pipelined,
                  supervised=supervised)
        for arr in arrays
    ]


def sort_bits_many(
    seqs: Sequence,
    network: str = "mux_merger",
    pipelined: bool = False,
    supervised: bool = False,
    jobs: int = 1,
) -> List[np.ndarray]:
    """Sort many 0/1 sequences; results come back in input order.

    The batch equivalent of :func:`sort_bits` (same padding, same
    networks, same ``supervised`` routing).  With ``jobs > 1`` the batch
    is sharded over that many crash-isolated worker processes
    (:mod:`repro.parallel`); each worker sorts its shard with warm
    per-process sorter caches and deadlines that preempt on the worker's
    main thread.  Results are deterministic and identical to a serial
    call — parallelism never reorders or changes outputs.

    Unlike the sweep/campaign tools, a batch sort has no quarantine
    side-channel to report into, so a shard that fails (or whose worker
    dies) raises :class:`~repro.errors.SimulationError` naming the
    shard; partial results are never returned silently.
    """
    arrays = [np.asarray(s, dtype=np.uint8).ravel() for s in seqs]
    for arr in arrays:
        if arr.size and arr.max() > 1:
            raise SimulationError("sort_bits_many expects 0/1 sequences")
    if not arrays:
        return []
    if jobs is None or jobs <= 1 or len(arrays) == 1:
        return [
            sort_bits(arr, network=network, pipelined=pipelined,
                      supervised=supervised)
            for arr in arrays
        ]
    from ..parallel import run_items

    jobs = min(int(jobs), len(arrays))
    n_shards = min(len(arrays), jobs * 4)
    bounds = np.linspace(0, len(arrays), n_shards + 1, dtype=int)
    shards = [
        (f"shard{i}", (network, pipelined, supervised,
                       arrays[bounds[i]:bounds[i + 1]]))
        for i in range(n_shards)
        if bounds[i] < bounds[i + 1]
    ]
    min_pad = 4 if network == "fish" else 2
    sizes = sorted({
        next_power_of_two(max(arr.size, min_pad))
        for arr in arrays if arr.size > 1
    })
    outcomes = run_items(
        shards, _sort_shard, jobs=jobs,
        worker_init=_batch_worker_init, init_arg=(network, sizes),
        span="api.sort_shard",
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise SimulationError(
            f"sort_bits_many: {len(failed)} shard(s) failed; first: "
            f"{failed[0].id}: {failed[0].error}"
        )
    return [out for o in outcomes for out in o.value]


def clear_cache() -> None:
    """Drop all cached sorter instances and reset the hit/miss counters
    (frees memory in long sessions; used by tests for isolation)."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_STATS.update(hits=0, misses=0, evictions=0)


def set_cache_limit(limit: int) -> None:
    """Resize the LRU (evicting oldest entries if shrinking)."""
    global _CACHE_LIMIT
    if limit < 1:
        raise BuildError(f"cache limit must be >= 1, got {limit}")
    with _CACHE_LOCK:
        _CACHE_LIMIT = limit
        while len(_CACHE) > _CACHE_LIMIT:
            _CACHE.popitem(last=False)
            _CACHE_STATS["evictions"] += 1


def cache_info() -> Dict[str, int]:
    """Snapshot of the sorter LRU: size, limit, hits, misses, evictions."""
    with _CACHE_LOCK:
        return {
            "size": len(_CACHE),
            "limit": _CACHE_LIMIT,
            **_CACHE_STATS,
        }
