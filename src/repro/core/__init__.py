"""The paper's primary contribution: three adaptive binary sorting networks.

* Network 1 — :func:`~repro.core.prefix_sorter.build_prefix_sorter`
  (``O(n lg n)`` cost, prefix-adder steering).
* Network 2 — :func:`~repro.core.mux_merger.build_mux_merger_sorter`
  (``O(n lg n)`` cost, no adder).
* Network 3 — :class:`~repro.core.fish_sorter.FishSorter`
  (``O(n)`` cost, time-multiplexed).

Plus the sequence classes of Definitions 1-5 (:mod:`repro.core.sequences`)
and the shared substructures (balanced merging block, patch-up network,
k-way machinery).
"""

from .api import (cache_info, clear_cache, make_sorter,
                  next_power_of_two, set_cache_limit, sort_bits,
                  sort_bits_many)
from .balanced_merge import (
    balanced_merge_behavioral,
    balanced_merging_block,
    build_alternative_oem_sorter,
    build_balanced_merging_block,
)
from .fish_sorter import FishSorter, SortReport, default_k
from .kway import CleanSorter, KWayMuxMerger, PhaseCost, build_k_swap
from .mux_merger import (
    IN_SWAP_PERMS,
    OUT_SWAP_PERMS,
    build_mux_merger,
    build_mux_merger_sorter,
    classify_bisorted,
    mux_merge_behavioral,
    mux_merger,
    mux_merger_sort_behavioral,
    mux_merger_sorter,
)
from .patchup import build_patchup_network, patchup_behavioral, patchup_network
from .prefix_sorter import (
    build_prefix_sorter,
    prefix_sort_behavioral,
    prefix_sorter,
)
from .table1 import Table1Assignment, derive_table1
from .sequences import (
    as_bits,
    count_A,
    enumerate_A,
    enumerate_bisorted,
    enumerate_clean_k_sorted,
    enumerate_k_sorted,
    in_A,
    is_bisorted,
    is_clean,
    is_clean_k_sorted,
    is_k_sorted,
    is_sorted_binary,
    random_bisorted,
    random_clean_k_sorted,
    random_k_sorted,
    random_sorted,
    shuffle_concat,
    sorted_sequence,
)

__all__ = [
    "CleanSorter",
    "FishSorter",
    "IN_SWAP_PERMS",
    "KWayMuxMerger",
    "OUT_SWAP_PERMS",
    "PhaseCost",
    "SortReport",
    "Table1Assignment",
    "as_bits",
    "balanced_merge_behavioral",
    "balanced_merging_block",
    "build_alternative_oem_sorter",
    "build_balanced_merging_block",
    "build_k_swap",
    "build_mux_merger",
    "build_mux_merger_sorter",
    "build_patchup_network",
    "build_prefix_sorter",
    "cache_info",
    "classify_bisorted",
    "clear_cache",
    "count_A",
    "default_k",
    "derive_table1",
    "enumerate_A",
    "enumerate_bisorted",
    "enumerate_clean_k_sorted",
    "enumerate_k_sorted",
    "in_A",
    "is_bisorted",
    "is_clean",
    "is_clean_k_sorted",
    "is_k_sorted",
    "is_sorted_binary",
    "make_sorter",
    "mux_merge_behavioral",
    "mux_merger",
    "mux_merger_sort_behavioral",
    "mux_merger_sorter",
    "next_power_of_two",
    "patchup_behavioral",
    "patchup_network",
    "prefix_sort_behavioral",
    "prefix_sorter",
    "random_bisorted",
    "random_clean_k_sorted",
    "random_k_sorted",
    "random_sorted",
    "set_cache_limit",
    "shuffle_concat",
    "sort_bits",
    "sort_bits_many",
    "sorted_sequence",
]
