"""Network 1 — the prefix binary sorter (Section III-A, Fig. 5).

Recursive structure over ``n`` inputs:

1. sort each half recursively (each recursive sorter also emits the
   ones-count of its inputs);
2. add the two half counts with a prefix adder — this is the "lg n-bit
   prefix adder that gives the count of the number of 1's in the entire
   input sequence ... by recursively adding the numbers of 1's in the two
   half-size input sequences";
3. two-way shuffle the concatenation of the sorted halves — by Theorem 1
   the result is in ``A_n``;
4. sort the ``A_n`` member with the patch-up network steered by the count
   (:mod:`repro.core.patchup`).

Paper claims: cost ``3n lg n + O(lg^2 n)``, depth
``3 lg^2 n + 2 lg n lg lg n``.  Our adders are real gate-level circuits
(Kogge–Stone by default, ripple-carry for the ablation), so measured
constants differ slightly from the paper's idealized ``3 lg n``-cost
adder; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.prefix_adder import add_counts, half_adder_count
from ..components.shuffle import two_way_shuffle
from .patchup import patchup_behavioral, patchup_network
from .sequences import shuffle_concat


def prefix_sorter(
    b: CircuitBuilder, wires: Sequence[int], adder: str = "prefix"
) -> Tuple[List[int], List[int]]:
    """Build Network 1 over ``wires``.

    Returns ``(sorted_wires, count_bits)`` where ``count_bits`` is the
    ones-count of the inputs, LSB first, ``lg n + 1`` bits wide.
    """
    n = len(wires)
    if n == 1:
        # count of a single bit is the bit itself
        return list(wires), [wires[0]]
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi], half_adder_count(b, wires[0], wires[1])
    half = n // 2
    upper, cu = prefix_sorter(b, wires[:half], adder=adder)
    lower, cl = prefix_sorter(b, wires[half:], adder=adder)
    count = add_counts(b, cu, cl, adder=adder)
    shuffled = two_way_shuffle(upper + lower)
    out = patchup_network(b, shuffled, count)
    return out, count


def build_prefix_sorter(
    n: int, adder: str = "prefix", emit_count: bool = False
) -> Netlist:
    """Standalone Network 1 netlist for ``n`` inputs.

    With ``emit_count`` the ones-count bits are appended to the outputs
    (useful to applications that want the concentrator's request count
    for free).
    """
    b = CircuitBuilder(f"prefix-sorter-{n}")
    wires = b.add_inputs(n)
    sorted_wires, count = prefix_sorter(b, wires, adder=adder)
    outputs = sorted_wires + (count if emit_count else [])
    return b.build(outputs)


def prefix_sort_behavioral(bits) -> np.ndarray:
    """NumPy oracle mirroring the Network 1 recursion step by step."""
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    if n <= 1:
        return bits.copy()
    if n == 2:
        return np.sort(bits)
    half = n // 2
    upper = prefix_sort_behavioral(bits[:half])
    lower = prefix_sort_behavioral(bits[half:])
    shuffled = shuffle_concat(upper, lower)
    return patchup_behavioral(shuffled)
