"""The patch-up network of Network 1 (Section III-A, Fig. 5).

The patch-up network sorts any member of ``A_n`` (Definition 1).  Each
level applies:

1. one balanced comparator stage (pairs ``(i, n-1-i)``) — by Theorem 2
   this leaves one half *clean* and the other half in ``A_{n/2}``;
2. a two-way swapper that channels the unsorted half to the lower half,
   steered by whether the number of 1's in the sequence is at least
   ``n/2``;
3. a recursive half-size patch-up on the lower half;
4. a final two-way swapper (same select) that puts the patched half back.

Steering comes from a *single* ones-count computed once by the sorter's
prefix adder.  Writing the count in binary (``lg n + 1`` bits for a
length-``n`` level), the level select is

    ``select = count[lg n] OR count[lg n - 1]``        (count >= n/2?)

and the count handed to the half-size level is the same bit vector with
those two bits collapsed:

    ``child = count[0 .. lg n - 2] ++ [count[lg n]]``

because when ``select`` is 1 the unsorted half holds ``count - n/2``
ones (subtracting ``n/2`` clears bit ``lg n - 1`` and leaves bit
``lg n`` only when ``count == n``, in which case it becomes the child's
top bit), and when ``select`` is 0 the count is unchanged and both high
bits are 0.  Each level therefore costs one OR gate of steering logic on
top of its ``3n/2`` switching cost — this is what lets the whole
recursion run off one adder per sorter node, keeping
``C_p(n) = 3n/2 + C_p(n/2) <= 3n``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.prefix_adder import popcount
from ..components.swappers import two_way_swapper
from .balanced_merge import balanced_comparator_stage, balanced_stage_behavioral


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    return n.bit_length() - 1


def patchup_network(
    b: CircuitBuilder, wires: Sequence[int], count_bits: Sequence[int]
) -> List[int]:
    """Build a patch-up network over ``wires``.

    ``count_bits`` is the ones-count of the input sequence, least
    significant bit first, exactly ``lg n + 1`` bits wide.  The input
    must be a member of ``A_n`` for the output to be sorted (guaranteed
    by Theorem 1 at every use site).
    """
    n = len(wires)
    lg_n = _lg(n)
    if len(count_bits) != lg_n + 1:
        raise ValueError(
            f"patch-up over {n} wires needs {lg_n + 1} count bits, "
            f"got {len(count_bits)}"
        )
    if n == 1:
        return list(wires)
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    staged = balanced_comparator_stage(b, wires)
    # The two count bits consumed here and the derived select are the
    # level's adaptive steering path; tag them so fault models can
    # target the prefix-adder→patch-up control wires specifically (the
    # remaining count bits steer only deeper recursion levels, where
    # they are tagged by the level that reads them).
    b.tag_control(count_bits[lg_n], count_bits[lg_n - 1])
    select = b.or_(count_bits[lg_n], count_bits[lg_n - 1])
    swapped = two_way_swapper(b, staged, select)
    child_count = list(count_bits[: lg_n - 1]) + [count_bits[lg_n]]
    lower = patchup_network(b, swapped[n // 2 :], child_count)
    return two_way_swapper(b, list(swapped[: n // 2]) + lower, select)


def build_patchup_network(n: int, adder: str = "prefix") -> Netlist:
    """Standalone patch-up netlist with its own popcount front end.

    Used by unit tests and the steering ablation; Network 1 itself feeds
    the patch-up from the sorter's recursive adders instead (see
    :mod:`repro.core.prefix_sorter`).
    """
    lg_n = _lg(n)
    b = CircuitBuilder(f"patchup-{n}")
    wires = b.add_inputs(n)
    count = popcount(b, wires, adder=adder)
    while len(count) < lg_n + 1:
        count.append(b.const(0))
    return b.build(patchup_network(b, wires, count[: lg_n + 1]))


def patchup_behavioral(bits: np.ndarray) -> np.ndarray:
    """NumPy oracle of the patch-up network (asserts Theorem 2 en route)."""
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    if n <= 1:
        return bits.copy()
    if n == 2:
        return np.sort(bits)
    staged = balanced_stage_behavioral(bits)
    ones = int(bits.sum())
    if ones >= n // 2:
        # lower half is clean (all 1's); patch the upper half
        upper = patchup_behavioral(staged[: n // 2])
        return np.concatenate([upper, staged[n // 2 :]])
    lower = patchup_behavioral(staged[n // 2 :])
    return np.concatenate([staged[: n // 2], lower])
