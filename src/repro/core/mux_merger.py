"""Network 2 — the mux-merger binary sorter (Section III-B, Fig. 6, Table I).

A *mux-merger* merges a bisorted sequence (Definition 3).  By Theorem 3,
cutting a bisorted sequence into quarters leaves at least two quarters
clean, and the other two concatenate to a bisorted sequence of half the
size.  Which case holds is identified by the two "middle bits" — the
uppermost elements of quarters 2 and 4 (wires ``n/4`` and ``3n/4``):

====  ===========================  =====================================
sel   clean quarters               sorted output layout
====  ===========================  =====================================
00    q1 = 0...0,  q3 = 0...0      q1, q3, merge(q2 ++ q4)
01    q1 = 0...0,  q4 = 1...1      q1, merge(q2 ++ q3), q4
10    q2 = 1...1,  q3 = 0...0      q3, merge(q1 ++ q4), q2
11    q2 = 1...1,  q4 = 1...1      merge(q1 ++ q3), q2, q4
====  ===========================  =====================================

The IN-SWAP four-way swapper moves the two non-clean quarters into the
*bottom* two positions, which feed a recursive half-size mux-merger; the
OUT-SWAP then places the clean quarters and the merged half in sorted
order.  In the paper's cycle notation over quarter positions, our derived
settings are:

====  =========  ==========
sel   IN-SWAP    OUT-SWAP
====  =========  ==========
00    (1)(23)(4) (1)(2)(3)(4)
01    (1)(234)   (1)(243)
10    (13)(2)(4) (1)(243)
11    (134)(2)   (13)(24)
====  =========  ==========

These are verified exhaustively by the test-suite (the printed Table I in
the available scan of the paper is partially garbled; any assignment that
(a) feeds the merger a bisorted pair and (b) lets OUT-SWAP emit sorted
output is equivalent — see ``tests/test_mux_merger.py`` for the
middle-attached alternative).

Cost/depth: each merger level spends two n-input four-way swappers
(cost ``2n``, depth 2), giving ``C_m(n) = 4n`` and ``D_m(n) = 2 lg n``;
the full sorter satisfies ``C(n) = 2C(n/2) + 4n = 4n lg n`` with depth
``O(lg^2 n)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.swappers import four_way_swapper

#: ``PERMS[sel][out_quarter] = in_quarter`` (0-indexed), sel = 2*hi + lo.
#: IN-SWAP: route the bisorted pair to the bottom half (positions 3, 4).
IN_SWAP_PERMS: Tuple[Tuple[int, int, int, int], ...] = (
    (0, 2, 1, 3),  # 00: [q1, q3, q2, q4]
    (0, 3, 1, 2),  # 01: [q1, q4, q2, q3]
    (2, 1, 0, 3),  # 10: [q3, q2, q1, q4]
    (3, 1, 0, 2),  # 11: [q4, q2, q1, q3]
)

#: OUT-SWAP: place [bypass1, bypass2, merged_hi, merged_lo] in sorted order.
OUT_SWAP_PERMS: Tuple[Tuple[int, int, int, int], ...] = (
    (0, 1, 2, 3),  # 00: already sorted
    (0, 2, 3, 1),  # 01: [q1, m1, m2, q4]
    (0, 2, 3, 1),  # 10: [q3, m1, m2, q2]
    (2, 3, 0, 1),  # 11: [m1, m2, q2, q4]
)


def mux_merger(
    b: CircuitBuilder,
    wires: Sequence[int],
    in_perms: Tuple[Tuple[int, int, int, int], ...] = IN_SWAP_PERMS,
    out_perms: Tuple[Tuple[int, int, int, int], ...] = OUT_SWAP_PERMS,
) -> List[int]:
    """Build a mux-merger over a bisorted input; returns sorted wires.

    ``in_perms``/``out_perms`` default to the derived Table I settings;
    they are parameters so tests can check that every assignment
    satisfying the case analysis is equivalent.
    """
    n = len(wires)
    if n == 1:
        return list(wires)
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    if n % 4:
        raise ValueError(f"mux-merger needs n divisible by 4, got {n}")
    sel_hi = wires[n // 4]
    sel_lo = wires[3 * n // 4]
    # The middle bits double as data and steering; tag them explicitly
    # (the four-way swappers also auto-tag them via their select ports).
    b.tag_control(sel_hi, sel_lo)
    staged = four_way_swapper(b, wires, sel_hi, sel_lo, in_perms)
    merged = mux_merger(b, staged[n // 2 :], in_perms, out_perms)
    return four_way_swapper(
        b, list(staged[: n // 2]) + merged, sel_hi, sel_lo, out_perms
    )


def mux_merger_sorter(b: CircuitBuilder, wires: Sequence[int]) -> List[int]:
    """Build Network 2: recursively bisort, then mux-merge."""
    n = len(wires)
    if n == 1:
        return list(wires)
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    upper = mux_merger_sorter(b, wires[: n // 2])
    lower = mux_merger_sorter(b, wires[n // 2 :])
    return mux_merger(b, upper + lower)


def build_mux_merger(
    n: int,
    in_perms: Tuple[Tuple[int, int, int, int], ...] = IN_SWAP_PERMS,
    out_perms: Tuple[Tuple[int, int, int, int], ...] = OUT_SWAP_PERMS,
) -> Netlist:
    """Standalone mux-merger netlist (expects a bisorted input)."""
    b = CircuitBuilder(f"mux-merger-{n}")
    wires = b.add_inputs(n)
    return b.build(mux_merger(b, wires, in_perms, out_perms))


def build_mux_merger_sorter(n: int) -> Netlist:
    """Standalone Network 2 netlist for ``n`` inputs."""
    b = CircuitBuilder(f"mux-merger-sorter-{n}")
    wires = b.add_inputs(n)
    return b.build(mux_merger_sorter(b, wires))


# -- behavioral (oracle) versions ---------------------------------------------


def classify_bisorted(bits: np.ndarray) -> int:
    """Return the 2-bit select value of a bisorted sequence (Table I)."""
    n = bits.size
    return int((bits[n // 4] << 1) | bits[3 * n // 4])


def mux_merge_behavioral(bits: np.ndarray) -> np.ndarray:
    """NumPy oracle mirroring the mux-merger recursion (Table I cases)."""
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    if n <= 1:
        return bits.copy()
    if n == 2:
        return np.sort(bits)
    q = n // 4
    q1, q2, q3, q4 = (bits[i * q : (i + 1) * q] for i in range(4))
    sel = classify_bisorted(bits)
    if sel == 0:
        return np.concatenate([q1, q3, mux_merge_behavioral(np.concatenate([q2, q4]))])
    if sel == 1:
        return np.concatenate([q1, mux_merge_behavioral(np.concatenate([q2, q3])), q4])
    if sel == 2:
        return np.concatenate([q3, mux_merge_behavioral(np.concatenate([q1, q4])), q2])
    return np.concatenate([mux_merge_behavioral(np.concatenate([q1, q3])), q2, q4])


def mux_merger_sort_behavioral(bits) -> np.ndarray:
    """NumPy oracle of the full Network 2 recursion."""
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    if n <= 2:
        return np.sort(bits)
    half = n // 2
    upper = mux_merger_sort_behavioral(bits[:half])
    lower = mux_merger_sort_behavioral(bits[half:])
    return mux_merge_behavioral(np.concatenate([upper, lower]))
