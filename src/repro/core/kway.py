"""k-way merging machinery for Network 3 (Section III-C, Figs. 7-9).

Pieces, mirroring the paper exactly:

* :func:`build_k_swap` — the k-SWAP: ``k`` two-way swappers, one per
  sorted subsequence, each steered by the subsequence's *middle bit* (the
  first element of its lower half).  If that bit is 1 the lower half is
  all 1's (clean) and gets swapped up; otherwise the upper half is all
  0's and stays.  The outputs are rewired so the upper ``n/2`` wires
  collect the clean halves (a clean k-sorted sequence, Theorem 4) and the
  lower ``n/2`` wires collect the rest (a k-sorted sequence).
* :class:`CleanSorter` — Fig. 9: sorts a clean k-sorted sequence by
  sorting the blocks' leading bits with a ``k``-input mux-merger sorter
  and then *time-multiplexing* each block through an
  ``(s, s/k)``-multiplexer / ``(s/k, s)``-demultiplexer pair to its
  sorted position (``k`` clock steps through shared hardware — this is
  what keeps Network 3's cost linear).
* :class:`KWayMuxMerger` — Fig. 8: k-SWAP, then the clean sorter on the
  upper half in parallel with a recursive k-way merge of the lower half,
  then an ordinary two-way mux-merger on the resulting bisorted sequence.
  The recursion bottoms out at ``k`` inputs, handled by a ``k``-input
  mux-merger binary sorter.

Every data movement is executed on a real netlist; the clock accounting
(:class:`~repro.circuits.sequential.Timeline` semantics) follows the
paper's unit-delay convention, with parallel branches joined by ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..circuits.simulate import simulate, simulate_payload
from ..components.demux import group_demultiplexer
from ..components.mux import group_multiplexer
from ..components.swappers import two_way_swapper
from .mux_merger import build_mux_merger, build_mux_merger_sorter


def _lg(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"expected a power of two, got {n}")
    return n.bit_length() - 1


def _run(
    netlist: Netlist, tags: np.ndarray, payloads: Optional[np.ndarray]
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Run one netlist pass, carrying payloads when provided."""
    if payloads is None:
        return simulate(netlist, tags[None, :])[0], None
    out_t, out_p = simulate_payload(netlist, tags[None, :], payloads[None, :])
    return out_t[0], out_p[0]


def build_k_swap(n: int, k: int) -> Netlist:
    """k-SWAP netlist: clean halves to the top, sorted halves below."""
    if k < 1 or n % k or (n // k) % 2:
        raise ValueError(f"k-SWAP needs k | n and even n/k, got n={n} k={k}")
    m = n // k
    b = CircuitBuilder(f"k-swap-{n}x{k}")
    wires = b.add_inputs(n)
    uppers: List[int] = []
    lowers: List[int] = []
    for i in range(k):
        block = wires[i * m : (i + 1) * m]
        control = block[m // 2]  # middle bit: first element of lower half
        swapped = two_way_swapper(b, block, control)
        uppers.extend(swapped[: m // 2])
        lowers.extend(swapped[m // 2 :])
    return b.build(uppers + lowers)


@dataclass
class PhaseCost:
    """Cost inventory entry: one physical component of the construction."""

    label: str
    cost: int
    depth: int


class CleanSorter:
    """Fig. 9's s-input k-way clean sorter (time-multiplexed dispatch).

    ``s`` is the sequence length; it holds ``k`` clean blocks of ``s/k``
    elements.  Hardware inventory: a ``k``-input binary sorter for the
    leading bits, an ``(s, s/k)``-multiplexer, an ``(s/k, s)``-
    demultiplexer, and a ``(k,1)``-multiplexer feeding the select lines.
    Dispatch runs ``k`` clock steps of depth ``lg k + lg k + lg k``
    (select lookup, mux, demux) each — pipelinable to ``k - 1 + 3 lg k``.
    """

    def __init__(self, s: int, k: int) -> None:
        if k < 1 or s % k:
            raise ValueError(f"clean sorter needs k | s, got s={s} k={k}")
        self.s, self.k = s, k
        self.block = s // k
        self.lg_k = _lg(k)
        self.key_sorter = build_mux_merger_sorter(k)
        # (s, s/k)-multiplexer: selects one of k groups of s/k wires.
        b = CircuitBuilder(f"clean-mux-{s}")
        wires = b.add_inputs(s)
        sel = b.add_inputs(self.lg_k)
        outs = group_multiplexer(b, wires, self.block, sel)
        self.group_mux = b.build(outs)
        # (s/k, s)-demultiplexer: routes s/k wires to one of k groups.
        b = CircuitBuilder(f"clean-demux-{s}")
        wires = b.add_inputs(self.block)
        sel = b.add_inputs(self.lg_k)
        outs = group_demultiplexer(b, wires, k, sel)
        self.group_demux = b.build(outs)
        # (k,1)-multiplexer for the dispatch select values (lg k bits wide).
        b = CircuitBuilder(f"clean-sel-mux-{k}")
        values = [b.add_inputs(max(self.lg_k, 1)) for _ in range(k)]
        step_sel = b.add_inputs(self.lg_k)
        sel_outs = []
        for bit in range(max(self.lg_k, 1)):
            lane = [values[g][bit] for g in range(k)]
            sel_outs.append(lane[0] if k == 1 else b.mux_tree(lane, step_sel))
        self.select_mux = b.build(sel_outs)

    def inventory(self) -> List[PhaseCost]:
        return [
            PhaseCost(f"clean-sorter/key-sorter(k={self.k})",
                      self.key_sorter.cost(), self.key_sorter.depth()),
            PhaseCost(f"clean-sorter/(s,s/k)-mux(s={self.s})",
                      self.group_mux.cost(), self.group_mux.depth()),
            PhaseCost(f"clean-sorter/(s/k,s)-demux(s={self.s})",
                      self.group_demux.cost(), self.group_demux.depth()),
            PhaseCost(f"clean-sorter/(k,1)-select-mux(k={self.k})",
                      self.select_mux.cost(), self.select_mux.depth()),
        ]

    def cost(self) -> int:
        return sum(p.cost for p in self.inventory())

    def dispatch_order(self, bits: np.ndarray) -> List[int]:
        """Source block for each output slot, from the key-sorter netlist.

        Runs the ``k``-input sorter with block indices as payloads; the
        payload order of the sorted output *is* the dispatch schedule.
        """
        keys = bits[:: self.block].astype(np.uint8)  # leading bit per block
        tags, pays = simulate_payload(
            self.key_sorter, keys[None, :], np.arange(self.k, dtype=np.int64)[None, :]
        )
        return [int(p) for p in pays[0]]

    def sort(
        self,
        bits: np.ndarray,
        start: int = 0,
        pipelined: bool = False,
        payloads: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        """Sort a clean k-sorted sequence.

        Returns ``(sorted_bits, sorted_payloads_or_None, finish_time)``.
        Timing: the key sorter runs first (its netlist depth), then ``k``
        dispatch steps of ``3 lg k`` unit delays each — or, pipelined,
        ``k - 1`` cycles plus one ``3 lg k`` traversal.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != self.s:
            raise ValueError(f"expected {self.s} bits, got {bits.size}")
        if payloads is not None:
            payloads = np.asarray(payloads, dtype=np.int64)
        order = self.dispatch_order(bits)
        out = np.empty_like(bits)
        out_pays = None if payloads is None else np.empty_like(payloads)
        step_depth = 3 * self.lg_k
        t = start + self.key_sorter.depth()
        blk = self.block
        no_pay = np.full(self.lg_k, -1, dtype=np.int64)
        for step, src in enumerate(order):
            # (s, s/k)-mux selects block `src`...
            sel = np.array(
                [(src >> (self.lg_k - 1 - j)) & 1 for j in range(self.lg_k)],
                dtype=np.uint8,
            )
            mux_in = np.concatenate([bits, sel])
            mux_pay = None if payloads is None else np.concatenate([payloads, no_pay])
            grabbed, grabbed_p = _run(self.group_mux, mux_in, mux_pay)
            # ...and the (s/k, s)-demux routes it to output group `step`.
            dsel = np.array(
                [(step >> (self.lg_k - 1 - j)) & 1 for j in range(self.lg_k)],
                dtype=np.uint8,
            )
            dem_in = np.concatenate([grabbed, dsel])
            dem_pay = (
                None if grabbed_p is None else np.concatenate([grabbed_p, no_pay])
            )
            routed, routed_p = _run(self.group_demux, dem_in, dem_pay)
            out[step * blk : (step + 1) * blk] = routed[step * blk : (step + 1) * blk]
            if out_pays is not None:
                out_pays[step * blk : (step + 1) * blk] = routed_p[
                    step * blk : (step + 1) * blk
                ]
        if pipelined:
            t += (self.k - 1) + step_depth
        else:
            t += self.k * step_depth
        return out, out_pays, t


def kway_merge_behavioral(bits: np.ndarray, k: int) -> np.ndarray:
    """NumPy oracle of the k-way mux-merger recursion (Fig. 8).

    Mirrors the construction step by step: k-SWAP by middle bits, clean
    sort of the upper half (stable block dispatch by leading bit),
    recursive merge of the lower half, final two-way mux-merge.
    """
    from .mux_merger import mux_merge_behavioral

    bits = np.asarray(bits, dtype=np.uint8)
    m = bits.size
    if m == k:
        return np.sort(bits)
    block = m // k
    half = block // 2
    uppers, lowers = [], []
    for i in range(k):
        sub = bits[i * block : (i + 1) * block]
        if sub[half]:  # lower half clean (all 1s): swap halves up
            uppers.append(sub[half:])
            lowers.append(sub[:half])
        else:
            uppers.append(sub[:half])
            lowers.append(sub[half:])
    # clean sorter: stable sort of clean blocks by leading bit
    order = sorted(range(k), key=lambda i: (int(uppers[i][0]), i))
    upper_sorted = np.concatenate([uppers[i] for i in order])
    lower_sorted = kway_merge_behavioral(np.concatenate(lowers), k)
    return mux_merge_behavioral(np.concatenate([upper_sorted, lower_sorted]))


class KWayMuxMerger:
    """Fig. 8's n-input k-way mux-merger over the clocked model."""

    def __init__(self, n: int, k: int) -> None:
        if k < 2 or n < k or n % k or n & (n - 1) or k & (k - 1):
            raise ValueError(
                f"k-way merger needs powers of two with 2 <= k <= n, "
                f"got n={n} k={k}"
            )
        self.n, self.k = n, k
        self._k_swaps: Dict[int, Netlist] = {}
        self._clean: Dict[int, CleanSorter] = {}
        self._mergers: Dict[int, Netlist] = {}
        self.base_sorter = build_mux_merger_sorter(k)
        m = n
        while m > k:
            self._k_swaps[m] = build_k_swap(m, k)
            self._clean[m // 2] = CleanSorter(m // 2, k)
            self._mergers[m] = build_mux_merger(m)
            m //= 2

    def inventory(self) -> List[PhaseCost]:
        inv: List[PhaseCost] = []
        for m, net in sorted(self._k_swaps.items(), reverse=True):
            inv.append(PhaseCost(f"k-swap(m={m})", net.cost(), net.depth()))
        for s, cs in sorted(self._clean.items(), reverse=True):
            inv.extend(cs.inventory())
        for m, net in sorted(self._mergers.items(), reverse=True):
            inv.append(PhaseCost(f"two-way-mux-merger(m={m})", net.cost(), net.depth()))
        inv.append(
            PhaseCost(
                f"base-sorter(k={self.k})",
                self.base_sorter.cost(),
                self.base_sorter.depth(),
            )
        )
        return inv

    def cost(self) -> int:
        return sum(p.cost for p in self.inventory())

    def merge(
        self,
        bits: np.ndarray,
        start: int = 0,
        pipelined: bool = False,
        payloads: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        """Merge a k-sorted sequence.

        Returns ``(sorted_bits, sorted_payloads_or_None, finish_time)``.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != self.n:
            raise ValueError(f"expected {self.n} bits, got {bits.size}")
        if payloads is not None:
            payloads = np.asarray(payloads, dtype=np.int64)
        return self._merge(bits, start, pipelined, payloads)

    def _merge(
        self,
        bits: np.ndarray,
        start: int,
        pipelined: bool,
        payloads: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        m = bits.size
        if m == self.k:
            out, out_p = _run(self.base_sorter, bits, payloads)
            return out, out_p, start + self.base_sorter.depth()
        swap = self._k_swaps[m]
        swapped, swapped_p = _run(swap, bits, payloads)
        t0 = start + swap.depth()
        upper, upper_p, t_up = self._clean[m // 2].sort(
            swapped[: m // 2],
            start=t0,
            pipelined=pipelined,
            payloads=None if swapped_p is None else swapped_p[: m // 2],
        )
        lower, lower_p, t_lo = self._merge(
            swapped[m // 2 :],
            t0,
            pipelined,
            None if swapped_p is None else swapped_p[m // 2 :],
        )
        t1 = max(t_up, t_lo)  # parallel branches join
        merger = self._mergers[m]
        cat = np.concatenate([upper, lower])
        cat_p = None if payloads is None else np.concatenate([upper_p, lower_p])
        merged, merged_p = _run(merger, cat, cat_p)
        return merged, merged_p, t1 + merger.depth()
