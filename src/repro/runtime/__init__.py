"""Supervised execution runtime: detection, fallback, and recovery.

PR 2 classified faults *offline*; this package survives them *online*.
Sorts run on self-checking hardware (:mod:`repro.circuits.checkers`)
under a wall-clock deadline, every result clears both the gate-level
alarms and a software invariant gate, and failures walk a graceful
degradation ladder — compiled engine → interpreter oracle → behavioral
``np.sort`` — governed by a :class:`RecoveryPolicy` with bounded retry
and exponential backoff.  ``core.api.sort_bits(..., supervised=True)``
routes through the shared per-network :func:`get_supervisor`.

:mod:`repro.runtime.guard` provides the underlying deadline/retry
primitives, reused by the campaign tools for per-item timeouts and
poison-item quarantine.
"""

from .guard import deadline_supported, run_guarded, time_limit
from .supervisor import (
    CallReport,
    RecoveryPolicy,
    Supervisor,
    SupervisorStats,
    get_supervisor,
    reset_supervisors,
    supervisor_stats,
)

__all__ = [
    "CallReport",
    "RecoveryPolicy",
    "Supervisor",
    "SupervisorStats",
    "deadline_supported",
    "get_supervisor",
    "reset_supervisors",
    "run_guarded",
    "supervisor_stats",
    "time_limit",
]
