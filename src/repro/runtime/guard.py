"""Deadline and retry primitives for supervised execution.

Two small building blocks shared by the :class:`~repro.runtime.Supervisor`
and the campaign tools (``tools/fault_campaign.py``, ``tools/sweep.py``):

* :func:`time_limit` — a context manager enforcing a wall-clock budget
  via ``signal.setitimer`` and raising
  :class:`~repro.errors.DeadlineExceeded` when it expires.  POSIX signal
  delivery only works on the main thread; elsewhere (or on platforms
  without ``setitimer``) the guard degrades to an *announced* no-op —
  a one-time :class:`RuntimeWarning` plus a ``guard.unguarded`` trace
  event — rather than failing: supervision is best-effort by design,
  never a new crash source, but it must never be *silently* absent
  either.
* :func:`run_guarded` — call a function under a per-attempt deadline
  with bounded retry and exponential backoff.  This is what lets one
  pathological ``(network, n, fault)`` item stall for at most
  ``timeout_s * (retries + 1)`` instead of hanging a whole campaign.
  Pass a ``report`` dict to learn whether the deadline could actually
  preempt (``report["guarded"]``) and how many attempts ran.

Signal-delivery correctness
---------------------------

A SIGALRM handler that simply raises has a real failure mode: if the
alarm fires while CPython is executing a frame that cannot propagate
exceptions — a ``gc.callbacks`` hook, a ``__del__`` finalizer, a weakref
callback — the raised :class:`DeadlineExceeded` is discarded through
``sys.unraisablehook`` and the deadline is silently lost (observed in
tier-1 runs as ``PytestUnraisableExceptionWarning`` from hypothesis's
GC callback).  :func:`time_limit` therefore:

1. checks the interrupted frame stack from the handler and *defers*
   (re-arms a short one-shot itimer instead of raising) when a
   finalizer/GC-callback frame is live — the alarm keeps refiring until
   a raise can land in the guarded frame;
2. records expiry in a flag that is checked when the guarded body
   completes, so even a raise that *was* swallowed somewhere can never
   make the deadline disappear.
"""

from __future__ import annotations

import gc
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple, Type

from ..errors import DeadlineExceeded

__all__ = ["deadline_supported", "run_guarded", "time_limit"]

#: One-shot itimer interval used when a deadline fired inside a frame
#: that cannot propagate exceptions: refire quickly until the raise can
#: land in the guarded frame.
REARM_INTERVAL_S = 0.001

#: Frames whose code has one of these names swallow exceptions raised
#: into them (CPython reports them as "unraisable" instead).
_UNRAISABLE_CO_NAMES = frozenset({"__del__", "__delete__"})

_UNGUARDED_WARNED = False


def deadline_supported() -> bool:
    """True when :func:`time_limit` can actually preempt (POSIX itimer
    available and we are on the main thread)."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


def _note_unguarded(what: str) -> None:
    """Announce that a requested deadline cannot be enforced here.

    Emits a ``guard.unguarded`` trace event every time (so campaign
    traces show exactly which items ran without a budget) and a
    :class:`RuntimeWarning` once per process (so interactive users see
    it without being drowned).
    """
    global _UNGUARDED_WARNED
    from .. import obs

    obs.trace_event(
        "guard.unguarded",
        what=what,
        main_thread=threading.current_thread() is threading.main_thread(),
        has_itimer=hasattr(signal, "setitimer"),
    )
    if not _UNGUARDED_WARNED:
        _UNGUARDED_WARNED = True
        warnings.warn(
            f"time_limit({what!r}): deadline cannot preempt here "
            "(signal.setitimer unavailable or not on the main thread); "
            "the operation runs unguarded",
            RuntimeWarning,
            stacklevel=4,
        )


def _reset_unguarded_warning() -> None:
    """Re-arm the one-time unguarded warning (test isolation hook)."""
    global _UNGUARDED_WARNED
    _UNGUARDED_WARNED = False


def _unraisable_frame(frame) -> bool:
    """Would an exception raised into ``frame`` be discarded?

    True when the interrupted frame (or a close ancestor) is a
    ``gc.callbacks`` hook or a finalizer — contexts where CPython routes
    a propagating exception to ``sys.unraisablehook`` instead of the
    caller.  Conservative and cheap: checks code-object identity for
    registered GC callbacks and well-known finalizer names.
    """
    gc_codes = {
        cb.__code__ for cb in gc.callbacks if hasattr(cb, "__code__")
    }
    depth = 0
    while frame is not None and depth < 16:
        code = frame.f_code
        if code in gc_codes or code.co_name in _UNRAISABLE_CO_NAMES:
            return True
        frame = frame.f_back
        depth += 1
    return False


@contextmanager
def time_limit(budget_s: Optional[float], what: str = "operation"):
    """Raise :class:`DeadlineExceeded` if the body runs past ``budget_s``.

    ``budget_s`` of ``None`` (or <= 0) disables the guard.  Off the main
    thread, or without ``signal.setitimer``, the guard cannot preempt:
    it announces itself (one-time :class:`RuntimeWarning` plus a
    ``guard.unguarded`` trace event) and lets the body run unguarded.

    Expiry is never lost: a SIGALRM that lands inside a GC callback or
    finalizer frame is deferred (short itimer re-arm) until it can be
    raised into the guarded frame, and if every raise was swallowed the
    deadline still surfaces when the body completes.
    """
    if budget_s is None or budget_s <= 0:
        yield
        return
    if not deadline_supported():
        _note_unguarded(what)
        yield
        return

    state = {"expired": False}

    def _expire(signum, frame):
        state["expired"] = True
        if _unraisable_frame(frame):
            # Raising here would be discarded as "unraisable" and the
            # deadline silently lost.  Defer: refire shortly, by which
            # time the finalizer/GC callback has usually returned.
            signal.setitimer(signal.ITIMER_REAL, REARM_INTERVAL_S)
            return
        raise DeadlineExceeded(budget_s, what)

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, budget_s)
    try:
        yield
        if state["expired"]:
            # The alarm fired but its raise never reached us (deferred
            # past the body's end, or swallowed by an intervening
            # frame).  The budget is spent: surface it now.
            raise DeadlineExceeded(budget_s, what)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_guarded(
    fn: Callable,
    *args,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.05,
    backoff_factor: float = 2.0,
    what: Optional[str] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    report: Optional[Dict[str, object]] = None,
    **kwargs,
):
    """Run ``fn(*args, **kwargs)`` under a per-attempt deadline, retrying
    failures with exponential backoff.

    Each attempt gets its own ``timeout_s`` budget (so total stall is
    bounded by ``timeout_s * (retries + 1)`` plus backoff).  Exceptions
    matching ``retry_on`` are retried up to ``retries`` times; the last
    failure is re-raised unchanged for the caller to classify —
    :class:`DeadlineExceeded` subclasses :class:`TimeoutError`, so
    timeouts are retried by the default ``retry_on`` and still
    distinguishable afterwards.

    ``report``, when given a dict, is filled in place with the run's
    guard telemetry: ``report["guarded"]`` is False when a deadline was
    requested but cannot be enforced in this context (see
    :func:`deadline_supported`) — campaign tools surface this as
    ``"unguarded"`` in quarantine records instead of pretending the
    budget applied — and ``report["attempts"]`` counts attempts made.
    """
    label = what or getattr(fn, "__name__", "operation")
    guarded = timeout_s is None or timeout_s <= 0 or deadline_supported()
    if report is not None:
        report["guarded"] = bool(guarded)
        report["attempts"] = 0
    delay = backoff_s
    attempt = 0
    while True:
        attempt += 1
        if report is not None:
            report["attempts"] = attempt
        try:
            with time_limit(timeout_s, label):
                return fn(*args, **kwargs)
        except retry_on:
            if attempt > retries:
                raise
            if delay > 0:
                sleep(delay)
            delay *= backoff_factor
