"""Deadline and retry primitives for supervised execution.

Two small building blocks shared by the :class:`~repro.runtime.Supervisor`
and the campaign tools (``tools/fault_campaign.py``, ``tools/sweep.py``):

* :func:`time_limit` — a context manager enforcing a wall-clock budget
  via ``signal.setitimer`` and raising
  :class:`~repro.errors.DeadlineExceeded` when it expires.  POSIX signal
  delivery only works on the main thread; elsewhere (or on platforms
  without ``setitimer``) the guard degrades to a no-op rather than
  failing — supervision is best-effort by design, never a new crash
  source.
* :func:`run_guarded` — call a function under a per-attempt deadline
  with bounded retry and exponential backoff.  This is what lets one
  pathological ``(network, n, fault)`` item stall for at most
  ``timeout_s * (retries + 1)`` instead of hanging a whole campaign.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Callable, Optional, Tuple, Type

from ..errors import DeadlineExceeded

__all__ = ["time_limit", "run_guarded", "deadline_supported"]


def deadline_supported() -> bool:
    """True when :func:`time_limit` can actually preempt (POSIX itimer
    available and we are on the main thread)."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(budget_s: Optional[float], what: str = "operation"):
    """Raise :class:`DeadlineExceeded` if the body runs past ``budget_s``.

    ``budget_s`` of ``None`` (or <= 0) disables the guard.  Off the main
    thread, or without ``signal.setitimer``, the guard is a no-op: the
    caller still gets the result, just without preemption.
    """
    if budget_s is None or budget_s <= 0 or not deadline_supported():
        yield
        return

    def _expire(signum, frame):
        raise DeadlineExceeded(budget_s, what)

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, budget_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_guarded(
    fn: Callable,
    *args,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.05,
    backoff_factor: float = 2.0,
    what: Optional[str] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    **kwargs,
):
    """Run ``fn(*args, **kwargs)`` under a per-attempt deadline, retrying
    failures with exponential backoff.

    Each attempt gets its own ``timeout_s`` budget (so total stall is
    bounded by ``timeout_s * (retries + 1)`` plus backoff).  Exceptions
    matching ``retry_on`` are retried up to ``retries`` times; the last
    failure is re-raised unchanged for the caller to classify —
    :class:`DeadlineExceeded` subclasses :class:`TimeoutError`, so
    timeouts are retried by the default ``retry_on`` and still
    distinguishable afterwards.
    """
    label = what or getattr(fn, "__name__", "operation")
    delay = backoff_s
    attempt = 0
    while True:
        try:
            with time_limit(timeout_s, label):
                return fn(*args, **kwargs)
        except retry_on:
            attempt += 1
            if attempt > retries:
                raise
            if delay > 0:
                sleep(delay)
            delay *= backoff_factor
