"""Supervised sort execution: detect, retry, degrade, recover.

The :class:`Supervisor` is the online counterpart of PR 2's offline
fault campaigns.  Every sort runs on **self-checking hardware** (the
network with :func:`repro.circuits.checkers.with_checkers` attached, or
the fish sorter paired with a boundary
:class:`~repro.circuits.checkers.OutputChecker`) under a wall-clock
deadline, and the result must clear two independent gates before being
returned:

1. the gate-level alarm wires (sortedness / ones-count / control
   duplicate-and-compare) must all be quiet, and
2. a behavioral invariant check in software — output monotone and its
   population count equal to the *caller-held* input's.  This second
   gate closes the checkers' fault-secure boundary: a stuck primary
   input fools the hardware checker (which observes the faulted bus) but
   not the supervisor, which still holds the pre-corruption input.

Any alarm, invariant failure, engine exception, or deadline triggers
the :class:`RecoveryPolicy`: bounded retry with exponential backoff at
the current tier, then graceful degradation down the execution ladder —
code-generated JIT kernel → compiled engine → element-at-a-time
interpreter oracle → behavioral ``np.sort`` — so a supervised call
returns the *correct* answer even
when the circuit itself is faulty (the acceptance criterion of the
supervised fault campaigns).  Per-call statistics (detections, alarm
counts, tier usage, retries, latencies) accumulate in
:class:`SupervisorStats`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..circuits.checkers import CheckedNetlist, OutputChecker, build_output_checker, with_checkers
from ..circuits.simulate import simulate_engine, simulate_interpreted, simulate_jit
from ..errors import BuildError, CheckerAlarm, DeadlineExceeded, ReproError, SimulationError
from .guard import time_limit

__all__ = [
    "CallReport",
    "RecoveryPolicy",
    "Supervisor",
    "SupervisorStats",
    "get_supervisor",
    "reset_supervisors",
    "supervisor_stats",
]

#: Execution tiers, fastest first.  ``jit`` runs the code-generated
#: bit-slice kernel (:mod:`repro.circuits.jit`; degraded past when
#: ``REPRO_JIT=0`` disables it), ``engine`` is pinned to the fused-step
#: interpreter so the two compiled rungs stay independent.  ``jit`` and
#: ``interpreter`` are both skipped for the fish network (its phases are
#: behavioral objects, not netlists, and already run through both
#: engines).
TIERS = ("jit", "engine", "interpreter", "behavioral")

#: Alarm pseudo-name for the supervisor's software invariant gate.
INVARIANT = "invariant"


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the supervisor does when a tier fails.

    ``max_retries`` re-runs of a failing tier (exponential backoff from
    ``backoff_s`` by ``backoff_factor``) before degrading to the next
    tier; ``deadline_s`` is the per-attempt wall-clock budget (``None``
    disables it); ``control_checker`` additionally attaches the
    duplicate-and-compare steering checker to combinational hardware.

    ``max_backoff_s`` caps each backoff sleep.  Unset, it defaults to
    ``deadline_s`` when a deadline is configured: uncapped,
    ``backoff_s * backoff_factor**k`` grows without bound and a call
    under a deadline storm can burn more wall-clock *sleeping between
    retries* than its entire per-attempt budget — the failure mode the
    chaos soak's deadline injector surfaces.
    """

    max_retries: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: Optional[float] = None
    deadline_s: Optional[float] = None
    control_checker: bool = False
    tiers: Tuple[str, ...] = TIERS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise BuildError("max_retries must be >= 0")
        if self.max_backoff_s is not None and self.max_backoff_s < 0:
            raise BuildError("max_backoff_s must be >= 0")
        unknown = set(self.tiers) - set(TIERS)
        if unknown or not self.tiers:
            raise BuildError(f"tiers must be a non-empty subset of {TIERS}")

    @property
    def backoff_cap_s(self) -> Optional[float]:
        """Effective per-sleep cap: ``max_backoff_s``, else the deadline
        budget, else unlimited."""
        if self.max_backoff_s is not None:
            return self.max_backoff_s
        return self.deadline_s


@dataclass
class CallReport:
    """What happened during one supervised sort."""

    tier: str  #: tier that produced the accepted result
    attempts: int  #: total attempts across all tiers
    retries: int  #: attempts beyond the first per tier
    detections: Tuple[str, ...]  #: alarm names observed along the way
    fell_back: bool  #: resolved below the first tier
    deadline_hits: int  #: attempts killed by the deadline
    latency_s: float  #: wall-clock of the whole call


@dataclass
class SupervisorStats:
    """Aggregate counters across supervised calls (see :meth:`snapshot`)."""

    calls: int = 0
    detected_calls: int = 0
    fallback_calls: int = 0
    retries: int = 0
    deadline_hits: int = 0
    alarms: Dict[str, int] = field(default_factory=dict)
    tier_used: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)

    _LATENCY_WINDOW = 1024

    def record(self, report: CallReport) -> None:
        self.calls += 1
        if report.detections:
            self.detected_calls += 1
        if report.fell_back:
            self.fallback_calls += 1
        self.retries += report.retries
        self.deadline_hits += report.deadline_hits
        for name in report.detections:
            self.alarms[name] = self.alarms.get(name, 0) + 1
        self.tier_used[report.tier] = self.tier_used.get(report.tier, 0) + 1
        self.latencies_s.append(report.latency_s)
        if len(self.latencies_s) > self._LATENCY_WINDOW:
            del self.latencies_s[: -self._LATENCY_WINDOW]

    def snapshot(self) -> Dict[str, object]:
        lat = self.latencies_s
        return {
            "calls": self.calls,
            "detected_calls": self.detected_calls,
            "fallback_calls": self.fallback_calls,
            "retries": self.retries,
            "deadline_hits": self.deadline_hits,
            "alarms": dict(self.alarms),
            "tier_used": dict(self.tier_used),
            "mean_latency_s": float(np.mean(lat)) if lat else 0.0,
            "max_latency_s": float(np.max(lat)) if lat else 0.0,
        }


def _monotone(bits: np.ndarray) -> bool:
    return bool((np.diff(bits.astype(np.int8)) >= 0).all())


class Supervisor:
    """Run sorts on self-checking hardware with detection and recovery.

    ``network`` is one of ``core.api.NETWORKS``.  ``hardware`` optionally
    overrides how the (checked) circuit for a given width is obtained —
    a callable ``n -> CheckedNetlist`` for the combinational networks,
    or ``n -> (FishSorter, OutputChecker)`` for ``"fish"``.  The fault
    campaigns use this hook to hand the supervisor deliberately *broken*
    hardware and assert that every call still returns a correct, sorted
    result (via detection + fallback).
    """

    def __init__(
        self,
        network: str = "mux_merger",
        policy: Optional[RecoveryPolicy] = None,
        hardware: Optional[Callable[[int], object]] = None,
    ) -> None:
        from ..core.api import NETWORKS

        if network not in NETWORKS:
            raise BuildError(
                f"unknown network {network!r}; choose one of {NETWORKS}"
            )
        self.network = network
        self.policy = policy or RecoveryPolicy()
        self.stats = SupervisorStats()
        self._hardware = hardware
        self._cache: Dict[int, object] = {}
        self._lock = threading.RLock()

    # -- hardware -------------------------------------------------------------

    def _get_hardware(self, n: int):
        with self._lock:
            hw = self._cache.get(n)
            if hw is None:
                hw = (
                    self._hardware(n)
                    if self._hardware is not None
                    else self._build_hardware(n)
                )
                self._cache[n] = hw
            return hw

    def _build_hardware(self, n: int):
        from ..core.api import make_sorter

        if self.network == "fish":
            return make_sorter(n, "fish"), build_output_checker(n)
        plain = make_sorter(n, self.network)
        return with_checkers(
            plain,
            sortedness=True,
            count=True,
            control=self.policy.control_checker,
        )

    def reset(self) -> None:
        """Drop cached hardware and statistics."""
        with self._lock:
            self._cache.clear()
            self.stats = SupervisorStats()

    # -- invariants -----------------------------------------------------------

    def _accept(self, inputs: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Software gate: output must be monotone with the same ones
        count as the caller-held input (closes the checkers'
        fault-secure boundary at the primary inputs)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != inputs.shape:
            raise CheckerAlarm((INVARIANT,), message="output shape mismatch")
        if not _monotone(data) or int(data.sum()) != int(inputs.sum()):
            raise CheckerAlarm((INVARIANT,))
        return data

    # -- tiers ----------------------------------------------------------------

    def _run_tier(
        self, tier: str, padded: np.ndarray, pipelined: bool
    ) -> np.ndarray:
        if tier == "behavioral":
            return self._accept(padded, np.sort(padded))
        hw = self._get_hardware(padded.size)
        if self.network == "fish":
            if tier in ("jit", "interpreter"):
                # The fish sorter is a behavioral object, not a netlist:
                # its phases already execute through both engines, and
                # there is nothing for the JIT to code-generate.
                raise SimulationError(f"fish has no {tier} tier")
            sorter, checker = hw
            out, _report = sorter.sort(padded, pipelined=pipelined)
            out = np.asarray(out, dtype=np.uint8)
            fired = checker.fired(padded[None, :], out[None, :])
            if fired:
                raise CheckerAlarm(fired)
            return self._accept(padded, out)
        checked: CheckedNetlist = hw
        run = {
            "jit": simulate_jit,
            "engine": simulate_engine,
            "interpreter": simulate_interpreted,
        }[tier]
        out = run(checked.netlist, padded[None, :])
        data = checked.check(out)[0]  # raises CheckerAlarm on any alarm
        return self._accept(padded, data)

    # -- public API -----------------------------------------------------------

    def sort(self, bits, pipelined: bool = False) -> np.ndarray:
        """Sort like :func:`repro.core.api.sort_bits`, supervised."""
        out, _report = self.sort_verbose(bits, pipelined=pipelined)
        return out

    def run_many(
        self, seqs, pipelined: bool = False, jobs: int = 1
    ) -> Tuple[List[np.ndarray], List[CallReport]]:
        """Supervised sort of a whole batch; results in input order.

        Returns ``(outputs, reports)`` — one sorted array and one
        :class:`CallReport` per input sequence, and every report is
        folded into this supervisor's :class:`SupervisorStats` exactly
        as serial calls would be.

        With ``jobs > 1`` the batch shards over crash-isolated worker
        processes (:mod:`repro.parallel`); each worker runs its shard
        through its own supervisor built from the same ``network`` and
        ``policy``, on its process main thread — so ``deadline_s``
        budgets genuinely preempt — and ships the per-call reports back
        for the parent to fold in.  A custom ``hardware`` hook forces
        the serial path: the hook is process-local state the workers
        could not faithfully rebuild.  A shard whose worker fails or
        dies raises :class:`~repro.errors.SimulationError`; partial
        results are never returned silently.
        """
        arrays = [np.asarray(s, dtype=np.uint8).ravel() for s in seqs]
        if (jobs is None or jobs <= 1 or len(arrays) <= 1
                or self._hardware is not None):
            outs, reports = [], []
            for arr in arrays:
                out, report = self.sort_verbose(arr, pipelined=pipelined)
                outs.append(out)
                reports.append(report)
            return outs, reports
        from ..parallel import run_items

        jobs = min(int(jobs), len(arrays))
        n_shards = min(len(arrays), jobs * 4)
        bounds = np.linspace(0, len(arrays), n_shards + 1, dtype=int)
        shards = [
            (f"shard{i}", (self.network, self.policy, pipelined,
                           arrays[bounds[i]:bounds[i + 1]]))
            for i in range(n_shards)
            if bounds[i] < bounds[i + 1]
        ]
        outcomes = run_items(
            shards, _run_many_shard, jobs=jobs,
            span="supervisor.sort_shard",
        )
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise SimulationError(
                f"run_many: {len(failed)} shard(s) failed; first: "
                f"{failed[0].id}: {failed[0].error}"
            )
        outs, reports = [], []
        for outcome in outcomes:
            for out, report in outcome.value:
                outs.append(out)
                reports.append(report)
                self.stats.record(report)
        return outs, reports

    def sort_verbose(
        self, bits, pipelined: bool = False
    ) -> Tuple[np.ndarray, CallReport]:
        """Supervised sort returning the :class:`CallReport` as well."""
        from ..core.api import next_power_of_two

        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size and arr.max() > 1:
            raise SimulationError("sort_bits expects a 0/1 sequence")
        started = time.perf_counter()
        if arr.size <= 1:
            report = CallReport("behavioral", 1, 0, (), False, 0,
                                time.perf_counter() - started)
            self.stats.record(report)
            return arr.copy(), report
        n = next_power_of_two(max(arr.size, 4 if self.network == "fish" else 2))
        padded = np.concatenate([arr, np.ones(n - arr.size, dtype=np.uint8)])
        if obs.OBS.enabled:
            with obs.OBS.tracer.span(
                "supervisor.sort", network=self.network, n=int(arr.size)
            ) as attrs:
                data, report = self._supervise(padded, pipelined, started)
                attrs.update(
                    tier=report.tier,
                    attempts=report.attempts,
                    retries=report.retries,
                    detections=list(report.detections),
                    fell_back=report.fell_back,
                    deadline_hits=report.deadline_hits,
                )
            self._record_metrics(report)
        else:
            data, report = self._supervise(padded, pipelined, started)
        self.stats.record(report)
        return data[: arr.size], report

    def _record_metrics(self, report: CallReport) -> None:
        """Fold one call's report into the global metrics registry
        (only reached when :mod:`repro.obs` is enabled)."""
        reg = obs.OBS.registry
        net = self.network
        reg.counter("repro_supervisor_calls_total",
                    "Supervised sorts by accepted tier",
                    network=net, tier=report.tier).inc()
        if report.fell_back:
            reg.counter("repro_supervisor_fallbacks_total",
                        "Calls resolved below the first tier",
                        network=net, tier=report.tier).inc()
        if report.retries:
            reg.counter("repro_supervisor_retries_total",
                        "Attempts beyond the first per tier",
                        network=net).inc(report.retries)
        if report.deadline_hits:
            reg.counter("repro_supervisor_deadline_hits_total",
                        "Attempts killed by the deadline",
                        network=net).inc(report.deadline_hits)
        for alarm in report.detections:
            reg.counter("repro_supervisor_alarms_total",
                        "Alarm detections by alarm name",
                        network=net, alarm=alarm).inc()
        reg.histogram("repro_supervisor_latency_seconds",
                      "Wall-clock of supervised sorts",
                      network=net).observe(report.latency_s)

    def _supervise(
        self, padded: np.ndarray, pipelined: bool, started: float
    ) -> Tuple[np.ndarray, CallReport]:
        policy = self.policy
        detections: List[str] = []
        attempts = retries = deadline_hits = 0
        last_error: Optional[BaseException] = None
        tiers = [
            t for t in policy.tiers
            if not (self.network == "fish" and t in ("jit", "interpreter"))
        ]
        # All trace_event calls are no-ops unless repro.obs is enabled;
        # they journal every decision the retry/degradation ladder takes.
        for tier_index, tier in enumerate(tiers):
            if tier_index:
                obs.trace_event("supervisor.degrade", network=self.network,
                                to_tier=tier, attempts=attempts)
            delay = policy.backoff_s
            cap = policy.backoff_cap_s
            for attempt in range(policy.max_retries + 1):
                attempts += 1
                if attempt:
                    retries += 1
                    sleep_s = delay if cap is None else min(delay, cap)
                    obs.trace_event("supervisor.retry", network=self.network,
                                    tier=tier, attempt=attempt,
                                    delay_s=sleep_s)
                    if sleep_s > 0:
                        time.sleep(sleep_s)
                    delay *= policy.backoff_factor
                try:
                    with time_limit(policy.deadline_s, f"{tier} sort"):
                        data = self._run_tier(tier, padded, pipelined)
                    report = CallReport(
                        tier=tier,
                        attempts=attempts,
                        retries=retries,
                        detections=tuple(dict.fromkeys(detections)),
                        fell_back=tier_index > 0,
                        deadline_hits=deadline_hits,
                        latency_s=time.perf_counter() - started,
                    )
                    obs.trace_event("supervisor.accept", network=self.network,
                                    tier=tier, attempts=attempts)
                    return data, report
                except CheckerAlarm as exc:
                    detections.extend(exc.alarms)
                    last_error = exc
                    obs.trace_event("supervisor.alarm", network=self.network,
                                    tier=tier, attempt=attempt,
                                    alarms=list(exc.alarms))
                except DeadlineExceeded as exc:
                    deadline_hits += 1
                    last_error = exc
                    obs.trace_event("supervisor.deadline",
                                    network=self.network, tier=tier,
                                    attempt=attempt,
                                    budget_s=policy.deadline_s)
                except (SimulationError, RuntimeError) as exc:
                    last_error = exc
                    obs.trace_event("supervisor.error", network=self.network,
                                    tier=tier, attempt=attempt,
                                    error=repr(exc))
        # Every tier (including behavioral) failed — propagate the last
        # cause wrapped in the structured hierarchy.
        obs.trace_event("supervisor.exhausted", network=self.network,
                        attempts=attempts, error=repr(last_error))
        if isinstance(last_error, ReproError):
            raise last_error
        raise SimulationError(f"supervised sort failed: {last_error!r}")


# ---------------------------------------------------------------------------
# Shared per-network supervisors (used by core.api.sort_bits)
# ---------------------------------------------------------------------------

def _run_many_shard(payload) -> List[Tuple[np.ndarray, CallReport]]:
    """Sort one :meth:`Supervisor.run_many` shard in a worker process.

    Rebuilds a supervisor from the (picklable) network name and policy;
    the worker's own stats object is throwaway — the parent folds the
    returned :class:`CallReport` objects into the real one.
    """
    network, policy, pipelined, arrays = payload
    sup = Supervisor(network, policy=policy)
    return [sup.sort_verbose(arr, pipelined=pipelined) for arr in arrays]


_SUPERVISORS: Dict[str, Supervisor] = {}
_SUPERVISORS_LOCK = threading.RLock()


def get_supervisor(network: str = "mux_merger") -> Supervisor:
    """The process-wide shared :class:`Supervisor` for ``network``
    (created on first use; backs ``sort_bits(..., supervised=True)``)."""
    with _SUPERVISORS_LOCK:
        sup = _SUPERVISORS.get(network)
        if sup is None:
            sup = Supervisor(network)
            _SUPERVISORS[network] = sup
        return sup


def reset_supervisors() -> None:
    """Drop all shared supervisors (tests use this for isolation)."""
    with _SUPERVISORS_LOCK:
        _SUPERVISORS.clear()


def supervisor_stats() -> Dict[str, Dict[str, object]]:
    """Snapshot of every shared supervisor's statistics, by network."""
    with _SUPERVISORS_LOCK:
        return {k: s.stats.snapshot() for k, s in _SUPERVISORS.items()}
