"""Batch coalescer: turn a request trickle into engine-sized batches.

The compiled engine's bit-packed path switches on at 64 lanes
(``PACKED_MIN_BATCH``) and its per-pass fixed costs amortize over the
whole batch, so coalescing same-width lanes into one pass is free
throughput.  The coalescer keeps one bucket per padded width and
flushes a bucket when either

* it reaches ``max_lanes`` (a full batch — flush immediately), or
* its **oldest** lane has waited ``max_delay_s`` (the age bound: a lane
  is never held longer than one coalescing window, no matter how empty
  its bucket is — the no-starvation property ``tests/test_serve.py``
  proves).

The class is deliberately synchronous and clock-parameterized (every
method takes ``now``): the asyncio service drives it with the loop's
clock, while property tests drive it with a virtual clock and exhaust
the flush logic deterministically.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import BuildError

__all__ = ["Batch", "BatchCoalescer", "Lane"]


@dataclass(frozen=True)
class Lane:
    """One fabric lane: a width-padded 0/1 row plus an opaque ticket the
    service uses to find the waiting request again."""

    width: int  #: padded power-of-two width
    bits: np.ndarray  #: uint8 row of exactly ``width`` entries
    ticket: Any = None  #: opaque completion handle (e.g. an asyncio Future)


@dataclass(frozen=True)
class Batch:
    """A flushed group of same-width lanes, ready for one engine pass."""

    width: int
    lanes: Tuple[Lane, ...]
    reason: str  #: ``"full"`` | ``"age"`` | ``"drain"``
    oldest_age_s: float  #: wait of the longest-queued lane at flush time
    fill: float  #: ``len(lanes) / max_lanes`` — the batch-fill metric

    def __len__(self) -> int:
        return len(self.lanes)

    def rows(self) -> np.ndarray:
        """Stack the lanes into the ``(lanes, width)`` engine batch."""
        return np.stack([lane.bits for lane in self.lanes]).astype(np.uint8)


class BatchCoalescer:
    """Per-width lane buckets with size- and age-triggered flushing."""

    def __init__(self, max_lanes: int = 256, max_delay_s: float = 0.002) -> None:
        if max_lanes < 1:
            raise BuildError("max_lanes must be >= 1")
        if max_delay_s < 0:
            raise BuildError("max_delay_s must be >= 0")
        self.max_lanes = int(max_lanes)
        self.max_delay_s = float(max_delay_s)
        # width -> deque of (enqueue_time, Lane); OrderedDict so flush
        # order across widths is deterministic (insertion order).
        self._buckets: "OrderedDict[int, Deque[Tuple[float, Lane]]]" = OrderedDict()
        self._depth = 0

    # -- state ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Total queued lanes across all width buckets."""
        return self._depth

    def next_deadline(self) -> Optional[float]:
        """Earliest time any bucket must age-flush, or ``None`` if empty."""
        oldest = None
        for bucket in self._buckets.values():
            if bucket:
                t0 = bucket[0][0]
                if oldest is None or t0 < oldest:
                    oldest = t0
        return None if oldest is None else oldest + self.max_delay_s

    # -- mutation ------------------------------------------------------------

    def add(self, lane: Lane, now: float) -> List[Batch]:
        """Enqueue one lane; returns any batches that became full."""
        if lane.width < 1 or lane.bits.size != lane.width:
            raise BuildError(
                f"lane bits must match its width ({lane.bits.size} != {lane.width})"
            )
        bucket = self._buckets.get(lane.width)
        if bucket is None:
            bucket = deque()
            self._buckets[lane.width] = bucket
        bucket.append((now, lane))
        self._depth += 1
        if len(bucket) >= self.max_lanes:
            return [self._flush_bucket(lane.width, now, "full")]
        return []

    def poll(self, now: float) -> List[Batch]:
        """Flush every bucket whose oldest lane has aged out."""
        out = []
        for width in list(self._buckets):
            bucket = self._buckets[width]
            if bucket and now - bucket[0][0] >= self.max_delay_s:
                out.append(self._flush_bucket(width, now, "age"))
        return out

    def drain(self, now: float) -> List[Batch]:
        """Flush everything regardless of age (service shutdown)."""
        return [
            self._flush_bucket(width, now, "drain")
            for width in list(self._buckets)
            if self._buckets[width]
        ]

    def _flush_bucket(self, width: int, now: float, reason: str) -> Batch:
        bucket = self._buckets[width]
        taken = []
        while bucket and len(taken) < self.max_lanes:
            taken.append(bucket.popleft())
        if not bucket:
            del self._buckets[width]
        self._depth -= len(taken)
        oldest_age = now - taken[0][0] if taken else 0.0
        return Batch(
            width=width,
            lanes=tuple(lane for _, lane in taken),
            reason=reason,
            oldest_age_s=max(0.0, oldest_age),
            fill=len(taken) / self.max_lanes,
        )
