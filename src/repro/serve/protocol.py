"""Request/response framing for the sorting/routing service.

The service speaks three request kinds, one per Section IV application
of the adaptive binary sorters:

* ``sort`` — a 0/1 row to sort (the fabric's native primitive);
* ``concentrate`` — a 0/1 request mask; the answer is the mask with all
  requesters concentrated to the *top* outputs plus the granted count
  (the paper's 0-tag trick: concentration of binary requests *is*
  binary sorting);
* ``route`` — a destination permutation for the Fig. 10 radix permuter;
  the fabric binary-sorts each of the ``lg n`` destination bit-planes
  (one fabric lane per plane) and the service assembles the resulting
  output-port → source-index map.

The framing follows the zamlet NoC switch exemplar: each request is a
*header* (kind + width + tag) ahead of a payload, it expands to a known
number of fabric **lanes** before admission — credits are taken per
lane, never per request, so a route request cannot sneak ``lg n`` lanes
past a one-credit gate — and every response carries explicit flow-
control state (``status="shed"`` with a ``retry_after_s`` hint is the
NACK-with-backpressure path, never an exception).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import BuildError

__all__ = [
    "KINDS",
    "ServeRequest",
    "ServeResponse",
    "concentrate_request",
    "lanes_for",
    "route_request",
    "sort_request",
]

#: Request kinds the service accepts.
KINDS = ("sort", "concentrate", "route")

#: Response statuses.  ``ok`` carries a verified answer; ``shed`` is the
#: admission-control NACK (no credits — retry after ``retry_after_s``);
#: ``error`` reports a malformed or unservable request.
STATUSES = ("ok", "shed", "error")


@dataclass(frozen=True)
class ServeRequest:
    """One service request: a kind header plus its payload row(s).

    Build these with :func:`sort_request` / :func:`concentrate_request`
    / :func:`route_request`, which validate the payload against the
    kind's contract.
    """

    kind: str  #: one of :data:`KINDS`
    payload: np.ndarray  #: 0/1 row (sort/concentrate) or permutation (route)
    tag: str = ""  #: caller label, echoed in the response and metrics

    @property
    def n(self) -> int:
        """Payload width (bits or permutation points)."""
        return int(self.payload.size)


@dataclass
class ServeResponse:
    """What the service returns for one request.

    ``status="ok"`` responses carry the verified answer; ``shed``
    responses carry no answer but a ``retry_after_s`` backoff hint and
    the credit state that caused the shed, so a well-behaved client can
    implement the credit loop without extra round trips.
    """

    status: str  #: one of :data:`STATUSES`
    kind: str
    tag: str = ""
    result: Optional[np.ndarray] = None  #: sorted row / concentrated mask / route map
    granted: Optional[int] = None  #: concentrate only: number of requesters
    queued_s: float = 0.0  #: admission -> batch dispatch
    service_s: float = 0.0  #: batch execution wall-clock share
    total_s: float = 0.0  #: submit -> response
    batch_lanes: int = 0  #: lanes in the batch that served this request
    recovered: bool = False  #: any lane needed behavioral recovery
    detections: Tuple[str, ...] = ()  #: checker alarms observed on the way
    retry_after_s: float = 0.0  #: shed only: suggested client backoff
    credits_left: int = 0  #: gate credits remaining at response time
    error: str = ""  #: error only: what was wrong

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        return self.status == "shed"


def _as_bits(payload, what: str) -> np.ndarray:
    arr = np.asarray(payload, dtype=np.uint8).ravel()
    if arr.size < 1:
        raise BuildError(f"{what} payload must be non-empty")
    if arr.size and arr.max() > 1:
        raise BuildError(f"{what} payload must be a 0/1 sequence")
    return arr


def sort_request(bits, tag: str = "") -> ServeRequest:
    """A ``sort`` request: any-length 0/1 row (padded internally)."""
    return ServeRequest("sort", _as_bits(bits, "sort"), tag)


def concentrate_request(mask, tag: str = "") -> ServeRequest:
    """A ``concentrate`` request: 0/1 request mask, 1 = "wants an output"."""
    return ServeRequest("concentrate", _as_bits(mask, "concentrate"), tag)


def route_request(perm, tag: str = "") -> ServeRequest:
    """A ``route`` request: a destination permutation on ``n = 2**m`` points.

    ``perm[i]`` is the output port input ``i`` must reach; the response's
    ``result[j]`` is the source index routed to output ``j``.
    """
    arr = np.asarray(perm, dtype=np.int64).ravel()
    n = arr.size
    if n < 2 or n & (n - 1):
        raise BuildError(f"route needs a power-of-two permutation, got {n} points")
    if not np.array_equal(np.sort(arr), np.arange(n)):
        raise BuildError("route payload must be a permutation of range(n)")
    return ServeRequest("route", arr, tag)


def lanes_for(request: ServeRequest) -> int:
    """Fabric lanes this request occupies (what admission charges).

    ``sort``/``concentrate`` are one lane; ``route`` needs one binary
    sort per destination bit-plane, i.e. ``lg n`` lanes.
    """
    if request.kind == "route":
        return max(1, int(request.n).bit_length() - 1)
    return 1
