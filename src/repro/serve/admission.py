"""Credit-based admission control, after the zamlet switch's flow control.

The NoC exemplar grants a packet an output only while the destination
has free buffer credits; everything else waits in bounded input queues
and upstream sees explicit backpressure.  The service version: a
:class:`CreditGate` holds a fixed pool of **lane credits** — one credit
is one queued-or-in-flight fabric lane — and admission is a single
atomic ``try_acquire``:

* credits available → the request is admitted and the credits move to
  in-flight until the executed batch releases them;
* not enough credits → the request is **shed** immediately (a
  ``status="shed"`` response with a retry hint, never an unbounded
  queue or a hung caller).

The gate is a pure function of its call sequence — no clocks, no
randomness — which is what makes shed decisions reproducible under a
seeded overload (``tests/test_serve.py`` replays an overload schedule
twice and requires identical decisions).  Credits can never go negative
(over-release raises instead of corrupting the pool) and never exceed
capacity; both invariants are property-tested.
"""

from __future__ import annotations

import threading
from typing import Dict

from ..errors import BuildError

__all__ = ["CreditGate"]


class CreditGate:
    """Bounded lane-credit pool with atomic acquire/release."""

    def __init__(self, credits: int) -> None:
        if credits < 1:
            raise BuildError("credit pool must hold >= 1 credit")
        self.capacity = int(credits)
        self._available = int(credits)
        self._lock = threading.Lock()
        self._accepted = 0  # acquire calls that succeeded
        self._shed = 0  # acquire calls refused
        self._lanes_admitted = 0  # credits handed out, cumulative

    # -- flow control ---------------------------------------------------------

    def try_acquire(self, lanes: int = 1) -> bool:
        """Atomically take ``lanes`` credits; ``False`` means *shed*.

        A request larger than the whole pool can never be admitted and
        is refused loudly rather than silently shed forever.
        """
        if lanes < 1:
            raise BuildError("must acquire >= 1 lane credit")
        if lanes > self.capacity:
            raise BuildError(
                f"request needs {lanes} lanes but the pool only holds "
                f"{self.capacity}; raise the service's credit capacity"
            )
        with self._lock:
            if self._available >= lanes:
                self._available -= lanes
                self._accepted += 1
                self._lanes_admitted += lanes
                return True
            self._shed += 1
            return False

    def release(self, lanes: int = 1) -> None:
        """Return ``lanes`` credits after their batch completed."""
        if lanes < 1:
            raise BuildError("must release >= 1 lane credit")
        with self._lock:
            if self._available + lanes > self.capacity:
                raise BuildError(
                    f"credit over-release: {self._available} + {lanes} "
                    f"exceeds capacity {self.capacity}"
                )
            self._available += lanes

    # -- introspection --------------------------------------------------------

    @property
    def available(self) -> int:
        with self._lock:
            return self._available

    @property
    def in_flight(self) -> int:
        """Credits currently held by admitted-but-unanswered lanes."""
        with self._lock:
            return self.capacity - self._available

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed

    @property
    def accepted_total(self) -> int:
        with self._lock:
            return self._accepted

    def snapshot(self) -> Dict[str, int]:
        """Counters for metrics/runbooks (one consistent read)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "available": self._available,
                "in_flight": self.capacity - self._available,
                "accepted": self._accepted,
                "shed": self._shed,
                "lanes_admitted": self._lanes_admitted,
            }
