"""The asyncio front-end: admission -> coalescing -> checked execution.

:class:`SortingService` is the serving surface over the adaptive
sorting fabric.  A request's life:

1. **Admission** — the request's lane count (1, or ``lg n`` for a
   route) is charged against the :class:`~repro.serve.admission.CreditGate`.
   No credits → an immediate ``shed`` response with a ``retry_after_s``
   hint; the queue is bounded by construction and a flood degrades into
   explicit backpressure, not latency collapse.
2. **Coalescing** — admitted lanes join the per-width buckets of the
   :class:`~repro.serve.coalescer.BatchCoalescer`; a bucket flushes when
   full (``max_lanes``) or when its oldest lane has waited
   ``max_delay_s`` (the age bound — no request starves waiting for a
   fuller batch).
3. **Execution** — each flushed batch is one pass of the
   :class:`~repro.serve.executor.FabricExecutor` on self-checking
   hardware (run on a worker thread so the event loop keeps accepting),
   rows failing the alarm/invariant gates recovered behaviorally.
4. **Completion** — lane futures resolve, credits return to the pool,
   and the response is assembled per kind (sorted row, concentrated
   mask + grant count, or the routed output-port map).

Metrics flow into the :mod:`repro.obs` registry (Prometheus exposition
via ``repro.obs.registry().to_prometheus()``) when observability is
enabled; see docs/SERVING.md for the full metric table and runbook.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import BuildError, ReproError
from .admission import CreditGate
from .coalescer import Batch, BatchCoalescer, Lane
from .executor import BatchOutcome, FabricExecutor
from .protocol import KINDS, ServeRequest, ServeResponse, lanes_for

__all__ = ["ServeConfig", "SortingService", "serve_requests"]

#: Histogram buckets for batch fill (fractions of ``max_lanes``).
_FILL_BUCKETS = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

#: Histogram buckets for request latency (100 µs .. ~6.5 s).
_LATENCY_BUCKETS = tuple(1e-4 * (2.0 ** i) for i in range(17))


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs (environment mapping in docs/SERVING.md).

    ``max_lanes`` is the batch size the coalescer aims for — keep it at
    or above 64 so flushes ride the engine's bit-packed path.
    ``credits`` bounds queued + in-flight lanes; with a mean batch
    service time *s* the worst-case queueing delay is roughly
    ``credits / max_lanes * s``, which is the lever for tuning a p99
    SLO.  ``max_delay_s`` is the most latency a lane may spend waiting
    for co-batched lanes.
    """

    network: str = "mux_merger"
    max_lanes: int = 256
    max_delay_s: float = 0.002
    credits: int = 2048
    control_checker: bool = True

    def __post_init__(self) -> None:
        if self.credits < self.max_lanes:
            raise BuildError(
                "credits must cover at least one full batch "
                f"({self.credits} < {self.max_lanes})"
            )


@dataclass
class _LaneTicket:
    """Completion handle carried through the coalescer per lane."""

    future: "asyncio.Future"
    admitted_at: float
    queued_s: float = 0.0


@dataclass
class _LaneResult:
    row: np.ndarray
    accepted: bool
    tier: str
    batch_lanes: int
    queued_s: float
    service_s: float


class SortingService:
    """Async sort/route/concentrate service over one checked fabric.

    Use as an async context manager::

        async with SortingService(ServeConfig(max_lanes=128)) as svc:
            resp = await svc.submit(sort_request(bits))

    or start()/stop() explicitly.  ``submit`` is safe to call from many
    tasks concurrently; the fabric executes batches on a single worker
    thread (one fabric, pipelined reuse) while the loop keeps admitting.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.gate = CreditGate(self.config.credits)
        self.coalescer = BatchCoalescer(
            max_lanes=self.config.max_lanes,
            max_delay_s=self.config.max_delay_s,
        )
        self.executor = FabricExecutor(
            self.config.network, control=self.config.control_checker
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool = None  # ThreadPoolExecutor(1): the fabric thread
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._ready: Deque[Batch] = deque()
        self._running = False
        self._ema_lane_s = 1e-4  # per-lane service time estimate (EMA)
        self.stats: Dict[str, int] = {
            "requests": 0, "ok": 0, "shed": 0, "error": 0,
            "batches": 0, "lanes": 0, "recovered": 0, "alarms": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        import concurrent.futures

        self._loop = asyncio.get_running_loop()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-fabric"
        )
        self._wake = asyncio.Event()
        self._running = True
        self._task = self._loop.create_task(self._batch_loop())

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wake.set()
        await self._task
        # Drain whatever is still queued so no submitter hangs.
        for batch in self.coalescer.drain(self._now()):
            await self._execute(batch)
        while self._ready:
            await self._execute(self._ready.popleft())
        self._pool.shutdown(wait=True)
        self._task = None

    async def __aenter__(self) -> "SortingService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _now(self) -> float:
        return self._loop.time() if self._loop else time.monotonic()

    # -- submission -----------------------------------------------------------

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Serve one request; always returns a response, never raises
        for load or hardware trouble (``shed``/``error`` statuses)."""
        if not self._running:
            raise BuildError("service is not started (use 'async with' or start())")
        if request.kind not in KINDS:
            return self._finish(ServeResponse(
                status="error", kind=str(request.kind), tag=request.tag,
                error=f"unknown kind {request.kind!r}",
            ))
        t0 = self._now()
        n_lanes = lanes_for(request)
        if not self.gate.try_acquire(n_lanes):
            return self._finish(ServeResponse(
                status="shed", kind=request.kind, tag=request.tag,
                retry_after_s=self._retry_hint(),
                credits_left=self.gate.available,
                total_s=self._now() - t0,
            ))
        try:
            rows = self._lanes(request)
            tickets = []
            for width, row in rows:
                fut = self._loop.create_future()
                ticket = _LaneTicket(future=fut, admitted_at=t0)
                tickets.append(ticket)
                for batch in self.coalescer.add(
                    Lane(width=width, bits=row, ticket=ticket), t0
                ):
                    self._ready.append(batch)
            self._wake.set()
            results: List[_LaneResult] = [await t.future for t in tickets]
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # lane build/execution trouble -> error resp
            self.gate.release(n_lanes)
            return self._finish(ServeResponse(
                status="error", kind=request.kind, tag=request.tag,
                error=repr(exc), total_s=self._now() - t0,
            ))
        self.gate.release(n_lanes)
        response = self._assemble(request, results)
        response.total_s = self._now() - t0
        response.credits_left = self.gate.available
        return self._finish(response)

    async def submit_many(
        self, requests: Sequence[ServeRequest]
    ) -> List[ServeResponse]:
        """Submit a burst concurrently; responses in request order."""
        return list(await asyncio.gather(
            *(self.submit(r) for r in requests)
        ))

    # -- internals ------------------------------------------------------------

    def _lanes(self, request: ServeRequest) -> List[Tuple[int, np.ndarray]]:
        """Expand a request into (width, padded-row) fabric lanes."""
        if request.kind == "route":
            from ..workloads.models import permutation_bit_planes

            return [
                (request.n, plane)
                for plane in permutation_bit_planes(request.payload)
            ]
        width = self.executor.pad_width(request.n)
        row = request.payload
        if width > row.size:
            row = np.concatenate(
                [row, np.ones(width - row.size, dtype=np.uint8)]
            )
        return [(width, row)]

    def _retry_hint(self) -> float:
        """Suggested backoff: time to drain the in-flight lanes at the
        current per-lane service rate, floored at one coalescing window."""
        return max(
            self.config.max_delay_s,
            self.gate.in_flight * self._ema_lane_s,
        )

    async def _batch_loop(self) -> None:
        while self._running:
            while self._ready:
                await self._execute(self._ready.popleft())
            now = self._now()
            for batch in self.coalescer.poll(now):
                await self._execute(batch)
            if self._ready:
                continue
            deadline = self.coalescer.next_deadline()
            timeout = None if deadline is None else max(0.0, deadline - self._now())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    async def _execute(self, batch: Batch) -> None:
        started = self._now()
        rows = batch.rows()
        try:
            outcome: BatchOutcome = await self._loop.run_in_executor(
                self._pool, self.executor.run_batch, batch.width, rows
            )
        except Exception as exc:  # config-level trouble: fail the lanes
            for lane in batch.lanes:
                if not lane.ticket.future.done():
                    lane.ticket.future.set_exception(
                        exc if isinstance(exc, ReproError) else ReproError(repr(exc))
                    )
            return
        per_lane = outcome.wall_s / max(1, len(batch))
        self._ema_lane_s = 0.8 * self._ema_lane_s + 0.2 * per_lane
        self.stats["batches"] += 1
        self.stats["lanes"] += len(batch)
        self.stats["recovered"] += outcome.recovered
        self.stats["alarms"] += outcome.alarms
        if obs.OBS.enabled:
            self._record_batch_metrics(batch, outcome)
        for i, lane in enumerate(batch.lanes):
            ticket: _LaneTicket = lane.ticket
            if ticket.future.done():
                continue
            ticket.future.set_result(_LaneResult(
                row=outcome.data[i],
                accepted=bool(outcome.accepted[i]),
                tier=outcome.tier,
                batch_lanes=len(batch),
                queued_s=max(0.0, started - ticket.admitted_at),
                service_s=per_lane,
            ))

    def _assemble(
        self, request: ServeRequest, results: List[_LaneResult]
    ) -> ServeResponse:
        queued_s = max(r.queued_s for r in results)
        service_s = sum(r.service_s for r in results)
        batch_lanes = max(r.batch_lanes for r in results)
        recovered = any(not r.accepted for r in results)
        tiers = tuple(dict.fromkeys(r.tier for r in results if r.tier != "engine"))
        base = dict(
            status="ok", kind=request.kind, tag=request.tag,
            queued_s=queued_s, service_s=service_s,
            batch_lanes=batch_lanes, recovered=recovered, detections=tiers,
        )
        n = request.n
        if request.kind == "sort":
            return ServeResponse(result=results[0].row[:n], **base)
        if request.kind == "concentrate":
            concentrated = results[0].row[:n][::-1].copy()
            return ServeResponse(
                result=concentrated,
                granted=int(request.payload.sum()),
                **base,
            )
        # route: the fabric sorted (and verified) every destination
        # bit-plane; the output-port map is the LSD radix cascade over
        # those planes — stable partition by each plane in turn, exactly
        # the movement Fig. 10's distributor stages perform.
        perm = request.payload
        order = np.arange(n, dtype=np.int64)
        for b in range(len(results)):
            bits = (perm[order] >> b) & 1
            order = order[np.argsort(bits, kind="stable")]
        if not np.array_equal(perm[order], np.arange(n)):
            # Cannot happen for a validated permutation, but the service
            # never returns an unverified route.
            return ServeResponse(
                status="error", kind=request.kind, tag=request.tag,
                error="route assembly failed validation",
            )
        return ServeResponse(result=order, **base)

    def _finish(self, response: ServeResponse) -> ServeResponse:
        self.stats["requests"] += 1
        self.stats[response.status] = self.stats.get(response.status, 0) + 1
        if obs.OBS.enabled:
            reg = obs.OBS.registry
            reg.counter("repro_serve_requests_total",
                        "Service requests by kind and status",
                        kind=response.kind, status=response.status).inc()
            if response.shed:
                reg.counter("repro_serve_shed_total",
                            "Requests refused by admission control",
                            kind=response.kind).inc()
            else:
                reg.histogram("repro_serve_request_latency_seconds",
                              "End-to-end request latency",
                              buckets=_LATENCY_BUCKETS,
                              kind=response.kind).observe(response.total_s)
            reg.gauge("repro_serve_queue_depth",
                      "Lanes queued in the coalescer").set(self.coalescer.depth)
            reg.gauge("repro_serve_credits_available",
                      "Admission credits currently free").set(self.gate.available)
        return response

    def _record_batch_metrics(self, batch: Batch, outcome: BatchOutcome) -> None:
        reg = obs.OBS.registry
        reg.histogram("repro_serve_batch_fill",
                      "Flushed batch fill fraction (lanes / max_lanes)",
                      buckets=_FILL_BUCKETS,
                      reason=batch.reason).observe(batch.fill)
        reg.histogram("repro_serve_batch_lanes",
                      "Lanes per executed batch",
                      buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
                      ).observe(len(batch))
        obs.trace_event("serve.batch", width=batch.width, lanes=len(batch),
                        reason=batch.reason, tier=outcome.tier,
                        recovered=outcome.recovered, wall_s=outcome.wall_s)


def serve_requests(
    requests: Sequence[ServeRequest],
    config: Optional[ServeConfig] = None,
) -> List[ServeResponse]:
    """Synchronous convenience: start a service, submit a burst, stop.

    For scripts and tests; long-lived callers should manage a
    :class:`SortingService` inside their own event loop.
    """
    async def _run() -> List[ServeResponse]:
        async with SortingService(config) as svc:
            return await svc.submit_many(requests)

    return asyncio.run(_run())
