"""Sorting/routing as a service: async batching front-end for the fabric.

The paper's Section IV applications — concentrators and the Fig. 10
radix permuter — are a switching fabric; :mod:`repro.serve` serves
them.  An asyncio :class:`SortingService` accepts **sort / concentrate
/ route** requests, coalesces them into engine-sized batches (>= 64
lanes rides the bit-packed path — batching is free throughput),
executes each batch in one pass on self-checking hardware with the
supervised degradation ladder, and applies **credit-based admission
control**: bounded queues, explicit ``shed`` responses with retry
hints, never unbounded latency.  The request framing and credit loop
follow the zamlet NoC switch exemplar (header-routed packets,
per-output occupancy, credit flow control).

Quick start::

    import asyncio
    from repro.serve import ServeConfig, SortingService, sort_request

    async def main():
        async with SortingService(ServeConfig(max_lanes=128)) as svc:
            resp = await svc.submit(sort_request([1, 0, 1, 1, 0]))
            print(resp.status, resp.result)

    asyncio.run(main())

Drive it under load with ``tools/loadgen.py`` (arrival models from
:mod:`repro.workloads`, latency percentiles to ``BENCH_serve.json``).
Architecture, ops runbook, and measured numbers: docs/SERVING.md.
"""

from .admission import CreditGate
from .coalescer import Batch, BatchCoalescer, Lane
from .executor import BatchOutcome, FabricExecutor
from .protocol import (
    KINDS,
    ServeRequest,
    ServeResponse,
    concentrate_request,
    lanes_for,
    route_request,
    sort_request,
)
from .service import ServeConfig, SortingService, serve_requests

__all__ = [
    "Batch",
    "BatchCoalescer",
    "BatchOutcome",
    "CreditGate",
    "FabricExecutor",
    "KINDS",
    "Lane",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "SortingService",
    "concentrate_request",
    "lanes_for",
    "route_request",
    "serve_requests",
    "sort_request",
]
