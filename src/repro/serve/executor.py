"""Checked batch execution for the service: one engine pass per batch.

The executor owns the *fabric*: per-width self-checking netlists
(:func:`repro.circuits.checkers.with_checkers` — sortedness +
ones-count + control duplicate-and-compare alarms) built once and
reused across the whole request stream, the pipelined-reuse pattern
Piotrów's periodic merging networks motivate.  Each flushed batch runs
as **one** simulation pass; at >= 64 lanes the engine's bit-packed
uint64 path kicks in, which is where batching turns into throughput.

Acceptance mirrors the supervised runtime's two gates, vectorized over
the batch:

1. every alarm wire of the row must be quiet, and
2. the row must be monotone with the caller-held input's popcount
   (which closes the checkers' fault-secure boundary at the primary
   inputs; for 0/1 rows monotone + popcount is a *complete* check, so
   an accepted row is provably correct).

Rows failing either gate are **recovered behaviorally** (``np.sort`` of
the held input) before the response is assembled — a degraded-but-
correct answer, never a silent corruption.  Whole-pass failures walk
the same ladder as the supervisor: auto-routed ``simulate`` (JIT →
engine) → element-at-a-time interpreter → behavioral sort.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..circuits.checkers import CheckedNetlist, with_checkers
from ..circuits.simulate import simulate, simulate_interpreted
from ..core.api import make_sorter, next_power_of_two
from ..errors import BuildError, ReproError
from .. import obs

__all__ = ["BatchOutcome", "FabricExecutor"]


@dataclass
class BatchOutcome:
    """Result of one batch pass: verified rows plus what it took."""

    data: np.ndarray  #: (lanes, width) final rows, all provably correct
    accepted: np.ndarray  #: bool mask — rows the hardware answer survived
    tier: str  #: "engine" (auto simulate), "interpreter", or "behavioral"
    alarms: int  #: rows with any checker alarm set
    invariant_fails: int  #: alarm-quiet rows failing monotone/popcount
    recovered: int  #: rows replaced by behavioral recovery
    wall_s: float  #: execution wall-clock for the whole pass

    @property
    def lanes(self) -> int:
        return int(self.data.shape[0])


class FabricExecutor:
    """Per-width checked fabric with batch execution and recovery."""

    def __init__(self, network: str = "mux_merger", control: bool = True) -> None:
        from ..core.api import NETWORKS

        if network not in NETWORKS:
            raise BuildError(
                f"unknown network {network!r}; choose one of {NETWORKS}"
            )
        if network == "fish":
            raise BuildError(
                "the service fabric needs a combinational network "
                "(checkers attach directly); choose prefix or mux_merger"
            )
        self.network = network
        self.control = bool(control)
        self._checked: Dict[int, CheckedNetlist] = {}
        self._lock = threading.Lock()

    # -- hardware -------------------------------------------------------------

    def checked(self, width: int) -> CheckedNetlist:
        """The self-checking netlist for ``width`` (built once, reused)."""
        if width < 2 or width & (width - 1):
            raise BuildError(f"fabric width must be a power of two >= 2, got {width}")
        with self._lock:
            hw = self._checked.get(width)
            if hw is None:
                plain = make_sorter(width, self.network)
                hw = with_checkers(
                    plain, sortedness=True, count=True, control=self.control
                )
                self._checked[width] = hw
            return hw

    def pad_width(self, n: int) -> int:
        """Fabric width serving an ``n``-bit row (next power of two)."""
        return next_power_of_two(max(int(n), 2))

    def warm(self, widths) -> None:
        """Pre-build (and pre-compile) the fabric for the given widths so
        the first request doesn't pay netlist construction."""
        for w in widths:
            hw = self.checked(self.pad_width(w))
            probe = np.zeros((1, hw.n_data), dtype=np.uint8)
            simulate(hw.netlist, probe)  # compile the plan now

    # -- execution ------------------------------------------------------------

    def run_batch(self, width: int, rows: np.ndarray) -> BatchOutcome:
        """Execute one same-width batch with checking and recovery.

        ``rows`` is ``(lanes, width)`` uint8, already padded to the
        fabric width.  Never raises for hardware/checker trouble — every
        failure mode degrades to a behaviorally recovered (correct) row.
        """
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[1] != width:
            raise BuildError(f"batch must be (lanes, {width}), got {rows.shape}")
        started = time.perf_counter()
        checked = self.checked(width)
        expected = None  # computed lazily: most batches never need it

        tier = "engine"
        data = alarm_rows = None
        try:
            out = simulate(checked.netlist, rows)  # auto JIT -> engine
            data, alarms = checked.split(out)
            alarm_rows = alarms.any(axis=1)
        except (ReproError, RuntimeError):
            try:
                tier = "interpreter"
                out = simulate_interpreted(checked.netlist, rows)
                data, alarms = checked.split(out)
                alarm_rows = alarms.any(axis=1)
            except (ReproError, RuntimeError):
                tier = "behavioral"
                expected = np.sort(rows, axis=1)
                data = expected
                alarm_rows = np.zeros(rows.shape[0], dtype=bool)

        data = np.ascontiguousarray(data, dtype=np.uint8)
        invariant_ok = (np.diff(data.astype(np.int8), axis=1) >= 0).all(axis=1) & (
            data.sum(axis=1) == rows.sum(axis=1)
        )
        accepted = ~alarm_rows & invariant_ok
        if tier == "behavioral":
            accepted = np.zeros(rows.shape[0], dtype=bool)
        n_alarm = int(alarm_rows.sum())
        n_invariant = int((~invariant_ok & ~alarm_rows).sum())
        n_recovered = int((~accepted).sum())
        if not accepted.all():
            if expected is None:
                expected = np.sort(rows, axis=1)
            data = np.where(accepted[:, None], data, expected)

        wall_s = time.perf_counter() - started
        if obs.OBS.enabled:
            self._record_metrics(width, rows.shape[0], tier, n_alarm,
                                 n_recovered, wall_s)
        return BatchOutcome(
            data=data,
            accepted=accepted,
            tier=tier,
            alarms=n_alarm,
            invariant_fails=n_invariant,
            recovered=n_recovered,
            wall_s=wall_s,
        )

    def _record_metrics(self, width, lanes, tier, alarms, recovered, wall_s):
        reg = obs.OBS.registry
        net = self.network
        reg.counter("repro_serve_batches_total",
                    "Batches executed by accepted tier",
                    network=net, tier=tier).inc()
        reg.counter("repro_serve_lanes_total",
                    "Fabric lanes executed", network=net).inc(lanes)
        if alarms:
            reg.counter("repro_serve_alarm_rows_total",
                        "Batch rows with checker alarms", network=net).inc(alarms)
        if recovered:
            reg.counter("repro_serve_recovered_rows_total",
                        "Rows replaced by behavioral recovery",
                        network=net).inc(recovered)
        reg.histogram("repro_serve_batch_seconds",
                      "Wall-clock per batch pass", network=net,
                      width=width).observe(wall_s)
