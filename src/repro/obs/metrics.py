"""Thread-safe metrics registry: counters, gauges, histograms.

A deliberately small, zero-dependency metrics core in the shape of the
usual production clients (prometheus_client, OpenTelemetry): named
instruments with optional label sets, a process-wide registry, and two
export formats —

* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict, the format
  the campaign tools persist next to their result files;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` + one line per sample), so a scrape
  endpoint or a textfile collector can ingest the same numbers.

Every mutation takes the registry lock; instruments are cheap enough
that the instrumented hot paths (one counter bump per *fused step*, not
per element) stay far below the noise floor — see
``benchmarks/bench_observability_overhead.py``.

Instruments are created lazily and idempotently::

    from repro.obs import metrics as m
    reg = m.MetricsRegistry()
    reg.counter("engine_executions_total", mode="packed").inc()
    reg.histogram("engine_execute_seconds").observe(0.0021)
    print(reg.to_prometheus())
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets: exponential from 100 µs to ~100 s, the
#: range spanned by a fused-step kernel up to a whole campaign item.
DEFAULT_BUCKETS = tuple(1e-4 * (4.0 ** i) for i in range(11))

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Dict[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class _Instrument:
    """Base: a named instrument bound to one label set."""

    kind = "untyped"

    def __init__(self, name: str, pairs: LabelPairs, lock: threading.Lock):
        self.name = name
        self.pairs = pairs
        self._lock = lock


class Counter(_Instrument):
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name, pairs, lock):
        super().__init__(name, pairs, lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """Last-written value (can go up and down)."""

    kind = "gauge"

    def __init__(self, name, pairs, lock):
        super().__init__(name, pairs, lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket is always
    present.  ``observe`` adds to every bucket whose bound is >= the
    value (cumulative counts, like the exposition format expects).
    """

    kind = "histogram"

    def __init__(self, name, pairs, lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, pairs, lock)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # + +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending at +Inf."""
        out, running = [], 0
        with self._lock:
            for bound, c in zip(self.bounds, self.bucket_counts):
                running += c
                out.append((bound, running))
            out.append((math.inf, running + self.bucket_counts[-1]))
        return out


class MetricsRegistry:
    """Thread-safe collection of named, labelled instruments.

    One registry is process-global (``repro.obs.registry()``); tests and
    tools may build private ones.  ``counter``/``gauge``/``histogram``
    get-or-create: the same (name, labels) always returns the same
    instrument, and a name can only be used with one instrument kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], _Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # -- get-or-create --------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels: Dict[str, object],
             **kwargs) -> _Instrument:
        pairs = _label_pairs(labels)
        key = (name, pairs)
        with self._lock:
            seen = self._kinds.get(name)
            if seen is not None and seen != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {seen}"
                )
            inst = self._metrics.get(key)
            if inst is None:
                inst = cls(name, pairs, self._lock, **kwargs)
                self._metrics[key] = inst
                self._kinds[name] = cls.kind
                if help:
                    self._help[name] = help
            return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": buckets}
        return self._get(Histogram, name, help, labels, **kwargs)

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (tests and tool re-runs)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._help.clear()

    def _sorted_items(self) -> List[Tuple[Tuple[str, LabelPairs], _Instrument]]:
        with self._lock:
            return sorted(self._metrics.items(), key=lambda kv: kv[0])

    # -- cross-process merging ------------------------------------------------

    def dump_state(self) -> List[Dict[str, object]]:
        """Structured, picklable state for cross-process merging.

        Worker processes (see :mod:`repro.parallel`) dump their private
        registry on exit and ship it to the parent, which folds it in
        with :meth:`merge_state` — counters and histograms *add*,
        gauges take the incoming value (last writer wins).
        """
        out: List[Dict[str, object]] = []
        for (name, pairs), inst in self._sorted_items():
            entry: Dict[str, object] = {
                "name": name,
                "kind": inst.kind,
                "labels": dict(pairs),
                "help": self._help.get(name, ""),
            }
            if isinstance(inst, Histogram):
                entry["bounds"] = list(inst.bounds)
                entry["bucket_counts"] = list(inst.bucket_counts)
                entry["count"] = inst.count
                entry["sum"] = inst.sum
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    def merge_state(self, state: Iterable[Dict[str, object]]) -> None:
        """Fold a :meth:`dump_state` payload from another process in.

        Counter values and histogram bucket counts are added; gauges are
        overwritten.  A histogram whose bucket bounds disagree with the
        local instrument's raises ``ValueError`` (merging incompatible
        buckets would corrupt both).
        """
        for entry in state:
            name = str(entry["name"])
            kind = entry.get("kind", "counter")
            labels = dict(entry.get("labels", {}))
            help_text = str(entry.get("help", ""))
            if kind == "counter":
                self.counter(name, help_text, **labels).inc(
                    float(entry.get("value", 0.0))
                )
            elif kind == "gauge":
                self.gauge(name, help_text, **labels).set(
                    float(entry.get("value", 0.0))
                )
            elif kind == "histogram":
                bounds = tuple(float(b) for b in entry.get("bounds", ()))
                hist = self.histogram(
                    name, help_text, buckets=bounds or None, **labels
                )
                if hist.bounds != (bounds or hist.bounds):
                    raise ValueError(
                        f"histogram {name!r}: incompatible bucket bounds "
                        f"{bounds} vs {hist.bounds}"
                    )
                counts = [int(c) for c in entry.get("bucket_counts", ())]
                with self._lock:
                    if len(counts) == len(hist.bucket_counts):
                        for i, c in enumerate(counts):
                            hist.bucket_counts[i] += c
                    hist.count += int(entry.get("count", 0))
                    hist.sum += float(entry.get("sum", 0.0))
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    # -- exporters ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dict: one entry per (name, labels) series."""
        out: Dict[str, object] = {}
        for (name, pairs), inst in self._sorted_items():
            key = name + _format_labels(pairs)
            if isinstance(inst, Histogram):
                out[key] = {
                    "type": "histogram",
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": [
                        ["+Inf" if math.isinf(b) else b, c]
                        for b, c in inst.cumulative()
                    ],
                }
            else:
                out[key] = {"type": inst.kind, "value": inst.value}
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        emitted_header = set()
        for (name, pairs), inst in self._sorted_items():
            if name not in emitted_header:
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {inst.kind}")
                emitted_header.add(name)
            if isinstance(inst, Histogram):
                for bound, cum in inst.cumulative():
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    bucket_pairs = pairs + (("le", le),)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_pairs)} {cum}"
                    )
                lines.append(f"{name}_sum{_format_labels(pairs)} {inst.sum}")
                lines.append(f"{name}_count{_format_labels(pairs)} {inst.count}")
            else:
                lines.append(f"{name}{_format_labels(pairs)} {inst.value}")
        return "\n".join(lines) + "\n"
