"""Observability for the reproduction: metrics, tracing, switch activity.

``repro.obs`` is the zero-required-dependency observability layer the
rest of the package reports into:

* a process-global **metrics registry** (:mod:`repro.obs.metrics`) —
  counters, gauges, histograms with labels; JSON and Prometheus-text
  export;
* **span tracing** (:mod:`repro.obs.tracing`) — nestable
  :func:`trace_span` / :func:`trace_event` emitting JSON-lines records
  with monotonic timestamps into a ring buffer and/or a crash-safe
  append-only file;
* **switch-activity profiling** (:mod:`repro.obs.activity`) — per-element
  toggle counts for every routing element and tagged steering wire, the
  empirical counterpart of the paper's adaptive control (Table I).

Everything is **off by default** and adds <2% overhead while off (the
hot paths check one flag; see
``benchmarks/bench_observability_overhead.py``).  Turn it on
programmatically::

    import repro.obs as obs
    obs.enable(trace_path="trace.jsonl")   # tracing + metrics + activity
    ... run simulations ...
    obs.flush_activity()                   # activity summaries -> trace
    print(obs.registry().to_prometheus())  # or .to_json()
    obs.disable()

or from the environment, with no code changes::

    REPRO_OBS=1 REPRO_OBS_TRACE=trace.jsonl python tools/sweep.py ...

then read the trace with ``tools/trace_report.py``.

Instrumented call sites (all gated on :func:`enabled`):

======================  ====================================================
where                   what is recorded
======================  ====================================================
``circuits.engine``     ``engine.execute`` spans with per-(level, kind)
                        kernel timings and gather/scatter byte counts;
                        switch-activity accumulation per plan
``circuits.simulate``   ``interp.execute`` spans for the oracle
                        interpreters (engine spans cover ``simulate``)
``circuits.jit``        ``jit.compile`` / ``jit.execute`` spans,
                        ``jit.cache_hit`` events, plus a
                        ``repro_jit_codegen_seconds`` histogram and
                        compile/hit/execution counters — the inputs to
                        ``tools/trace_report.py``'s compile-amortization
                        section
``runtime.supervisor``  ``supervisor.sort`` spans plus an instant event
                        for every alarm / deadline / retry / degradation
                        / acceptance decision
``tools/sweep.py``      ``sweep.item`` spans, quarantine events
``tools/fault_…py``     ``campaign.item`` spans, quarantine events
======================  ====================================================

The differential guarantee — instrumentation never changes simulation
outputs — is property-tested in ``tests/test_obs_differential.py``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .activity import (
    ActivityProfile,
    activity_profiles,
    record_execution,
    reset_activity,
    summarize_profile,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import (
    FileSink,
    RingBufferSink,
    TraceReadResult,
    Tracer,
    merge_shards,
    read_trace,
    shard_paths,
)

__all__ = [
    "ActivityProfile",
    "Counter",
    "FileSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "RingBufferSink",
    "TraceReadResult",
    "Tracer",
    "activity_profiles",
    "activity_summary",
    "counter",
    "disable",
    "enable",
    "enabled",
    "flush_activity",
    "histogram",
    "merge_shards",
    "merge_trace_shards",
    "read_trace",
    "shard_paths",
    "trace_paths",
    "record_execution",
    "registry",
    "reset",
    "reset_activity",
    "ring_events",
    "summarize_profile",
    "trace_event",
    "trace_span",
    "tracer",
]

#: Environment variables honoured at import time.
ENV_ENABLE = "REPRO_OBS"
ENV_TRACE = "REPRO_OBS_TRACE"


class _ObsState:
    """The one mutable switchboard the instrumented hot paths consult.

    ``enabled`` is the master flag — reading it is the *only* cost the
    disabled configuration pays on hot paths (callers guard with
    ``if OBS.enabled:`` before building spans or attrs).  ``activity``
    additionally gates switch-activity accumulation, which is the
    costliest collector.
    """

    __slots__ = ("enabled", "activity", "registry", "tracer", "ring")

    def __init__(self) -> None:
        self.enabled = False
        self.activity = True
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.ring: Optional[RingBufferSink] = None

    def __repr__(self) -> str:
        return (f"<obs {'enabled' if self.enabled else 'disabled'}, "
                f"{len(self.tracer.sinks)} sinks, "
                f"{len(self.registry)} metrics>")


OBS = _ObsState()


def enable(trace_path=None, *, activity: bool = True,
           ring_capacity: int = 4096) -> None:
    """Turn observability on.

    ``trace_path`` adds a crash-safe JSON-lines :class:`FileSink` (the
    file is appended to, so several runs may share it).  ``activity``
    gates switch-activity profiling; ``ring_capacity`` sizes the
    in-memory ring buffer (pass 0 to skip it).
    """
    if ring_capacity and OBS.ring is None:
        OBS.ring = RingBufferSink(ring_capacity)
        OBS.tracer.add_sink(OBS.ring)
    if trace_path is not None:
        paths = {getattr(s, "path", None) for s in OBS.tracer.sinks}
        if os.fspath(trace_path) not in paths:
            OBS.tracer.add_sink(FileSink(trace_path))
    OBS.activity = activity
    OBS.enabled = True


def disable() -> None:
    """Turn observability off (keeps collected data for inspection)."""
    OBS.enabled = False


def enabled() -> bool:
    """Whether instrumentation is currently on."""
    return OBS.enabled


def reset() -> None:
    """Disable and drop all sinks, metrics, and activity profiles."""
    OBS.enabled = False
    OBS.tracer.clear_sinks()
    OBS.ring = None
    OBS.registry.reset()
    reset_activity()


# -- metrics conveniences -----------------------------------------------------

def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return OBS.registry


def counter(name: str, help: str = "", **labels) -> Counter:
    return OBS.registry.counter(name, help, **labels)


def histogram(name: str, help: str = "", **labels) -> Histogram:
    return OBS.registry.histogram(name, help, **labels)


# -- tracing conveniences -----------------------------------------------------

def tracer() -> Tracer:
    """The process-global tracer."""
    return OBS.tracer


@contextmanager
def trace_span(name: str, **attrs) -> Iterator[Dict[str, Any]]:
    """Span on the global tracer; a plain pass-through when disabled."""
    if not OBS.enabled:
        yield attrs
        return
    with OBS.tracer.span(name, **attrs) as a:
        yield a


def trace_event(name: str, **attrs) -> None:
    """Instant event on the global tracer; no-op when disabled."""
    if OBS.enabled:
        OBS.tracer.event(name, **attrs)


def ring_events() -> List[Dict[str, Any]]:
    """Records currently held by the in-memory ring sink."""
    return OBS.ring.events() if OBS.ring is not None else []


def trace_paths() -> List[str]:
    """Base paths of every :class:`FileSink` attached to the tracer."""
    return [
        s._base_path for s in OBS.tracer.sinks if isinstance(s, FileSink)
    ]


def merge_trace_shards(remove: bool = True) -> int:
    """Fold forked workers' per-pid trace shards into every attached
    :class:`FileSink`'s base file (see :func:`tracing.merge_shards`).
    The parent of a :mod:`repro.parallel` pool calls this after the
    workers exit; returns the number of records merged."""
    merged = 0
    for base in trace_paths():
        merged += merge_shards(base, remove=remove)
    return merged


# -- activity conveniences ----------------------------------------------------

def activity_summary() -> Dict[str, Dict[str, Any]]:
    """Summaries of every accumulated activity profile, by netlist."""
    return {
        name: summarize_profile(prof)
        for name, prof in sorted(activity_profiles().items())
    }


def flush_activity() -> Dict[str, Dict[str, Any]]:
    """Emit one ``engine.activity`` event per profile to the trace
    stream and return the summaries.  Long-running tools call this
    before exiting so ``tools/trace_report.py`` can render the heatmap
    from the trace file alone."""
    summaries = activity_summary()
    if OBS.tracer.sinks:
        for summary in summaries.values():
            OBS.tracer.event("engine.activity", **summary)
    return summaries


# -- environment opt-in -------------------------------------------------------

def _env_truthy(value: Optional[str]) -> bool:
    return bool(value) and value.strip().lower() not in ("0", "false", "no", "off")


_env_trace = os.environ.get(ENV_TRACE)
if _env_truthy(os.environ.get(ENV_ENABLE)) or _env_trace:
    enable(trace_path=_env_trace or None)
