"""Switch-activity profiling: how often the adaptive elements actually flip.

The paper's whole point is that control is *adaptive* — switch settings
are derived from the data (Table I, Figs. 5-7) rather than fixed.  This
module measures that adaptivity empirically: for every routing element
and every tagged control wire, how many batch lanes put it in its
non-default (crossed) state.

Because each wire of a netlist is driven exactly once, the engine's
settled value matrix ``V`` (``n_wires x lanes``) contains every control
signal after a run; one pass over the plan's fused steps therefore
yields exact per-element counts with no change to the kernels:

* ``COMPARATOR`` — *exchanged* lanes, ``a=1, b=0`` (the only input pair
  a comparator reorders);
* ``SWITCH2`` / ``MUX2`` — control input high (crossed / selecting b);
* ``DEMUX2`` — select high (routing to the second branch);
* ``SWITCH4`` — any select bit high (a non-identity quarter permutation);
* every wire in ``Netlist.control_wires`` — the adaptive steering
  signals PR 2 tagged for fault injection — counted individually.

Counts accumulate per plan into an :class:`ActivityProfile`
(process-global, keyed by netlist name); :func:`summarize_profile`
reduces one to a compact JSON-able summary (per-(level, kind) mean
toggle fractions + the most active elements and control wires), which is
what :func:`repro.obs.flush_activity` appends to the trace stream and
``tools/trace_report.py`` renders as the text heatmap.
"""

from __future__ import annotations

import threading
from typing import Dict, List

import numpy as np

__all__ = [
    "ActivityProfile",
    "activity_profiles",
    "record_execution",
    "reset_activity",
    "summarize_profile",
]

#: Cap on elements/wires listed individually in a summary.
TOP_K = 32


class ActivityProfile:
    """Accumulated toggle counts for one compiled plan."""

    def __init__(self, name: str, plan) -> None:
        self.name = name
        self.n_elements = plan.n_elements
        self.lanes = 0
        #: crossed-lane count per original element index.
        self.crossed = np.zeros(plan.n_elements, dtype=np.int64)
        #: element kind / execution level, aligned with ``crossed``.
        self.kind = np.empty(plan.n_elements, dtype=object)
        self.level = np.zeros(plan.n_elements, dtype=np.int64)
        #: True where the element is a routing element we profile.
        self.switching = np.zeros(plan.n_elements, dtype=bool)
        for step in plan.steps:
            self.kind[step.eidx] = step.kind
            self.level[step.eidx] = step.level
        #: tagged adaptive control wires and their high-lane counts.
        self.control_wires = np.asarray(plan.control_wires, dtype=np.intp)
        self.wire_high = np.zeros(self.control_wires.size, dtype=np.int64)


_PROFILES: Dict[str, ActivityProfile] = {}
_LOCK = threading.Lock()


def _get_profile(plan) -> ActivityProfile:
    with _LOCK:
        prof = _PROFILES.get(plan.name)
        if prof is None or prof.n_elements != plan.n_elements:
            # New plan, or a different netlist reusing the name: restart.
            prof = ActivityProfile(plan.name, plan)
            _PROFILES[plan.name] = prof
        return prof


def activity_profiles() -> Dict[str, ActivityProfile]:
    """Live profiles by netlist name (a shallow copy of the registry)."""
    with _LOCK:
        return dict(_PROFILES)


def reset_activity() -> None:
    """Drop every accumulated profile."""
    with _LOCK:
        _PROFILES.clear()


def _popcount_rows(rows: np.ndarray, lanes: int, packed: bool) -> np.ndarray:
    """Per-row count of high lanes; ``rows`` is (m, lanes) uint8 0/1 or
    (m, words) packed uint64.  Packed rows mask the pad bits beyond
    ``lanes`` (constants and inverters set them high)."""
    if not packed:
        return rows.sum(axis=1, dtype=np.int64)
    bits = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=1, bitorder="little"
    )[:, :lanes]
    return bits.sum(axis=1, dtype=np.int64)


def record_execution(plan, V: np.ndarray, lanes: int, packed: bool) -> None:
    """Fold one finished execution's settled values into the profile.

    ``V`` is the engine's value matrix *after* ``apply_steps`` (or the
    tag matrix of a payload run); ``lanes`` the true batch size (the
    packed path rounds storage up to whole uint64 words).
    """
    # Imported here to avoid a hard cycle: engine imports repro.obs.
    from ..circuits import elements as el

    prof = _get_profile(plan)
    ones = np.uint64(0xFFFFFFFFFFFFFFFF) if packed else np.uint8(1)
    with _LOCK:
        for step in plan.steps:
            kind = step.kind
            if kind == el.COMPARATOR:
                a = V[step.in_idx[:, 0]]
                b = V[step.in_idx[:, 1]]
                ctrl = a & (b ^ ones)  # exchanged: a=1, b=0
            elif kind in (el.SWITCH2, el.MUX2):
                ctrl = V[step.in_idx[:, 2]]
            elif kind == el.DEMUX2:
                ctrl = V[step.in_idx[:, 1]]
            elif kind == el.SWITCH4:
                ctrl = V[step.in_idx[:, 4]] | V[step.in_idx[:, 5]]
            else:
                continue
            prof.crossed[step.eidx] += _popcount_rows(ctrl, lanes, packed)
            prof.switching[step.eidx] = True
        if prof.control_wires.size:
            prof.wire_high += _popcount_rows(
                V[prof.control_wires], lanes, packed
            )
        prof.lanes += lanes


def summarize_profile(prof: ActivityProfile,
                      top_k: int = TOP_K) -> Dict[str, object]:
    """Reduce a profile to the JSON summary the trace stream carries.

    ``levels`` is the heatmap backbone: one row per execution level that
    contains routing elements, with the mean and max toggle fraction
    across that level's elements.  ``top_elements`` / ``top_wires`` name
    the individually busiest switches and steering wires.
    """
    lanes = max(prof.lanes, 1)
    sw = prof.switching
    levels: List[Dict[str, object]] = []
    if sw.any():
        frac = prof.crossed[sw] / float(lanes)
        lvl = prof.level[sw]
        kinds = prof.kind[sw]
        for level in np.unique(lvl):
            mask = lvl == level
            level_kinds = sorted({str(k) for k in kinds[mask]})
            levels.append({
                "level": int(level),
                "elements": int(mask.sum()),
                "kinds": level_kinds,
                "mean_frac": float(frac[mask].mean()),
                "max_frac": float(frac[mask].max()),
            })
    top_elements: List[Dict[str, object]] = []
    if sw.any():
        idx = np.flatnonzero(sw)
        order = idx[np.argsort(prof.crossed[idx])[::-1][:top_k]]
        for e in order:
            top_elements.append({
                "element": int(e),
                "kind": str(prof.kind[e]),
                "level": int(prof.level[e]),
                "crossed": int(prof.crossed[e]),
                "frac": float(prof.crossed[e] / lanes),
            })
    top_wires: List[Dict[str, object]] = []
    if prof.control_wires.size:
        order = np.argsort(prof.wire_high)[::-1][:top_k]
        for i in order:
            top_wires.append({
                "wire": int(prof.control_wires[i]),
                "high": int(prof.wire_high[i]),
                "frac": float(prof.wire_high[i] / lanes),
            })
    return {
        "netlist": prof.name,
        "lanes": int(prof.lanes),
        "switching_elements": int(sw.sum()),
        "control_wires": int(prof.control_wires.size),
        "levels": levels,
        "top_elements": top_elements,
        "top_wires": top_wires,
    }
