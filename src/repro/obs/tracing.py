"""Span-based tracing: nestable spans, instant events, JSON-lines sinks.

The tracer emits one JSON object per line ("JSON lines"), the format
every trace viewer and log shipper can ingest, and the one
``tools/trace_report.py`` summarizes.  Two record shapes:

* **span** — emitted when a :func:`trace_span` context exits::

      {"type": "span", "name": "engine.execute", "ts": 1.2345,
       "dur": 0.0021, "depth": 1, "sid": 7, "parent": 3,
       "tid": 140234, "attrs": {...}}

  ``ts`` is a monotonic timestamp (``time.perf_counter``) relative to
  the tracer's epoch, ``dur`` the span's wall-clock, ``sid``/``parent``
  the span ids that recover the tree, ``depth`` the nesting level on
  this thread.

* **event** — an instant (zero-duration) marker from :func:`trace_event`,
  same fields minus ``dur``; the supervisor uses these for every
  retry/degradation/alarm decision.

Sinks:

* :class:`RingBufferSink` — last-N events in memory, for tests and
  interactive inspection (``repro.obs.ring_events()``);
* :class:`FileSink` — append-only JSON-lines file.  Each record is
  written as **one** ``write()`` call and flushed, so a SIGKILL can lose
  or truncate at most the final line; :func:`read_trace` tolerates
  exactly that (and refuses to silently skip corruption elsewhere
  unless asked), mirroring the atomic-write conventions of
  :mod:`repro.ioutil` for append-style files.

  The sink is **fork-aware**: a ``write()`` from a process other than
  the one that last wrote detects the ``os.getpid()`` change, abandons
  the inherited file handle (never closing it — the parent owns those
  buffered bytes), and reopens a per-pid *shard* next to the parent
  file (``trace.jsonl`` → ``trace.jsonl.shard-<pid>``), so forked
  workers can never interleave or duplicate lines in the parent's
  trace.  :func:`merge_shards` folds shards back into the parent file;
  the sink also registers an ``atexit`` flush/close so a process that
  exits without ``obs.reset()`` cannot strand an open handle.
"""

from __future__ import annotations

import atexit
import glob as _glob
import io
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FileSink",
    "RingBufferSink",
    "TraceReadResult",
    "Tracer",
    "merge_shards",
    "read_trace",
    "shard_paths",
]


class RingBufferSink:
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(record)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def close(self) -> None:  # interface parity with FileSink
        pass


class FileSink:
    """Append JSON-lines records to ``path``, one flushed write per record.

    The file is opened lazily (first record) and appended to, so several
    tool invocations can share one trace file.  Writing a full line per
    ``write()`` + flush bounds crash damage to one truncated final line,
    which :func:`read_trace` is specified to tolerate.

    Fork safety: the sink remembers which pid it writes for.  When a
    forked child inherits it and writes, the pid mismatch is detected
    and the child transparently switches to a per-pid shard file
    (:meth:`shard_path`); the inherited handle is abandoned *without*
    closing (a close could flush parent-owned buffered bytes a second
    time).  Closing is also registered with :mod:`atexit`, so every
    process — parent or forked worker — flushes and releases its handle
    on interpreter exit even when nobody calls :func:`repro.obs.reset`.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._base_path = self.path
        self._pid = os.getpid()
        self._fh: Optional[io.TextIOWrapper] = None
        self._lock = threading.Lock()
        atexit.register(self.close)

    @staticmethod
    def shard_path(base, pid: int) -> str:
        """Per-pid shard file used by forked writers of ``base``."""
        return f"{os.fspath(base)}.shard-{pid}"

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            pid = os.getpid()
            if pid != self._pid:
                # Forked child: the parent owns the inherited handle and
                # its file position.  Abandon it (no close — see class
                # docstring) and write this process's records to a
                # sibling shard instead.
                self._fh = None
                self._pid = pid
                self.path = self.shard_path(self._base_path, pid)
            if self._fh is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and os.getpid() == self._pid:
                self._fh.close()
            self._fh = None


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[int] = []


class Tracer:
    """Emit spans and events to a set of sinks.

    All methods are cheap no-ops while ``sinks`` is empty; the global
    tracer behind :func:`repro.obs.trace_span` additionally sits behind
    the master enable flag, so disabled builds never reach here.
    """

    def __init__(self) -> None:
        self.sinks: List[Any] = []
        self._epoch = time.perf_counter()
        self._ids = threading.local()
        self._next_sid = 0
        self._sid_lock = threading.Lock()
        self._spans = _SpanStack()

    # -- plumbing -------------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self.sinks:
            self.sinks.remove(sink)

    def clear_sinks(self) -> None:
        for sink in self.sinks:
            sink.close()
        self.sinks = []

    def _emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.write(record)

    def _new_sid(self) -> int:
        with self._sid_lock:
            self._next_sid += 1
            return self._next_sid

    def now(self) -> float:
        """Monotonic seconds since the tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -- recording ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Dict[str, Any]]:
        """Time a region; emits one span record on exit.

        Yields the ``attrs`` dict, so the body can attach results
        computed inside the span (e.g. per-level timings)::

            with tracer.span("engine.execute", netlist=net.name) as a:
                ...
                a["levels"] = plan.n_levels
        """
        stack = self._spans.stack
        sid = self._new_sid()
        parent = stack[-1] if stack else None
        stack.append(sid)
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            dur = time.perf_counter() - start
            stack.pop()
            self._emit({
                "type": "span",
                "name": name,
                "ts": round(start - self._epoch, 9),
                "dur": round(dur, 9),
                "sid": sid,
                "parent": parent,
                "depth": len(stack),
                "tid": threading.get_ident(),
                "attrs": attrs,
            })

    def event(self, name: str, **attrs) -> None:
        """Emit an instant event (decision points, alarms, quarantines)."""
        stack = self._spans.stack
        self._emit({
            "type": "event",
            "name": name,
            "ts": round(self.now(), 9),
            "sid": self._new_sid(),
            "parent": stack[-1] if stack else None,
            "depth": len(stack),
            "tid": threading.get_ident(),
            "attrs": attrs,
        })


class TraceReadResult:
    """Events parsed from a trace file plus what was tolerated.

    ``truncated`` is True when the file's final line was cut short (the
    crash-safe sink's only legal damage mode); ``corrupt`` counts any
    *non-final* undecodable lines skipped in lenient mode.
    """

    def __init__(self, events: List[Dict[str, Any]],
                 truncated: bool, corrupt: int) -> None:
        self.events = events
        self.truncated = truncated
        self.corrupt = corrupt

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def read_trace(path, strict: bool = True) -> TraceReadResult:
    """Parse a JSON-lines trace file, tolerating a truncated final line.

    A file last written by :class:`FileSink` and killed mid-write ends
    in at most one partial line; that line is silently dropped and
    flagged via :attr:`TraceReadResult.truncated`.  A bad line anywhere
    *else* means real corruption: with ``strict=True`` (default) it
    raises ``ValueError``; with ``strict=False`` it is skipped and
    counted in :attr:`TraceReadResult.corrupt`.
    """
    events: List[Dict[str, Any]] = []
    bad: List[Tuple[int, str]] = []
    with open(os.fspath(path), "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.readlines()
    last_index = len(lines) - 1
    truncated = False
    corrupt = 0
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            if not isinstance(record, dict):
                raise ValueError("trace records must be JSON objects")
        except ValueError:
            if i == last_index:
                truncated = True  # the one damage mode FileSink permits
                continue
            if strict:
                raise ValueError(
                    f"{path}: corrupt trace record on line {i + 1} "
                    f"(not the final line — not SIGKILL truncation)"
                )
            corrupt += 1
            bad.append((i + 1, stripped[:80]))
            continue
        events.append(record)
    return TraceReadResult(events, truncated, corrupt)


def shard_paths(path) -> List[str]:
    """Existing per-pid shard files for the trace file ``path``."""
    return sorted(_glob.glob(os.fspath(path) + ".shard-*"))


def merge_shards(path, remove: bool = True) -> int:
    """Fold per-pid fork shards back into the parent trace file.

    Reads every ``<path>.shard-<pid>`` leniently (a SIGKILLed worker may
    leave a truncated final line), appends the surviving records to
    ``path`` in shard order, and (by default) deletes the shards.
    Returns the number of records merged.  Safe to call while a
    :class:`FileSink` still holds ``path`` open: both writers use
    append mode.
    """
    base = os.fspath(path)
    merged = 0
    for shard in shard_paths(base):
        result = read_trace(shard, strict=False)
        if result.events:
            with open(base, "a", encoding="utf-8") as fh:
                for event in result.events:
                    fh.write(json.dumps(event, separators=(",", ":")) + "\n")
            merged += len(result.events)
        if remove:
            try:
                os.unlink(shard)
            except OSError:
                pass
    return merged
