"""Resilience classification and damage scoring for fault campaigns.

A fault-injection run evaluates a mutated netlist on a batch of probe
inputs and compares against the fault-free expectation.  Each run lands
in one of three classes:

* ``masked`` — every probe output is correct; the fault never reaches a
  primary output (logical redundancy, e.g. the prefix sorter's count
  MSB stuck at 0).
* ``detected`` — some wrong output row is *non-monotone*.  A 0-1 output
  that is not of the form ``0...01...1`` is self-evidently broken: an
  output-only sortedness checker (the cheapest possible on-line monitor)
  flags it without knowing the input.
* ``silent-corruption`` — every wrong row still *looks* sorted
  (monotone) but has the wrong content (ones count changed).  This is
  the dangerous class: the sorter emits a plausible answer that no
  output-side monitor can reject.

Damage is scored on the wrong rows with standard displacement measures,
vectorized for 0-1 sequences:

* ``inversions`` — number of (1 before 0) pairs, which for binary
  sequences equals the Kendall-tau distance to the sorted arrangement;
* ``displacement`` — total leftward displacement of the 1s from their
  sorted slots (the footrule distance restricted to the ones);
* ``hamming`` — positions differing from the true sorted output;
* ``popcount_delta`` — ones gained/lost, i.e. how far the output is
  from being a permutation of the input at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .tables import format_table

MASKED = "masked"
DETECTED = "detected"
SILENT = "silent-corruption"
OUTCOMES: Tuple[str, ...] = (MASKED, DETECTED, SILENT)


def _as_batch(bits) -> np.ndarray:
    a = np.asarray(bits, dtype=np.uint8)
    if a.ndim == 1:
        a = a[None, :]
    return a


def row_inversions(out) -> np.ndarray:
    """Kendall-tau distance of each 0-1 row to its sorted arrangement.

    A (1 before 0) pair is exactly one adjacent-transposition of work;
    counted as ``sum over zeros of (ones strictly before them)``.
    """
    a = _as_batch(out)
    ones_before = np.cumsum(a, axis=1, dtype=np.int64) - a
    return ((1 - a.astype(np.int64)) * ones_before).sum(axis=1)


def ones_displacement(out) -> np.ndarray:
    """Total displacement of each row's 1s from their sorted positions.

    With ``k`` ones in a length-``n`` row, sorted order puts them at
    positions ``n-k .. n-1`` (sum ``k*n - k(k+1)/2``); the metric is
    that ideal position sum minus the actual one (always >= 0).
    """
    a = _as_batch(out)
    n = a.shape[1]
    k = a.sum(axis=1, dtype=np.int64)
    ideal = k * n - (k * (k + 1)) // 2
    actual = (a.astype(np.int64) * np.arange(n, dtype=np.int64)).sum(axis=1)
    return ideal - actual


def monotone_rows(out) -> np.ndarray:
    """Boolean mask: rows already of the sorted ``0...01...1`` shape."""
    a = _as_batch(out)
    return (np.diff(a.astype(np.int8), axis=1) >= 0).all(axis=1)


def classify(out, expected) -> str:
    """Classify one fault run (see module docstring for the classes)."""
    a, e = _as_batch(out), _as_batch(expected)
    if a.shape != e.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {e.shape}")
    wrong = (a != e).any(axis=1)
    if not wrong.any():
        return MASKED
    if (~monotone_rows(a[wrong])).any():
        return DETECTED
    return SILENT


def classify_with_alarms(out, alarms, expected) -> str:
    """Classify a fault run on *self-checking* hardware.

    ``alarms`` is the per-row alarm matrix (or vector) emitted by the
    concurrent checkers of :mod:`repro.circuits.checkers`.  A wrong row
    counts as detected if it is non-monotone (the offline criterion of
    :func:`classify`) **or** any alarm fired on it — the checkers turn
    previously-silent monotone-but-wrong outputs into detections.
    ``silent-corruption`` survives only if some wrong row is monotone
    *and* alarm-free.
    """
    a, e = _as_batch(out), _as_batch(expected)
    if a.shape != e.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {e.shape}")
    al = np.asarray(alarms, dtype=bool)
    if al.ndim == 2:
        al = al.any(axis=1)
    if al.shape != (a.shape[0],):
        raise ValueError(
            f"alarms must be per-row: got {al.shape} for batch {a.shape}"
        )
    wrong = (a != e).any(axis=1)
    if not wrong.any():
        return MASKED
    undetected = wrong & monotone_rows(a) & ~al
    return SILENT if undetected.any() else DETECTED


def alarm_stats(out, alarms, expected) -> Dict[str, float]:
    """Alarm quality over one fault run on self-checking hardware.

    * ``coverage`` — fraction of wrong rows on which an alarm fired;
    * ``false_alarm_rate`` — fraction of *correct* rows that alarmed
      (should be 0 for a fault outside the checker itself);
    * ``alarmed_rows`` / ``wrong_rows`` — the raw counts.
    """
    a, e = _as_batch(out), _as_batch(expected)
    al = np.asarray(alarms, dtype=bool)
    if al.ndim == 2:
        al = al.any(axis=1)
    wrong = (a != e).any(axis=1)
    n_wrong = int(wrong.sum())
    n_right = int((~wrong).sum())
    return {
        "alarmed_rows": int(al.sum()),
        "wrong_rows": n_wrong,
        "coverage": float(al[wrong].mean()) if n_wrong else 1.0,
        "false_alarm_rate": float(al[~wrong].mean()) if n_right else 0.0,
    }


def damage_metrics(out, expected) -> Dict[str, float]:
    """Damage scores over the wrong rows of one fault run.

    Returns zeros (with ``wrong_rows == 0``) for a fully masked run.
    ``kendall_norm`` divides inversions by the per-row maximum
    ``k * (n - k)`` so runs of different widths are comparable.
    """
    a, e = _as_batch(out), _as_batch(expected)
    wrong = (a != e).any(axis=1)
    n_wrong = int(wrong.sum())
    if n_wrong == 0:
        return {
            "wrong_rows": 0,
            "wrong_frac": 0.0,
            "mean_inversions": 0.0,
            "max_inversions": 0,
            "mean_displacement": 0.0,
            "mean_hamming": 0.0,
            "max_popcount_delta": 0,
            "kendall_norm": 0.0,
        }
    aw, ew = a[wrong], e[wrong]
    n = aw.shape[1]
    inv = row_inversions(aw)
    k = aw.sum(axis=1, dtype=np.int64)
    kmax = np.maximum(k * (n - k), 1)
    pop_delta = np.abs(k - ew.sum(axis=1, dtype=np.int64))
    return {
        "wrong_rows": n_wrong,
        "wrong_frac": float(n_wrong / a.shape[0]),
        "mean_inversions": float(inv.mean()),
        "max_inversions": int(inv.max()),
        "mean_displacement": float(ones_displacement(aw).mean()),
        "mean_hamming": float((aw != ew).sum(axis=1).mean()),
        "max_popcount_delta": int(pop_delta.max()),
        "kendall_norm": float((inv / kmax).mean()),
    }


def summarize(records: Iterable[dict]) -> List[dict]:
    """Aggregate campaign records into per-(network, fault kind) rows.

    Each record needs ``network``, ``kind``, ``outcome``, and a
    ``damage`` dict as produced by :func:`damage_metrics`.  Rows are
    sorted by network then kind and carry outcome counts, rates, and
    mean damage over the non-masked runs.
    """
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for r in records:
        groups.setdefault((r["network"], r["kind"]), []).append(r)
    rows = []
    for (network, kind), recs in sorted(groups.items()):
        total = len(recs)
        counts = {o: sum(1 for r in recs if r["outcome"] == o) for o in OUTCOMES}
        unmasked = [r for r in recs if r["outcome"] != MASKED]
        mean_of = lambda key: (
            float(np.mean([r["damage"][key] for r in unmasked])) if unmasked else 0.0
        )
        rows.append(
            {
                "network": network,
                "kind": kind,
                "total": total,
                **{o: counts[o] for o in OUTCOMES},
                "detected_rate": counts[DETECTED] / total if total else 0.0,
                "masked_rate": counts[MASKED] / total if total else 0.0,
                "silent_rate": counts[SILENT] / total if total else 0.0,
                "mean_inversions": mean_of("mean_inversions"),
                "mean_wrong_frac": mean_of("wrong_frac"),
                "divergences": sum(int(r.get("divergences", 0)) for r in recs),
            }
        )
    return rows


def format_resilience_table(summary: Sequence[dict], title: str = "Fault resilience") -> str:
    """Render :func:`summarize` rows with the shared table formatter."""
    headers = [
        "network", "kind", "runs", "masked", "detected", "silent",
        "detected%", "silent%", "mean inv", "diverg",
    ]
    rows = [
        [
            r["network"],
            r["kind"],
            r["total"],
            r[MASKED],
            r[DETECTED],
            r[SILENT],
            f"{100 * r['detected_rate']:.1f}",
            f"{100 * r['silent_rate']:.1f}",
            f"{r['mean_inversions']:.2f}",
            r["divergences"],
        ]
        for r in summary
    ]
    return format_table(headers, rows, title=title)
