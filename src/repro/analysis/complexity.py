"""Measured-vs-claimed complexity extraction.

Builds each network family across a size sweep, measures cost/depth (and
sorting time for Model B designs), and compares against the paper's
closed-form claims in :data:`repro.baselines.costmodels.SORTER_MODELS`.
Also provides log-log slope fitting, the standard way to check an
asymptotic exponent from measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.balanced import build_balanced_sorter
from ..baselines.batcher import build_bitonic_sorter, build_odd_even_merge_sorter
from ..baselines.columnsort import TimeMultiplexedColumnsort
from ..baselines.costmodels import SORTER_MODELS
from ..baselines.muller_preparata import build_muller_preparata_sorter
from ..core.fish_sorter import FishSorter
from ..core.mux_merger import build_mux_merger_sorter
from ..core.prefix_sorter import build_prefix_sorter


@dataclass(frozen=True)
class Measurement:
    """One (network, n) data point."""

    network: str
    n: int
    cost: int
    depth: int
    #: sorting time; equals depth for combinational networks
    time: int
    #: paper-claimed values at this n (None when the claim is order-only)
    claimed_cost: Optional[float] = None
    claimed_depth: Optional[float] = None
    claimed_time: Optional[float] = None


def _combinational(name: str, build: Callable[[int], object], n: int) -> Measurement:
    net = build(n)
    model = SORTER_MODELS.get(name)
    return Measurement(
        network=name,
        n=n,
        cost=net.cost(),
        depth=net.depth(),
        time=net.depth(),
        claimed_cost=model.cost(n) if model else None,
        claimed_depth=model.depth(n) if model else None,
        claimed_time=model.time(n) if model else None,
    )


def measure_network(name: str, n: int, pipelined: bool = False) -> Measurement:
    """Build network ``name`` at size ``n`` and measure it.

    Supported names: ``prefix``, ``mux_merger``, ``fish``,
    ``batcher_oem``, ``batcher_bitonic``, ``balanced``,
    ``columnsort_tm``, ``muller_preparata``.
    """
    if name == "prefix":
        return _combinational("prefix", build_prefix_sorter, n)
    if name == "mux_merger":
        return _combinational("mux_merger", build_mux_merger_sorter, n)
    if name == "batcher_oem":
        return _combinational("batcher_oem", build_odd_even_merge_sorter, n)
    if name == "batcher_bitonic":
        return _combinational("batcher_bitonic", build_bitonic_sorter, n)
    if name == "balanced":
        return _combinational("balanced", build_balanced_sorter, n)
    if name == "muller_preparata":
        return _combinational("muller_preparata", build_muller_preparata_sorter, n)
    if name == "fish":
        fs = FishSorter(n)
        _, report = fs.sort(np.zeros(n, dtype=np.uint8), pipelined=pipelined)
        model = SORTER_MODELS["fish"]
        return Measurement(
            network="fish",
            n=n,
            cost=fs.cost(),
            depth=max(p.depth for p in fs.inventory()),
            time=report.sorting_time,
            claimed_cost=model.cost(n),
            claimed_depth=model.depth(n),
            claimed_time=model.time(n),
        )
    if name == "columnsort_tm":
        tm = TimeMultiplexedColumnsort(n)
        _, report = tm.sort(np.zeros(n, dtype=np.uint8), pipelined=pipelined)
        model = SORTER_MODELS["columnsort_tm"]
        return Measurement(
            network="columnsort_tm",
            n=n,
            cost=tm.cost(),
            depth=tm.sorter.depth(),
            time=report.sorting_time,
            claimed_cost=model.cost(n),
            claimed_depth=model.depth(n),
            claimed_time=model.time(n),
        )
    raise ValueError(f"unknown network {name!r}")


def measure_sweep(
    name: str, sizes: Sequence[int], pipelined: bool = False
) -> List[Measurement]:
    """Measure one network across a size sweep."""
    return [measure_network(name, n, pipelined=pipelined) for n in sizes]


def loglog_slope(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log2(y) against log2(n).

    A cost of ``Theta(n^a polylog)`` measures a slope near ``a`` over a
    geometric size sweep; this is the exponent check used throughout
    EXPERIMENTS.md.
    """
    xs = np.log2(np.asarray(ns, dtype=float))
    vs = np.log2(np.asarray(ys, dtype=float))
    slope, _ = np.polyfit(xs, vs, 1)
    return float(slope)


def normalized_constant(
    measurements: Sequence[Measurement], normalizer: Callable[[float], float]
) -> List[float]:
    """Measured cost divided by a growth function — the paper's "constant".

    E.g. with ``normalizer = lambda n: n * log2(n)`` a 3n lg n-cost
    network yields values near 3.
    """
    return [m.cost / normalizer(m.n) for m in measurements]
