"""Programmatic reproduction report.

``python -m repro`` (see :mod:`repro.__main__`) calls
:func:`reproduction_report` to regenerate a compact paper-vs-measured
summary — a fast, self-contained version of what the full benchmark
suite produces.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..baselines.batcher import build_odd_even_merge_sorter
from ..core.fish_sorter import FishSorter
from ..core.mux_merger import build_mux_merger_sorter
from ..core.prefix_sorter import build_prefix_sorter
from ..networks.benes import BenesNetwork
from ..networks.permutation import RadixPermuter
from .crossover import aks_time_crossover
from .tables import format_table
from .verify import verify_netlist_random, verify_sorter_exhaustive


def reproduction_report(n: int = 256) -> str:
    """Build, verify, and measure the paper's main constructions at n."""
    lg = math.log2(n)
    sections: List[str] = []

    prefix = build_prefix_sorter(n)
    mux = build_mux_merger_sorter(n)
    fish = FishSorter(n)
    batcher = build_odd_even_merge_sorter(n)
    ok = all(
        verify_netlist_random(net, trials=64) for net in (prefix, mux, batcher)
    )
    x = np.random.default_rng(0).integers(0, 2, n).astype(np.uint8)
    out, rep_pipe = fish.sort(x, pipelined=True)
    ok = ok and np.array_equal(out, np.sort(x))
    _, rep_seq = fish.sort(x)

    sections.append(
        format_table(
            ["network", "measured cost", "paper claim", "depth/time"],
            [
                ["Network 1 (prefix)", prefix.cost(),
                 f"3n lg n = {int(3 * n * lg)}", prefix.depth()],
                ["Network 2 (mux-merger)", mux.cost(),
                 f"<= 4n lg n = {int(4 * n * lg)}", mux.depth()],
                ["Network 3 (fish)", fish.cost(),
                 f"~17n = {17 * n}",
                 f"{rep_seq.sorting_time} / {rep_pipe.sorting_time} piped"],
                ["Batcher OEM (baseline)", batcher.cost(),
                 "(lg^2-lg+4)n/4 - 1", batcher.depth()],
            ],
            title=f"Binary sorters at n = {n} (verified: {ok})",
        )
    )

    rp = RadixPermuter(min(n, 64), backend="fish")
    bn = BenesNetwork(min(n, 64))
    sections.append(
        format_table(
            ["permutation network", "cost", "routing"],
            [
                [f"radix permuter over fish (n={min(n, 64)})", rp.cost(),
                 f"self-routing, {rp.routing_time()} delays"],
                [f"Benes fabric (n={min(n, 64)})", bn.cost(),
                 "looping algorithm (global)"],
            ],
            title="Section IV permutation networks",
        )
    )

    cx = aks_time_crossover()
    sections.append(
        "AKS comparison (abstract claim): fish sorting time beats AKS "
        f"(c = 6100) until {cx.description} — 'extremely large' indeed."
    )
    small = build_mux_merger_sorter(8)
    sections.append(
        "exhaustive check: 8-input mux-merger sorts all 256 binary inputs: "
        f"{verify_sorter_exhaustive(small)}"
    )
    return "\n\n".join(sections)
