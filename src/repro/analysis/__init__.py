"""Measurement, verification, and claim-checking utilities."""

from .ablations import (
    build_patchup_naive,
    fish_k_sweep,
    prefix_sorter_adder_sweep,
)
from .complexity import (
    Measurement,
    loglog_slope,
    measure_network,
    measure_sweep,
    normalized_constant,
)
from .claims import CLAIMS, Claim, run_all
from .crossover import (
    Crossover,
    aks_cost_crossover,
    aks_time_crossover,
    batcher_improvement_factor,
    find_crossover,
)
from .fitting import CostFit, fit_cost_model, fit_network_constant
from .resilience import (
    DETECTED,
    MASKED,
    OUTCOMES,
    SILENT,
    alarm_stats,
    classify,
    classify_with_alarms,
    damage_metrics,
    format_resilience_table,
    monotone_rows,
    ones_displacement,
    row_inversions,
    summarize,
)
from .tables import format_table
from .verify import (
    verify_netlist_random,
    verify_sorter_exhaustive,
    verify_sorter_exhaustive_parallel,
    verify_sorter_random,
)

__all__ = [
    "CLAIMS",
    "Claim",
    "CostFit",
    "Crossover",
    "DETECTED",
    "MASKED",
    "Measurement",
    "OUTCOMES",
    "SILENT",
    "aks_cost_crossover",
    "aks_time_crossover",
    "alarm_stats",
    "batcher_improvement_factor",
    "build_patchup_naive",
    "classify",
    "classify_with_alarms",
    "damage_metrics",
    "find_crossover",
    "fish_k_sweep",
    "fit_cost_model",
    "fit_network_constant",
    "format_resilience_table",
    "format_table",
    "loglog_slope",
    "measure_network",
    "measure_sweep",
    "monotone_rows",
    "normalized_constant",
    "ones_displacement",
    "prefix_sorter_adder_sweep",
    "row_inversions",
    "run_all",
    "summarize",
    "verify_netlist_random",
    "verify_sorter_exhaustive",
    "verify_sorter_exhaustive_parallel",
    "verify_sorter_random",
]
