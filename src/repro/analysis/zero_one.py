"""Zero-one principle tooling (Section I).

"The well-known zero-one principle dictates that any nonadaptive network
of comparators that sorts an arbitrary binary sequence also sorts any
'totally ordered' set of elements."  The paper's adaptive networks
deliberately give that up in exchange for lower cost.

This module makes the distinction executable:

* :func:`is_nonadaptive` — structural check: a network is nonadaptive
  iff it consists solely of comparators (the paper's definition, citing
  [25]).
* :func:`extract_comparator_schedule` — recover the (i, j) comparator
  schedule from a comparator-only netlist, so it can be replayed on
  arbitrary ordered values with
  :func:`repro.baselines.batcher.apply_schedule` — an *experimental*
  zero-one principle check.
"""

from __future__ import annotations

from typing import List, Tuple

from ..baselines.batcher import Stage
from ..circuits import elements as el
from ..circuits.netlist import Netlist


def compact_stages(schedule: List[Stage]) -> List[Stage]:
    """Repack a comparator schedule into maximal parallel stages.

    Greedy ASAP layering: each comparator is placed in the earliest
    stage after the last stage touching either of its lines.  The
    result's stage count equals the network's comparator depth, so
    ``len(compact_stages(extract_comparator_schedule(net)))`` recovers
    ``net.depth()`` for comparator-only netlists.
    """
    ready: dict = {}
    stages: List[Stage] = []
    for stage in schedule:
        for pair in stage:
            i, j = pair[0], pair[1]
            lvl = max(ready.get(i, 0), ready.get(j, 0))
            if lvl == len(stages):
                stages.append([])
            stages[lvl].append((i, j))
            ready[i] = ready[j] = lvl + 1
    return stages


def is_nonadaptive(netlist: Netlist) -> bool:
    """True iff the network is built solely from comparators."""
    return all(e.kind in (el.COMPARATOR, el.BUF) for e in netlist.elements)


def extract_comparator_schedule(netlist: Netlist) -> List[Stage]:
    """Recover a line-indexed comparator schedule from a netlist.

    Each comparator is emitted as its own single-pair stage in
    topological order (stages are only a parallelism grouping).  The
    extraction performs Knuth's *standardization*: the min output is
    always assigned to the lower line, which converts any comparator
    network into an equivalent standard-orientation one; the final
    line-to-output check verifies the standardized schedule reproduces
    the netlist's output placement.
    """
    if not is_nonadaptive(netlist):
        raise ValueError(
            "schedule extraction requires a nonadaptive (comparator-only) "
            "network; this one contains other elements"
        )
    line_of = {w: i for i, w in enumerate(netlist.inputs)}
    schedule: List[Stage] = []
    for e in netlist.elements:
        if e.kind == el.BUF:
            line_of[e.outs[0]] = line_of[e.ins[0]]
            continue
        a, b = (line_of[w] for w in e.ins)
        lo, hi = e.outs
        if a == b:
            raise ValueError("comparator with both inputs on one line")
        i, j = min(a, b), max(a, b)
        schedule.append([(i, j)])
        line_of[lo], line_of[hi] = i, j
    for pos, w in enumerate(netlist.outputs):
        if line_of.get(w) != pos:
            raise ValueError(
                "outputs are not a line-preserving mapping; cannot replay"
            )
    return schedule
