"""Sorting-network verification helpers.

Exhaustive verification exploits the zero-one principle's converse
direction trivially: a *binary* sorter is correct iff it sorts all
``2**n`` binary sequences, which the vectorized simulator checks in one
batched call for n up to ~20.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..circuits.netlist import Netlist
from ..circuits.simulate import exhaustive_inputs, simulate


def verify_sorter_exhaustive(netlist: Netlist, batch_bits: int = 16) -> bool:
    """Check a binary-sorter netlist on every input (n <= ~20).

    Splits the ``2**n`` input batch into chunks of ``2**batch_bits`` rows
    to bound memory.
    """
    n = len(netlist.inputs)
    if n > 22:
        raise ValueError(f"exhaustive check infeasible for n={n}")
    total = 1 << n
    chunk = 1 << min(batch_bits, n)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint64)
    for start in range(0, total, chunk):
        idx = np.arange(start, min(start + chunk, total), dtype=np.uint64)
        batch = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
        out = simulate(netlist, batch)
        if not np.array_equal(out, np.sort(batch, axis=1)):
            return False
    return True


def verify_sorter_random(
    sort_fn: Callable[[np.ndarray], np.ndarray],
    n: int,
    trials: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Check any callable binary sorter on random inputs."""
    rng = rng or np.random.default_rng(0)
    for _ in range(trials):
        x = rng.integers(0, 2, n).astype(np.uint8)
        out = np.asarray(sort_fn(x))
        if not np.array_equal(out, np.sort(x)):
            return False
    return True


def _verify_chunk(args) -> bool:
    """Worker for :func:`verify_sorter_exhaustive_parallel`."""
    payload, start, stop = args
    from ..circuits.serialize import from_json

    netlist = from_json(payload)
    n = len(netlist.inputs)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint64)
    idx = np.arange(start, stop, dtype=np.uint64)
    batch = ((idx[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return bool(np.array_equal(simulate(netlist, batch), np.sort(batch, axis=1)))


def verify_sorter_exhaustive_parallel(
    netlist: Netlist, workers: int = 2, batch_bits: int = 14
) -> bool:
    """Exhaustive verification fanned out over a process pool.

    The ``2**n`` input space splits into independent chunks, each checked
    in a worker process (the netlist ships as JSON, NumPy does the rest)
    — embarrassingly parallel verification for the widest exhaustible
    sorters.
    """
    import multiprocessing as mp

    n = len(netlist.inputs)
    if n > 22:
        raise ValueError(f"exhaustive check infeasible for n={n}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total = 1 << n
    chunk = 1 << min(batch_bits, n)
    payload = None
    from ..circuits.serialize import to_json

    payload = to_json(netlist)
    jobs = [
        (payload, start, min(start + chunk, total))
        for start in range(0, total, chunk)
    ]
    if workers == 1 or len(jobs) == 1:
        return all(_verify_chunk(j) for j in jobs)
    # fork avoids re-importing __main__ (robust under REPLs/pytest);
    # fall back to spawn where fork is unavailable
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = mp.get_context("spawn")
    with ctx.Pool(workers) as pool:
        return all(pool.map(_verify_chunk, jobs))


def verify_netlist_random(
    netlist: Netlist, trials: int = 256, rng: Optional[np.random.Generator] = None
) -> bool:
    """Random batched verification for netlists too wide to exhaust."""
    rng = rng or np.random.default_rng(0)
    n = len(netlist.inputs)
    batch = rng.integers(0, 2, size=(trials, n)).astype(np.uint8)
    out = simulate(netlist, batch)
    return bool(np.array_equal(out, np.sort(batch, axis=1)))
