"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)
