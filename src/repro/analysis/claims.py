"""Structured ledger of the paper's checkable claims.

Every quantitative claim the paper makes is registered here as a
:class:`Claim` with an executable ``check`` returning ``(ok, evidence)``.
``tests/test_claims.py`` runs the whole ledger; ``python -m repro`` and
EXPERIMENTS.md reference the same registry, so the mapping from the
paper's sentences to verified facts lives in exactly one place.

Checks are deliberately laptop-fast (sizes <= 1024); the benchmark suite
covers the same ground at more sizes and persists the full tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

CheckResult = Tuple[bool, str]


@dataclass(frozen=True)
class Claim:
    """One verifiable statement from the paper."""

    id: str
    section: str
    statement: str
    check: Callable[[], CheckResult]


def _lg(n: float) -> float:
    return math.log2(n)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_abstract_fish() -> CheckResult:
    from ..core.fish_sorter import FishSorter

    fs = FishSorter(1024)
    x = np.random.default_rng(0).integers(0, 2, 1024).astype(np.uint8)
    out, rep = fs.sort(x, pipelined=True)
    ok = (
        np.array_equal(out, np.sort(x))
        and fs.cost() <= 20 * 1024
        and rep.sorting_time <= 4 * _lg(1024) ** 2
    )
    return ok, (
        f"n=1024: cost {fs.cost()} (= {fs.cost()/1024:.1f}n), pipelined "
        f"time {rep.sorting_time} vs 2 lg^2 n = {2 * _lg(1024)**2:.0f}"
    )


def _check_batcher_factor() -> CheckResult:
    from ..baselines.batcher import build_odd_even_merge_sorter
    from ..core.fish_sorter import FishSorter

    ratios = [
        build_odd_even_merge_sorter(n).cost() / FishSorter(n).cost()
        for n in (256, 1024, 4096)
    ]
    ok = ratios[0] < ratios[1] < ratios[2]
    return ok, f"Batcher/fish cost ratios at n=256/1024/4096: " + ", ".join(
        f"{r:.2f}" for r in ratios
    )


def _check_permuter_headline() -> CheckResult:
    from ..networks.permutation import RadixPermuter

    n = 256
    rp = RadixPermuter(n, backend="fish")
    ok = rp.cost() <= 15 * n * _lg(n) and rp.routing_time() <= 8 * _lg(n) ** 3
    return ok, (
        f"n=256: cost {rp.cost()} = {rp.cost()/(n*_lg(n)):.1f} n lg n, "
        f"routing {rp.routing_time()} vs lg^3 n = {_lg(n)**3:.0f}"
    )


def _check_aks_crossover() -> CheckResult:
    from .crossover import aks_cost_crossover, aks_time_crossover

    t = aks_time_crossover()
    c = aks_cost_crossover()
    ok = t.lg_n is not None and t.lg_n > 60 and c.lg_n is None
    return ok, f"time {t.description}; cost {c.description}"


def _check_network1() -> CheckResult:
    from ..core.prefix_sorter import build_prefix_sorter

    n = 256
    net = build_prefix_sorter(n)
    lg = _lg(n)
    kinds = net.cost_by_kind()
    switching = kinds.get("COMPARATOR", 0) + kinds.get("SWITCH2", 0)
    bound = 3 * lg * lg + 2 * lg * _lg(lg)
    ok = switching <= 3 * n * lg and net.depth() <= bound
    return ok, (
        f"n=256: switching {switching} <= 3n lg n = {int(3*n*lg)}; "
        f"depth {net.depth()} <= {bound:.0f}"
    )


def _check_network2() -> CheckResult:
    from ..core.mux_merger import build_mux_merger, build_mux_merger_sorter

    n = 256
    net = build_mux_merger_sorter(n)
    merger = build_mux_merger(n)
    ok = (
        net.cost() <= 4 * n * _lg(n)
        and merger.cost() <= 4 * n
        and merger.depth() <= 2 * _lg(n)
        and set(net.cost_by_kind()) <= {"COMPARATOR", "SWITCH4"}
    )
    return ok, (
        f"n=256: sorter {net.cost()} <= 4n lg n = {int(4*n*_lg(n))}; merger "
        f"{merger.cost()} <= 4n; depth {merger.depth()} <= 2 lg n; no adders"
    )


def _check_fish_cost_bound() -> CheckResult:
    from ..core.fish_sorter import FishSorter

    results = []
    ok = True
    for n in (64, 256, 1024):
        fs = FishSorter(n)
        ok = ok and fs.cost() <= fs.cost_bound_paper()
        results.append(f"n={n}: {fs.cost()} <= {fs.cost_bound_paper():.0f}")
    return ok, "; ".join(results)


def _check_fish_times() -> CheckResult:
    from ..core.fish_sorter import FishSorter

    ok = True
    parts = []
    for n in (64, 256):
        fs = FishSorter(n)
        x = np.zeros(n, dtype=np.uint8)
        _, seq_rep = fs.sort(x)
        _, pipe_rep = fs.sort(x, pipelined=True)
        lg = _lg(n)
        ok = ok and seq_rep.sorting_time <= 6 * lg ** 3
        ok = ok and pipe_rep.sorting_time <= 8 * lg ** 2
        parts.append(
            f"n={n}: {seq_rep.sorting_time}/{pipe_rep.sorting_time} vs "
            f"lg^3={lg**3:.0f}/lg^2={lg**2:.0f}"
        )
    return ok, "; ".join(parts)


def _check_theorem1() -> CheckResult:
    from ..core import sequences as seq

    n = 32
    for zu in range(n // 2 + 1):
        for zl in range(n // 2 + 1):
            xs = seq.shuffle_concat(
                seq.sorted_sequence(n // 2, zu), seq.sorted_sequence(n // 2, zl)
            )
            if not seq.in_A(xs):
                return False, f"counterexample zu={zu} zl={zl}"
    return True, f"all {(n // 2 + 1) ** 2} sorted-half profiles at n={n} land in A_n"


def _check_theorem2() -> CheckResult:
    from ..core import sequences as seq
    from ..core.balanced_merge import balanced_stage_behavioral

    members = seq.enumerate_A(16)
    for z in members:
        y = balanced_stage_behavioral(z)
        yu, yl = y[:8], y[8:]
        if not (
            (seq.is_clean(yu) and seq.in_A(yl))
            or (seq.is_clean(yl) and seq.in_A(yu))
        ):
            return False, f"counterexample {z}"
    return True, f"all {len(members)} members of A_16 split (clean, A_8)"


def _check_theorem3() -> CheckResult:
    from ..core import sequences as seq
    from ..core.mux_merger import classify_bisorted

    n, q = 32, 8
    count = 0
    for zu in range(n // 2 + 1):
        for zl in range(n // 2 + 1):
            x = np.concatenate(
                [seq.sorted_sequence(n // 2, zu), seq.sorted_sequence(n // 2, zl)]
            )
            sel = classify_bisorted(x)
            clean = {0: (0, 2), 1: (0, 3), 2: (1, 2), 3: (1, 3)}[sel]
            quarters = [x[i * q : (i + 1) * q] for i in range(4)]
            if not all(seq.is_clean(quarters[c]) for c in clean):
                return False, f"counterexample {x}"
            pair = np.concatenate(
                [quarters[i] for i in range(4) if i not in clean]
            )
            if not seq.is_bisorted(pair):
                return False, f"counterexample {x}"
            count += 1
    return True, f"all {count} bisorted profiles at n={n} satisfy the quarter split"


def _check_theorem4() -> CheckResult:
    from ..circuits.simulate import simulate
    from ..core import sequences as seq
    from ..core.kway import build_k_swap

    rng = np.random.default_rng(1)
    net = build_k_swap(64, 8)
    for _ in range(200):
        x = seq.random_k_sorted(64, 8, rng)
        y = simulate(net, x[None, :])[0]
        if not (
            seq.is_clean_k_sorted(y[:32], 8) and seq.is_k_sorted(y[32:], 8)
        ):
            return False, f"counterexample {x}"
    return True, "200 random 8-sorted sequences at n=64 split per Theorem 4"


def _check_corollary() -> CheckResult:
    from .verify import verify_sorter_exhaustive
    from ..core.prefix_sorter import build_prefix_sorter

    ok = verify_sorter_exhaustive(build_prefix_sorter(8)) and \
        verify_sorter_exhaustive(build_prefix_sorter(16))
    return ok, "Network 1 sorts all 2^8 and 2^16 binary inputs"


def _check_concentrator() -> CheckResult:
    from ..networks.concentrator import SortingConcentrator, check_concentration

    c = SortingConcentrator(8)
    pays = np.arange(8, dtype=np.int64)
    for mask in range(256):
        req = np.array([(mask >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
        if not check_concentration(req, pays, c.concentrate(req, pays)):
            return False, f"counterexample mask {mask:08b}"
    return True, "all 256 request masks at n=8 concentrated correctly"


def _check_fish_concentrator() -> CheckResult:
    from ..networks.concentrator import FishConcentrator, check_concentration

    fc = FishConcentrator(256)
    rng = np.random.default_rng(2)
    req = rng.integers(0, 2, 256).astype(np.uint8)
    pays = np.arange(256, dtype=np.int64)
    res, rep = fc.concentrate(req, pays)
    lg2 = _lg(256) ** 2
    ok = check_concentration(req, pays, res) and fc.cost() <= 20 * 256 \
        and rep.sorting_time <= 8 * lg2
    return ok, (
        f"n=256: cost {fc.cost()} (O(n)), concentration time "
        f"{rep.sorting_time} vs lg^2 n = {lg2:.0f}"
    )


def _check_table2_ranking() -> CheckResult:
    from ..baselines.costmodels import TABLE2_ROWS

    n = 2.0 ** 16
    ours = TABLE2_ROWS["this_paper"].cost(n)
    losers = [
        key for key, r in TABLE2_ROWS.items()
        if key != "this_paper" and r.cost(n) <= ours
    ]
    return not losers, (
        f"at n=2^16 our cost model {ours:.3g} beats all other Table II rows"
        if not losers
        else f"beaten by {losers}"
    )


def _check_columnsort_parity() -> CheckResult:
    from ..baselines.columnsort import TimeMultiplexedColumnsort
    from ..core.fish_sorter import FishSorter

    n = 1024
    fish, tm = FishSorter(n), TimeMultiplexedColumnsort(n)
    x = np.random.default_rng(3).integers(0, 2, n).astype(np.uint8)
    _, f_rep = fish.sort(x)
    _, c_rep = tm.sort(x)
    ok = (
        fish.cost() <= 20 * n
        and tm.cost() <= 20 * n
        and f_rep.sorting_time < c_rep.sorting_time
    )
    return ok, (
        f"n=1024: costs fish {fish.cost()} / columnsort {tm.cost()} (both "
        f"O(n)); unpipelined times {f_rep.sorting_time} < {c_rep.sorting_time}"
    )


def _check_non_carrying_circuits() -> CheckResult:
    from ..baselines.muller_preparata import build_muller_preparata_sorter
    from ..circuits.simulate import NO_PAYLOAD, simulate_payload

    net = build_muller_preparata_sorter(16)
    tags = np.random.default_rng(4).integers(0, 2, (8, 16)).astype(np.uint8)
    pays = np.tile(np.arange(16, dtype=np.int64), (8, 1))
    _, p = simulate_payload(net, tags, pays)
    ok = bool(np.all(p == NO_PAYLOAD))
    return ok, "every output of the O(n) Boolean sorting circuit carries no payload"


# ---------------------------------------------------------------------------
# the ledger
# ---------------------------------------------------------------------------

CLAIMS: List[Claim] = [
    Claim("C1", "abstract",
          "any sequence of n bits can be sorted in O(lg^2 n) bit-level "
          "delay using O(n) constant fanin gates",
          _check_abstract_fish),
    Claim("C2", "abstract",
          "improves the cost complexity of Batcher's binary sorters by a "
          "factor of O(lg^2 n) while matching their sorting time",
          _check_batcher_factor),
    Claim("C3", "abstract/Section IV",
          "permutation networks with O(n lg n) bit-level cost and "
          "O(lg^3 n) bit-level delay",
          _check_permuter_headline),
    Claim("C4", "abstract/Section V",
          "our complexities outperform those of the AKS sorting network "
          "until n becomes extremely large",
          _check_aks_crossover),
    Claim("C5", "Section III-A",
          "Network 1: 3n lg n + O(lg^2 n) cost and "
          "3 lg^2 n + 2 lg n lg lg n depth",
          _check_network1),
    Claim("C6", "Section III-B",
          "Network 2: C(n) = 4n lg n via C_m(n) = 4n, D_m(n) = 2 lg n, "
          "eliminating the prefix adder",
          _check_network2),
    Claim("C7", "Section III-C eqs. 17/19",
          "fish sorter cost bounded by eq. 17; ~17n at k = lg n",
          _check_fish_cost_bound),
    Claim("C8", "Section III-C eqs. 22-26",
          "fish sorting time O(lg^3 n) unpipelined, O(lg^2 n) pipelined",
          _check_fish_times),
    Claim("T1", "Theorem 1",
          "shuffling the concatenation of two sorted halves yields a "
          "member of A_n",
          _check_theorem1),
    Claim("T2", "Theorem 2",
          "a balanced comparator stage maps A_n to one clean half and "
          "one A_{n/2} half",
          _check_theorem2),
    Claim("T3", "Theorem 3",
          "a bisorted sequence cut into quarters has two clean quarters; "
          "the others concatenate to a half-size bisorted sequence",
          _check_theorem3),
    Claim("T4", "Theorem 4",
          "the k-SWAP splits a k-sorted sequence into clean k-sorted and "
          "k-sorted halves",
          _check_theorem4),
    Claim("COR", "Corollary",
          "the prefix sorter sorts any binary sequence in ascending order",
          _check_corollary),
    Claim("C9", "Section IV",
          "a binary sorter forms an (n,n)-concentrator via 0/1 tagging",
          _check_concentrator),
    Claim("C10", "Section IV",
          "the fish binary sorter provides a time-multiplexed concentrator "
          "with O(n) cost and O(lg^2 n) concentration time",
          _check_fish_concentrator),
    Claim("C11", "Table II",
          "the paper's permutation network has the smallest order of cost "
          "complexity among the compared designs",
          _check_table2_ranking),
    Claim("C12", "Section III-C",
          "time-multiplexed columnsort matches the O(n) cost but not the "
          "unpipelined sorting time",
          _check_columnsort_parity),
    Claim("C13", "Section I",
          "O(n)-cost Boolean sorting circuits cannot carry or move the "
          "inputs through (hence are outside the paper's scope)",
          _check_non_carrying_circuits),
]


def run_all() -> Dict[str, CheckResult]:
    """Execute every claim check; returns {claim_id: (ok, evidence)}."""
    return {c.id: c.check() for c in CLAIMS}
