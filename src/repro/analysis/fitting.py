"""Least-squares fitting of cost-model constants.

The paper's headline constants — 3 for Network 1, 4 for Network 2, 17
for Network 3, and "<= 17" overall (Section V) — are checkable by
regressing measured costs against the claimed growth terms.  E.g.::

    fit = fit_cost_model(sizes, costs, ["n*lg(n)", "n", "lg(n)**2"])
    fit.coefficients["n*lg(n)"]     # the paper's leading constant

Terms are small expressions over ``n`` and ``lg`` (log2); the fit is
ordinary least squares on the design matrix of term values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

_ALLOWED = {"n": None, "lg": math.log2}


def _term_value(term: str, n: float) -> float:
    return eval(  # noqa: S307 - restricted namespace, library-internal DSL
        term, {"__builtins__": {}}, {"n": n, "lg": math.log2}
    )


@dataclass(frozen=True)
class CostFit:
    """Result of fitting measured costs to growth terms."""

    terms: List[str]
    coefficients: Dict[str, float]
    residual_rms: float
    r_squared: float

    def predict(self, n: float) -> float:
        return sum(
            self.coefficients[t] * _term_value(t, n) for t in self.terms
        )


def fit_cost_model(
    sizes: Sequence[float], costs: Sequence[float], terms: Sequence[str]
) -> CostFit:
    """Least-squares fit of ``cost ~ sum_i c_i * term_i(n)``."""
    sizes = list(sizes)
    costs = np.asarray(costs, dtype=float)
    if len(sizes) != costs.size:
        raise ValueError("sizes and costs must have equal length")
    if len(sizes) < len(terms):
        raise ValueError("need at least as many data points as terms")
    design = np.array(
        [[_term_value(t, n) for t in terms] for n in sizes], dtype=float
    )
    coef, *_ = np.linalg.lstsq(design, costs, rcond=None)
    pred = design @ coef
    resid = costs - pred
    ss_res = float((resid ** 2).sum())
    ss_tot = float(((costs - costs.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return CostFit(
        terms=list(terms),
        coefficients=dict(zip(terms, map(float, coef))),
        residual_rms=math.sqrt(ss_res / costs.size),
        r_squared=r2,
    )


def fit_network_constant(
    name: str, sizes: Sequence[int], leading_term: str, extra_terms: Sequence[str] = ()
) -> CostFit:
    """Measure network ``name`` across ``sizes`` and fit its constants."""
    from .complexity import measure_network

    costs = [measure_network(name, n).cost for n in sizes]
    return fit_cost_model(sizes, costs, [leading_term, *extra_terms])
