"""Ablations of the paper's design choices (DESIGN.md's ablation list).

* :func:`build_patchup_naive` — the patch-up network *without* the shared
  prefix adder: every level recomputes the ones-count of its own inputs
  with a private popcount.  Functionally identical, but the steering
  logic alone costs ``Theta(n lg n)`` summed over levels instead of
  ``O(lg n)`` rewiring — demonstrating why the paper's single-adder
  steering is what keeps Network 1 at ``3 n lg n``.
* :func:`prefix_sorter_adder_sweep` — Network 1 with ripple vs prefix
  adders: the cost/depth trade of the adder choice.
* :func:`fish_k_sweep` — Network 3's cost and sorting time as functions
  of ``k``, showing the paper's ``k = lg n`` minimization (eqs. 17-19).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..circuits.builder import CircuitBuilder
from ..circuits.netlist import Netlist
from ..components.prefix_adder import popcount
from ..components.swappers import two_way_swapper
from ..core.balanced_merge import balanced_comparator_stage
from ..core.fish_sorter import FishSorter
from ..core.prefix_sorter import build_prefix_sorter
from ..components.shuffle import two_way_shuffle


def _naive_patchup(b: CircuitBuilder, wires: List[int]) -> List[int]:
    """Patch-up level with a private per-level popcount (the ablation)."""
    n = len(wires)
    if n == 1:
        return wires
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    staged = balanced_comparator_stage(b, wires)
    count = popcount(b, wires)  # private count of this level's inputs
    lg_n = n.bit_length() - 1
    while len(count) < lg_n + 1:
        count.append(b.const(0))
    select = b.or_(count[lg_n], count[lg_n - 1])
    swapped = two_way_swapper(b, staged, select)
    lower = _naive_patchup(b, list(swapped[n // 2 :]))
    return two_way_swapper(b, list(swapped[: n // 2]) + lower, select)


def _naive_prefix_sorter(b: CircuitBuilder, wires: List[int]) -> List[int]:
    n = len(wires)
    if n == 1:
        return wires
    if n == 2:
        lo, hi = b.comparator(wires[0], wires[1])
        return [lo, hi]
    upper = _naive_prefix_sorter(b, wires[: n // 2])
    lower = _naive_prefix_sorter(b, wires[n // 2 :])
    return _naive_patchup(b, two_way_shuffle(upper + lower))


def build_patchup_naive(n: int) -> Netlist:
    """Network 1 variant with per-level popcount steering (ablation)."""
    if n < 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    b = CircuitBuilder(f"prefix-sorter-naive-{n}")
    wires = b.add_inputs(n)
    return b.build(_naive_prefix_sorter(b, wires))


def prefix_sorter_adder_sweep(sizes: Sequence[int]) -> List[Dict[str, int]]:
    """Cost/depth of Network 1 under each adder implementation."""
    rows = []
    for n in sizes:
        ks = build_prefix_sorter(n, adder="prefix")
        rp = build_prefix_sorter(n, adder="ripple")
        rows.append(
            {
                "n": n,
                "cost_prefix_adder": ks.cost(),
                "depth_prefix_adder": ks.depth(),
                "cost_ripple_adder": rp.cost(),
                "depth_ripple_adder": rp.depth(),
            }
        )
    return rows


def fish_k_sweep(n: int, pipelined: bool = False) -> List[Dict[str, int]]:
    """Cost and sorting time of the fish sorter across valid ``k``."""
    rows = []
    k = 2
    while k <= n // 2:
        fs = FishSorter(n, k)
        _, report = fs.sort(np.zeros(n, dtype=np.uint8), pipelined=pipelined)
        rows.append(
            {
                "n": n,
                "k": k,
                "cost": fs.cost(),
                "sorting_time": report.sorting_time,
                "paper_bound": round(fs.cost_bound_paper()),
            }
        )
        k *= 2
    return rows
