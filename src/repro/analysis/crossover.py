"""Crossover analyses (abstract + Sections I/V claims).

Two quantitative claims are checked here:

* the fish sorter's cost beats Batcher's binary sorters by a factor of
  ``Theta(lg^2 n)`` while matching their sorting time;
* the paper's networks "outperform those of the AKS sorting network
  until n becomes extremely large" — i.e. the AKS depth/cost advantage
  only materializes beyond an astronomically large crossover ``n``,
  because of AKS's constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..baselines.aks import AKSModel
from ..baselines.costmodels import SORTER_MODELS


@dataclass(frozen=True)
class Crossover:
    """Result of a crossover search between two complexity curves."""

    #: smallest lg(n) at which `challenger` is at least as good
    lg_n: Optional[float]
    #: human-readable n (e.g. "2^123"); None if no crossover below bound
    description: str


def find_crossover(
    ours: Callable[[float], float],
    theirs: Callable[[float], float],
    lg_max: float = 900.0,
) -> Crossover:
    """Smallest ``lg n`` (n = 2^x, x >= 1) where ``theirs(n) <= ours(n)``.

    Works on lg-space with a scan + bisection so crossovers at
    astronomically large n (the AKS situation) are still found exactly.
    ``lg_max`` stays below IEEE-754 range (2^1024); anything past it is
    "no crossover" for every physically meaningful purpose.
    """

    def diff(lg_n: float) -> float:
        n = 2.0 ** lg_n
        return theirs(n) - ours(n)

    lo, hi = 1.0, None
    x = 1.0
    while x <= lg_max:
        if diff(x) <= 0:
            hi = x
            break
        lo = x
        x *= 2.0
    if hi is None:
        return Crossover(None, f"no crossover up to n = 2^{lg_max:g}")
    for _ in range(200):
        mid = (lo + hi) / 2
        if diff(mid) <= 0:
            hi = mid
        else:
            lo = mid
    return Crossover(hi, f"crossover near n = 2^{hi:.1f}")


def aks_time_crossover(depth_constant: float = 6100.0) -> Crossover:
    """Where AKS's O(lg n) time first beats the fish sorter's O(lg^3 n).

    AKS time: ``c lg n``; fish time (paper eq. 24): ``~ lg^3 n``.
    Crossover at ``lg^2 n = c``, i.e. ``n = 2^sqrt(c)`` — about 2^78 for
    c = 6100, far beyond any buildable machine: the paper's claim.
    """
    aks = AKSModel(depth_constant)
    return find_crossover(
        ours=lambda n: math.log2(n) ** 3,
        theirs=aks.sorting_time,
    )


def aks_cost_crossover(depth_constant: float = 6100.0) -> Crossover:
    """Where AKS's cost first beats Network 1's ``3 n lg n``.

    Both are ``Theta(n lg n)``; AKS's constant is ``c/2`` per element, so
    it *never* crosses below ``3 n lg n`` — returned as "no crossover".
    """
    aks = AKSModel(depth_constant)
    ours = SORTER_MODELS["prefix"].cost
    return find_crossover(ours=ours, theirs=aks.cost)


def batcher_improvement_factor(n: float) -> float:
    """Cost(Batcher binary OEM) / Cost(fish): the claimed O(lg^2 n) gap."""
    batcher = SORTER_MODELS["batcher_oem"].cost(n)
    fish = SORTER_MODELS["fish"].cost(n)
    return batcher / fish
