"""Graphviz DOT export for netlists.

``to_dot(netlist)`` emits a DOT digraph — inputs as plain nodes, elements
as boxes labelled by kind, outputs as doubled circles — so constructions
can be inspected with any graphviz viewer.  For big networks,
``max_elements`` guards against accidentally emitting megabyte graphs.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.netlist import Netlist

_SHAPE = {
    "COMPARATOR": "box",
    "SWITCH2": "box",
    "SWITCH4": "box3d",
    "MUX2": "trapezium",
    "DEMUX2": "invtrapezium",
}


def to_dot(netlist: Netlist, max_elements: Optional[int] = 2000) -> str:
    """Render ``netlist`` as a Graphviz DOT string."""
    if max_elements is not None and len(netlist.elements) > max_elements:
        raise ValueError(
            f"netlist has {len(netlist.elements)} elements; raise "
            f"max_elements (currently {max_elements}) to render it anyway"
        )
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]
    for i, w in enumerate(netlist.inputs):
        lines.append(f'  w{w} [label="in{i}" shape=plaintext];')
    for w, v in netlist.constants.items():
        lines.append(f'  w{w} [label="{v}" shape=plaintext];')
    out_set = {w: i for i, w in enumerate(netlist.outputs)}
    for idx, e in enumerate(netlist.elements):
        shape = _SHAPE.get(e.kind, "ellipse")
        lines.append(f'  e{idx} [label="{e.kind}" shape={shape}];')
        for w in e.ins:
            lines.append(f"  w{w} -> e{idx};")
        for w in e.outs:
            label = f' [label="out{out_set[w]}"]' if w in out_set else ""
            lines.append(f'  e{idx} -> w{w}{label};')
            style = "doublecircle" if w in out_set else "point"
            lines.append(f"  w{w} [shape={style} label=\"\"];")
    # primary inputs that are also outputs (pass-through)
    for w in netlist.outputs:
        if w in netlist.inputs or w in netlist.constants:
            lines.append(f"  w{w} [shape=doublecircle];")
    lines.append("}")
    return "\n".join(lines)
