"""ASCII renderings of the paper's network constructions.

Used by benchmarks and examples to display Figure 1-style comparator
diagrams (Knuth notation: horizontal wires, vertical comparator bars) and
summary block diagrams of the adaptive networks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..baselines.batcher import Stage


def render_comparator_network(n: int, stages: Sequence[Stage]) -> str:
    """Knuth-style diagram of a comparator network.

    Wires run left to right; each comparator is a vertical bar between
    the two wire rows it compares, placed in its own column within the
    stage (overlapping comparators in one stage share a column when
    disjoint in rows).
    """
    columns: List[List[Tuple[int, int]]] = []
    for stage in stages:
        placed: List[List[Tuple[int, int]]] = []
        for pair in stage:
            i, j = pair[0], pair[1]
            lo, hi = min(i, j), max(i, j)
            for col in placed:
                if all(hi < a or lo > b for a, b in col):
                    col.append((lo, hi))
                    break
            else:
                placed.append([(lo, hi)])
        columns.extend(placed)
        columns.append([])  # stage separator
    if columns and not columns[-1]:
        columns.pop()

    grid = [[("-" if r % 2 == 0 else " ") for _ in range(3 * len(columns) + 2)]
            for r in range(2 * n - 1)]
    for c, col in enumerate(columns):
        x = 3 * c + 2
        for lo, hi in col:
            grid[2 * lo][x] = "o"
            grid[2 * hi][x] = "o"
            for r in range(2 * lo + 1, 2 * hi):
                grid[r][x] = "|"
    lines = []
    for r in range(2 * n - 1):
        if r % 2 == 0:
            lines.append(f"x{r // 2:<2}" + "".join(grid[r]))
        else:
            lines.append("   " + "".join(grid[r]))
    return "\n".join(lines)


def render_block_diagram(title: str, blocks: Sequence[Tuple[str, str]]) -> str:
    """Simple left-to-right block diagram: [(label, annotation), ...]."""
    tops, mids, bots = [], [], []
    for label, note in blocks:
        w = max(len(label), len(note)) + 2
        tops.append("+" + "-" * w + "+")
        mids.append("|" + label.center(w) + "|")
        bots.append("|" + note.center(w) + "|")
    arrow = " -> "
    return "\n".join(
        [
            title,
            arrow.join(tops).replace("->", "  "),
            arrow.join(mids),
            arrow.join(bots).replace("->", "  "),
            arrow.join(t for t in tops).replace("->", "  "),
        ]
    )
