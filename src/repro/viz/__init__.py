"""ASCII visualization of network constructions."""

from .ascii_art import render_block_diagram, render_comparator_network
from .dot import to_dot

__all__ = ["render_block_diagram", "render_comparator_network", "to_dot"]
