"""Structural path analysis of netlists.

* :func:`critical_path` — one longest input-to-output path, as the list
  of elements along it (the physical chain that sets the network's
  depth; useful for seeing *where* the paper's depth terms come from).
* :func:`level_histogram` — element count per pipeline level, the shape
  a segmented Model B implementation would see.
"""

from __future__ import annotations

from typing import Dict, List

from .elements import Element
from .netlist import Netlist


def critical_path(netlist: Netlist) -> List[Element]:
    """Elements along one maximum-depth input-to-output path."""
    depths = netlist.wire_depths()
    producer: Dict[int, Element] = {}
    for e in netlist.elements:
        for w in e.outs:
            producer[w] = e
    if not netlist.outputs:
        return []
    end = max(netlist.outputs, key=lambda w: depths[w])
    path: List[Element] = []
    wire = end
    while wire in producer:
        e = producer[wire]
        path.append(e)
        if not e.ins:
            break
        wire = max(e.ins, key=lambda w: depths[w])
        # stop when we reach depth 0 through zero-depth elements only
        if depths[wire] == 0 and wire not in producer:
            break
    return list(reversed(path))


def level_histogram(netlist: Netlist) -> Dict[int, int]:
    """Number of elements computing at each unit-delay level (>= 1)."""
    depths = netlist.wire_depths()
    hist: Dict[int, int] = {}
    for e in netlist.elements:
        if e.depth == 0:
            continue
        lvl = max((depths[w] for w in e.outs), default=0)
        hist[lvl] = hist.get(lvl, 0) + 1
    return dict(sorted(hist.items()))


def path_kind_summary(netlist: Netlist) -> Dict[str, int]:
    """Element kinds along the critical path (e.g. how much of Network
    1's depth is adders vs switches)."""
    summary: Dict[str, int] = {}
    for e in critical_path(netlist):
        summary[e.kind] = summary.get(e.kind, 0) + 1
    return summary
