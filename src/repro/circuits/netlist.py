"""Netlist container with the paper's cost/depth accounting.

A :class:`Netlist` is a DAG of :class:`~repro.circuits.elements.Element`
instances over integer wire ids.  Wires are produced either by a primary
input, a constant, or exactly one element output, and elements only read
wires created before them (the builder enforces this), so construction
order is already a topological order.

Cost is the sum of element costs; depth is the longest input-to-output
path weighted by per-element depth — exactly the two figures of merit the
paper uses throughout (Section I: "The cost of a sorting network is the
number of constant fanin comparator switches that it contains, and its
depth is the maximum number of such switches on a path from an input to
an output").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .elements import Element, ELEMENT_META


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a netlist in the paper's accounting units."""

    cost: int
    depth: int
    n_elements: int
    n_wires: int
    n_inputs: int
    n_outputs: int
    by_kind: Dict[str, int]

    def __str__(self) -> str:  # pragma: no cover - convenience only
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"cost={self.cost} depth={self.depth} elements={self.n_elements} "
            f"({kinds})"
        )


class Netlist:
    """An immutable-ish combinational circuit description.

    Instances are normally produced by
    :class:`repro.circuits.builder.CircuitBuilder`; the constructor is
    public so that tests can assemble small circuits by hand.
    """

    def __init__(
        self,
        n_wires: int,
        elements: Sequence[Element],
        inputs: Sequence[int],
        outputs: Sequence[int],
        constants: Optional[Dict[int, int]] = None,
        name: str = "netlist",
    ) -> None:
        self.n_wires = n_wires
        self.elements: List[Element] = list(elements)
        self.inputs: Tuple[int, ...] = tuple(inputs)
        self.outputs: Tuple[int, ...] = tuple(outputs)
        self.constants: Dict[int, int] = dict(constants or {})
        self.name = name
        self._depths: Optional[List[int]] = None
        self._cost: Optional[int] = None
        self._stats: Optional[CircuitStats] = None
        self.validate()

    # -- structural validation ---------------------------------------------

    def validate(self) -> None:
        """Check single-driver, topological-order, and arity invariants."""
        driven = [False] * self.n_wires
        for w in self.inputs:
            if driven[w]:
                raise ValueError(f"wire {w} has multiple drivers")
            driven[w] = True
        for w, v in self.constants.items():
            if v not in (0, 1):
                raise ValueError(f"constant wire {w} has non-bit value {v!r}")
            if driven[w]:
                raise ValueError(f"wire {w} has multiple drivers")
            driven[w] = True
        for elem in self.elements:
            elem.validate()
            for w in elem.ins:
                if not (0 <= w < self.n_wires):
                    raise ValueError(f"input wire {w} out of range")
                if not driven[w]:
                    raise ValueError(
                        f"element {elem.kind} reads undriven wire {w}; "
                        "elements must be appended in topological order"
                    )
            for w in elem.outs:
                if not (0 <= w < self.n_wires):
                    raise ValueError(f"output wire {w} out of range")
                if driven[w]:
                    raise ValueError(f"wire {w} has multiple drivers")
                driven[w] = True
        for w in self.outputs:
            if not driven[w]:
                raise ValueError(f"primary output {w} is undriven")

    # -- accounting ----------------------------------------------------------

    def cost(self) -> int:
        """Total cost in the paper's units (unit-cost switching elements).

        Memoized, like :meth:`wire_depths` — benchmarks and sweeps call
        this in loops over netlists with hundreds of thousands of
        elements.
        """
        if self._cost is None:
            self._cost = sum(e.cost for e in self.elements)
        return self._cost

    def wire_depths(self) -> List[int]:
        """Depth of every wire (longest weighted path from any input)."""
        if self._depths is None:
            depths = [0] * self.n_wires
            for elem in self.elements:
                d = max((depths[w] for w in elem.ins), default=0) + elem.depth
                for w in elem.outs:
                    depths[w] = d
            self._depths = depths
        return self._depths

    def depth(self) -> int:
        """Depth to the primary outputs (the paper's network depth)."""
        depths = self.wire_depths()
        return max((depths[w] for w in self.outputs), default=0)

    def max_depth(self) -> int:
        """Depth of the deepest wire anywhere (>= :meth:`depth`)."""
        depths = self.wire_depths()
        return max(depths, default=0)

    def stats(self) -> CircuitStats:
        """Summary statistics (memoized; :class:`CircuitStats` is frozen)."""
        if self._stats is None:
            by_kind: Dict[str, int] = {}
            for e in self.elements:
                by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
            self._stats = CircuitStats(
                cost=self.cost(),
                depth=self.depth(),
                n_elements=len(self.elements),
                n_wires=self.n_wires,
                n_inputs=len(self.inputs),
                n_outputs=len(self.outputs),
                by_kind=by_kind,
            )
        return self._stats

    def cost_by_kind(self) -> Dict[str, int]:
        """Cost contribution of each element kind."""
        acc: Dict[str, int] = {}
        for e in self.elements:
            acc[e.kind] = acc.get(e.kind, 0) + e.cost
        return acc

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, cost={self.cost()}, "
            f"depth={self.depth()})"
        )
