"""Netlist container with the paper's cost/depth accounting.

A :class:`Netlist` is a DAG of :class:`~repro.circuits.elements.Element`
instances over integer wire ids.  Wires are produced either by a primary
input, a constant, or exactly one element output, and elements only read
wires created before them (the builder enforces this), so construction
order is already a topological order.

Cost is the sum of element costs; depth is the longest input-to-output
path weighted by per-element depth — exactly the two figures of merit the
paper uses throughout (Section I: "The cost of a sorting network is the
number of constant fanin comparator switches that it contains, and its
depth is the maximum number of such switches on a path from an input to
an output").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .elements import Element, ELEMENT_META


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a netlist in the paper's accounting units."""

    cost: int
    depth: int
    n_elements: int
    n_wires: int
    n_inputs: int
    n_outputs: int
    by_kind: Dict[str, int]

    def __str__(self) -> str:  # pragma: no cover - convenience only
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"cost={self.cost} depth={self.depth} elements={self.n_elements} "
            f"({kinds})"
        )


class Netlist:
    """An immutable-ish combinational circuit description.

    Instances are normally produced by
    :class:`repro.circuits.builder.CircuitBuilder`; the constructor is
    public so that tests can assemble small circuits by hand.
    """

    def __init__(
        self,
        n_wires: int,
        elements: Sequence[Element],
        inputs: Sequence[int],
        outputs: Sequence[int],
        constants: Optional[Dict[int, int]] = None,
        name: str = "netlist",
        control_wires: Iterable[int] = (),
    ) -> None:
        self.n_wires = n_wires
        self.elements: List[Element] = list(elements)
        self.inputs: Tuple[int, ...] = tuple(inputs)
        self.outputs: Tuple[int, ...] = tuple(outputs)
        self.constants: Dict[int, int] = dict(constants or {})
        self.name = name
        #: Wires tagged by the builder as *steering* wires — the adaptive
        #: control paths (patch-up selects, mux-merger middle bits, count
        #: bits) that fault models single out.  Purely annotation: no
        #: effect on simulation or accounting.  See
        #: :func:`repro.circuits.faults.control_wires` for the union with
        #: the control ports derived from the element list.
        self.control_wires: FrozenSet[int] = frozenset(control_wires)
        self._depths: Optional[List[int]] = None
        self._cost: Optional[int] = None
        self._stats: Optional[CircuitStats] = None
        self.validate()

    # -- structural validation ---------------------------------------------

    def validate(self, strict: bool = False) -> None:
        """Check single-driver, topological-order, and arity invariants.

        With ``strict=False`` (the default, run on construction) the
        first violation raises immediately.  With ``strict=True`` the
        whole netlist is scanned and *every* violation is reported in one
        error, and undriven wires feeding elements are diagnosed
        precisely: a read of a wire that is driven by a *later* element
        is reported as an ordering violation naming both elements, while
        a read of a wire no input, constant, or element ever drives is
        flagged as a genuinely floating wire.  Both would otherwise
        surface only as garbage values deep inside the simulators (the
        compiled engine evaluates over uninitialized storage and does not
        re-validate), so ``validate(strict=True)`` is the debugging entry
        point after hand-editing ``elements`` in place.
        """
        problems: List[str] = []

        def fail(msg: str) -> None:
            if strict:
                problems.append(msg)
            else:
                raise ValueError(msg)

        # driver[w]: None (undriven) or a human-readable driver label.
        driver: List[Optional[str]] = [None] * self.n_wires
        # In strict mode, pre-compute every element's outputs so reads of
        # later-driven wires can be distinguished from floating wires.
        future_driver: Dict[int, str] = {}
        if strict:
            for i, elem in enumerate(self.elements):
                for w in elem.outs:
                    if 0 <= w < self.n_wires and w not in future_driver:
                        future_driver[w] = f"element #{i} ({elem.kind})"

        def drive(w: int, label: str, what: str) -> None:
            if not (0 <= w < self.n_wires):
                fail(f"{what} wire {w} out of range [0, {self.n_wires})")
                return
            if driver[w] is not None:
                fail(
                    f"wire {w} has multiple drivers: "
                    f"{driver[w]} and {label}"
                )
                return
            driver[w] = label

        for w in self.inputs:
            drive(w, "primary input", "primary input")
        for w, v in self.constants.items():
            if v not in (0, 1):
                fail(f"constant wire {w} has non-bit value {v!r}")
            drive(w, f"constant {v}", "constant")
        for i, elem in enumerate(self.elements):
            try:
                elem.validate()
            except ValueError as exc:
                fail(f"element #{i} ({elem.kind}): {exc}")
                continue
            for w in elem.ins:
                if not (0 <= w < self.n_wires):
                    fail(
                        f"element #{i} ({elem.kind}) reads wire {w} "
                        f"out of range [0, {self.n_wires})"
                    )
                elif driver[w] is None:
                    if strict and w in future_driver:
                        fail(
                            f"element #{i} ({elem.kind}) reads wire {w} "
                            f"before its driver {future_driver[w]}; "
                            "elements must be appended in topological order"
                        )
                    else:
                        fail(
                            f"element #{i} ({elem.kind}) reads undriven "
                            f"wire {w}; elements must be appended in "
                            "topological order"
                        )
            for w in elem.outs:
                drive(w, f"element #{i} ({elem.kind})", f"element #{i} output")
        for w in self.outputs:
            if not (0 <= w < self.n_wires):
                fail(f"primary output wire {w} out of range [0, {self.n_wires})")
            elif driver[w] is None:
                fail(f"primary output {w} is undriven")
        for w in self.control_wires:
            if not (0 <= w < self.n_wires):
                fail(f"control wire {w} out of range [0, {self.n_wires})")
        if problems:
            raise ValueError(
                f"netlist {self.name!r}: {len(problems)} validation "
                "problem(s):\n  " + "\n  ".join(problems)
            )

    # -- accounting ----------------------------------------------------------

    def cost(self) -> int:
        """Total cost in the paper's units (unit-cost switching elements).

        Memoized, like :meth:`wire_depths` — benchmarks and sweeps call
        this in loops over netlists with hundreds of thousands of
        elements.
        """
        if self._cost is None:
            self._cost = sum(e.cost for e in self.elements)
        return self._cost

    def wire_depths(self) -> List[int]:
        """Depth of every wire (longest weighted path from any input)."""
        if self._depths is None:
            depths = [0] * self.n_wires
            for elem in self.elements:
                d = max((depths[w] for w in elem.ins), default=0) + elem.depth
                for w in elem.outs:
                    depths[w] = d
            self._depths = depths
        return self._depths

    def depth(self) -> int:
        """Depth to the primary outputs (the paper's network depth)."""
        depths = self.wire_depths()
        return max((depths[w] for w in self.outputs), default=0)

    def max_depth(self) -> int:
        """Depth of the deepest wire anywhere (>= :meth:`depth`)."""
        depths = self.wire_depths()
        return max(depths, default=0)

    def stats(self) -> CircuitStats:
        """Summary statistics (memoized; :class:`CircuitStats` is frozen)."""
        if self._stats is None:
            by_kind: Dict[str, int] = {}
            for e in self.elements:
                by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
            self._stats = CircuitStats(
                cost=self.cost(),
                depth=self.depth(),
                n_elements=len(self.elements),
                n_wires=self.n_wires,
                n_inputs=len(self.inputs),
                n_outputs=len(self.outputs),
                by_kind=by_kind,
            )
        return self._stats

    def cost_by_kind(self) -> Dict[str, int]:
        """Cost contribution of each element kind."""
        acc: Dict[str, int] = {}
        for e in self.elements:
            acc[e.kind] = acc.get(e.kind, 0) + e.cost
        return acc

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, cost={self.cost()}, "
            f"depth={self.depth()})"
        )
