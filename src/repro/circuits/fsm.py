"""Clocked circuits with feedback: the literal Model B machine.

Section II: "The adaptive sorting networks under this model can be
viewed as simple sequential or clocked circuits."
:class:`SequentialCircuit` is that object — a combinational netlist
whose first ``n_state`` inputs are fed from state registers, with a
designated slice of outputs computing the next state.  Each
:meth:`~SequentialCircuit.step` is one global clock tick.

The pipelined executor (:mod:`repro.circuits.sequential`) covers
feed-forward streaming; this class covers feedback (counters,
accumulators, the time-multiplexed dispatch of the clean sorter in
:mod:`repro.core.hw_clean_sorter`).

Each tick evaluates the combinational netlist through
:func:`~repro.circuits.simulate.simulate`, which runs on the compiled
level-batched engine — the plan is compiled once (weak-keyed cache) and
reused every cycle, so long clocked runs pay no per-element Python
dispatch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .netlist import Netlist
from .simulate import simulate


class SequentialCircuit:
    """A synchronous circuit: netlist + ``n_state`` feedback registers.

    Netlist interface convention:

    * inputs: ``[state_0 .. state_{R-1}, external inputs...]``
    * outputs: ``[next_state_0 .. next_state_{R-1}, external outputs...]``

    Cost accounting: combinational cost is the netlist's; the register
    count (``n_state``) is reported separately, mirroring how the paper
    counts Model B storage implicitly.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_state: int,
        initial_state: Optional[Sequence[int]] = None,
    ) -> None:
        if n_state < 0 or n_state > len(netlist.inputs):
            raise ValueError(f"invalid state width {n_state}")
        if n_state > len(netlist.outputs):
            raise ValueError("netlist must output a next-state slice")
        self.netlist = netlist
        self.n_state = n_state
        self.n_external_in = len(netlist.inputs) - n_state
        self.n_external_out = len(netlist.outputs) - n_state
        if initial_state is None:
            initial_state = [0] * n_state
        if len(initial_state) != n_state:
            raise ValueError("initial_state width mismatch")
        self._initial = [int(v) for v in initial_state]
        self.state: List[int] = list(self._initial)
        self.cycles = 0
        # Reusable input row: contiguous uint8 takes simulate()'s trusted
        # zero-copy path, so a tick costs one compiled-plan execution.
        self._vec = np.zeros((1, len(netlist.inputs)), dtype=np.uint8)

    def reset(self) -> None:
        self.state = list(self._initial)
        self.cycles = 0

    def step(self, external: Sequence[int]) -> List[int]:
        """One clock tick; returns the external outputs."""
        if len(external) != self.n_external_in:
            raise ValueError(
                f"expected {self.n_external_in} external inputs, got "
                f"{len(external)}"
            )
        ext = [int(v) for v in external]
        if any(v not in (0, 1) for v in ext):
            raise ValueError("inputs must be 0/1 values")
        self._vec[0, : self.n_state] = self.state
        self._vec[0, self.n_state :] = ext
        out = simulate(self.netlist, self._vec)[0]
        self.state = [int(v) for v in out[: self.n_state]]
        self.cycles += 1
        return [int(v) for v in out[self.n_state :]]

    def run(self, external: Sequence[int], cycles: int) -> List[int]:
        """Apply constant external inputs for ``cycles`` ticks; returns
        the final external outputs."""
        last: List[int] = []
        for _ in range(cycles):
            last = self.step(external)
        return last

    # -- accounting ----------------------------------------------------------------

    def combinational_cost(self) -> int:
        return self.netlist.cost()

    def register_bits(self) -> int:
        return self.n_state

    def cycle_time(self) -> int:
        """Unit delays per clock tick = combinational depth."""
        return self.netlist.depth()


def build_time_multiplexed_stage(inner: Netlist, k: int) -> "SequentialCircuit":
    """Generic Model B time-multiplexing: one small netlist serves k groups.

    This is the structural idea of the fish sorter's phase 1 (and the
    dispatch loops throughout Section III-C) packaged as a reusable
    clocked circuit: ``k`` groups of ``g = len(inner.inputs)`` bits sit
    on the external inputs; each tick, an ``(n, g)``-multiplexer selects
    group ``t`` (the counter), the inner netlist transforms it, and a
    ``(g, n)``-demultiplexer accumulates the result into staging
    registers.  After ``k`` ticks the staging registers hold the
    concatenated per-group outputs.

    State: ``lg k`` counter bits + ``k * g`` staging bits.  External
    outputs mirror the staging registers.
    """
    from ..components.demux import group_demultiplexer
    from ..components.mux import group_multiplexer
    from .builder import CircuitBuilder

    g = len(inner.inputs)
    if g != len(inner.outputs):
        raise ValueError("inner netlist must have equal input/output width")
    if k < 2 or k & (k - 1):
        raise ValueError(f"k must be a power of two >= 2, got {k}")
    lg_k = k.bit_length() - 1
    n = k * g
    b = CircuitBuilder(f"tm-stage-{n}x{k}")
    counter = b.add_inputs(lg_k)
    staging = b.add_inputs(n)
    data = b.add_inputs(n)
    counter_msb = list(reversed(counter))
    grabbed = group_multiplexer(b, data, g, counter_msb)
    # splice the inner netlist: rebuild it inside this builder
    inner_out = _inline(b, inner, grabbed)
    routed = group_demultiplexer(b, inner_out, k, counter_msb)
    next_staging = [b.or_(staging[i], routed[i]) for i in range(n)]
    carry = b.const(1)
    next_counter = []
    for bit in counter:
        next_counter.append(b.xor(bit, carry))
        carry = b.and_(bit, carry)
    net = b.build(next_counter + next_staging + list(next_staging))
    return SequentialCircuit(net, n_state=lg_k + n)


def _inline(b, inner: Netlist, input_wires: Sequence[int]) -> List[int]:
    """Copy ``inner``'s elements into builder ``b``, fed by ``input_wires``."""
    from .elements import Element

    wire_map = dict(zip(inner.inputs, input_wires))
    for w, v in inner.constants.items():
        wire_map[w] = b.const(v)
    for e in inner.elements:
        outs = b._emit(e.kind, [wire_map[w] for w in e.ins], len(e.outs), e.params)
        for w, nw in zip(e.outs, outs):
            wire_map[w] = nw
    return [wire_map[w] for w in inner.outputs]
