"""Netlist equivalence checking.

Used throughout the test-suite and by the optimizer/lowering users:
two netlists with the same interface are *equivalent* if they produce
identical outputs on every input.  For narrow interfaces the check is
exhaustive (a proof, via the vectorized simulator); wider ones fall back
to seeded random sampling plus structured corner cases.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .netlist import Netlist
from .simulate import exhaustive_inputs, simulate


def equivalent(
    a: Netlist,
    b: Netlist,
    exhaustive_limit: int = 14,
    trials: int = 512,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """True iff ``a`` and ``b`` agree on the checked input space.

    Exhaustive (hence a proof) when the input count is at most
    ``exhaustive_limit``; otherwise random + corner cases (all-zeros,
    all-ones, one-hot walks).
    """
    if len(a.inputs) != len(b.inputs) or len(a.outputs) != len(b.outputs):
        return False
    n = len(a.inputs)
    if n <= exhaustive_limit:
        batch = exhaustive_inputs(n)
        return bool(np.array_equal(simulate(a, batch), simulate(b, batch)))
    rng = rng or np.random.default_rng(0)
    corner = [np.zeros(n, dtype=np.uint8), np.ones(n, dtype=np.uint8)]
    eye = np.eye(n, dtype=np.uint8)
    batch = np.vstack(
        [corner, eye, 1 - eye, rng.integers(0, 2, (trials, n)).astype(np.uint8)]
    )
    return bool(np.array_equal(simulate(a, batch), simulate(b, batch)))
