"""Netlist (de)serialization.

Large netlists (the n = 4096 sorters run to hundreds of thousands of
elements) take seconds to construct; ``to_json``/``from_json`` let users
cache them on disk.  The format is a plain JSON object — stable, diffable,
and independent of Python pickling.
"""

from __future__ import annotations

import json
from typing import Union

from .elements import Element
from .netlist import Netlist

FORMAT_VERSION = 1


def to_json(netlist: Netlist) -> str:
    """Serialize a netlist to a JSON string."""
    payload = {
        "format": FORMAT_VERSION,
        "name": netlist.name,
        "n_wires": netlist.n_wires,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "constants": {str(w): v for w, v in netlist.constants.items()},
        "elements": [
            {
                "kind": e.kind,
                "ins": list(e.ins),
                "outs": list(e.outs),
                **({"params": [list(p) for p in e.params]} if e.params else {}),
            }
            for e in netlist.elements
        ],
    }
    return json.dumps(payload)


def from_json(text: Union[str, bytes]) -> Netlist:
    """Reconstruct a netlist from :func:`to_json` output (re-validated)."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported netlist format {payload.get('format')!r}"
        )
    elements = [
        Element(
            e["kind"],
            tuple(e["ins"]),
            tuple(e["outs"]),
            tuple(tuple(p) for p in e["params"]) if "params" in e else None,
        )
        for e in payload["elements"]
    ]
    return Netlist(
        n_wires=payload["n_wires"],
        elements=elements,
        inputs=payload["inputs"],
        outputs=payload["outputs"],
        constants={int(w): v for w, v in payload["constants"].items()},
        name=payload.get("name", "netlist"),
    )


def save(netlist: Netlist, path) -> None:
    """Write a netlist to ``path`` as JSON."""
    with open(path, "w") as fh:
        fh.write(to_json(netlist))


def load(path) -> Netlist:
    """Read a netlist previously written by :func:`save`."""
    with open(path) as fh:
        return from_json(fh.read())
