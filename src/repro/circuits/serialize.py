"""Netlist (de)serialization.

Large netlists (the n = 4096 sorters run to hundreds of thousands of
elements) take seconds to construct; ``to_json``/``from_json`` let users
cache them on disk.  The format is a plain JSON object — stable, diffable,
and independent of Python pickling.

:func:`load` additionally memoizes by ``(path, mtime, size)`` and hands
back the *same* :class:`Netlist` object while it stays alive, so the
JSON disk cache composes with the weak-keyed compiled-plan cache in
:mod:`repro.circuits.engine`: a netlist re-loaded between benchmark
sweeps keeps its already-compiled execution plan.

A ``(mtime_ns, size)`` match is *necessary but not sufficient* for
freshness: an atomic replace (``os.replace`` of a same-length file with
a forged or coarse-granularity mtime) can leave the key identical while
the bytes differ.  Cache entries therefore also record the inode and a
content hash; when the cheap key matches but the inode changed, the file
content is re-hashed to decide between reuse and reload.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
from typing import Dict, Tuple, Union

from .elements import Element
from .netlist import Netlist

FORMAT_VERSION = 1


def content_hash(data: Union[str, bytes]) -> str:
    """sha256 hex digest of serialized netlist bytes.

    The single content-identity primitive shared by :func:`load`'s
    staleness check and the JIT disk-cache key
    (:func:`repro.circuits.jit.get_jit_plan`): two netlists with equal
    hashes are byte-identical under :func:`to_json`.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def netlist_key(netlist: Netlist) -> str:
    """Content hash of a live netlist (its canonical JSON form).

    Structure-only: two :class:`Netlist` objects that serialize
    identically share a key, which is exactly what lets JIT-compiled
    kernels persist across processes and :mod:`repro.parallel` workers.
    """
    return content_hash(to_json(netlist))

#: (realpath, mtime_ns, size) -> (weakref to the loaded netlist, inode,
#: sha256 of the file bytes).  Weak so the cache never extends a
#: netlist's lifetime (mirroring the engine's plan cache); stale file
#: keys are pruned on miss.
_LOAD_CACHE: Dict[
    Tuple[str, int, int], Tuple["weakref.ref[Netlist]", int, str]
] = {}


def to_json(netlist: Netlist) -> str:
    """Serialize a netlist to a JSON string."""
    payload = {
        "format": FORMAT_VERSION,
        "name": netlist.name,
        "n_wires": netlist.n_wires,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "constants": {str(w): v for w, v in netlist.constants.items()},
        # omitted when empty so pre-existing golden files stay byte-stable
        **(
            {"control_wires": sorted(netlist.control_wires)}
            if netlist.control_wires
            else {}
        ),
        "elements": [
            {
                "kind": e.kind,
                "ins": list(e.ins),
                "outs": list(e.outs),
                **({"params": [list(p) for p in e.params]} if e.params else {}),
            }
            for e in netlist.elements
        ],
    }
    return json.dumps(payload)


def from_json(text: Union[str, bytes]) -> Netlist:
    """Reconstruct a netlist from :func:`to_json` output (re-validated)."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported netlist format {payload.get('format')!r}"
        )
    elements = [
        Element(
            e["kind"],
            tuple(e["ins"]),
            tuple(e["outs"]),
            tuple(tuple(p) for p in e["params"]) if "params" in e else None,
        )
        for e in payload["elements"]
    ]
    return Netlist(
        n_wires=payload["n_wires"],
        elements=elements,
        inputs=payload["inputs"],
        outputs=payload["outputs"],
        constants={int(w): v for w, v in payload["constants"].items()},
        name=payload.get("name", "netlist"),
        control_wires=payload.get("control_wires", ()),
    )


def save(netlist: Netlist, path) -> None:
    """Write a netlist to ``path`` as JSON."""
    with open(path, "w") as fh:
        fh.write(to_json(netlist))


def load(path, cache: bool = True) -> Netlist:
    """Read a netlist previously written by :func:`save`.

    With ``cache=True`` (default), repeated loads of an unmodified file
    return the identical ``Netlist`` object while it is still alive
    elsewhere, so its compiled execution plan is reused.  Pass
    ``cache=False`` to force a fresh object (e.g. to mutate it).

    Freshness is keyed on ``(realpath, mtime_ns, size)`` with an inode +
    content-hash fallback: if the key matches but the inode differs (the
    signature of an atomic ``os.replace`` with a same-length file and a
    colliding mtime), the bytes are hashed and the cached object is only
    reused when the content is genuinely identical.
    """
    data = None
    if cache:
        try:
            st = os.stat(path)
            key = (os.path.realpath(path), st.st_mtime_ns, st.st_size)
        except OSError:
            key = None
        if key is not None:
            entry = _LOAD_CACHE.get(key)
            if entry is not None:
                ref, ino, digest = entry
                hit = ref()
                if hit is not None:
                    if st.st_ino == ino:
                        return hit
                    # Same (mtime_ns, size) but a different inode: the
                    # file was atomically replaced.  Fall back to content.
                    with open(path, "rb") as fh:
                        data = fh.read()
                    if content_hash(data) == digest:
                        return hit
    if data is None:
        with open(path, "rb") as fh:
            data = fh.read()
    net = from_json(data)
    if cache and key is not None:
        _LOAD_CACHE[key] = (
            weakref.ref(net),
            st.st_ino,
            content_hash(data),
        )
        if len(_LOAD_CACHE) > 256:  # prune dead refs opportunistically
            for k in [k for k, e in _LOAD_CACHE.items() if e[0]() is None]:
                del _LOAD_CACHE[k]
    return net
