"""Netlist (de)serialization.

Large netlists (the n = 4096 sorters run to hundreds of thousands of
elements) take seconds to construct; ``to_json``/``from_json`` let users
cache them on disk.  The format is a plain JSON object — stable, diffable,
and independent of Python pickling.

:func:`load` additionally memoizes by ``(path, mtime, size)`` and hands
back the *same* :class:`Netlist` object while it stays alive, so the
JSON disk cache composes with the weak-keyed compiled-plan cache in
:mod:`repro.circuits.engine`: a netlist re-loaded between benchmark
sweeps keeps its already-compiled execution plan.
"""

from __future__ import annotations

import json
import os
import weakref
from typing import Dict, Tuple, Union

from .elements import Element
from .netlist import Netlist

FORMAT_VERSION = 1

#: (realpath, mtime_ns, size) -> weakref to the loaded netlist.  Weak so
#: the cache never extends a netlist's lifetime (mirroring the engine's
#: plan cache); stale file keys are pruned on miss.
_LOAD_CACHE: Dict[Tuple[str, int, int], "weakref.ref[Netlist]"] = {}


def to_json(netlist: Netlist) -> str:
    """Serialize a netlist to a JSON string."""
    payload = {
        "format": FORMAT_VERSION,
        "name": netlist.name,
        "n_wires": netlist.n_wires,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "constants": {str(w): v for w, v in netlist.constants.items()},
        "elements": [
            {
                "kind": e.kind,
                "ins": list(e.ins),
                "outs": list(e.outs),
                **({"params": [list(p) for p in e.params]} if e.params else {}),
            }
            for e in netlist.elements
        ],
    }
    return json.dumps(payload)


def from_json(text: Union[str, bytes]) -> Netlist:
    """Reconstruct a netlist from :func:`to_json` output (re-validated)."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported netlist format {payload.get('format')!r}"
        )
    elements = [
        Element(
            e["kind"],
            tuple(e["ins"]),
            tuple(e["outs"]),
            tuple(tuple(p) for p in e["params"]) if "params" in e else None,
        )
        for e in payload["elements"]
    ]
    return Netlist(
        n_wires=payload["n_wires"],
        elements=elements,
        inputs=payload["inputs"],
        outputs=payload["outputs"],
        constants={int(w): v for w, v in payload["constants"].items()},
        name=payload.get("name", "netlist"),
    )


def save(netlist: Netlist, path) -> None:
    """Write a netlist to ``path`` as JSON."""
    with open(path, "w") as fh:
        fh.write(to_json(netlist))


def load(path, cache: bool = True) -> Netlist:
    """Read a netlist previously written by :func:`save`.

    With ``cache=True`` (default), repeated loads of an unmodified file
    return the identical ``Netlist`` object while it is still alive
    elsewhere, so its compiled execution plan is reused.  Pass
    ``cache=False`` to force a fresh object (e.g. to mutate it).
    """
    if cache:
        try:
            st = os.stat(path)
            key = (os.path.realpath(path), st.st_mtime_ns, st.st_size)
        except OSError:
            key = None
        if key is not None:
            ref = _LOAD_CACHE.get(key)
            hit = ref() if ref is not None else None
            if hit is not None:
                return hit
    with open(path) as fh:
        net = from_json(fh.read())
    if cache and key is not None:
        _LOAD_CACHE[key] = weakref.ref(net)
        if len(_LOAD_CACHE) > 256:  # prune dead refs opportunistically
            for k in [k for k, r in _LOAD_CACHE.items() if r() is None]:
                del _LOAD_CACHE[k]
    return net
