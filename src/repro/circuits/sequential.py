"""Clocked-circuit machinery for the paper's Network Model B.

Model B (Section II) assumes "a global clock that times our steps for
moving various groups of inputs through (n,k)-multiplexer and
(k,m)-demultiplexer blocks" and that "inputs can be pipelined".  This
module supplies:

* :class:`Timeline` — a cycle counter that records labelled segments of
  delay, in the paper's unit (one constant-fanin element = one unit of
  bit-level delay).  Sorting-time claims (eqs. 22-26) are checked against
  timelines accumulated during actual sorts.
* :func:`levelize` — assigns every wire of a combinational netlist to a
  pipeline level (its depth) and counts the balancing registers a real
  pipelined implementation would need.
* :class:`PipelinedNetlist` — a cycle-accurate register-transfer
  simulation of a combinational netlist cut into unit-delay segments.
  One input vector enters per clock; the matching output emerges
  ``depth`` cycles later.  This realizes the paper's "lg^2(n/k) segment
  pipeline, where each segment is a constant fanin, unit delay circuit".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import elements as el
from .netlist import Netlist
from .simulate import simulate


@dataclass(frozen=True)
class TimeSegment:
    """One labelled span of clock cycles on a :class:`Timeline`."""

    label: str
    start: int
    duration: int

    @property
    def end(self) -> int:
        return self.start + self.duration


class Timeline:
    """Accumulates bit-level delay in labelled segments.

    Sequential phases call :meth:`advance`; phases that overlap earlier
    work (pipelining) call :meth:`advance_to` with an absolute finish
    time.
    """

    def __init__(self) -> None:
        self._now = 0
        self.segments: List[TimeSegment] = []

    @property
    def now(self) -> int:
        return self._now

    def advance(self, duration: int, label: str) -> int:
        """Append ``duration`` cycles of work; returns the new time."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.segments.append(TimeSegment(label, self._now, duration))
        self._now += duration
        return self._now

    def advance_to(self, finish: int, label: str) -> int:
        """Move the clock to ``finish`` (no-op if already past it)."""
        if finish > self._now:
            self.segments.append(TimeSegment(label, self._now, finish - self._now))
            self._now = finish
        return self._now

    def breakdown(self) -> Dict[str, int]:
        """Total cycles per label."""
        acc: Dict[str, int] = {}
        for seg in self.segments:
            acc[seg.label] = acc.get(seg.label, 0) + seg.duration
        return acc

    def __repr__(self) -> str:  # pragma: no cover - convenience only
        return f"Timeline(now={self._now}, segments={len(self.segments)})"


@dataclass(frozen=True)
class LevelizedNetlist:
    """Pipeline levelization of a combinational netlist."""

    n_levels: int
    #: wire id -> pipeline level at which the wire's value is produced.
    wire_levels: Tuple[int, ...]
    #: element index -> level at which the element computes (1-based; BUF
    #: elements compute "within" the level of their input).
    element_levels: Tuple[int, ...]
    #: Total balancing-register bits a physical pipeline would add so that
    #: every input-to-output path crosses the same number of boundaries.
    balance_registers: int


def levelize(netlist: Netlist) -> LevelizedNetlist:
    """Assign wires and elements to unit-delay pipeline levels."""
    wire_levels = list(netlist.wire_depths())
    element_levels: List[int] = []
    for e in netlist.elements:
        out_level = max((wire_levels[w] for w in e.outs), default=0)
        element_levels.append(out_level)
    n_levels = max(
        (wire_levels[w] for w in netlist.outputs), default=0
    )
    # A wire produced at level p and consumed by an element at level L
    # must be registered across boundaries p .. L-1: that's L - 1 - p + 1
    # = L - p extra register stages beyond the producing one (depth-1
    # elements already imply a register at their own boundary).
    last_use = [None] * netlist.n_wires
    for e, lvl in zip(netlist.elements, element_levels):
        for w in e.ins:
            if last_use[w] is None or lvl > last_use[w]:
                last_use[w] = lvl
    for w in netlist.outputs:
        if last_use[w] is None or n_levels > last_use[w]:
            last_use[w] = n_levels
    balance = 0
    for w in range(netlist.n_wires):
        if last_use[w] is not None:
            span = last_use[w] - wire_levels[w] - 1
            if span > 0:
                balance += span
    return LevelizedNetlist(
        n_levels=n_levels,
        wire_levels=tuple(wire_levels),
        element_levels=tuple(element_levels),
        balance_registers=balance,
    )


class PipelinedNetlist:
    """Cycle-accurate streaming execution of a combinational netlist.

    Call :meth:`step` once per clock cycle with a new input vector (or
    ``None`` to insert a bubble); it returns the output vector whose
    input entered ``latency`` cycles earlier, or ``None`` while the
    pipeline is still filling (or for a bubble slot).

    The implementation keeps genuine per-boundary register state rather
    than exploiting the algebraic identity ``out[t] = f(in[t - D])``, so
    tests can confirm the pipeline behaves like hardware would.  Each
    pipeline level's elements are pre-fused into level-batched steps
    (see :mod:`repro.circuits.engine`), so advancing one boundary is a
    handful of vectorized kernel calls instead of a per-element Python
    loop; a bubble slot is represented by a ``None`` boundary array.

    ``transients`` accepts
    :class:`~repro.circuits.faults.TransientFlip` faults (or bare
    ``(wire, cycle)`` pairs): at clock ``cycle`` the value of
    ``wire`` latched into its producing boundary register is inverted —
    a single-cycle glitch on the physical wire.  Only the one in-flight
    input whose values are being latched at that boundary is corrupted;
    older inputs deeper in the pipeline latched before the glitch and
    keep their correct values, exactly as hardware would.
    """

    def __init__(self, netlist: Netlist, transients=()) -> None:
        from .engine import fuse_elements

        self.netlist = netlist
        self.level = levelize(netlist)
        self.latency = self.level.n_levels
        # Elements grouped by computing level, preserving topological order.
        self._by_level: Dict[int, List[int]] = {}
        for idx, lvl in enumerate(self.level.element_levels):
            if lvl > self.latency:
                continue  # dead logic deeper than every primary output
            self._by_level.setdefault(lvl, []).append(idx)
        # Fused execution steps per pipeline level.  Depth-0 buffers make
        # same-level chains possible, so each level is micro-levelized by
        # fuse_elements rather than assumed independent.
        self._level_steps = {
            lvl: fuse_elements([netlist.elements[i] for i in idxs])
            for lvl, idxs in self._by_level.items()
        }
        self._const_items = tuple(netlist.constants.items())
        # Transient glitches: clock cycle -> wires flipped at that clock.
        self._flips: Dict[int, List[int]] = {}
        for f in transients:
            wire, cycle = (f.wire, f.cycle) if hasattr(f, "wire") else f
            if not (0 <= wire < netlist.n_wires):
                raise ValueError(f"transient wire {wire} out of range")
            self._flips.setdefault(cycle, []).append(wire)
        self._clock = 0
        # Register state: state[L] is a (n_wires, 1) uint8 column of the
        # values crossing boundary L, or None for an invalid/bubble slot.
        self._state: List[Optional[np.ndarray]] = [None] * (self.latency + 1)

    def reset(self) -> None:
        self._state = [None] * (self.latency + 1)
        self._clock = 0

    def step(self, inputs: Optional[Sequence[int]]) -> Optional[List[int]]:
        """Advance one clock cycle; see class docstring."""
        from .engine import apply_steps

        net = self.netlist
        ones = np.uint8(1)
        if inputs is None:
            new0 = None
        else:
            if len(inputs) != len(net.inputs):
                raise ValueError(
                    f"expected {len(net.inputs)} inputs, got {len(inputs)}"
                )
            new0 = np.zeros((net.n_wires, 1), dtype=np.uint8)
            for w, v in zip(net.inputs, inputs):
                new0[w, 0] = v
            for w, v in self._const_items:
                new0[w, 0] = v
            # Depth-0 elements (buffers of inputs/constants) compute
            # combinationally before the first register boundary.
            apply_steps(new0, self._level_steps.get(0, ()), ones)

        new_state: List[Optional[np.ndarray]] = [new0]
        for L in range(1, self.latency + 1):
            prev = self._state[L - 1]  # previous-cycle boundary values
            if prev is None:
                new_state.append(None)
                continue
            scratch = prev.copy()
            apply_steps(scratch, self._level_steps.get(L, ()), ones)
            new_state.append(scratch)
        for w in self._flips.get(self._clock, ()):
            # A glitch at this clock corrupts the value of wire w being
            # latched *now*, i.e. at the boundary of w's pipeline level.
            lvl = min(self.level.wire_levels[w], self.latency)
            if new_state[lvl] is not None:
                new_state[lvl][w, 0] ^= 1
        self._clock += 1
        self._state = new_state
        last = self._state[self.latency]
        if last is None:
            return None
        return [int(last[w, 0]) for w in net.outputs]

    def run(self, batches: Sequence[Sequence[int]]) -> Tuple[List[List[int]], int]:
        """Stream ``batches`` through the pipeline back-to-back.

        Returns ``(outputs, makespan)`` where ``makespan`` is the clock
        time of the last output with the first input injected at time 0:
        ``len(batches) - 1 + latency``, the paper's pipelined accounting.
        """
        self.reset()
        outs: List[List[int]] = []
        steps = 0
        for vec in batches:
            res = self.step(vec)
            steps += 1
            if res is not None:
                outs.append(res)
        while len(outs) < len(batches):
            res = self.step(None)
            steps += 1
            if res is not None:
                outs.append(res)
        return outs, steps - 1


def _eval_element(e, ins: List[Optional[int]]) -> List[int]:
    """Scalar element evaluation used by the register-transfer simulator."""
    kind = e.kind
    if any(v is None for v in ins):
        raise ValueError(f"element {kind} read an invalid register value")
    if kind == el.COMPARATOR:
        a, b = ins
        return [a & b, a | b]
    if kind == el.SWITCH2:
        a, b, c = ins
        return [b, a] if c else [a, b]
    if kind == el.MUX2:
        a, b, s = ins
        return [b if s else a]
    if kind == el.DEMUX2:
        a, s = ins
        return [0, a] if s else [a, 0]
    if kind == el.SWITCH4:
        data, sel = ins[:4], (ins[4] << 1) | ins[5]
        perm = e.params[sel]
        return [data[perm[i]] for i in range(4)]
    if kind == el.NOT:
        return [ins[0] ^ 1]
    if kind == el.AND:
        return [ins[0] & ins[1]]
    if kind == el.OR:
        return [ins[0] | ins[1]]
    if kind == el.XOR:
        return [ins[0] ^ ins[1]]
    if kind == el.NAND:
        return [(ins[0] & ins[1]) ^ 1]
    if kind == el.NOR:
        return [(ins[0] | ins[1]) ^ 1]
    if kind == el.XNOR:
        return [(ins[0] ^ ins[1]) ^ 1]
    if kind == el.BUF:
        return [ins[0]]
    raise ValueError(f"unknown element kind {kind!r}")  # pragma: no cover


def run_time_multiplexed(
    netlist: Netlist,
    groups: Sequence[Sequence[int]],
    timeline: Optional[Timeline] = None,
    label: str = "multiplexed-pass",
) -> List[np.ndarray]:
    """Run ``groups`` through ``netlist`` one after another (no pipelining).

    Each pass charges the full combinational depth to the timeline — this
    is the unpipelined Model B operation of eq. (22).  Functionally the
    passes are independent, so they evaluate as one batched call on the
    compiled engine; the timeline still charges them sequentially.
    """
    depth = netlist.depth()
    if not groups:
        return []
    res = simulate(netlist, [list(vec) for vec in groups])
    if timeline is not None:
        for i in range(len(groups)):
            timeline.advance(depth, f"{label}[{i}]")
    return [res[i] for i in range(res.shape[0])]


def run_pipelined(
    netlist: Netlist,
    groups: Sequence[Sequence[int]],
    timeline: Optional[Timeline] = None,
    label: str = "pipelined-pass",
) -> List[np.ndarray]:
    """Run ``groups`` through ``netlist`` pipelined, one per cycle.

    Charges ``len(groups) - 1 + depth`` cycles, the makespan of a
    unit-delay segmented pipeline (eq. 25's accounting).  Functional
    results are computed with the vectorized simulator; equivalence with
    the register-transfer :class:`PipelinedNetlist` is covered by tests.
    """
    if timeline is not None and groups:
        timeline.advance(len(groups) - 1 + netlist.depth(), label)
    if not groups:
        return []
    res = simulate(netlist, [list(g) for g in groups])
    return [res[i] for i in range(res.shape[0])]
