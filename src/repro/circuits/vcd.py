"""VCD (Value Change Dump) export for clocked simulations.

Hardware engineers inspect clocked behavior in waveform viewers;
:class:`VcdRecorder` captures per-cycle signal values from
:class:`~repro.circuits.fsm.SequentialCircuit` or
:class:`~repro.circuits.sequential.PipelinedNetlist` runs and writes a
standard VCD file (loadable in GTKWave and friends).

Example::

    rec = VcdRecorder(["counter0", "counter1", "out"])
    for t in range(8):
        outs = circuit.step([])
        rec.sample(circuit.state + outs)
    rec.write("trace.vcd")
"""

from __future__ import annotations

from typing import List, Sequence


def _ident(index: int) -> str:
    """Short printable VCD identifier for signal ``index``."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out = chars[rem] + out
    return out


class VcdRecorder:
    """Accumulates per-cycle samples of named 1-bit signals."""

    def __init__(self, names: Sequence[str], timescale: str = "1ns") -> None:
        if not names:
            raise ValueError("need at least one signal name")
        if len(set(names)) != len(names):
            raise ValueError("signal names must be unique")
        self.names = list(names)
        self.timescale = timescale
        self.samples: List[List[int]] = []

    def sample(self, values: Sequence[int]) -> None:
        """Record one clock cycle's signal values."""
        if len(values) != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} values, got {len(values)}"
            )
        self.samples.append([int(v) & 1 for v in values])

    def dumps(self) -> str:
        """Render the recorded trace as VCD text."""
        idents = [_ident(i) for i in range(len(self.names))]
        lines = [
            "$date repro trace $end",
            f"$timescale {self.timescale} $end",
            "$scope module repro $end",
        ]
        for name, ident in zip(self.names, idents):
            lines.append(f"$var wire 1 {ident} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        prev: List[int] = []
        for t, row in enumerate(self.samples):
            lines.append(f"#{t}")
            for i, v in enumerate(row):
                if not prev or prev[i] != v:
                    lines.append(f"{v}{idents[i]}")
            prev = row
        if self.samples:
            lines.append(f"#{len(self.samples)}")
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())


def record_sequential(circuit, external: Sequence[int], cycles: int,
                      names: Sequence[str] = ()) -> VcdRecorder:
    """Run a :class:`~repro.circuits.fsm.SequentialCircuit` and record
    its state + external outputs each cycle."""
    n_sig = circuit.n_state + circuit.n_external_out
    if names and len(names) != n_sig:
        raise ValueError(f"expected {n_sig} names")
    if not names:
        names = [f"state{i}" for i in range(circuit.n_state)] + [
            f"out{i}" for i in range(circuit.n_external_out)
        ]
    rec = VcdRecorder(names)
    circuit.reset()
    for _ in range(cycles):
        outs = circuit.step(external)
        rec.sample(list(circuit.state) + outs)
    return rec
