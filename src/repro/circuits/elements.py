"""Primitive circuit elements and their accounting metadata.

The paper (Section II) tallies network cost and depth in units of
constant-fanin elements: each 2x2 switch, 1-bit comparator,
(2,1)-multiplexer, and (1,2)-demultiplexer has unit cost and unit depth;
a 4x4 switch is normalized to cost 4 (four 2x2 switches) with unit depth;
the internals of adders and select logic are counted per constant-fanin
logic gate.  Every element defined here carries exactly that accounting.

Elements are deliberately lightweight records: a kind tag, input wire ids,
output wire ids, and an optional parameter blob (e.g. the permutation
table of a 4x4 switch).  Evaluation semantics live in
:mod:`repro.circuits.simulate` so that batched (vectorized) and
payload-carrying interpreters can share the same structural description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

# ---------------------------------------------------------------------------
# Element kinds
# ---------------------------------------------------------------------------

#: One- and two-input constant-fanin logic gates (cost 1, depth 1 each).
NOT = "NOT"
AND = "AND"
OR = "OR"
XOR = "XOR"
NAND = "NAND"
NOR = "NOR"
XNOR = "XNOR"
#: Identity buffer.  Zero cost and zero depth: buffers only exist so that
#: builders can alias wires without perturbing the paper's accounting.
BUF = "BUF"

#: 1-bit ascending comparator: out0 = min(a, b), out1 = max(a, b).
COMPARATOR = "COMPARATOR"
#: 2x2 crossbar switch: control 0 routes straight, 1 routes crossed.
SWITCH2 = "SWITCH2"
#: 4x4 switch applying one of up to four permutations chosen by 2 control
#: bits; the permutation table is an instance parameter.
SWITCH4 = "SWITCH4"
#: (2,1)-multiplexer: out = b if sel else a.
MUX2 = "MUX2"
#: (1,2)-demultiplexer: routes the input to out[sel]; the other output is 0.
DEMUX2 = "DEMUX2"

GATE_KINDS = frozenset({NOT, AND, OR, XOR, NAND, NOR, XNOR, BUF})

#: (cost, depth, n_inputs, n_outputs) per element kind.  ``None`` arity
#: entries are validated per-instance.
_META = {
    NOT: (1, 1, 1, 1),
    AND: (1, 1, 2, 1),
    OR: (1, 1, 2, 1),
    XOR: (1, 1, 2, 1),
    NAND: (1, 1, 2, 1),
    NOR: (1, 1, 2, 1),
    XNOR: (1, 1, 2, 1),
    BUF: (0, 0, 1, 1),
    COMPARATOR: (1, 1, 2, 2),
    SWITCH2: (1, 1, 3, 2),  # inputs: a, b, control
    SWITCH4: (4, 1, 6, 4),  # inputs: a, b, c, d, sel_hi, sel_lo
    MUX2: (1, 1, 3, 1),  # inputs: a, b, sel
    DEMUX2: (1, 1, 2, 2),  # inputs: a, sel
}


@dataclass(frozen=True)
class ElementMeta:
    """Static accounting data for one element kind."""

    cost: int
    depth: int
    n_inputs: int
    n_outputs: int


ELEMENT_META = {kind: ElementMeta(*vals) for kind, vals in _META.items()}


@dataclass
class Element:
    """One instantiated element inside a netlist.

    Attributes
    ----------
    kind:
        One of the kind constants in this module.
    ins:
        Wire ids read by this element, in kind-specific order.
    outs:
        Wire ids driven by this element.
    params:
        Kind-specific parameters.  For :data:`SWITCH4` this is a tuple of
        four output->input permutations indexed by the 2-bit select value.
    """

    __slots__ = ("kind", "ins", "outs", "params")

    kind: str
    ins: Tuple[int, ...]
    outs: Tuple[int, ...]
    params: Any

    @property
    def cost(self) -> int:
        return ELEMENT_META[self.kind].cost

    @property
    def depth(self) -> int:
        return ELEMENT_META[self.kind].depth

    def validate(self) -> None:
        meta = ELEMENT_META[self.kind]
        if len(self.ins) != meta.n_inputs:
            raise ValueError(
                f"{self.kind} expects {meta.n_inputs} inputs, got {len(self.ins)}"
            )
        if len(self.outs) != meta.n_outputs:
            raise ValueError(
                f"{self.kind} expects {meta.n_outputs} outputs, got {len(self.outs)}"
            )
        if self.kind == SWITCH4:
            perms = self.params
            if not isinstance(perms, tuple) or len(perms) != 4:
                raise ValueError("SWITCH4 requires a 4-entry permutation table")
            for perm in perms:
                if sorted(perm) != [0, 1, 2, 3]:
                    raise ValueError(f"invalid 4x4 permutation {perm!r}")
