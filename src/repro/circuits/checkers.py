"""Gate-level concurrent error detection for sorting netlists.

PR 2's fault campaigns showed that faults on the adaptive steering paths
can cause *silent corruption*: the sorter emits a plausible (monotone)
but wrong output with no indication anything went wrong.  This module
closes that gap with self-checking hardware built from the paper's own
tools — every checker is an ordinary gate-level circuit appended to the
netlist, so self-checking variants stay inside the paper's cost/depth
accounting (Section II units) and can themselves be fault-injected.

Three checkers, each emitting one **alarm wire** (1 = error detected):

* **sortedness** — the output must be monotone ``0...01...1``.  One
  violation detector ``out[i] AND NOT out[i+1]`` per adjacent pair plus
  a balanced OR tree: cost exactly ``3(n-1) - (n>2)``... see
  :func:`sortedness_checker_cost` (``3n - 4`` gates for ``n >= 2``),
  depth ``2 + ceil(lg(n-1))`` — the ``n-1`` comparisons / ``O(lg n)``
  depth of the classic output monitor.
* **ones-count preservation** — the population counts of the inputs and
  outputs must agree (a sorter permutes, never creates or destroys).
  Two prefix-adder population counters
  (:func:`repro.components.prefix_adder.popcount`) plus a bitwise
  equality tree; bounded by :func:`count_checker_cost_bound` /
  :func:`count_checker_depth_bound`.
* **control duplicate-and-compare** — the fan-in cone of every tagged
  steering wire (:attr:`~repro.circuits.netlist.Netlist.control_wires`
  ∪ structural control ports) is duplicated from the primary inputs and
  each steering signal compared (XOR) against its replica; any mismatch
  raises the alarm *before* the corruption is routed.  Overhead is
  exactly :func:`control_checker_overhead` (cone cost + ``2|C| - 1``).

**Completeness.**  For binary sorting the first two checkers are a
*complete* concurrent error detector: a monotone 0-1 sequence is fully
determined by its ones count, so any wrong output either breaks
monotonicity (sortedness alarm) or changes the count (count alarm).
Hence every fault whose corruption reaches a data output while the
checker itself is fault-free is detected — the zero-one principle's
online counterpart.  The guarantee excludes faults on the primary input
bus (upstream of both sorter and checker, indistinguishable from a
different input — the standard fault-secure boundary of CED).

:func:`with_checkers` appends checkers to an existing netlist **without
renumbering**: all original wire ids and element indices stay valid, so
fault universes enumerated on the plain netlist apply verbatim to the
self-checking one (exactly how the supervised campaigns re-run PR 2's
fault sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import BuildError, CheckerAlarm
from .builder import CircuitBuilder
from .faults import control_wires as _control_wires
from .netlist import Netlist

#: Alarm names in the order :func:`with_checkers` appends them.
SORTEDNESS = "sortedness"
COUNT = "count"
CONTROL = "control"


def _ceil_lg(m: int) -> int:
    """ceil(log2(m)) for m >= 1."""
    if m < 1:
        raise BuildError(f"ceil_lg needs m >= 1, got {m}")
    return (m - 1).bit_length()


# ---------------------------------------------------------------------------
# Closed-form overhead bounds (the paper's accounting units)
# ---------------------------------------------------------------------------


def sortedness_checker_cost(n: int) -> int:
    """Exact gate cost of the sortedness checker over ``n`` outputs.

    ``n-1`` violation detectors of 2 gates (NOT + AND) plus a balanced
    OR tree over them (``n-2`` gates): ``3n - 4`` for ``n >= 2``.
    """
    if n < 2:
        return 0
    return 3 * n - 4


def sortedness_checker_depth(n: int) -> int:
    """Exact depth the sortedness checker adds past the deepest output:
    NOT + AND (2 levels) then the OR tree (``ceil(lg(n-1))``)."""
    if n < 2:
        return 0
    return 2 + _ceil_lg(n - 1)


def _adder_cost_bound(m: int, adder: str) -> int:
    """Upper bound on the gate cost of adding two ``m``-bit numbers."""
    if m <= 1:
        return 2  # half adder
    if adder == "prefix":  # Kogge–Stone: 2m (P,G) + 3m per scan level + m-1 sums
        return 3 * m * (1 + _ceil_lg(m))
    if adder == "ripple":  # 5 gates per full-adder cell
        return 5 * m
    raise BuildError(f"unknown adder {adder!r}")


def _adder_depth_bound(m: int, adder: str) -> int:
    if m <= 1:
        return 1
    if adder == "prefix":
        return 2 + 2 * _ceil_lg(m)
    if adder == "ripple":
        return 2 * m
    raise BuildError(f"unknown adder {adder!r}")


def popcount_cost_bound(n: int, adder: str = "prefix") -> int:
    """Upper bound on the gate cost of one ``n``-input population counter
    (the adder tree of :func:`repro.components.prefix_adder.popcount`):
    ``n/2`` half-adders, then one level of width-``j`` adders per
    ``j = 2 .. lg n`` with ``n / 2^j`` adders each."""
    if n & (n - 1):
        raise BuildError(f"bound is stated for powers of two, got {n}")
    total = 2 * (n // 2)
    width, groups = 2, n // 4
    while groups >= 1:
        total += groups * _adder_cost_bound(width, adder)
        width += 1
        groups //= 2
    return total


def popcount_depth_bound(n: int, adder: str = "prefix") -> int:
    """Upper bound on the depth of one ``n``-input population counter."""
    if n & (n - 1):
        raise BuildError(f"bound is stated for powers of two, got {n}")
    d = 1  # half-adder leaves
    width, groups = 2, n // 4
    while groups >= 1:
        d += _adder_depth_bound(width, adder)
        width += 1
        groups //= 2
    return d


def count_checker_cost_bound(n: int, adder: str = "prefix") -> int:
    """Upper bound on the count checker: two population counters plus a
    ``w``-bit equality tree (``w`` XOR + ``w-1`` OR, ``w = lg n + 1``)."""
    w = n.bit_length()
    return 2 * popcount_cost_bound(n, adder) + 2 * w - 1


def count_checker_depth_bound(n: int, adder: str = "prefix") -> int:
    """Upper bound on the depth the count checker adds past the deepest
    data output: one popcount, one XOR level, the OR tree."""
    w = n.bit_length()
    return popcount_depth_bound(n, adder) + 1 + _ceil_lg(w)


def control_cone(netlist: Netlist) -> Tuple[List[int], List[int]]:
    """Steering fan-in cone of ``netlist``.

    Returns ``(element_indices, compared_wires)``: the (topologically
    ordered) indices of every element whose output transitively feeds a
    steering wire, and the steering wires that are element-driven (and
    hence duplicable — steering wires that are primary inputs cannot be
    checked by duplication, matching the CED fault-secure boundary).
    """
    targets: Set[int] = set(_control_wires(netlist))
    produced: Dict[int, int] = {}
    for i, e in enumerate(netlist.elements):
        for w in e.outs:
            produced[w] = i
    needed = set(targets)
    cone: List[int] = []
    for i in range(len(netlist.elements) - 1, -1, -1):
        e = netlist.elements[i]
        if any(w in needed for w in e.outs):
            cone.append(i)
            needed.update(e.ins)
    cone.reverse()
    compared = sorted(w for w in targets if w in produced)
    return cone, compared


def control_checker_overhead(netlist: Netlist) -> int:
    """Exact cost of duplicate-and-compare on the steering cone:
    one replica of the cone plus ``|C|`` XOR compares and a ``|C|-1``
    OR tree (0 when no steering wire is element-driven)."""
    cone, compared = control_cone(netlist)
    if not compared:
        return 0
    dup = sum(netlist.elements[i].cost for i in cone)
    return dup + 2 * len(compared) - 1


# ---------------------------------------------------------------------------
# Netlist extension
# ---------------------------------------------------------------------------


def _extend_builder(netlist: Netlist, name: str) -> CircuitBuilder:
    """A :class:`CircuitBuilder` whose state continues ``netlist``.

    The original wires, elements, inputs, and constants are carried over
    verbatim (same ids, same order), so everything appended lands after
    the existing topological order and the source netlist is untouched.
    """
    b = CircuitBuilder(name)
    b._n_wires = netlist.n_wires
    b._elements = list(netlist.elements)
    b._inputs = list(netlist.inputs)
    b._constants = dict(netlist.constants)
    # const() cache: reuse an existing constant wire per value if any.
    b._const_cache = {}
    for w, v in netlist.constants.items():
        b._const_cache.setdefault(v, w)
    b._control_wires = set(netlist.control_wires)
    return b


def _attach_sortedness(b: CircuitBuilder, outs: Sequence[int]) -> int:
    """Alarm wire: 1 iff ``outs`` is not monotone non-decreasing."""
    terms = [
        b.and_(outs[i], b.not_(outs[i + 1])) for i in range(len(outs) - 1)
    ]
    return b.or_tree(terms)


def _attach_count(
    b: CircuitBuilder, ins: Sequence[int], outs: Sequence[int], adder: str
) -> int:
    """Alarm wire: 1 iff popcount(ins) != popcount(outs)."""
    from ..components.prefix_adder import popcount

    cin = popcount(b, list(ins), adder=adder)
    cout = popcount(b, list(outs), adder=adder)
    while len(cin) < len(cout):
        cin.append(b.const(0))
    while len(cout) < len(cin):
        cout.append(b.const(0))
    diffs = [b.xor(x, y) for x, y in zip(cin, cout)]
    return b.or_tree(diffs)


def _attach_control_duplicate(
    b: CircuitBuilder, netlist: Netlist
) -> Optional[int]:
    """Alarm wire: 1 iff any element-driven steering wire disagrees with
    an independently recomputed replica of its fan-in cone.

    Returns ``None`` when the netlist has no element-driven steering
    wires (nothing to duplicate).
    """
    cone, compared = control_cone(netlist)
    if not compared:
        return None
    dup: Dict[int, int] = {}
    for i in cone:
        e = netlist.elements[i]
        ins = [dup.get(w, w) for w in e.ins]
        outs = b._emit(e.kind, ins, len(e.outs), e.params)
        for orig, copy in zip(e.outs, outs):
            dup[orig] = copy
    mismatches = [b.xor(w, dup[w]) for w in compared]
    return b.or_tree(mismatches)


@dataclass
class CheckedNetlist:
    """A netlist with concurrent error-detection alarms appended.

    ``netlist.outputs`` is the original data outputs followed by one
    alarm wire per entry of ``alarm_names`` (1 = alarm).  All wire ids
    and element indices of the source netlist remain valid here, so
    fault records carry over unchanged.
    """

    netlist: Netlist
    n_data: int
    alarm_names: Tuple[str, ...]
    base_cost: int
    base_depth: int

    # -- accounting -----------------------------------------------------------

    @property
    def overhead_cost(self) -> int:
        """Checker gate cost (checked minus plain, paper units)."""
        return self.netlist.cost() - self.base_cost

    @property
    def overhead_depth(self) -> int:
        """Depth the deepest alarm adds over the plain network."""
        return self.netlist.depth() - self.base_depth

    # -- result handling ------------------------------------------------------

    def split(self, out: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a simulation result into ``(data, alarms)``."""
        out = np.asarray(out)
        return out[..., : self.n_data], out[..., self.n_data :]

    def alarm_rows(self, out: np.ndarray) -> np.ndarray:
        """Boolean mask of batch rows on which any alarm fired."""
        _, alarms = self.split(np.atleast_2d(np.asarray(out)))
        return alarms.any(axis=1)

    def fired(self, out: np.ndarray) -> Tuple[str, ...]:
        """Names of the alarms that fired anywhere in the batch."""
        _, alarms = self.split(np.atleast_2d(np.asarray(out)))
        return tuple(
            name
            for i, name in enumerate(self.alarm_names)
            if alarms[:, i].any()
        )

    def check(self, out: np.ndarray) -> np.ndarray:
        """Return the data outputs, raising :class:`CheckerAlarm` if any
        alarm wire is set anywhere in the batch."""
        arr = np.atleast_2d(np.asarray(out))
        data, alarms = self.split(arr)
        if alarms.any():
            rows = np.flatnonzero(alarms.any(axis=1))
            raise CheckerAlarm(self.fired(arr), rows=rows.tolist())
        return data if np.asarray(out).ndim > 1 else data[0]


def with_checkers(
    netlist: Netlist,
    sortedness: bool = True,
    count: bool = True,
    control: bool = False,
    adder: str = "prefix",
) -> CheckedNetlist:
    """Append concurrent error-detection circuits to ``netlist``.

    The returned :class:`CheckedNetlist` wraps a fresh netlist whose
    outputs are the original outputs followed by one alarm wire per
    enabled checker (order: sortedness, count, control).  The source
    netlist is not modified; its wire ids and element indices stay valid
    in the checked netlist.

    ``sortedness`` and ``count`` together are a complete detector for
    binary sorting (see module docstring); ``control`` additionally
    duplicates the steering cone so steering faults are caught even when
    their corruption is masked downstream.
    """
    if not (sortedness or count or control):
        raise BuildError("with_checkers: enable at least one checker")
    b = _extend_builder(netlist, f"{netlist.name}+checkers")
    alarms: List[int] = []
    names: List[str] = []
    if sortedness:
        if len(netlist.outputs) < 2:
            raise BuildError("sortedness checker needs >= 2 outputs")
        alarms.append(_attach_sortedness(b, netlist.outputs))
        names.append(SORTEDNESS)
    if count:
        if not netlist.inputs:
            raise BuildError("count checker needs primary inputs")
        alarms.append(_attach_count(b, netlist.inputs, netlist.outputs, adder))
        names.append(COUNT)
    if control:
        wire = _attach_control_duplicate(b, netlist)
        if wire is not None:
            alarms.append(wire)
            names.append(CONTROL)
    checked = b.build(outputs=list(netlist.outputs) + alarms)
    return CheckedNetlist(
        netlist=checked,
        n_data=len(netlist.outputs),
        alarm_names=tuple(names),
        base_cost=netlist.cost(),
        base_depth=netlist.depth(),
    )


# ---------------------------------------------------------------------------
# Standalone output checker (for composite sorters, e.g. Network 3)
# ---------------------------------------------------------------------------


@dataclass
class OutputChecker:
    """A free-standing checker netlist observing an (input, output) bus.

    ``netlist`` has ``2n`` primary inputs — the sorter's input vector
    followed by its output vector — and one output per alarm in
    ``alarm_names``.  Composite sorters whose data path is not a single
    netlist (the fish sorter's time-multiplexed phases) attach this at
    their boundary: physically it taps the input and output buses, and
    its cost simply adds to the sorter inventory, staying within the
    paper's accounting.
    """

    netlist: Netlist
    n: int
    alarm_names: Tuple[str, ...]

    def alarms(self, inputs, outputs) -> np.ndarray:
        """Evaluate the checker: ``(B, n_alarms)`` uint8 alarm matrix."""
        from .simulate import simulate

        x = np.atleast_2d(np.asarray(inputs, dtype=np.uint8))
        y = np.atleast_2d(np.asarray(outputs, dtype=np.uint8))
        if x.shape != y.shape or x.shape[1] != self.n:
            raise BuildError(
                f"output checker expects matching (B, {self.n}) input and "
                f"output batches, got {x.shape} and {y.shape}"
            )
        return simulate(self.netlist, np.hstack([x, y]))

    def fired(self, inputs, outputs) -> Tuple[str, ...]:
        """Names of the alarms that fire anywhere in the batch."""
        a = self.alarms(inputs, outputs)
        return tuple(
            name for i, name in enumerate(self.alarm_names) if a[:, i].any()
        )


def build_output_checker(
    n: int,
    sortedness: bool = True,
    count: bool = True,
    adder: str = "prefix",
) -> OutputChecker:
    """Build the free-standing ``(input, output)``-bus checker for width
    ``n`` (see :class:`OutputChecker`)."""
    if n < 2:
        raise BuildError(f"output checker needs n >= 2, got {n}")
    if not (sortedness or count):
        raise BuildError("output checker: enable at least one checker")
    b = CircuitBuilder(f"output-checker-{n}")
    x = b.add_inputs(n)
    y = b.add_inputs(n)
    alarms: List[int] = []
    names: List[str] = []
    if sortedness:
        alarms.append(_attach_sortedness(b, y))
        names.append(SORTEDNESS)
    if count:
        alarms.append(_attach_count(b, x, y, adder))
        names.append(COUNT)
    return OutputChecker(
        netlist=b.build(outputs=alarms), n=n, alarm_names=tuple(names)
    )
