"""Declarative fault injection over netlists.

The verification story of this reproduction ("sorts everything, checked
exhaustively") is only as strong as its sensitivity to broken hardware.
This module promotes the ad-hoc mutation helpers that used to live in
the test-suite into a first-class fault-model layer:

* :class:`StuckAt` — a wire permanently reads 0 or 1 (the classic
  stuck-at model of manufacturing test);
* :class:`OutputSwap` — a routing element's outputs are exchanged
  (a comparator emits max before min, a switch routes crossed);
* :class:`ControlInvert` — a steering wire is inverted, i.e. the
  adaptive control path (prefix-adder→patch-up selects, mux-merger
  middle bits) lies to every switch it steers;
* :class:`TransientFlip` — a single-cycle glitch on one wire, for the
  Model-B clocked simulators (:class:`~repro.circuits.sequential.PipelinedNetlist`
  accepts a set of these and flips the wire's register at that clock).

Every fault is *applied by netlist rewriting* (:func:`apply_fault`):
stuck wires are re-driven from a fresh constant, inversions splice a NOT
right after the wire's driver, swaps reverse an element's output tuple.
The mutant is an ordinary validated :class:`~repro.circuits.netlist.Netlist`,
so the element-at-a-time interpreter and the compiled
:class:`~repro.circuits.engine.ExecutionPlan` evaluate *the same broken
circuit* — which is exactly what lets campaigns check the two engines
differentially under every fault.  All wire ids of the original netlist
remain valid in the mutant (new wires are only appended), so fault
records stay meaningful across rewrites.

Fault *universes* are enumerated by :func:`enumerate_faults` and sampled
deterministically by :func:`sample_faults` /:func:`k_fault_sets`; the
steering-wire target set is :func:`control_wires` (the builder's
explicit tags united with the control ports derived from the element
list, so hand-assembled netlists work too).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import elements as el
from .elements import Element
from .netlist import Netlist

#: Element kinds whose outputs an :class:`OutputSwap` may exchange —
#: the routing elements (multi-output switching hardware).
SWAPPABLE_KINDS = frozenset(
    {el.COMPARATOR, el.SWITCH2, el.SWITCH4, el.DEMUX2}
)

#: ``kind -> control-port positions`` in ``Element.ins`` (mirrors
#: :attr:`repro.circuits.builder.CircuitBuilder.CONTROL_PORTS`, kept
#: separate so the faults layer works on netlists from any source).
CONTROL_PORTS: Dict[str, Tuple[int, ...]] = {
    el.SWITCH2: (2,),
    el.SWITCH4: (4, 5),
    el.MUX2: (2,),
    el.DEMUX2: (1,),
}


@dataclass(frozen=True)
class StuckAt:
    """Wire ``wire`` permanently reads ``value`` (0 or 1)."""

    wire: int
    value: int

    @property
    def id(self) -> str:
        return f"stuck@w{self.wire}={self.value}"


@dataclass(frozen=True)
class OutputSwap:
    """Element ``element`` (index into ``netlist.elements``) has its
    output wires reversed — min/max exchanged on a comparator, crossed
    routing on a switch."""

    element: int

    @property
    def id(self) -> str:
        return f"swap@e{self.element}"


@dataclass(frozen=True)
class ControlInvert:
    """Steering wire ``wire`` is inverted before every reader."""

    wire: int

    @property
    def id(self) -> str:
        return f"ctlinv@w{self.wire}"


@dataclass(frozen=True)
class TransientFlip:
    """Wire ``wire`` glitches (inverts) during clock ``cycle`` only.

    Clocked simulators honour the cycle; the combinational rewrite in
    :func:`apply_fault` conservatively models it as a whole-evaluation
    inversion (the glitch lasting the full combinational settle), which
    is what the interpreter/engine differential runs against.
    """

    wire: int
    cycle: int

    @property
    def id(self) -> str:
        return f"flip@w{self.wire}@t{self.cycle}"


Fault = Union[StuckAt, OutputSwap, ControlInvert, TransientFlip]


# ---------------------------------------------------------------------------
# Target-set derivation
# ---------------------------------------------------------------------------


def derived_control_wires(netlist: Netlist) -> FrozenSet[int]:
    """Wires read by any element's control port (steering by structure)."""
    found = set()
    for e in netlist.elements:
        for port in CONTROL_PORTS.get(e.kind, ()):
            found.add(e.ins[port])
    return frozenset(found)


def control_wires(netlist: Netlist) -> FrozenSet[int]:
    """The full steering target set: explicit builder tags ∪ derived."""
    return netlist.control_wires | derived_control_wires(netlist)


def driven_wires(netlist: Netlist) -> List[int]:
    """Every wire that carries a defined value (inputs, constants,
    element outputs) in netlist order — the stuck-at target universe."""
    out = list(netlist.inputs) + sorted(netlist.constants)
    for e in netlist.elements:
        out.extend(e.outs)
    return out


# ---------------------------------------------------------------------------
# Fault application (netlist rewriting)
# ---------------------------------------------------------------------------


def _remap_reads(
    elements: Sequence[Element], old: int, new: int
) -> List[Element]:
    return [
        e
        if old not in e.ins
        else Element(
            e.kind, tuple(new if w == old else w for w in e.ins), e.outs, e.params
        )
        for e in elements
    ]


def _stuck(netlist: Netlist, wire: int, value: int) -> Netlist:
    if not (0 <= wire < netlist.n_wires):
        raise ValueError(f"stuck-at wire {wire} out of range")
    if value not in (0, 1):
        raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
    nw = netlist.n_wires
    elements = _remap_reads(netlist.elements, wire, nw)
    outputs = tuple(nw if w == wire else w for w in netlist.outputs)
    constants = dict(netlist.constants)
    constants[nw] = value
    return Netlist(
        netlist.n_wires + 1,
        elements,
        netlist.inputs,
        outputs,
        constants,
        name=netlist.name,
        control_wires=netlist.control_wires,
    )


def _invert(netlist: Netlist, wire: int) -> Netlist:
    if not (0 <= wire < netlist.n_wires):
        raise ValueError(f"inverted wire {wire} out of range")
    nw = netlist.n_wires
    inverter = Element(el.NOT, (wire,), (nw,), None)
    # Splice the NOT right after the wire's driver so topological order
    # survives; inputs and constants are driven "before" element 0.
    pos = 0
    for i, e in enumerate(netlist.elements):
        if wire in e.outs:
            pos = i + 1
            break
    elements = (
        list(netlist.elements[:pos])
        + [inverter]
        + _remap_reads(netlist.elements[pos:], wire, nw)
    )
    outputs = tuple(nw if w == wire else w for w in netlist.outputs)
    return Netlist(
        netlist.n_wires + 1,
        elements,
        netlist.inputs,
        outputs,
        netlist.constants,
        name=netlist.name,
        control_wires=netlist.control_wires,
    )


def _swap_outputs(netlist: Netlist, index: int) -> Netlist:
    if not (0 <= index < len(netlist.elements)):
        raise ValueError(f"element index {index} out of range")
    e = netlist.elements[index]
    if e.kind not in SWAPPABLE_KINDS:
        raise ValueError(
            f"element #{index} ({e.kind}) is not a routing element; "
            f"output-swap targets {sorted(SWAPPABLE_KINDS)}"
        )
    elements = list(netlist.elements)
    elements[index] = Element(e.kind, e.ins, tuple(reversed(e.outs)), e.params)
    return Netlist(
        netlist.n_wires,
        elements,
        netlist.inputs,
        netlist.outputs,
        netlist.constants,
        name=netlist.name,
        control_wires=netlist.control_wires,
    )


def apply_fault(netlist: Netlist, fault: Fault) -> Netlist:
    """Return a fresh validated netlist with ``fault`` injected.

    The original netlist is never modified; its wire ids stay valid in
    the mutant.  :class:`TransientFlip` is modelled combinationally as a
    full-evaluation inversion — clocked per-cycle semantics live in
    :class:`~repro.circuits.sequential.PipelinedNetlist`.
    """
    if isinstance(fault, StuckAt):
        return _stuck(netlist, fault.wire, fault.value)
    if isinstance(fault, (ControlInvert, TransientFlip)):
        return _invert(netlist, fault.wire)
    if isinstance(fault, OutputSwap):
        return _swap_outputs(netlist, fault.element)
    raise TypeError(f"unknown fault {fault!r}")


def apply_faults(netlist: Netlist, faults: Iterable[Fault]) -> Netlist:
    """Inject a set of faults (k-fault injection).

    Output swaps are applied first — their element indices refer to the
    *original* element list, and wire-level rewrites insert elements.
    Wire-level faults then apply in the given order; original wire ids
    remain stable throughout because rewrites only append wires.
    """
    faults = list(faults)
    net = netlist
    for f in faults:
        if isinstance(f, OutputSwap):
            net = apply_fault(net, f)
    for f in faults:
        if not isinstance(f, OutputSwap):
            net = apply_fault(net, f)
    return net


# ---------------------------------------------------------------------------
# Universe enumeration and deterministic sampling
# ---------------------------------------------------------------------------


def enumerate_faults(
    netlist: Netlist,
    kinds: Sequence[str] = ("stuck", "swap", "control"),
    cycles: Optional[Sequence[int]] = None,
) -> List[Fault]:
    """Enumerate the single-fault universe of ``netlist``.

    ``kinds`` selects fault families: ``"stuck"`` (stuck-at-0/1 on every
    driven wire), ``"swap"`` (output swap on every routing element),
    ``"control"`` (inversion of every steering wire, see
    :func:`control_wires`), ``"transient"`` (one
    :class:`TransientFlip` per (non-constant driven wire, cycle) pair;
    requires ``cycles``).
    """
    universe: List[Fault] = []
    for kind in kinds:
        if kind == "stuck":
            for w in driven_wires(netlist):
                universe.append(StuckAt(w, 0))
                universe.append(StuckAt(w, 1))
        elif kind == "swap":
            universe.extend(
                OutputSwap(i)
                for i, e in enumerate(netlist.elements)
                if e.kind in SWAPPABLE_KINDS
            )
        elif kind == "control":
            universe.extend(
                ControlInvert(w) for w in sorted(control_wires(netlist))
            )
        elif kind == "transient":
            if cycles is None:
                raise ValueError("transient enumeration requires cycles")
            const = set(netlist.constants)
            wires = [w for w in driven_wires(netlist) if w not in const]
            universe.extend(
                TransientFlip(w, c) for c in cycles for w in wires
            )
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    return universe


def sample_faults(
    universe: Sequence[Fault], k: int, seed: int = 0
) -> List[Fault]:
    """Deterministically sample ``k`` faults (universe order preserved)."""
    if k >= len(universe):
        return list(universe)
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(universe), size=k, replace=False)
    return [universe[i] for i in sorted(idx)]


def k_fault_sets(
    universe: Sequence[Fault],
    k: int,
    limit: Optional[int] = None,
    seed: int = 0,
) -> List[Tuple[Fault, ...]]:
    """Sets of ``k`` distinct faults for multi-fault campaigns.

    Enumerates all combinations when there are at most ``limit``;
    otherwise draws ``limit`` distinct combinations deterministically.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        sets = [(f,) for f in universe]
        if limit is not None and len(sets) > limit:
            return [(f,) for f in sample_faults(universe, limit, seed)]
        return sets
    import math

    total = math.comb(len(universe), k)
    if limit is None or total <= limit:
        return list(itertools.combinations(universe, k))
    rng = np.random.default_rng(seed)
    seen = set()
    out: List[Tuple[Fault, ...]] = []
    while len(out) < limit:
        pick = tuple(
            sorted(rng.choice(len(universe), size=k, replace=False).tolist())
        )
        if pick in seen:
            continue
        seen.add(pick)
        out.append(tuple(universe[i] for i in pick))
    return out


def fault_set_id(faults: Union[Fault, Sequence[Fault]]) -> str:
    """Stable identifier for a fault or fault set (checkpoint keys)."""
    if not isinstance(faults, (list, tuple)):
        faults = (faults,)
    return "+".join(f.id for f in faults)
