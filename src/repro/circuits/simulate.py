"""Vectorized netlist evaluation.

Two evaluation modes share the structural description in
:class:`~repro.circuits.netlist.Netlist`:

* :func:`simulate` — pure bit-level evaluation, vectorized over a batch of
  input vectors (NumPy ``uint8``).  Used for functional verification,
  including *exhaustive* verification over all ``2**n`` binary sequences
  for small ``n``.
* :func:`simulate_payload` — bit-plus-payload evaluation for networks that
  *carry* inputs (the paper's distinction from Boolean sorting circuits,
  Section I).  Every wire holds a tag bit and an opaque integer payload;
  comparators and switches move payloads along with tags, while logic
  gates produce tag-only wires.  This is how concentrators and permuters
  demonstrate that actual data is routed, not merely that sorted bits are
  generated.

Both public entry points are thin wrappers over the compiled
level-batched engine in :mod:`repro.circuits.engine` (plans cached
weak-keyed per netlist, bit-packed fast path for large pure-bit
batches).  The original element-at-a-time interpreters are retained as
:func:`simulate_interpreted` / :func:`simulate_payload_interpreted` —
they are the independent oracle the engine is differentially tested
against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from . import elements as el
from . import jit as _jit
from .. import obs
from ..errors import SimulationError
from .engine import NO_PAYLOAD, get_plan
from .netlist import Netlist


def _as_batch(inputs) -> np.ndarray:
    arr = np.asarray(inputs)
    # Contiguous uint8 input is passed through untouched (the hot path:
    # engine outputs, exhaustive_inputs, rng.integers(...).astype(uint8));
    # anything else is converted once and then range-checked.
    converted = arr.dtype != np.uint8 or not arr.flags["C_CONTIGUOUS"]
    if converted:
        arr = np.ascontiguousarray(arr, dtype=np.uint8)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise SimulationError(
            f"inputs must be 1-D or 2-D, got shape {arr.shape}"
        )
    if converted and arr.size and arr.max() > 1:
        raise SimulationError("inputs must be 0/1 values")
    return arr


def simulate(netlist: Netlist, inputs) -> np.ndarray:
    """Evaluate ``netlist`` on a batch of input vectors.

    Runs on the compiled level-batched engine (bit-packed for batches of
    64+ vectors), or — for netlists warm and sized inside the JIT window
    (see :func:`repro.circuits.jit.maybe_jit` and the ``REPRO_JIT``
    override) — on a code-generated straight-line bit-slice kernel.
    Both backends are bit-identical to :func:`simulate_interpreted`.

    Parameters
    ----------
    inputs:
        Array-like of shape ``(batch, n_inputs)`` or ``(n_inputs,)`` with
        0/1 values.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of shape ``(batch, n_outputs)``.
    """
    batch = _as_batch(inputs)
    if batch.shape[1] != len(netlist.inputs):
        raise SimulationError(
            f"expected {len(netlist.inputs)} inputs, got {batch.shape[1]}"
        )
    plan = _jit.maybe_jit(netlist, batch.shape[0])
    if plan is not None:
        return plan.execute(batch)
    return get_plan(netlist).execute(batch)


def simulate_engine(netlist: Netlist, inputs) -> np.ndarray:
    """:func:`simulate`, pinned to the fused-step engine (never JIT).

    The supervisor's ``engine`` tier and the JIT's own differential
    tests use this to keep the two compiled backends distinguishable
    regardless of ``REPRO_JIT``.
    """
    batch = _as_batch(inputs)
    if batch.shape[1] != len(netlist.inputs):
        raise SimulationError(
            f"expected {len(netlist.inputs)} inputs, got {batch.shape[1]}"
        )
    return get_plan(netlist).execute(batch)


def simulate_jit(netlist: Netlist, inputs) -> np.ndarray:
    """:func:`simulate`, pinned to the code-generated bit-slice kernel.

    Compiles (or loads from cache) unconditionally — no size threshold,
    no warm-up — unless ``REPRO_JIT=0`` explicitly forbids the JIT, in
    which case a :class:`~repro.errors.SimulationError` is raised so
    tiered callers (the supervisor ladder) fall through to the engine.
    """
    batch = _as_batch(inputs)
    if batch.shape[1] != len(netlist.inputs):
        raise SimulationError(
            f"expected {len(netlist.inputs)} inputs, got {batch.shape[1]}"
        )
    if _jit.jit_mode() == "off":
        raise SimulationError("JIT disabled by REPRO_JIT=0")
    return _jit.get_jit_plan(netlist).execute(batch)


def simulate_interpreted(netlist: Netlist, inputs) -> np.ndarray:
    """Element-at-a-time reference interpreter (the engine's oracle).

    Same contract as :func:`simulate`; kept deliberately independent of
    :mod:`repro.circuits.engine` so differential tests compare two
    implementations that share nothing but the netlist.  (The only
    shared machinery is the passive :mod:`repro.obs` span around the
    run, which observes timing without touching wire values.)
    """
    batch = _as_batch(inputs)
    if batch.shape[1] != len(netlist.inputs):
        raise SimulationError(
            f"expected {len(netlist.inputs)} inputs, got {batch.shape[1]}"
        )
    if not obs.OBS.enabled:
        return _interpret_bits(netlist, batch)
    with obs.OBS.tracer.span(
        "interp.execute", netlist=netlist.name, mode="bit",
        batch=batch.shape[0], elements=len(netlist.elements),
    ):
        return _interpret_bits(netlist, batch)


def _interpret_bits(netlist: Netlist, batch: np.ndarray) -> np.ndarray:
    n_batch = batch.shape[0]
    values: list = [None] * netlist.n_wires
    for i, w in enumerate(netlist.inputs):
        values[w] = batch[:, i]
    for w, v in netlist.constants.items():
        values[w] = np.full(n_batch, v, dtype=np.uint8)

    for e in netlist.elements:
        kind = e.kind
        if kind == el.COMPARATOR:
            a, b = values[e.ins[0]], values[e.ins[1]]
            values[e.outs[0]] = a & b
            values[e.outs[1]] = a | b
        elif kind == el.SWITCH2:
            a, b, c = (values[w] for w in e.ins)
            values[e.outs[0]] = np.where(c, b, a)
            values[e.outs[1]] = np.where(c, a, b)
        elif kind == el.MUX2:
            a, b, s = (values[w] for w in e.ins)
            values[e.outs[0]] = np.where(s, b, a)
        elif kind == el.DEMUX2:
            a, s = values[e.ins[0]], values[e.ins[1]]
            values[e.outs[0]] = np.where(s, 0, a).astype(np.uint8)
            values[e.outs[1]] = np.where(s, a, 0).astype(np.uint8)
        elif kind == el.SWITCH4:
            data = np.stack([values[w] for w in e.ins[:4]])  # (4, batch)
            sel = (values[e.ins[4]].astype(np.intp) << 1) | values[e.ins[5]]
            table = np.asarray(e.params, dtype=np.intp)  # (4 sel, 4 out)
            cols = np.arange(n_batch)
            for i in range(4):
                src = table[sel, i]
                values[e.outs[i]] = data[src, cols]
        elif kind == el.NOT:
            values[e.outs[0]] = values[e.ins[0]] ^ 1
        elif kind == el.AND:
            values[e.outs[0]] = values[e.ins[0]] & values[e.ins[1]]
        elif kind == el.OR:
            values[e.outs[0]] = values[e.ins[0]] | values[e.ins[1]]
        elif kind == el.XOR:
            values[e.outs[0]] = values[e.ins[0]] ^ values[e.ins[1]]
        elif kind == el.NAND:
            values[e.outs[0]] = (values[e.ins[0]] & values[e.ins[1]]) ^ 1
        elif kind == el.NOR:
            values[e.outs[0]] = (values[e.ins[0]] | values[e.ins[1]]) ^ 1
        elif kind == el.XNOR:
            values[e.outs[0]] = (values[e.ins[0]] ^ values[e.ins[1]]) ^ 1
        elif kind == el.BUF:
            values[e.outs[0]] = values[e.ins[0]]
        else:  # pragma: no cover - guarded by Element.validate
            raise ValueError(f"unknown element kind {kind!r}")

    return np.stack([values[w] for w in netlist.outputs], axis=1)


def _as_payload_batch(netlist: Netlist, tags, payloads):
    tag_batch = _as_batch(tags)
    pay_batch = np.asarray(payloads, dtype=np.int64)
    if pay_batch.ndim == 1:
        pay_batch = pay_batch[np.newaxis, :]
    if pay_batch.shape != tag_batch.shape:
        raise SimulationError("tags and payloads must have the same shape")
    if tag_batch.shape[1] != len(netlist.inputs):
        raise SimulationError(
            f"expected {len(netlist.inputs)} inputs, got {tag_batch.shape[1]}"
        )
    return tag_batch, pay_batch


def simulate_payload(
    netlist: Netlist, tags, payloads
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``netlist`` carrying an integer payload on every data wire.

    Comparators route the payload with its tag (ties pass straight, so the
    routing is deterministic); switches, multiplexers, and demultiplexers
    route payloads by their control bits.  Logic gates output
    :data:`NO_PAYLOAD`, which is fine because control logic never feeds a
    primary data output in the paper's constructions.

    Runs on the compiled engine's payload path; bit-identical to
    :func:`simulate_payload_interpreted`.

    Returns ``(out_tags, out_payloads)``, both shaped
    ``(batch, n_outputs)``.
    """
    tag_batch, pay_batch = _as_payload_batch(netlist, tags, payloads)
    return get_plan(netlist).execute_payload(tag_batch, pay_batch)


def simulate_payload_interpreted(
    netlist: Netlist, tags, payloads
) -> Tuple[np.ndarray, np.ndarray]:
    """Element-at-a-time payload interpreter (the engine's oracle).

    Same contract as :func:`simulate_payload`.
    """
    tag_batch, pay_batch = _as_payload_batch(netlist, tags, payloads)
    if not obs.OBS.enabled:
        return _interpret_payload(netlist, tag_batch, pay_batch)
    with obs.OBS.tracer.span(
        "interp.execute", netlist=netlist.name, mode="payload",
        batch=tag_batch.shape[0], elements=len(netlist.elements),
    ):
        return _interpret_payload(netlist, tag_batch, pay_batch)


def _interpret_payload(
    netlist: Netlist, tag_batch: np.ndarray, pay_batch: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    n_batch = tag_batch.shape[0]
    tags_v: list = [None] * netlist.n_wires
    pays_v: list = [None] * netlist.n_wires
    no_pay = np.full(n_batch, NO_PAYLOAD, dtype=np.int64)
    for i, w in enumerate(netlist.inputs):
        tags_v[w] = tag_batch[:, i]
        pays_v[w] = pay_batch[:, i]
    for w, v in netlist.constants.items():
        tags_v[w] = np.full(n_batch, v, dtype=np.uint8)
        pays_v[w] = no_pay

    for e in netlist.elements:
        kind = e.kind
        if kind == el.COMPARATOR:
            a, b = tags_v[e.ins[0]], tags_v[e.ins[1]]
            pa, pb = pays_v[e.ins[0]], pays_v[e.ins[1]]
            swap = a & (b ^ 1)  # a=1, b=0: exchange
            tags_v[e.outs[0]] = a & b
            tags_v[e.outs[1]] = a | b
            pays_v[e.outs[0]] = np.where(swap, pb, pa)
            pays_v[e.outs[1]] = np.where(swap, pa, pb)
        elif kind == el.SWITCH2:
            a, b, c = (tags_v[w] for w in e.ins)
            pa, pb = pays_v[e.ins[0]], pays_v[e.ins[1]]
            tags_v[e.outs[0]] = np.where(c, b, a)
            tags_v[e.outs[1]] = np.where(c, a, b)
            pays_v[e.outs[0]] = np.where(c, pb, pa)
            pays_v[e.outs[1]] = np.where(c, pa, pb)
        elif kind == el.MUX2:
            a, b, s = (tags_v[w] for w in e.ins)
            pa, pb = pays_v[e.ins[0]], pays_v[e.ins[1]]
            tags_v[e.outs[0]] = np.where(s, b, a)
            pays_v[e.outs[0]] = np.where(s, pb, pa)
        elif kind == el.DEMUX2:
            a, s = tags_v[e.ins[0]], tags_v[e.ins[1]]
            pa = pays_v[e.ins[0]]
            tags_v[e.outs[0]] = np.where(s, 0, a).astype(np.uint8)
            tags_v[e.outs[1]] = np.where(s, a, 0).astype(np.uint8)
            pays_v[e.outs[0]] = np.where(s, no_pay, pa)
            pays_v[e.outs[1]] = np.where(s, pa, no_pay)
        elif kind == el.SWITCH4:
            data = np.stack([tags_v[w] for w in e.ins[:4]])
            pdata = np.stack([pays_v[w] for w in e.ins[:4]])
            sel = (tags_v[e.ins[4]].astype(np.intp) << 1) | tags_v[e.ins[5]]
            table = np.asarray(e.params, dtype=np.intp)
            cols = np.arange(n_batch)
            for i in range(4):
                src = table[sel, i]
                tags_v[e.outs[i]] = data[src, cols]
                pays_v[e.outs[i]] = pdata[src, cols]
        elif kind == el.BUF:
            tags_v[e.outs[0]] = tags_v[e.ins[0]]
            pays_v[e.outs[0]] = pays_v[e.ins[0]]
        elif kind in el.GATE_KINDS or kind in (el.NOT,):
            # control logic: tags only, payload does not propagate
            ins = [tags_v[w] for w in e.ins]
            if kind == el.NOT:
                out = ins[0] ^ 1
            elif kind == el.AND:
                out = ins[0] & ins[1]
            elif kind == el.OR:
                out = ins[0] | ins[1]
            elif kind == el.XOR:
                out = ins[0] ^ ins[1]
            elif kind == el.NAND:
                out = (ins[0] & ins[1]) ^ 1
            elif kind == el.NOR:
                out = (ins[0] | ins[1]) ^ 1
            elif kind == el.XNOR:
                out = (ins[0] ^ ins[1]) ^ 1
            else:  # pragma: no cover
                raise ValueError(f"unknown gate kind {kind!r}")
            tags_v[e.outs[0]] = out
            pays_v[e.outs[0]] = no_pay
        else:  # pragma: no cover - guarded by Element.validate
            raise ValueError(f"unknown element kind {kind!r}")

    out_tags = np.stack([tags_v[w] for w in netlist.outputs], axis=1)
    out_pays = np.stack([pays_v[w] for w in netlist.outputs], axis=1)
    return out_tags, out_pays


def exhaustive_inputs(n: int) -> np.ndarray:
    """All ``2**n`` binary vectors of length ``n`` as a batch (uint8).

    Row ``i`` is the binary expansion of ``i``, most-significant bit first,
    so iteration order is lexicographic.
    """
    if n < 0:
        raise SimulationError("n must be non-negative")
    if n > 24:
        raise SimulationError(f"refusing to materialize 2**{n} vectors")
    count = 1 << n
    idx = np.arange(count, dtype=np.uint32)
    shifts = np.arange(n - 1, -1, -1, dtype=np.uint32)
    return ((idx[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
